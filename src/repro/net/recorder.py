"""Opt-in access recording for the instrumented field layer.

The static inspector (:mod:`repro.core.inspector`) derives action
profiles from NF *source*; this module derives them from NF *execution*,
the approach of the "Automatic Parallelization of Software Network
Functions" line of work.  A :class:`AccessRecorder` is attached to a
:class:`~repro.net.packet.Packet`; while attached, the packet's header
views are replaced with recording subclasses that log every
profile-relevant read/write (plus the payload, drop, copy and
add/remove-header paths hooked elsewhere) as :class:`AccessEvent`\\ s.

Two properties keep this honest as an oracle:

* **Zero overhead when disabled.**  ``Packet.recorder`` defaults to
  ``None`` and every view property pays exactly one ``is None`` check;
  the plain view classes are returned unchanged, so the un-instrumented
  hot path is byte-for-byte the pre-instrumentation code path.
* **Actor scoping.**  Events are recorded only while an NF has entered
  the recorder's scope (:meth:`AccessRecorder.enter`, done by
  ``NetworkFunction.handle``).  Infrastructure accesses -- the
  classifier's five-tuple, RSS flow keys, merge-operation field copies,
  output comparison -- fall outside any scope and are ignored, so the
  inferred footprint is the NF's own.

Verbs are plain strings here (``"read"``, ``"write"``, ``"add"``,
``"remove"``, ``"drop"``, ``"copy-*"``) because :mod:`repro.net` sits
below :mod:`repro.core`; :mod:`repro.profiles` maps them onto
:class:`repro.core.actions.Verb`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .fields import Field
from .headers import EthernetView, Ipv4View, TcpView, UdpView

__all__ = ["AccessEvent", "AccessRecorder", "RECORD_VERBS"]

RECORD_VERBS = (
    "read", "write", "add", "remove", "drop", "copy-full", "copy-header",
)


class AccessEvent:
    """One observed packet access, attributed to an NF actor."""

    __slots__ = ("nf_name", "nf_kind", "verb", "field", "packet_uid")

    def __init__(
        self,
        nf_name: str,
        nf_kind: str,
        verb: str,
        field: Optional[Field],
        packet_uid: int,
    ):
        self.nf_name = nf_name
        self.nf_kind = nf_kind
        self.verb = verb
        self.field = field
        self.packet_uid = packet_uid

    def __repr__(self) -> str:
        field = "" if self.field is None else f"({self.field})"
        return (f"<{self.nf_kind}:{self.nf_name} {self.verb}{field} "
                f"pkt#{self.packet_uid}>")


class AccessRecorder:
    """Collects :class:`AccessEvent`\\ s from instrumented packets.

    One recorder is typically shared by every packet of a run; the
    current actor is process-wide per recorder (NF execution is
    single-threaded per plane, so a simple enter/exit pair suffices).
    """

    __slots__ = ("events", "_actor")

    def __init__(self):
        self.events: List[AccessEvent] = []
        self._actor: Optional[Tuple[str, str]] = None

    # ---------------------------------------------------------- actor scope
    def enter(self, nf_name: str, nf_kind: str) -> None:
        """Begin attributing accesses to ``nf_name`` (an NF's handle())."""
        self._actor = (nf_name, nf_kind)

    def exit(self) -> None:
        self._actor = None

    @property
    def active(self) -> bool:
        return self._actor is not None

    # ------------------------------------------------------------- recording
    def record(self, verb: str, field: Optional[Field], packet_uid: int) -> None:
        """Log one access; silently ignored outside any NF scope."""
        actor = self._actor
        if actor is None:
            return
        self.events.append(AccessEvent(actor[0], actor[1], verb, field, packet_uid))

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


# --------------------------------------------------------------------------
# Recording view subclasses.  Only the profile-relevant properties are
# overridden; plumbing fields (checksums, lengths, protocol numbers,
# flags) inherit the plain accessors -- mirroring the inspector's
# _ATTR_FIELDS vocabulary so static and dynamic profiles line up.
# --------------------------------------------------------------------------


def _recording_property(base_prop, verb_field: Field):
    getter = base_prop.fget
    setter = base_prop.fset

    def fget(self):
        self._rec.record("read", verb_field, self._uid)
        return getter(self)

    if setter is None:
        return property(fget)

    def fset(self, value):
        self._rec.record("write", verb_field, self._uid)
        setter(self, value)

    return property(fget, fset)


class _RecordingMixin:
    __slots__ = ()

    def _bind(self, recorder: AccessRecorder, packet_uid: int):
        self._rec = recorder
        self._uid = packet_uid
        return self


class RecordingEthernetView(_RecordingMixin, EthernetView):
    __slots__ = ("_rec", "_uid")

    src_mac = _recording_property(EthernetView.src_mac, Field.SMAC)
    dst_mac = _recording_property(EthernetView.dst_mac, Field.DMAC)


class RecordingIpv4View(_RecordingMixin, Ipv4View):
    __slots__ = ("_rec", "_uid")

    src_ip = _recording_property(Ipv4View.src_ip, Field.SIP)
    dst_ip = _recording_property(Ipv4View.dst_ip, Field.DIP)
    src_ip_int = _recording_property(Ipv4View.src_ip_int, Field.SIP)
    dst_ip_int = _recording_property(Ipv4View.dst_ip_int, Field.DIP)
    ttl = _recording_property(Ipv4View.ttl, Field.TTL)
    dscp = _recording_property(Ipv4View.dscp, Field.DSCP)


class RecordingTcpView(_RecordingMixin, TcpView):
    __slots__ = ("_rec", "_uid")

    src_port = _recording_property(TcpView.src_port, Field.SPORT)
    dst_port = _recording_property(TcpView.dst_port, Field.DPORT)


class RecordingUdpView(_RecordingMixin, UdpView):
    __slots__ = ("_rec", "_uid")

    src_port = _recording_property(UdpView.src_port, Field.SPORT)
    dst_port = _recording_property(UdpView.dst_port, Field.DPORT)
