"""Struct-of-arrays metadata words for the batched hot path.

The scalar planes hang a :class:`~repro.net.packet.PacketMeta` object off
every packet and chase three attributes per touch.  The batched plane
(:mod:`repro.dataplane.batched`) instead keeps the 64-bit MID|PID|version
words (Fig. 5) in one flat ``array('Q')`` and indexes by batch slot --
one machine word per packet, no per-packet object allocation until a
packet actually leaves the plane.

:func:`pack_word` / :func:`unpack_word` are bit-compatible with
``PacketMeta.pack()`` / ``PacketMeta.unpack()`` by construction; the
property suite (``tests/property/test_soa_metadata.py``) pins the
equivalence over every field boundary value.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Tuple

from .packet import PacketMeta

__all__ = [
    "MID_BITS",
    "PID_BITS",
    "VERSION_BITS",
    "MAX_MID",
    "MAX_PID",
    "MAX_VERSION",
    "pack_word",
    "unpack_word",
    "MetaArray",
]

#: Field widths, mirrored from :class:`PacketMeta` (Fig. 5).
MID_BITS = PacketMeta.MID_BITS
PID_BITS = PacketMeta.PID_BITS
VERSION_BITS = PacketMeta.VERSION_BITS

#: Inclusive field maxima.
MAX_MID = (1 << MID_BITS) - 1
MAX_PID = (1 << PID_BITS) - 1
MAX_VERSION = (1 << VERSION_BITS) - 1

_PID_SHIFT = VERSION_BITS
_MID_SHIFT = PID_BITS + VERSION_BITS
_PID_MASK = MAX_PID << _PID_SHIFT
_VERSION_MASK = MAX_VERSION


def pack_word(mid: int, pid: int, version: int = 1) -> int:
    """Encode one MID|PID|version metadata word (== ``PacketMeta.pack``)."""
    if not 0 <= mid <= MAX_MID:
        raise ValueError(f"MID out of {MID_BITS}-bit range: {mid}")
    if not 0 <= pid <= MAX_PID:
        raise ValueError(f"PID out of {PID_BITS}-bit range: {pid}")
    if not 0 <= version <= MAX_VERSION:
        raise ValueError(f"version out of {VERSION_BITS}-bit range: {version}")
    return (mid << _MID_SHIFT) | (pid << _PID_SHIFT) | version


def unpack_word(word: int) -> Tuple[int, int, int]:
    """Decode a metadata word back to ``(mid, pid, version)``."""
    if not 0 <= word < (1 << 64):
        raise ValueError(f"metadata word out of 64-bit range: {word}")
    return (
        word >> _MID_SHIFT,
        (word & _PID_MASK) >> _PID_SHIFT,
        word & _VERSION_MASK,
    )


class MetaArray:
    """A flat ``array('Q')`` of metadata words, indexed by batch slot.

    The batched classifier appends one word per classified packet;
    downstream code reads single fields without materialising a
    :class:`PacketMeta` until the packet is emitted (:meth:`as_meta`).
    """

    __slots__ = ("words",)

    def __init__(self, words: Iterable[int] = ()):
        self.words = array("Q", words)

    def append(self, mid: int, pid: int, version: int = 1) -> int:
        """Append a packed word; returns its slot index."""
        self.words.append(pack_word(mid, pid, version))
        return len(self.words) - 1

    def append_word(self, word: int) -> int:
        self.words.append(word)
        return len(self.words) - 1

    def word(self, index: int) -> int:
        return self.words[index]

    def set_word(self, index: int, word: int) -> None:
        self.words[index] = word

    def mid(self, index: int) -> int:
        return self.words[index] >> _MID_SHIFT

    def pid(self, index: int) -> int:
        return (self.words[index] & _PID_MASK) >> _PID_SHIFT

    def version(self, index: int) -> int:
        return self.words[index] & _VERSION_MASK

    def as_meta(self, index: int) -> PacketMeta:
        """Materialise slot ``index`` as a :class:`PacketMeta` object."""
        return PacketMeta.unpack(self.words[index])

    def clear(self) -> None:
        del self.words[:]

    def __len__(self) -> int:
        return len(self.words)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetaArray({len(self.words)} words)"
