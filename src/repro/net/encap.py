"""802.1Q VLAN tag and VXLAN outer-stack insertion/removal.

Structural primitives for the Lemur-style L2/tunnel NFs (VLAN push/pop,
VXLAN encap/decap): like :mod:`repro.net.ah` they splice whole header
units in and out of the frame, which the profile model expresses as
``Add``/``Remove`` of :data:`Field.VLAN_HEADER` / :data:`Field.VXLAN_HEADER`.

Layout facts used throughout:

* A VLAN tag is 4 bytes (TPID ``0x8100`` + TCI) inserted *after* the
  MACs, i.e. at byte 12; a tagged frame's L3 header starts at 18
  (``Packet.l3_offset``).
* A VXLAN outer stack is 50 bytes prepended to the whole frame:
  outer Ethernet (14) + outer IPv4 (20) + outer UDP (8, dst port 4789)
  + VXLAN header (8, flags ``0x08`` + 24-bit VNI).

The outer VXLAN stack is built from raw bytes rather than through the
packet's views so that an attached :class:`AccessRecorder` sees exactly
the structural add/remove events -- not spurious SIP/DIP writes on the
*outer* header, which is new state the NF created, not a mutation of
the original packet's fields.
"""

from __future__ import annotations

import struct

from .checksum import internet_checksum
from .fields import Field
from .headers import (
    ETH_HEADER_LEN,
    ETHERTYPE_IPV4,
    ETHERTYPE_VLAN,
    PROTO_UDP,
    VLAN_TAG_LEN,
    Ipv4View,
    UdpView,
    ip_to_int,
    mac_to_bytes,
)
from .packet import Packet

__all__ = [
    "VXLAN_PORT",
    "VXLAN_HEADER_LEN",
    "VXLAN_OUTER_LEN",
    "insert_vlan",
    "remove_vlan",
    "vlan_tci",
    "is_vxlan",
    "vxlan_encap",
    "vxlan_decap",
    "vxlan_vni",
]

VXLAN_PORT = 4789
VXLAN_HEADER_LEN = 8
#: Outer Ethernet + IPv4 + UDP + VXLAN prepended by an encap.
VXLAN_OUTER_LEN = ETH_HEADER_LEN + Ipv4View.HEADER_LEN + UdpView.HEADER_LEN + VXLAN_HEADER_LEN


# ----------------------------------------------------------------- 802.1Q
def insert_vlan(pkt: Packet, vlan_id: int, pcp: int = 0) -> None:
    """Push an 802.1Q tag (or rewrite the TCI of an existing one)."""
    if not 0 <= vlan_id <= 0xFFF:
        raise ValueError("VLAN ID is 12 bits")
    if not 0 <= pcp <= 7:
        raise ValueError("PCP is 3 bits")
    rec = pkt.recorder
    if rec is not None:
        rec.record("add", Field.VLAN_HEADER, pkt.uid)
    tci = (pcp << 13) | vlan_id
    if pkt.has_vlan:
        pkt.buf[14] = (tci >> 8) & 0xFF
        pkt.buf[15] = tci & 0xFF
        return
    tag = bytes(
        (
            (ETHERTYPE_VLAN >> 8) & 0xFF,
            ETHERTYPE_VLAN & 0xFF,
            (tci >> 8) & 0xFF,
            tci & 0xFF,
        )
    )
    pkt.buf[12:12] = tag
    pkt.wire_len += VLAN_TAG_LEN


def remove_vlan(pkt: Packet) -> None:
    """Pop the 802.1Q tag.  Raises if the frame is untagged."""
    if not pkt.has_vlan:
        raise ValueError("frame carries no 802.1Q tag")
    rec = pkt.recorder
    if rec is not None:
        rec.record("remove", Field.VLAN_HEADER, pkt.uid)
    del pkt.buf[12 : 12 + VLAN_TAG_LEN]
    pkt.wire_len -= VLAN_TAG_LEN


def vlan_tci(pkt: Packet) -> int:
    """The 16-bit TCI (PCP|DEI|VID) of a tagged frame."""
    if not pkt.has_vlan:
        raise ValueError("frame carries no 802.1Q tag")
    return (pkt.buf[14] << 8) | pkt.buf[15]


# ------------------------------------------------------------------ VXLAN
def is_vxlan(pkt: Packet) -> bool:
    """Raw-byte check for a VXLAN outer stack (untagged outer frame).

    Deliberately bypasses the packet views so infrastructure (merge
    strips, validity checks) can probe without logging field reads.
    """
    buf = pkt.buf
    if len(buf) < VXLAN_OUTER_LEN:
        return False
    if ((buf[12] << 8) | buf[13]) != ETHERTYPE_IPV4:
        return False
    ip_off = ETH_HEADER_LEN
    if buf[ip_off] != 0x45 or buf[ip_off + 9] != PROTO_UDP:
        return False
    udp_off = ip_off + Ipv4View.HEADER_LEN
    return ((buf[udp_off + 2] << 8) | buf[udp_off + 3]) == VXLAN_PORT


def vxlan_encap(
    pkt: Packet,
    vni: int,
    src_ip: str,
    dst_ip: str,
    src_mac: str = "02:00:00:00:10:01",
    dst_mac: str = "02:00:00:00:10:02",
    src_port: int = 49152,
    ttl: int = 64,
) -> None:
    """Prepend a 50-byte VXLAN outer stack around the whole frame."""
    if not 0 <= vni < (1 << 24):
        raise ValueError("VNI is 24 bits")
    rec = pkt.recorder
    if rec is not None:
        rec.record("add", Field.VXLAN_HEADER, pkt.uid)
    inner_len = len(pkt.buf)
    # Outer identification echoes the inner one (read raw: the copy uid
    # differs across execution planes, and the outer stack is NF-created
    # state, not a footprint read).
    l3 = pkt.l3_offset
    inner_id = (pkt.buf[l3 + 4] << 8) | pkt.buf[l3 + 5] if len(
        pkt.buf) >= l3 + 6 else 0

    eth = mac_to_bytes(dst_mac) + mac_to_bytes(src_mac) + struct.pack(
        "!H", ETHERTYPE_IPV4
    )
    ip_total = Ipv4View.HEADER_LEN + UdpView.HEADER_LEN + VXLAN_HEADER_LEN + inner_len
    ip = bytearray(
        struct.pack(
            "!BBHHHBBHII",
            0x45,  # version 4, IHL 5
            0,  # DSCP/ECN
            ip_total,
            inner_id,  # identification
            0,  # flags/fragment offset
            ttl,
            PROTO_UDP,
            0,  # checksum placeholder
            ip_to_int(src_ip),
            ip_to_int(dst_ip),
        )
    )
    struct.pack_into("!H", ip, 10, internet_checksum(bytes(ip)))
    udp = struct.pack(
        "!HHHH",
        src_port,
        VXLAN_PORT,
        UdpView.HEADER_LEN + VXLAN_HEADER_LEN + inner_len,
        0,  # UDP checksum optional over IPv4
    )
    vxlan = struct.pack("!BBHI", 0x08, 0, 0, vni << 8)  # I-flag set, VNI<<8

    pkt.buf[0:0] = eth + bytes(ip) + udp + vxlan
    pkt.wire_len += VXLAN_OUTER_LEN


def vxlan_decap(pkt: Packet) -> None:
    """Strip the VXLAN outer stack.  Raises if the frame is not VXLAN."""
    if not is_vxlan(pkt):
        raise ValueError("frame carries no VXLAN outer stack")
    rec = pkt.recorder
    if rec is not None:
        rec.record("remove", Field.VXLAN_HEADER, pkt.uid)
    del pkt.buf[0:VXLAN_OUTER_LEN]
    pkt.wire_len -= VXLAN_OUTER_LEN


def vxlan_vni(pkt: Packet) -> int:
    """The 24-bit VNI of a VXLAN-encapsulated frame."""
    if not is_vxlan(pkt):
        raise ValueError("frame carries no VXLAN outer stack")
    off = VXLAN_OUTER_LEN - VXLAN_HEADER_LEN
    return struct.unpack_from("!I", pkt.buf, off + 4)[0] >> 8
