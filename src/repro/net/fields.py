"""Named packet fields: the vocabulary shared by action profiles and MOs.

The orchestrator reasons about NF behaviour at the granularity of named
fields (Table 2's columns: SIP, DIP, SPORT, DPORT, Payload, ...) and the
merger's merging operations reference the same names (e.g.
``modify(v1.SIP, v2.SIP)``).  This module defines the :class:`Field`
enumeration and byte-level accessors so a merge operation can be executed
on real packet buffers.

The paper notes its MO implementation is protocol dependent (§5.3); ours
is too -- IPv4/TCP/UDP plus the AH header the VPN NF adds.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict

from .headers import PROTO_TCP, PROTO_UDP

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .packet import Packet

__all__ = ["Field", "read_field", "write_field", "FIELD_ACCESSORS"]


class Field(enum.Enum):
    """Packet fields an NF can read or write (Table 2 columns + extras)."""

    SIP = "sip"
    DIP = "dip"
    SPORT = "sport"
    DPORT = "dport"
    TTL = "ttl"
    DSCP = "dscp"
    PAYLOAD = "payload"
    #: Ethernet source/destination MAC (L2 NFs: MAC swap, learning switch).
    SMAC = "smac"
    DMAC = "dmac"
    #: Structural unit: the IPsec Authentication Header (added/removed).
    AH_HEADER = "ah"
    #: Structural unit: the 802.1Q VLAN tag (4 bytes after the MACs).
    VLAN_HEADER = "vlan"
    #: Structural unit: a VXLAN outer stack (Eth+IPv4+UDP+VXLAN, 50 bytes).
    VXLAN_HEADER = "vxlan"
    #: Wildcard used by profiles meaning "the entire packet" (e.g. an NF
    #: that checksums or compresses everything).
    WHOLE_PACKET = "*"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def parse(cls, token: str) -> "Field":
        token = token.strip().lower()
        for member in cls:
            if member.value == token:
                return member
        raise ValueError(f"unknown packet field: {token!r}")

    def overlaps(self, other: "Field") -> bool:
        """Whether two fields can denote the same bytes.

        ``WHOLE_PACKET`` overlaps everything; otherwise only identical
        fields overlap (our fields are disjoint byte ranges).
        """
        if self is Field.WHOLE_PACKET or other is Field.WHOLE_PACKET:
            return True
        return self is other

    @property
    def is_encapsulating(self) -> bool:
        """Whether adding/removing this unit re-homes every accessor.

        AH sits between IP and L4 and the VLAN tag between the MACs and
        the ethertype; the accessors parse through both, so the other
        fields keep their referents.  A VXLAN outer stack instead puts a
        whole new Eth/IPv4/UDP stack in front: after encap, ``sip``
        *means* the outer source address.  No copy-and-merge discipline
        can reconcile that with a parallel NF's view of the inner
        packet, so Algorithm 1 refuses to parallelize across it.
        """
        return self is Field.VXLAN_HEADER


def _l4(pkt: Packet):
    proto = pkt.l4_protocol
    if proto == PROTO_TCP:
        return pkt.tcp
    if proto == PROTO_UDP:
        return pkt.udp
    raise ValueError("packet has no TCP/UDP ports")


def _read_sip(pkt: Packet):
    return pkt.ipv4.src_ip


def _write_sip(pkt: Packet, value) -> None:
    pkt.ipv4.src_ip = value


def _read_dip(pkt: Packet):
    return pkt.ipv4.dst_ip


def _write_dip(pkt: Packet, value) -> None:
    pkt.ipv4.dst_ip = value


def _read_sport(pkt: Packet):
    return _l4(pkt).src_port


def _write_sport(pkt: Packet, value) -> None:
    _l4(pkt).src_port = value


def _read_dport(pkt: Packet):
    return _l4(pkt).dst_port


def _write_dport(pkt: Packet, value) -> None:
    _l4(pkt).dst_port = value


def _read_ttl(pkt: Packet):
    return pkt.ipv4.ttl


def _write_ttl(pkt: Packet, value) -> None:
    pkt.ipv4.ttl = value


def _read_dscp(pkt: Packet):
    return pkt.ipv4.dscp


def _write_dscp(pkt: Packet, value) -> None:
    pkt.ipv4.dscp = value


def _read_payload(pkt: Packet):
    return pkt.payload


def _write_payload(pkt: Packet, value) -> None:
    pkt.set_payload(value)


def _read_smac(pkt: Packet):
    return pkt.eth.src_mac


def _write_smac(pkt: Packet, value) -> None:
    pkt.eth.src_mac = value


def _read_dmac(pkt: Packet):
    return pkt.eth.dst_mac


def _write_dmac(pkt: Packet, value) -> None:
    pkt.eth.dst_mac = value


#: Field -> (reader, writer) over a live packet.
FIELD_ACCESSORS: Dict[Field, tuple] = {
    Field.SIP: (_read_sip, _write_sip),
    Field.DIP: (_read_dip, _write_dip),
    Field.SPORT: (_read_sport, _write_sport),
    Field.DPORT: (_read_dport, _write_dport),
    Field.TTL: (_read_ttl, _write_ttl),
    Field.DSCP: (_read_dscp, _write_dscp),
    Field.PAYLOAD: (_read_payload, _write_payload),
    Field.SMAC: (_read_smac, _write_smac),
    Field.DMAC: (_read_dmac, _write_dmac),
}


def read_field(pkt: Packet, field: Field):
    """Read a named field from a packet."""
    try:
        reader, _ = FIELD_ACCESSORS[field]
    except KeyError:
        raise ValueError(f"field {field} is not value-addressable") from None
    return reader(pkt)


def write_field(pkt: Packet, field: Field, value) -> None:
    """Write a named field on a packet (in place)."""
    try:
        _, writer = FIELD_ACCESSORS[field]
    except KeyError:
        raise ValueError(f"field {field} is not value-addressable") from None
    writer(pkt, value)
