"""Libpcap trace I/O: export/import packet streams.

Implements the classic pcap container (magic ``0xA1B2C3D4``, microsecond
timestamps, LINKTYPE_ETHERNET) so simulated traffic can be written out
and inspected with Wireshark/tcpdump, and captured traces can be
replayed through service graphs.

Only the original 24-byte-global-header format is produced; both byte
orders and both microsecond/nanosecond variants are accepted on read.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterable, List, Tuple, Union

from .packet import Packet

__all__ = ["write_pcap", "read_pcap", "PcapError"]

_MAGIC_US = 0xA1B2C3D4
_MAGIC_NS = 0xA1B23C4D
_LINKTYPE_ETHERNET = 1
_GLOBAL = struct.Struct("<IHHiIII")
_RECORD = struct.Struct("<IIII")


class PcapError(ValueError):
    """Malformed pcap input."""


def write_pcap(
    path: Union[str, Path, BinaryIO],
    packets: Iterable[Packet],
    snaplen: int = 65535,
) -> int:
    """Write packets (with their ``ingress_us`` timestamps) to a pcap file.

    Returns the number of records written.
    """
    own = isinstance(path, (str, Path))
    handle: BinaryIO = open(path, "wb") if own else path  # type: ignore[arg-type]
    count = 0
    try:
        handle.write(
            _GLOBAL.pack(_MAGIC_US, 2, 4, 0, 0, snaplen, _LINKTYPE_ETHERNET)
        )
        for pkt in packets:
            if pkt.nil:
                continue
            data = bytes(pkt.buf[:snaplen])
            ts = max(0.0, pkt.ingress_us)
            seconds = int(ts // 1_000_000)
            micros = int(ts % 1_000_000)
            handle.write(_RECORD.pack(seconds, micros, len(data), len(pkt.buf)))
            handle.write(data)
            count += 1
    finally:
        if own:
            handle.close()
    return count


def read_pcap(
    path: Union[str, Path, BinaryIO],
) -> List[Tuple[float, Packet]]:
    """Read a pcap file into ``(timestamp_us, Packet)`` pairs."""
    own = isinstance(path, (str, Path))
    handle: BinaryIO = open(path, "rb") if own else path  # type: ignore[arg-type]
    try:
        header = handle.read(_GLOBAL.size)
        if len(header) < _GLOBAL.size:
            raise PcapError("truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic in (_MAGIC_US, _MAGIC_NS):
            endian = "<"
        else:
            magic_be = struct.unpack(">I", header[:4])[0]
            if magic_be not in (_MAGIC_US, _MAGIC_NS):
                raise PcapError(f"bad pcap magic: {magic:#x}")
            endian = ">"
            magic = magic_be
        nanos = magic == _MAGIC_NS
        record = struct.Struct(endian + "IIII")

        out: List[Tuple[float, Packet]] = []
        while True:
            raw = handle.read(record.size)
            if not raw:
                break
            if len(raw) < record.size:
                raise PcapError("truncated pcap record header")
            seconds, sub, caplen, origlen = record.unpack(raw)
            data = handle.read(caplen)
            if len(data) < caplen:
                raise PcapError("truncated pcap record body")
            micros = sub / 1000.0 if nanos else float(sub)
            timestamp_us = seconds * 1_000_000 + micros
            pkt = Packet(bytearray(data), wire_len=origlen)
            pkt.ingress_us = timestamp_us
            out.append((timestamp_us, pkt))
        return out
    finally:
        if own:
            handle.close()
