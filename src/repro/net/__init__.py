"""Byte-level packet substrate: headers, packets, fields, LPM, crypto.

NFs operate on real packet bytes through this package, which is what lets
the test suite verify the paper's *result correctness principle* (§4.1)
functionally: the merged output of a parallel service graph must be
byte-identical to sequential execution.
"""

from .checksum import internet_checksum, pseudo_header_checksum
from .headers import (
    ETH_HEADER_LEN,
    ETHERTYPE_IPV4,
    ETHERTYPE_VLAN,
    PROTO_AH,
    PROTO_TCP,
    PROTO_UDP,
    VLAN_TAG_LEN,
    AhView,
    EthernetView,
    Ipv4View,
    TcpView,
    UdpView,
    bytes_to_mac,
    int_to_ip,
    ip_to_int,
    mac_to_bytes,
)
from .metadata import MetaArray, pack_word, unpack_word
from .packet import HEADER_COPY_BYTES, Packet, PacketMeta, build_packet
from .fields import Field, read_field, write_field
from .recorder import AccessEvent, AccessRecorder, RECORD_VERBS
from .lpm import LpmTable
from .crypto import Aes128, aes_ctr_transform, compute_icv
from .ah import insert_ah, remove_ah, verify_ah
from .encap import (
    VXLAN_HEADER_LEN,
    VXLAN_OUTER_LEN,
    VXLAN_PORT,
    insert_vlan,
    is_vxlan,
    remove_vlan,
    vlan_tci,
    vxlan_decap,
    vxlan_encap,
    vxlan_vni,
)
from .pcap import PcapError, read_pcap, write_pcap

__all__ = [
    "internet_checksum",
    "pseudo_header_checksum",
    "ETH_HEADER_LEN",
    "ETHERTYPE_IPV4",
    "PROTO_AH",
    "PROTO_TCP",
    "PROTO_UDP",
    "EthernetView",
    "Ipv4View",
    "TcpView",
    "UdpView",
    "AhView",
    "ip_to_int",
    "int_to_ip",
    "mac_to_bytes",
    "bytes_to_mac",
    "Packet",
    "PacketMeta",
    "build_packet",
    "HEADER_COPY_BYTES",
    "MetaArray",
    "pack_word",
    "unpack_word",
    "Field",
    "read_field",
    "write_field",
    "LpmTable",
    "Aes128",
    "aes_ctr_transform",
    "compute_icv",
    "insert_ah",
    "remove_ah",
    "verify_ah",
    "ETHERTYPE_VLAN",
    "VLAN_TAG_LEN",
    "VXLAN_PORT",
    "VXLAN_HEADER_LEN",
    "VXLAN_OUTER_LEN",
    "AccessEvent",
    "AccessRecorder",
    "RECORD_VERBS",
    "insert_vlan",
    "remove_vlan",
    "vlan_tci",
    "is_vxlan",
    "vxlan_encap",
    "vxlan_decap",
    "vxlan_vni",
    "write_pcap",
    "read_pcap",
    "PcapError",
]
