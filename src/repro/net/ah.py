"""IPsec Authentication Header insertion/removal (transport-style).

The VPN NF implements "the tunnel mode of IPsec Authentication Header
(AH) protocol" (§6.1).  For the dataplane the structurally relevant part
is that a 24-byte AH is spliced between the IPv4 header and the L4
segment and later removed -- the add/remove actions of Table 2.  These
helpers perform the splice, fix up the IPv4 protocol/length/checksum
fields, and stamp/verify the ICV.
"""

from __future__ import annotations

from .crypto import compute_icv
from .fields import Field
from .headers import PROTO_AH, AhView
from .packet import Packet

__all__ = ["insert_ah", "remove_ah", "verify_ah"]


def insert_ah(pkt: Packet, spi: int, seq: int, icv_key: bytes) -> None:
    """Splice an AH between the IPv4 header and the rest of the packet.

    The ICV is computed over the (immutable-field) IPv4 header and the
    payload that follows the AH, per RFC 4302's spirit.
    """
    ip = pkt.ipv4
    if ip.protocol == PROTO_AH:
        raise ValueError("packet already carries an AH")
    ip_end = pkt.l3_offset + ip.header_len
    next_header = ip.protocol
    rec = pkt.recorder
    if rec is not None:
        rec.record("add", Field.AH_HEADER, pkt.uid)

    ah_bytes = bytearray(AhView.HEADER_LEN)
    pkt.buf[ip_end:ip_end] = ah_bytes  # splice in place

    ip = pkt.ipv4  # re-view after the splice
    ip.protocol = PROTO_AH
    ip.total_length = ip.total_length + AhView.HEADER_LEN

    ah = AhView(pkt.buf, ip_end)
    ah.next_header = next_header
    # AH "payload len" = header length in 32-bit words minus 2.
    ah.payload_len = AhView.HEADER_LEN // 4 - 2
    ah.spi = spi
    ah.seq = seq
    ah.icv = compute_icv(icv_key, _icv_scope(pkt, ip_end))

    ip.update_checksum()
    pkt.wire_len += AhView.HEADER_LEN


def remove_ah(pkt: Packet, icv_key: bytes = b"", verify: bool = False) -> None:
    """Strip the AH, restoring the original protocol and lengths."""
    ip = pkt.ipv4
    if ip.protocol != PROTO_AH:
        raise ValueError("packet carries no AH")
    ip_end = pkt.l3_offset + ip.header_len
    ah = AhView(pkt.buf, ip_end)
    rec = pkt.recorder
    if rec is not None:
        rec.record("remove", Field.AH_HEADER, pkt.uid)
    if verify and not verify_ah(pkt, icv_key):
        raise ValueError("AH integrity check failed")
    next_header = ah.next_header
    del pkt.buf[ip_end : ip_end + AhView.HEADER_LEN]

    ip = pkt.ipv4
    ip.protocol = next_header
    ip.total_length = ip.total_length - AhView.HEADER_LEN
    ip.update_checksum()
    pkt.wire_len -= AhView.HEADER_LEN


def verify_ah(pkt: Packet, icv_key: bytes) -> bool:
    """Recompute the ICV and compare with the one in the packet."""
    ip = pkt.ipv4
    if ip.protocol != PROTO_AH:
        return False
    ip_end = pkt.l3_offset + ip.header_len
    ah = AhView(pkt.buf, ip_end)
    return ah.icv == compute_icv(icv_key, _icv_scope(pkt, ip_end))


def _icv_scope(pkt: Packet, ip_end: int) -> bytes:
    """Bytes covered by the ICV: src/dst IPs plus everything after the AH."""
    l3 = pkt.l3_offset
    addresses = bytes(pkt.buf[l3 + 12 : l3 + 20])
    after_ah = bytes(pkt.buf[ip_end + AhView.HEADER_LEN :])
    return addresses + after_ah
