"""Longest-prefix-match table (binary trie), used by the L3 Forwarder NF.

The paper's L3 Forwarder "obtains the matching entry from a longest
prefix matching table with 1000 entries to find out the next hop" (§6.1).
This is a classic bitwise trie over IPv4 destination addresses.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from .headers import int_to_ip, ip_to_int

__all__ = ["LpmTable"]


class _Node:
    __slots__ = ("children", "value", "has_value")

    def __init__(self):
        self.children = [None, None]
        self.value: Any = None
        self.has_value = False


class LpmTable:
    """IPv4 longest-prefix-match routing table.

    >>> t = LpmTable()
    >>> t.insert("10.0.0.0", 8, "hop-a")
    >>> t.insert("10.1.0.0", 16, "hop-b")
    >>> t.lookup("10.1.2.3")
    'hop-b'
    >>> t.lookup("10.9.9.9")
    'hop-a'
    """

    def __init__(self):
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @staticmethod
    def _bits(address_int: int, prefix_len: int) -> Iterator[int]:
        for shift in range(31, 31 - prefix_len, -1):
            yield (address_int >> shift) & 1

    def insert(self, prefix: str, prefix_len: int, value: Any) -> None:
        """Insert (or replace) a route ``prefix/prefix_len -> value``."""
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {prefix_len}")
        node = self._root
        for bit in self._bits(ip_to_int(prefix), prefix_len):
            if node.children[bit] is None:
                node.children[bit] = _Node()
            node = node.children[bit]
        if not node.has_value:
            self._size += 1
        node.has_value = True
        node.value = value

    def lookup(self, address: str) -> Optional[Any]:
        """Return the value of the longest matching prefix, or ``None``."""
        return self.lookup_int(ip_to_int(address))

    def lookup_int(self, address_int: int) -> Optional[Any]:
        node = self._root
        best: Optional[Any] = node.value if node.has_value else None
        for shift in range(31, -1, -1):
            bit = (address_int >> shift) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.has_value:
                best = node.value
        return best

    def remove(self, prefix: str, prefix_len: int) -> bool:
        """Delete a route; returns whether it existed.

        Child nodes are left in place (no path compression) -- removal is
        rare in the forwarding path and correctness is what matters.
        """
        node = self._root
        for bit in self._bits(ip_to_int(prefix), prefix_len):
            node = node.children[bit]
            if node is None:
                return False
        if not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        return True

    def routes(self) -> Iterator[Tuple[str, int, Any]]:
        """Iterate all (prefix, length, value) routes in the table."""

        def walk(node: _Node, bits: int, depth: int):
            if node.has_value:
                yield (int_to_ip(bits << (32 - depth) if depth else 0), depth, node.value)
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    yield from walk(child, (bits << 1) | bit, depth + 1)

        yield from walk(self._root, 0, 0)
