"""RFC 1071 Internet checksum and the TCP/UDP pseudo-header variant."""

from __future__ import annotations

__all__ = ["internet_checksum", "pseudo_header_checksum"]


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``.

    Odd-length input is virtually padded with a trailing zero byte, as the
    RFC specifies.
    """
    total = 0
    length = len(data)
    # Sum 16-bit big-endian words.
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length % 2:
        total += data[-1] << 8
    # Fold carries.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header_checksum(
    src_ip: bytes, dst_ip: bytes, protocol: int, payload: bytes
) -> int:
    """Checksum over the IPv4 pseudo-header plus an L4 segment.

    Used for TCP (protocol 6) and UDP (protocol 17) checksums.  ``src_ip``
    and ``dst_ip`` are 4-byte network-order addresses; ``payload`` is the
    entire L4 header+data with its checksum field zeroed.
    """
    if len(src_ip) != 4 or len(dst_ip) != 4:
        raise ValueError("IPv4 addresses must be 4 bytes")
    if not 0 <= protocol <= 255:
        raise ValueError("protocol must be one byte")
    pseudo = bytes(src_ip) + bytes(dst_ip) + bytes(
        [0, protocol, (len(payload) >> 8) & 0xFF, len(payload) & 0xFF]
    )
    return internet_checksum(pseudo + bytes(payload))
