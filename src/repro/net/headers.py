"""Header views: zero-copy parse/serialize of Ethernet, IPv4, TCP, UDP, AH.

Each view class wraps a ``bytearray`` plus an offset and exposes header
fields as properties that read/write the underlying bytes in place --
mirroring how a DPDK NF manipulates an mbuf through header structs.  No
view ever copies packet data; mutating a view mutates the packet.
"""

from __future__ import annotations

import struct
from typing import Union

__all__ = [
    "ETH_HEADER_LEN",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_VLAN",
    "VLAN_TAG_LEN",
    "PROTO_TCP",
    "PROTO_UDP",
    "PROTO_AH",
    "EthernetView",
    "Ipv4View",
    "TcpView",
    "UdpView",
    "AhView",
    "ip_to_int",
    "int_to_ip",
    "mac_to_bytes",
    "bytes_to_mac",
]

ETH_HEADER_LEN = 14
ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_VLAN = 0x8100  # 802.1Q tag (TPID)
VLAN_TAG_LEN = 4  # TPID (2) + TCI (2), inserted after the MACs
PROTO_TCP = 6
PROTO_UDP = 17
PROTO_AH = 51  # IPsec Authentication Header

Buffer = Union[bytearray, memoryview]


def ip_to_int(address: str) -> int:
    """Dotted-quad string -> host integer.  Raises on malformed input."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Host integer -> dotted-quad string."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 address out of range: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mac_to_bytes(mac: str) -> bytes:
    """``"aa:bb:cc:dd:ee:ff"`` -> 6 raw bytes."""
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address: {mac!r}")
    return bytes(int(p, 16) for p in parts)


def bytes_to_mac(raw: bytes) -> str:
    if len(raw) != 6:
        raise ValueError("MAC must be 6 bytes")
    return ":".join(f"{b:02x}" for b in raw)


class _View:
    """Common base: a window into ``buf`` starting at ``offset``."""

    HEADER_LEN = 0

    def __init__(self, buf: bytearray, offset: int = 0):
        if offset < 0 or offset + self.HEADER_LEN > len(buf):
            raise ValueError(
                f"{type(self).__name__} does not fit at offset {offset} "
                f"in a {len(buf)}-byte buffer"
            )
        self.buf = buf
        self.offset = offset

    def _u8(self, rel: int) -> int:
        return self.buf[self.offset + rel]

    def _set_u8(self, rel: int, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise ValueError("u8 out of range")
        self.buf[self.offset + rel] = value

    def _u16(self, rel: int) -> int:
        off = self.offset + rel
        return (self.buf[off] << 8) | self.buf[off + 1]

    def _set_u16(self, rel: int, value: int) -> None:
        if not 0 <= value <= 0xFFFF:
            raise ValueError("u16 out of range")
        off = self.offset + rel
        self.buf[off] = (value >> 8) & 0xFF
        self.buf[off + 1] = value & 0xFF

    def _u32(self, rel: int) -> int:
        off = self.offset + rel
        return struct.unpack_from("!I", self.buf, off)[0]

    def _set_u32(self, rel: int, value: int) -> None:
        if not 0 <= value <= 0xFFFFFFFF:
            raise ValueError("u32 out of range")
        struct.pack_into("!I", self.buf, self.offset + rel, value)

    def raw(self) -> bytes:
        """The header bytes as an immutable snapshot."""
        return bytes(self.buf[self.offset : self.offset + self.HEADER_LEN])


class EthernetView(_View):
    """14-byte Ethernet II header."""

    HEADER_LEN = ETH_HEADER_LEN

    @property
    def dst_mac(self) -> str:
        return bytes_to_mac(bytes(self.buf[self.offset : self.offset + 6]))

    @dst_mac.setter
    def dst_mac(self, mac: str) -> None:
        self.buf[self.offset : self.offset + 6] = mac_to_bytes(mac)

    @property
    def src_mac(self) -> str:
        return bytes_to_mac(bytes(self.buf[self.offset + 6 : self.offset + 12]))

    @src_mac.setter
    def src_mac(self, mac: str) -> None:
        self.buf[self.offset + 6 : self.offset + 12] = mac_to_bytes(mac)

    @property
    def ethertype(self) -> int:
        return self._u16(12)

    @ethertype.setter
    def ethertype(self, value: int) -> None:
        self._set_u16(12, value)


class Ipv4View(_View):
    """20-byte (no options) IPv4 header."""

    HEADER_LEN = 20

    @property
    def version(self) -> int:
        return self._u8(0) >> 4

    @property
    def ihl(self) -> int:
        return self._u8(0) & 0x0F

    @property
    def header_len(self) -> int:
        return self.ihl * 4

    @property
    def dscp(self) -> int:
        return self._u8(1) >> 2

    @dscp.setter
    def dscp(self, value: int) -> None:
        if not 0 <= value <= 63:
            raise ValueError("DSCP is 6 bits")
        self._set_u8(1, (value << 2) | (self._u8(1) & 0x03))

    @property
    def total_length(self) -> int:
        return self._u16(2)

    @total_length.setter
    def total_length(self, value: int) -> None:
        self._set_u16(2, value)

    @property
    def identification(self) -> int:
        return self._u16(4)

    @identification.setter
    def identification(self, value: int) -> None:
        self._set_u16(4, value)

    @property
    def flags(self) -> int:
        """The 3-bit flags field (reserved, DF, MF)."""
        return self._u16(6) >> 13

    @property
    def more_fragments(self) -> bool:
        return bool(self._u16(6) & 0x2000)

    @more_fragments.setter
    def more_fragments(self, value: bool) -> None:
        word = self._u16(6)
        self._set_u16(6, (word | 0x2000) if value else (word & ~0x2000))

    @property
    def fragment_offset(self) -> int:
        """Fragment offset in 8-byte units (13 bits)."""
        return self._u16(6) & 0x1FFF

    @fragment_offset.setter
    def fragment_offset(self, value: int) -> None:
        if not 0 <= value <= 0x1FFF:
            raise ValueError("fragment offset is 13 bits")
        self._set_u16(6, (self._u16(6) & ~0x1FFF) | value)

    @property
    def is_fragment(self) -> bool:
        """True for any fragment: MF set, or a non-zero offset."""
        return bool(self._u16(6) & 0x3FFF)

    @property
    def ttl(self) -> int:
        return self._u8(8)

    @ttl.setter
    def ttl(self, value: int) -> None:
        self._set_u8(8, value)

    @property
    def protocol(self) -> int:
        return self._u8(9)

    @protocol.setter
    def protocol(self, value: int) -> None:
        self._set_u8(9, value)

    @property
    def checksum(self) -> int:
        return self._u16(10)

    @checksum.setter
    def checksum(self, value: int) -> None:
        self._set_u16(10, value)

    @property
    def src_ip(self) -> str:
        return int_to_ip(self._u32(12))

    @src_ip.setter
    def src_ip(self, address: str) -> None:
        self._set_u32(12, ip_to_int(address))

    @property
    def dst_ip(self) -> str:
        return int_to_ip(self._u32(16))

    @dst_ip.setter
    def dst_ip(self, address: str) -> None:
        self._set_u32(16, ip_to_int(address))

    @property
    def src_ip_int(self) -> int:
        return self._u32(12)

    @property
    def dst_ip_int(self) -> int:
        return self._u32(16)

    def update_checksum(self) -> None:
        """Recompute the header checksum over IHL*4 bytes."""
        from .checksum import internet_checksum

        self.checksum = 0
        hdr = bytes(self.buf[self.offset : self.offset + self.header_len])
        self.checksum = internet_checksum(hdr)

    def verify_checksum(self) -> bool:
        from .checksum import internet_checksum

        hdr = bytes(self.buf[self.offset : self.offset + self.header_len])
        return internet_checksum(hdr) == 0


class TcpView(_View):
    """20-byte (no options) TCP header."""

    HEADER_LEN = 20

    FLAG_FIN = 0x01
    FLAG_SYN = 0x02
    FLAG_RST = 0x04
    FLAG_PSH = 0x08
    FLAG_ACK = 0x10

    @property
    def src_port(self) -> int:
        return self._u16(0)

    @src_port.setter
    def src_port(self, value: int) -> None:
        self._set_u16(0, value)

    @property
    def dst_port(self) -> int:
        return self._u16(2)

    @dst_port.setter
    def dst_port(self, value: int) -> None:
        self._set_u16(2, value)

    @property
    def seq(self) -> int:
        return self._u32(4)

    @seq.setter
    def seq(self, value: int) -> None:
        self._set_u32(4, value)

    @property
    def ack(self) -> int:
        return self._u32(8)

    @ack.setter
    def ack(self, value: int) -> None:
        self._set_u32(8, value)

    @property
    def data_offset(self) -> int:
        return self._u8(12) >> 4

    @property
    def header_len(self) -> int:
        return self.data_offset * 4

    @property
    def flags(self) -> int:
        return self._u8(13)

    @flags.setter
    def flags(self, value: int) -> None:
        self._set_u8(13, value)

    @property
    def window(self) -> int:
        return self._u16(14)

    @window.setter
    def window(self, value: int) -> None:
        self._set_u16(14, value)

    @property
    def checksum(self) -> int:
        return self._u16(16)

    @checksum.setter
    def checksum(self, value: int) -> None:
        self._set_u16(16, value)


class UdpView(_View):
    """8-byte UDP header."""

    HEADER_LEN = 8

    @property
    def src_port(self) -> int:
        return self._u16(0)

    @src_port.setter
    def src_port(self, value: int) -> None:
        self._set_u16(0, value)

    @property
    def dst_port(self) -> int:
        return self._u16(2)

    @dst_port.setter
    def dst_port(self, value: int) -> None:
        self._set_u16(2, value)

    @property
    def length(self) -> int:
        return self._u16(4)

    @length.setter
    def length(self, value: int) -> None:
        self._set_u16(4, value)

    @property
    def checksum(self) -> int:
        return self._u16(6)

    @checksum.setter
    def checksum(self, value: int) -> None:
        self._set_u16(6, value)


class AhView(_View):
    """IPsec Authentication Header (RFC 4302) with a 12-byte ICV.

    Layout: next_header(1) payload_len(1) reserved(2) spi(4) seq(4)
    icv(12) -- 24 bytes total, which is what the paper's VPN NF (AH tunnel
    mode, §6.1) inserts.
    """

    ICV_LEN = 12
    HEADER_LEN = 12 + ICV_LEN

    @property
    def next_header(self) -> int:
        return self._u8(0)

    @next_header.setter
    def next_header(self, value: int) -> None:
        self._set_u8(0, value)

    @property
    def payload_len(self) -> int:
        """AH length field: header length in 32-bit words minus 2."""
        return self._u8(1)

    @payload_len.setter
    def payload_len(self, value: int) -> None:
        self._set_u8(1, value)

    @property
    def spi(self) -> int:
        return self._u32(4)

    @spi.setter
    def spi(self, value: int) -> None:
        self._set_u32(4, value)

    @property
    def seq(self) -> int:
        return self._u32(8)

    @seq.setter
    def seq(self, value: int) -> None:
        self._set_u32(8, value)

    @property
    def icv(self) -> bytes:
        return bytes(self.buf[self.offset + 12 : self.offset + 12 + self.ICV_LEN])

    @icv.setter
    def icv(self, value: bytes) -> None:
        if len(value) != self.ICV_LEN:
            raise ValueError(f"ICV must be {self.ICV_LEN} bytes")
        self.buf[self.offset + 12 : self.offset + 12 + self.ICV_LEN] = value
