"""The packet object: buffer, metadata, header views, copy semantics.

A :class:`Packet` owns a mutable ``bytearray`` holding the full frame,
exactly like a DPDK mbuf, and exposes lazily-constructed header views.
NFs mutate packets *in place* through the views; the dataplane passes
:class:`Packet` references between rings (zero-copy, §5).

:class:`PacketMeta` is the 64-bit metadata word the NFP classifier tags
onto every packet (Fig. 5): 20-bit Match ID, 40-bit Packet ID and 4-bit
version.

Header-only copying (§4.2 OP#2) is implemented by
:meth:`Packet.header_copy`: only the first 64 bytes are copied and the
IPv4 total-length field of the copy is rewritten to cover just the copied
bytes, "ensuring that parallel NFs receive valid packets".
"""

from __future__ import annotations

import itertools
from typing import Optional

from .fields import Field
from .headers import (
    ETH_HEADER_LEN,
    ETHERTYPE_IPV4,
    ETHERTYPE_VLAN,
    PROTO_AH,
    PROTO_TCP,
    PROTO_UDP,
    VLAN_TAG_LEN,
    AhView,
    EthernetView,
    Ipv4View,
    TcpView,
    UdpView,
)
from .recorder import (
    RecordingEthernetView,
    RecordingIpv4View,
    RecordingTcpView,
    RecordingUdpView,
)

__all__ = ["Packet", "PacketMeta", "build_packet", "HEADER_COPY_BYTES"]

#: Bytes copied by header-only copying.  The paper fixes this at 64 B for
#: TCP traffic on Ethernet (Eth 14 + IPv4 20 + TCP 20 + slack).
HEADER_COPY_BYTES = 64

_serial = itertools.count(1)


class PacketMeta:
    """The 64-bit NFP metadata word (Fig. 5).

    Fields
    ------
    mid:
        20-bit Match ID -- identifies the service graph the packet
        follows ("twenty bits of MID could express 1M service graphs").
    pid:
        40-bit Packet ID -- unique per packet within a flow, immutable,
        used by the merger agent's hash.
    version:
        4-bit copy version; the classifier tags the original as 1.
    """

    MID_BITS = 20
    PID_BITS = 40
    VERSION_BITS = 4

    __slots__ = ("mid", "pid", "version")

    def __init__(self, mid: int = 0, pid: int = 0, version: int = 1):
        if not 0 <= mid < (1 << self.MID_BITS):
            raise ValueError(f"MID out of 20-bit range: {mid}")
        if not 0 <= pid < (1 << self.PID_BITS):
            raise ValueError(f"PID out of 40-bit range: {pid}")
        if not 0 <= version < (1 << self.VERSION_BITS):
            raise ValueError(f"version out of 4-bit range: {version}")
        self.mid = mid
        self.pid = pid
        self.version = version

    def pack(self) -> int:
        """Encode as the 64-bit integer laid out as MID|PID|version."""
        return (self.mid << (self.PID_BITS + self.VERSION_BITS)) | (
            self.pid << self.VERSION_BITS
        ) | self.version

    @classmethod
    def unpack(cls, word: int) -> "PacketMeta":
        version = word & ((1 << cls.VERSION_BITS) - 1)
        pid = (word >> cls.VERSION_BITS) & ((1 << cls.PID_BITS) - 1)
        mid = word >> (cls.PID_BITS + cls.VERSION_BITS)
        return cls(mid=mid, pid=pid, version=version)

    def clone(self, version: Optional[int] = None) -> "PacketMeta":
        return PacketMeta(self.mid, self.pid, self.version if version is None else version)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PacketMeta)
            and (self.mid, self.pid, self.version)
            == (other.mid, other.pid, other.version)
        )

    def __hash__(self) -> int:
        return hash((self.mid, self.pid, self.version))

    def __repr__(self) -> str:
        return f"PacketMeta(mid={self.mid}, pid={self.pid}, version={self.version})"


class Packet:
    """A mutable network frame plus NFP metadata.

    ``wire_len`` records the original frame size even for header-only
    copies (whose buffer holds just 64 bytes), so throughput and resource
    accounting always see true wire sizes.
    """

    __slots__ = (
        "buf",
        "meta",
        "wire_len",
        "is_header_copy",
        "nil",
        "uid",
        "ingress_us",
        "trace",
        "timeline",
        "recorder",
    )

    def __init__(
        self,
        buf: bytearray,
        meta: Optional[PacketMeta] = None,
        wire_len: Optional[int] = None,
        is_header_copy: bool = False,
    ):
        self.buf = buf
        self.meta = meta
        self.wire_len = len(buf) if wire_len is None else wire_len
        self.is_header_copy = is_header_copy
        #: A nil packet conveys a drop intention to the merger (§5.3).
        self.nil = False
        self.uid = next(_serial)
        #: Simulation timestamp of NIC arrival, for latency accounting.
        self.ingress_us = 0.0
        #: Names of NFs that processed this packet, for tests/debugging.
        self.trace: list = []
        #: Optional (label, timestamp) checkpoints recorded by the DES
        #: when timeline instrumentation is enabled.
        self.timeline: Optional[list] = None
        #: Opt-in :class:`~repro.net.recorder.AccessRecorder`.  ``None``
        #: (the default) keeps the hot path untouched: every view
        #: property pays exactly one ``is None`` check and returns the
        #: plain view classes.
        self.recorder = None

    def stamp(self, label: str, now_us: float) -> None:
        """Record a timeline checkpoint (no-op unless enabled)."""
        if self.timeline is not None:
            self.timeline.append((label, now_us))

    # ------------------------------------------------------------ views
    @property
    def has_vlan(self) -> bool:
        """Whether an 802.1Q tag sits between the MACs and the L3 header."""
        buf = self.buf
        return (
            len(buf) >= ETH_HEADER_LEN + VLAN_TAG_LEN
            and ((buf[12] << 8) | buf[13]) == ETHERTYPE_VLAN
        )

    @property
    def l3_offset(self) -> int:
        """Offset of the L3 header: 14, or 18 when 802.1Q-tagged."""
        return ETH_HEADER_LEN + VLAN_TAG_LEN if self.has_vlan else ETH_HEADER_LEN

    @property
    def eth(self) -> EthernetView:
        rec = self.recorder
        if rec is None:
            return EthernetView(self.buf, 0)
        return RecordingEthernetView(self.buf, 0)._bind(rec, self.uid)

    @property
    def ipv4(self) -> Ipv4View:
        off = self.l3_offset
        buf = self.buf
        # The effective ethertype sits just before the L3 header: at 12
        # when untagged, at 16 (the inner ethertype) when 802.1Q-tagged.
        if len(buf) < off or ((buf[off - 2] << 8) | buf[off - 1]) != ETHERTYPE_IPV4:
            raise ValueError("packet is not IPv4")
        rec = self.recorder
        if rec is None:
            return Ipv4View(buf, off)
        return RecordingIpv4View(buf, off)._bind(rec, self.uid)

    @property
    def has_ah(self) -> bool:
        try:
            return self.ipv4.protocol == PROTO_AH
        except ValueError:
            return False

    @property
    def ah(self) -> AhView:
        ip = self.ipv4
        if ip.protocol != PROTO_AH:
            raise ValueError("packet has no Authentication Header")
        return AhView(self.buf, self.l3_offset + ip.header_len)

    def _l4_offset(self) -> int:
        ip = self.ipv4
        offset = self.l3_offset + ip.header_len
        if ip.protocol == PROTO_AH:
            offset += AhView.HEADER_LEN
        return offset

    @property
    def l4_protocol(self) -> int:
        """The transport protocol, looking through an AH if present."""
        ip = self.ipv4
        if ip.protocol == PROTO_AH:
            return self.ah.next_header
        return ip.protocol

    @property
    def tcp(self) -> TcpView:
        if self.l4_protocol != PROTO_TCP:
            raise ValueError("packet is not TCP")
        rec = self.recorder
        if rec is None:
            return TcpView(self.buf, self._l4_offset())
        return RecordingTcpView(self.buf, self._l4_offset())._bind(rec, self.uid)

    @property
    def udp(self) -> UdpView:
        if self.l4_protocol != PROTO_UDP:
            raise ValueError("packet is not UDP")
        rec = self.recorder
        if rec is None:
            return UdpView(self.buf, self._l4_offset())
        return RecordingUdpView(self.buf, self._l4_offset())._bind(rec, self.uid)

    @property
    def payload_offset(self) -> int:
        offset = self._l4_offset()
        proto = self.l4_protocol
        if proto == PROTO_TCP:
            offset += TcpView(self.buf, offset).header_len
        elif proto == PROTO_UDP:
            offset += UdpView.HEADER_LEN
        return offset

    @property
    def payload(self) -> bytes:
        rec = self.recorder
        if rec is not None:
            rec.record("read", Field.PAYLOAD, self.uid)
        return bytes(self.buf[self.payload_offset :])

    def set_payload(self, data: bytes) -> None:
        """Replace the L4 payload in place (same length only).

        NFs that change payload length must use add/remove header
        primitives instead, so that length bookkeeping stays consistent.
        """
        rec = self.recorder
        if rec is not None:
            rec.record("write", Field.PAYLOAD, self.uid)
        start = self.payload_offset
        if len(data) != len(self.buf) - start:
            raise ValueError("set_payload must preserve length")
        self.buf[start:] = data

    def five_tuple(self) -> tuple:
        """(src_ip, dst_ip, proto, sport, dport) -- the classifier key."""
        ip = self.ipv4
        proto = self.l4_protocol
        if proto == PROTO_TCP:
            l4 = self.tcp
            return (ip.src_ip, ip.dst_ip, proto, l4.src_port, l4.dst_port)
        if proto == PROTO_UDP:
            l4 = self.udp
            return (ip.src_ip, ip.dst_ip, proto, l4.src_port, l4.dst_port)
        return (ip.src_ip, ip.dst_ip, proto, 0, 0)

    # ------------------------------------------------------------ copies
    def full_copy(self, version: int) -> "Packet":
        """Deep copy of the whole frame, tagged with a new version."""
        copy = Packet(
            bytearray(self.buf),
            meta=self.meta.clone(version) if self.meta else None,
            wire_len=self.wire_len,
        )
        copy.ingress_us = self.ingress_us
        rec = self.recorder
        if rec is not None:
            copy.recorder = rec
            rec.record("copy-full", None, self.uid)
        return copy

    def header_copy(self, version: int, nbytes: int = HEADER_COPY_BYTES) -> "Packet":
        """Header-only copy (§4.2 OP#2).

        Copies the first ``nbytes`` bytes (64 by default, the paper's
        figure for plain TCP on Ethernet) and rewrites the copy's IPv4
        total-length field to the length of the copied IP portion, so
        the copy is a self-consistent (payload-less) packet.  When the
        header stack is taller than ``nbytes`` (e.g. an AH has been
        inserted), the copy grows to cover it -- parallel NFs must
        always receive valid headers.
        """
        try:
            nbytes = max(nbytes, self.payload_offset)
        except ValueError:
            pass  # not IPv4/TCP/UDP: keep the requested size
        nbytes = min(nbytes, len(self.buf))
        copy = Packet(
            bytearray(self.buf[:nbytes]),
            meta=self.meta.clone(version) if self.meta else None,
            wire_len=self.wire_len,
            is_header_copy=True,
        )
        copy.ingress_us = self.ingress_us
        l3 = self.l3_offset
        if nbytes >= l3 + Ipv4View.HEADER_LEN and (
            ((self.buf[l3 - 2] << 8) | self.buf[l3 - 1]) == ETHERTYPE_IPV4
        ):
            ip = Ipv4View(copy.buf, l3)
            ip.total_length = nbytes - l3
        rec = self.recorder
        if rec is not None:
            copy.recorder = rec
            rec.record("copy-header", None, self.uid)
        return copy

    def make_nil(self) -> "Packet":
        """A nil packet carrying this packet's metadata (drop intent)."""
        nil = Packet(bytearray(0), meta=self.meta, wire_len=0)
        nil.nil = True
        nil.ingress_us = self.ingress_us
        return nil

    def __len__(self) -> int:
        return len(self.buf)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "nil" if self.nil else f"{len(self.buf)}B"
        return f"<Packet #{self.uid} {kind} meta={self.meta}>"


def build_packet(
    src_ip: str = "10.0.0.1",
    dst_ip: str = "10.0.0.2",
    src_port: int = 10000,
    dst_port: int = 80,
    protocol: int = PROTO_TCP,
    payload: bytes = b"",
    size: Optional[int] = None,
    ttl: int = 64,
    src_mac: str = "02:00:00:00:00:01",
    dst_mac: str = "02:00:00:00:00:02",
    identification: Optional[int] = None,
) -> Packet:
    """Construct a valid Ethernet/IPv4/TCP-or-UDP frame.

    If ``size`` is given, the payload is zero-padded (or the call fails if
    headers alone exceed ``size``).  Checksums are filled in.
    """
    l4_len = TcpView.HEADER_LEN if protocol == PROTO_TCP else UdpView.HEADER_LEN
    header_len = ETH_HEADER_LEN + Ipv4View.HEADER_LEN + l4_len
    if size is not None:
        if size < header_len:
            raise ValueError(
                f"requested size {size} smaller than headers ({header_len} B)"
            )
        pad = size - header_len - len(payload)
        if pad < 0:
            raise ValueError("payload does not fit in requested size")
        payload = payload + bytes(pad)
    buf = bytearray(header_len + len(payload))
    pkt = Packet(buf)

    eth = pkt.eth
    eth.src_mac = src_mac
    eth.dst_mac = dst_mac
    eth.ethertype = ETHERTYPE_IPV4

    ip = Ipv4View(buf, ETH_HEADER_LEN)
    buf[ETH_HEADER_LEN] = 0x45  # version 4, IHL 5
    ip.total_length = len(buf) - ETH_HEADER_LEN
    ip.ttl = ttl
    ip.protocol = protocol
    ip.src_ip = src_ip
    ip.dst_ip = dst_ip
    if identification is None:
        # Auto idents derive from the (monotonic) packet uid and wrap
        # naturally: nothing in the dataplane keys on them.
        ip.identification = pkt.uid & 0xFFFF
    else:
        # Explicit idents are caller-managed keys (repro.check matches
        # outputs per-ident): a wrapped value would silently alias two
        # packets, so fail loudly instead of masking it.
        if not 0 <= identification <= 0xFFFF:
            raise ValueError(
                f"identification {identification} outside the 16-bit field; "
                "explicit idents must be pre-wrapped by the caller"
            )
        ip.identification = identification

    l4_off = ETH_HEADER_LEN + Ipv4View.HEADER_LEN
    if protocol == PROTO_TCP:
        buf[l4_off + 12] = 5 << 4  # data offset = 5 words
        tcp = TcpView(buf, l4_off)
        tcp.src_port = src_port
        tcp.dst_port = dst_port
        tcp.window = 65535
        buf[l4_off + TcpView.HEADER_LEN :] = payload
    elif protocol == PROTO_UDP:
        udp = UdpView(buf, l4_off)
        udp.src_port = src_port
        udp.dst_port = dst_port
        udp.length = UdpView.HEADER_LEN + len(payload)
        buf[l4_off + UdpView.HEADER_LEN :] = payload
    else:
        raise ValueError(f"unsupported L4 protocol: {protocol}")

    ip.update_checksum()
    return pkt
