"""The NF action inspector (§5.4): derive action profiles from NF code.

The paper ships "an inspection tool ... that can inspect NF codes to find
the usage of interfaces that operate on packets, including reading,
writing, dropping and adding/removing bits", so operators can register
new NFs without hand-writing Table 2 rows.  The paper's tool analyses
DPDK packet-struct accesses in C; ours statically analyses Python NF
source with :mod:`ast`, recognising this repository's packet API:

===============================================  =======================
Pattern in NF source                             Derived action
===============================================  =======================
``pkt.ipv4.src_ip`` (load)                       Read(SIP)
``pkt.ipv4.src_ip = ...`` (store)                Write(SIP)
``pkt.tcp.dst_port`` / ``pkt.udp.dst_port``      Read/Write(DPORT)
``pkt.ipv4.ttl`` / ``.dscp``                     Read/Write(TTL/DSCP)
``pkt.payload`` (load)                           Read(PAYLOAD)
``pkt.set_payload(...)``                         Write(PAYLOAD)
``ctx.drop()`` / ``self.drop_packet(...)``       Drop
``pkt.eth.src_mac`` / ``.dst_mac``               Read/Write(SMAC/DMAC)
``insert_ah(pkt, ...)``                          Add(AH_HEADER)
``remove_ah(pkt, ...)``                          Remove(AH_HEADER)
``insert_vlan`` / ``remove_vlan``                Add/Remove(VLAN_HEADER)
``vxlan_encap`` / ``vxlan_decap``                Add/Remove(VXLAN_HEADER)
``pkt.five_tuple()``                             Read(SIP,DIP,SPORT,DPORT)
===============================================  =======================

Augmented assignments (``pkt.ipv4.ttl -= 1``) count as read+write.
"""

from __future__ import annotations

import ast
import inspect as _inspect
import textwrap
from typing import Optional, Set, Union

from ..net.fields import Field
from .actions import Action, ActionProfile, Verb

__all__ = ["inspect_nf_source", "inspect_nf", "InspectionError"]


class InspectionError(ValueError):
    """Raised when NF source cannot be parsed/analysed."""


# Attribute name -> field, for the header-view properties.
_ATTR_FIELDS = {
    "src_ip": Field.SIP,
    "src_ip_int": Field.SIP,
    "dst_ip": Field.DIP,
    "dst_ip_int": Field.DIP,
    "src_port": Field.SPORT,
    "dst_port": Field.DPORT,
    "ttl": Field.TTL,
    "dscp": Field.DSCP,
    "payload": Field.PAYLOAD,
    "src_mac": Field.SMAC,
    "dst_mac": Field.DMAC,
}

# Structural helper call -> (verb, field unit).
_STRUCTURAL_CALLS = {
    "insert_ah": (Verb.ADD, Field.AH_HEADER),
    "remove_ah": (Verb.REMOVE, Field.AH_HEADER),
    "insert_vlan": (Verb.ADD, Field.VLAN_HEADER),
    "remove_vlan": (Verb.REMOVE, Field.VLAN_HEADER),
    "vxlan_encap": (Verb.ADD, Field.VXLAN_HEADER),
    "vxlan_decap": (Verb.REMOVE, Field.VXLAN_HEADER),
}

_FIVE_TUPLE_FIELDS = (Field.SIP, Field.DIP, Field.SPORT, Field.DPORT)


class _ActionCollector(ast.NodeVisitor):
    """Walks an AST and accumulates packet actions."""

    def __init__(self):
        self.actions: Set[Action] = set()

    # -- attribute loads/stores ------------------------------------------
    def _field_of(self, node: ast.Attribute) -> Optional[Field]:
        return _ATTR_FIELDS.get(node.attr)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        field = self._field_of(node)
        if field is not None:
            if isinstance(node.ctx, ast.Load):
                self.actions.add(Action(Verb.READ, field))
            elif isinstance(node.ctx, ast.Store):
                self.actions.add(Action(Verb.WRITE, field))
            elif isinstance(node.ctx, ast.Del):  # pragma: no cover - odd NF
                self.actions.add(Action(Verb.WRITE, field))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # x.ttl -= 1 reads and writes.
        if isinstance(node.target, ast.Attribute):
            field = self._field_of(node.target)
            if field is not None:
                self.actions.add(Action(Verb.READ, field))
                self.actions.add(Action(Verb.WRITE, field))
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = self._callee_name(node)
        if name == "set_payload":
            self.actions.add(Action(Verb.WRITE, Field.PAYLOAD))
        elif name in ("drop", "drop_packet"):
            self.actions.add(Action(Verb.DROP))
        elif name in _STRUCTURAL_CALLS:
            verb, field = _STRUCTURAL_CALLS[name]
            self.actions.add(Action(verb, field))
        elif name == "five_tuple":
            for field in _FIVE_TUPLE_FIELDS:
                self.actions.add(Action(Verb.READ, field))
        self.generic_visit(node)

    @staticmethod
    def _callee_name(node: ast.Call) -> str:
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return ""


def inspect_nf_source(
    source: str,
    name: str,
    deployment_share: Optional[float] = None,
) -> ActionProfile:
    """Analyse NF source text and return its action profile."""
    try:
        tree = ast.parse(textwrap.dedent(source))
    except SyntaxError as exc:
        raise InspectionError(f"cannot parse NF source for {name!r}: {exc}") from exc
    collector = _ActionCollector()
    collector.visit(tree)
    return ActionProfile(name, collector.actions, deployment_share=deployment_share)


def inspect_nf(
    nf: Union[type, object, callable],
    name: Optional[str] = None,
    deployment_share: Optional[float] = None,
) -> ActionProfile:
    """Analyse a live NF class/instance/function.

    For classes and instances, all methods are analysed (an NF may touch
    packets outside ``process``).
    """
    target = nf if _inspect.isclass(nf) or _inspect.isfunction(nf) else type(nf)
    try:
        source = _inspect.getsource(target)
    except (OSError, TypeError) as exc:
        raise InspectionError(f"cannot fetch source of {target!r}: {exc}") from exc
    profile_name = name or getattr(target, "KIND", None) or target.__name__.lower()
    return inspect_nf_source(source, profile_name, deployment_share)
