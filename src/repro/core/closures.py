"""Install-time compilation of service graphs into action closures.

The functional plane re-walks the graph object model for every packet:
stage list, copy-spec scan, per-entry label resolution, dict churn.  For
the batched plane (:mod:`repro.dataplane.batched`) that walk is done
*once per install*: :class:`CompiledGraph` flattens the FT/MO table walk
into per-stage program tuples, and :meth:`CompiledGraph.bind` closes the
program over a concrete set of NF instances so the per-packet inner loop
is a single call on a prebound Python closure.

The closure reproduces ``FunctionalDataplane.process`` semantics exactly
-- same copy order, same pre-stage buffer observation, same deferred nil
propagation, same merge -- which the differential fuzzer's ``--batched``
axis verifies byte-for-byte.  Strictly sequential graphs (the common
case after forced-sequential policies) additionally take a fast path
that skips the version dict entirely; for a single-version graph an NF
drop makes every later stage a nil-skip and the merge return ``None``,
so an early return is observationally identical.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..net.packet import HEADER_COPY_BYTES, Packet
from .graph import ORIGINAL_VERSION, ServiceGraph

__all__ = ["CompiledGraph", "CopyCounters", "BoundClosure"]

#: A bound per-flow runner: one packet in, merged packet or ``None`` out.
BoundClosure = Callable[[Packet], Optional[Packet]]


class CopyCounters:
    """Mutable copy counters shared between a plane and its closures."""

    __slots__ = ("copies_header", "copies_full")

    def __init__(self):
        self.copies_header = 0
        self.copies_full = 0


class CompiledGraph:
    """One service graph flattened into per-stage program tuples.

    Built once at table-install time (:class:`ChainingManager` keeps one
    per MID); holds no NF instances itself, so one compiled graph serves
    every flow and every instance assignment of the deployment.
    """

    __slots__ = ("graph", "sequential", "merge_ops", "program", "chain")

    def __init__(self, graph: ServiceGraph):
        self.graph = graph
        self.sequential = graph.is_sequential
        self.merge_ops = tuple(graph.merge_ops)
        program: List[tuple] = []
        for stage_index, stage in enumerate(graph.stages):
            copies = tuple(
                (spec.version, spec.header_only)
                for spec in graph.copies
                if spec.stage_index == stage_index
            )
            entries = tuple(
                (entry.node.name, entry.version) for entry in stage
            )
            program.append((copies, entries))
        #: Per-stage ``(copies, entries)`` tuples, declaration order.
        self.program: Tuple[tuple, ...] = tuple(program)
        #: NF names in chain order (sequential fast path only).
        self.chain: Tuple[str, ...] = (
            tuple(name for _, entries in self.program for name, _ in entries)
            if self.sequential
            else ()
        )

    def labels(
        self, scale: Mapping[str, int], assignment: Mapping[str, int]
    ) -> Tuple[str, ...]:
        """Instance labels this flow resolves to, in graph order."""
        out = []
        for _, entries in self.program:
            for name, _ in entries:
                if scale.get(name, 1) == 1:
                    out.append(name)
                else:
                    out.append(f"{name}#{assignment.get(name, 0)}")
        return tuple(out)

    def bind(
        self,
        nfs: Mapping[str, object],
        scale: Mapping[str, int],
        assignment: Mapping[str, int],
        counters: Optional[CopyCounters] = None,
    ) -> BoundClosure:
        """Close the program over concrete NF instances for one flow.

        ``nfs`` maps instance labels to NF objects (``handle`` method);
        ``scale``/``assignment`` resolve each graph node to its label
        exactly as the scalar planes do.  The returned closure is the
        whole per-packet hot path: no graph walk, no label resolution,
        no telemetry branches.
        """
        counters = counters if counters is not None else CopyCounters()

        def resolve(name: str):
            if scale.get(name, 1) == 1:
                return nfs[name].handle
            return nfs[f"{name}#{assignment.get(name, 0)}"].handle

        if self.sequential:
            handles = tuple(resolve(name) for name in self.chain)

            def run_sequential(pkt: Packet) -> Optional[Packet]:
                for handle in handles:
                    if handle(pkt).dropped:
                        return None
                return pkt

            return run_sequential

        bound = tuple(
            (
                copies,
                tuple((resolve(name), version) for name, version in entries),
            )
            for copies, entries in self.program
        )
        merge_ops = self.merge_ops
        from ..dataplane.merging import apply_merge_ops

        def run_parallel(pkt: Packet) -> Optional[Packet]:
            versions: Dict[int, Packet] = {ORIGINAL_VERSION: pkt}
            for copies, entries in bound:
                if copies:
                    base = versions[ORIGINAL_VERSION]
                    for version, header_only in copies:
                        if base.nil:
                            versions[version] = base.make_nil()
                        elif header_only:
                            versions[version] = base.header_copy(
                                version, HEADER_COPY_BYTES
                            )
                            counters.copies_header += 1
                        else:
                            versions[version] = base.full_copy(version)
                            counters.copies_full += 1
                newly_dropped = None
                for handle, version in entries:
                    buffer = versions[version]
                    if buffer.nil:
                        continue
                    if handle(buffer).dropped:
                        if newly_dropped is None:
                            newly_dropped = [version]
                        else:
                            newly_dropped.append(version)
                if newly_dropped:
                    for version in newly_dropped:
                        versions[version] = versions[version].make_nil()
            return apply_merge_ops(versions, merge_ops)

        return run_parallel

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "sequential" if self.sequential else "parallel"
        return f"CompiledGraph({self.graph.name!r}, {kind}, {len(self.program)} stages)"
