"""Classification / Forwarding / Merging table generation (§4.4.3, §5).

At the end of graph construction the orchestrator emits three artifacts
(Fig. 4):

* a **Classification Table** (CT) for the classifier: flow match ->
  (MID, total copy count, merging operations, entry actions);
* per-NF **Forwarding Tables** (FT) for the distributed NF runtimes:
  MID -> actions (``distribute`` / ``copy`` / ``output``);
* the merging operations themselves live in the CT and are looked up by
  the merger through the MID.

Version-barrier note: when several NFs share one buffer inside a stage,
the forward/copy actions attached to them are executed once, by
whichever runtime completes the stage's version barrier (the dataplane
enforces this; see :mod:`repro.dataplane.server`).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence

from .graph import ORIGINAL_VERSION, MergeOp, ServiceGraph

__all__ = [
    "FTActionKind",
    "FTAction",
    "MERGER_TARGET",
    "OUTPUT_TARGET",
    "CTEntry",
    "ClassificationTable",
    "ForwardingTable",
    "TableSet",
    "build_tables",
]

#: Symbolic forwarding targets.
MERGER_TARGET = "@merger"
OUTPUT_TARGET = "@output"


class FTActionKind(enum.Enum):
    DISTRIBUTE = "distribute"
    COPY = "copy"
    OUTPUT = "output"
    IGNORE = "ignore"


class FTAction:
    """One forwarding-table action (§5.2's four action types)."""

    __slots__ = ("kind", "version", "targets", "new_version", "header_only")

    def __init__(
        self,
        kind: FTActionKind,
        version: int = ORIGINAL_VERSION,
        targets: Sequence[str] = (),
        new_version: Optional[int] = None,
        header_only: bool = True,
    ):
        self.kind = kind
        self.version = version
        self.targets = list(targets)
        self.new_version = new_version
        self.header_only = header_only
        if kind is FTActionKind.COPY and new_version is None:
            raise ValueError("copy action needs a new version")
        if kind is FTActionKind.DISTRIBUTE and not self.targets:
            raise ValueError("distribute action needs targets")

    def __repr__(self) -> str:
        if self.kind is FTActionKind.DISTRIBUTE:
            return f"distribute(v{self.version}, {self.targets})"
        if self.kind is FTActionKind.COPY:
            mode = "hdr" if self.header_only else "full"
            return f"copy(v{self.version}, v{self.new_version}, {mode})"
        if self.kind is FTActionKind.OUTPUT:
            return f"output(v{self.version})"
        return "ignore"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FTAction) and repr(self) == repr(other)

    def __hash__(self) -> int:
        return hash(repr(self))


class CTEntry:
    """One classification-table row (Fig. 4, left)."""

    __slots__ = ("match", "mid", "total_count", "merge_ops", "actions")

    def __init__(
        self,
        match: object,
        mid: int,
        total_count: int,
        merge_ops: Sequence[MergeOp],
        actions: Sequence[FTAction],
    ):
        self.match = match
        self.mid = mid
        self.total_count = total_count
        self.merge_ops = list(merge_ops)
        self.actions = list(actions)

    def __repr__(self) -> str:
        return (
            f"CTEntry(match={self.match!r}, mid={self.mid}, "
            f"count={self.total_count}, mos={self.merge_ops}, "
            f"actions={self.actions})"
        )


class ClassificationTable:
    """Flow match -> CT entry.

    Three match kinds, in lookup order: exact 5-tuple keys, ordered
    :class:`~repro.core.match.FlowMatch` predicates (first match wins),
    and the wildcard fallback.
    """

    WILDCARD = "*"

    def __init__(self):
        self._exact: Dict[object, CTEntry] = {}
        self._predicates: List[CTEntry] = []
        self._wildcard: Optional[CTEntry] = None

    def install(self, entry: CTEntry) -> None:
        from .match import FlowMatch

        if entry.match == self.WILDCARD:
            self._wildcard = entry
        elif isinstance(entry.match, FlowMatch):
            # Reinstalling the same predicate (a recompiled or degraded
            # graph) replaces the old row in place; first-match-wins
            # lookup would otherwise shadow the update forever.
            for i, existing in enumerate(self._predicates):
                if existing.match == entry.match:
                    self._predicates[i] = entry
                    return
            self._predicates.append(entry)
        else:
            self._exact[entry.match] = entry

    def lookup(self, key: object) -> Optional[CTEntry]:
        entry = self._exact.get(key)
        if entry is not None:
            return entry
        if isinstance(key, tuple) and len(key) == 5:
            for candidate in self._predicates:
                if candidate.match.matches(key):
                    return candidate
        return self._wildcard

    def by_mid(self, mid: int) -> CTEntry:
        for entry in self.entries():
            if entry.mid == mid:
                return entry
        raise KeyError(f"no CT entry with MID {mid}")

    def __len__(self) -> int:
        return (
            len(self._exact) + len(self._predicates)
            + (1 if self._wildcard is not None else 0)
        )

    def entries(self) -> List[CTEntry]:
        entries = list(self._exact.values()) + list(self._predicates)
        if self._wildcard is not None:
            entries.append(self._wildcard)
        return entries


class ForwardingTable:
    """Per-NF runtime table: MID -> action list (§5.2)."""

    def __init__(self, nf_name: str):
        self.nf_name = nf_name
        self._rules: Dict[int, List[FTAction]] = {}

    def install(self, mid: int, actions: Sequence[FTAction]) -> None:
        self._rules[mid] = list(actions)

    def lookup(self, mid: int) -> List[FTAction]:
        try:
            return self._rules[mid]
        except KeyError:
            raise KeyError(
                f"NF {self.nf_name!r} has no forwarding rule for MID {mid}"
            ) from None

    def mids(self) -> List[int]:
        return sorted(self._rules)

    def __repr__(self) -> str:
        return f"ForwardingTable({self.nf_name}, mids={self.mids()})"


class TableSet:
    """Everything the orchestrator installs for one service graph."""

    def __init__(
        self,
        mid: int,
        graph: ServiceGraph,
        ct_entry: CTEntry,
        forwarding: Dict[str, List[FTAction]],
    ):
        self.mid = mid
        self.graph = graph
        self.ct_entry = ct_entry
        self.forwarding = forwarding

    def __repr__(self) -> str:
        return f"TableSet(mid={self.mid}, graph={self.graph.describe()!r})"


def build_tables(
    graph: ServiceGraph, mid: int, match: object = ClassificationTable.WILDCARD
) -> TableSet:
    """Derive the CT entry and all FT rules for one compiled graph."""
    # --- classifier actions: copies for stage-0 versions, then dispatch.
    classifier_actions: List[FTAction] = []
    stage0 = graph.stages[0]
    for copy in sorted(graph.copies, key=lambda c: c.version):
        if copy.stage_index == 0:
            classifier_actions.append(
                FTAction(
                    FTActionKind.COPY,
                    version=ORIGINAL_VERSION,
                    new_version=copy.version,
                    header_only=copy.header_only,
                )
            )
    for version in sorted(stage0.versions()):
        targets = [e.node.name for e in stage0.entries_on(version)]
        classifier_actions.append(
            FTAction(FTActionKind.DISTRIBUTE, version=version, targets=targets)
        )

    ct_entry = CTEntry(
        match=match,
        mid=mid,
        total_count=graph.total_count,
        merge_ops=graph.merge_ops,
        actions=classifier_actions,
    )

    # --- per-NF forwarding rules.
    forwarding: Dict[str, List[FTAction]] = {}
    for index, stage in enumerate(graph.stages):
        next_stage = graph.stages[index + 1] if index + 1 < len(graph.stages) else None
        for entry in stage:
            actions = _actions_for_entry(graph, index, entry, next_stage)
            forwarding[entry.node.name] = actions
    return TableSet(mid, graph, ct_entry, forwarding)


def _actions_for_entry(graph, stage_index, entry, next_stage) -> List[FTAction]:
    version = entry.version
    last_stage = graph.last_stage_of_version(version)
    if stage_index == last_stage:
        if graph.needs_merger:
            return [
                FTAction(
                    FTActionKind.DISTRIBUTE, version=version, targets=[MERGER_TARGET]
                )
            ]
        return [FTAction(FTActionKind.OUTPUT, version=version)]

    # The version continues: forward to the next stage (executed by the
    # barrier completer), creating any versions that start there.
    assert next_stage is not None
    actions: List[FTAction] = []
    for copy in sorted(graph.copies, key=lambda c: c.version):
        if copy.stage_index == stage_index + 1 and version == ORIGINAL_VERSION:
            actions.append(
                FTAction(
                    FTActionKind.COPY,
                    version=ORIGINAL_VERSION,
                    new_version=copy.version,
                    header_only=copy.header_only,
                )
            )
            targets = [e.node.name for e in next_stage.entries_on(copy.version)]
            actions.append(
                FTAction(
                    FTActionKind.DISTRIBUTE, version=copy.version, targets=targets
                )
            )
    targets = [e.node.name for e in next_stage.entries_on(version)]
    if targets:
        actions.append(
            FTAction(FTActionKind.DISTRIBUTE, version=version, targets=targets)
        )
    return actions
