"""NF action model: what an NF does to packets (the rows of Table 2).

An :class:`Action` is a verb applied to a named packet field -- *Read*,
*Write*, *Add*, *Remove* or *Drop* (Table 2's column legend).  An
:class:`ActionProfile` is the set of actions a particular NF type
performs; the orchestrator's dependency analysis (§4.1) works purely on
profiles, never on NF code.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from ..net.fields import Field

__all__ = ["Verb", "Action", "ActionProfile"]


class Verb(enum.Enum):
    """The five packet-operation verbs of Table 2."""

    READ = "read"
    WRITE = "write"
    ADD = "add"
    REMOVE = "remove"
    DROP = "drop"

    def __str__(self) -> str:
        return self.value

    @property
    def is_structural(self) -> bool:
        """Add/Remove change the packet layout rather than field values."""
        return self in (Verb.ADD, Verb.REMOVE)


class Action:
    """One (verb, field) pair, e.g. ``Write(DIP)`` or ``Drop``.

    Drop carries no field (it applies to the whole packet); structural
    verbs name the header unit they add/remove (e.g. ``AH_HEADER``).
    """

    __slots__ = ("verb", "field")

    def __init__(self, verb: Verb, field: Optional[Field] = None):
        if verb is Verb.DROP:
            if field is not None:
                raise ValueError("Drop takes no field")
        elif field is None:
            raise ValueError(f"{verb} requires a field")
        self.verb = verb
        self.field = field

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Action)
            and self.verb is other.verb
            and self.field is other.field
        )

    def __hash__(self) -> int:
        return hash((self.verb, self.field))

    def __repr__(self) -> str:
        if self.verb is Verb.DROP:
            return "Drop"
        return f"{self.verb.value.capitalize()}({self.field})"

    def conflicts_same_field(self, other: "Action") -> bool:
        """True when both actions touch overlapping bytes."""
        if self.field is None or other.field is None:
            return False
        return self.field.overlaps(other.field)


class ActionProfile:
    """The full action set of one NF type.

    Parameters
    ----------
    name:
        NF type name, lower-case (e.g. ``"firewall"``).
    actions:
        Iterable of :class:`Action`.
    deployment_share:
        The NF's share of deployments in enterprise networks (Table 2's
        "%" column); ``None`` when the paper gives no figure.
    """

    def __init__(
        self,
        name: str,
        actions: Iterable[Action],
        deployment_share: Optional[float] = None,
    ):
        if not name:
            raise ValueError("profile needs a name")
        if deployment_share is not None and not 0 <= deployment_share <= 1:
            raise ValueError("deployment share must be a fraction in [0, 1]")
        self.name = name.lower()
        self.actions: FrozenSet[Action] = frozenset(actions)
        self.deployment_share = deployment_share

    # ------------------------------------------------------------ queries
    def fields_with(self, verb: Verb) -> Set[Field]:
        return {a.field for a in self.actions if a.verb is verb and a.field}

    @property
    def reads(self) -> Set[Field]:
        return self.fields_with(Verb.READ)

    @property
    def writes(self) -> Set[Field]:
        return self.fields_with(Verb.WRITE)

    @property
    def adds(self) -> Set[Field]:
        return self.fields_with(Verb.ADD)

    @property
    def removes(self) -> Set[Field]:
        return self.fields_with(Verb.REMOVE)

    @property
    def may_drop(self) -> bool:
        return any(a.verb is Verb.DROP for a in self.actions)

    @property
    def is_read_only(self) -> bool:
        """True when the NF never alters the packet (may still drop)."""
        return not any(
            a.verb in (Verb.WRITE, Verb.ADD, Verb.REMOVE) for a in self.actions
        )

    def action_pairs(self, other: "ActionProfile") -> Iterator[Tuple[Action, Action]]:
        """All (a1, a2) combinations, a1 from self, a2 from ``other``.

        This is the iteration space of Algorithm 1's main loop.
        """
        for a1 in sorted(self.actions, key=repr):
            for a2 in sorted(other.actions, key=repr):
                yield a1, a2

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ActionProfile)
            and self.name == other.name
            and self.actions == other.actions
        )

    def __hash__(self) -> int:
        return hash((self.name, self.actions))

    def __repr__(self) -> str:
        acts = ", ".join(sorted(repr(a) for a in self.actions))
        return f"ActionProfile({self.name}: {acts})"
