"""The NF action table (AT): the orchestrator's copy of Table 2.

Maps NF type names to :class:`~repro.core.actions.ActionProfile`.  The
default table transcribes Table 2 of the paper, including the deployment
percentages derived from [Sekar et al. 2012] that weight the §4.3
parallelizability statistics (53.8% / 41.5%).

New NFs are accommodated exactly as §4.3 / §5.4 describe: operators
"generate an action profile of the NF manually or with the analysis tool
provided by NFP, and register it" -- see :meth:`ActionTable.register` and
:mod:`repro.core.inspector`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..net.fields import Field
from .actions import Action, ActionProfile, Verb

__all__ = ["ActionTable", "default_action_table", "TABLE2_ROWS"]


def _acts(
    reads: Tuple[Field, ...] = (),
    writes: Tuple[Field, ...] = (),
    adds: Tuple[Field, ...] = (),
    removes: Tuple[Field, ...] = (),
    drop: bool = False,
) -> List[Action]:
    actions = [Action(Verb.READ, f) for f in reads]
    actions += [Action(Verb.WRITE, f) for f in writes]
    actions += [Action(Verb.ADD, f) for f in adds]
    actions += [Action(Verb.REMOVE, f) for f in removes]
    if drop:
        actions.append(Action(Verb.DROP))
    return actions


# Table 2, transcribed.  (R = read, W = write columns SIP DIP SPORT DPORT
# Payload, plus the Add/Rm and Drop booleans and the deployment "%".)
TABLE2_ROWS: Dict[str, Tuple[List[Action], Optional[float]]] = {
    # Firewall (iptables, 26%): reads the 4-tuple, may drop.
    "firewall": (
        _acts(reads=(Field.SIP, Field.DIP, Field.SPORT, Field.DPORT), drop=True),
        0.26,
    ),
    # NIDS (NIDS cluster, 20%): reads headers + payload.
    "nids": (
        _acts(reads=(Field.SIP, Field.DIP, Field.SPORT, Field.DPORT, Field.PAYLOAD)),
        0.20,
    ),
    # Gateway (Cisco MGX, 19%): reads src/dst addresses.
    "gateway": (_acts(reads=(Field.SIP, Field.DIP)), 0.19),
    # Load balancer (F5/A10, 10%): rewrites addresses, reads ports.
    "loadbalancer": (
        _acts(
            reads=(Field.SIP, Field.DIP, Field.SPORT, Field.DPORT),
            writes=(Field.SIP, Field.DIP),
        ),
        0.10,
    ),
    # Caching (nginx, 10%): reads dst address, dst port and payload.
    "caching": (_acts(reads=(Field.DIP, Field.DPORT, Field.PAYLOAD)), 0.10),
    # VPN (OpenVPN, 7%): reads addresses, encrypts payload, adds a header.
    "vpn": (
        _acts(
            reads=(Field.SIP, Field.DIP, Field.PAYLOAD),
            writes=(Field.PAYLOAD,),
            adds=(Field.AH_HEADER,),
        ),
        0.07,
    ),
    # NAT (iptables, no % listed): rewrites the whole 4-tuple.
    "nat": (
        _acts(
            reads=(Field.SIP, Field.DIP, Field.SPORT, Field.DPORT),
            writes=(Field.SIP, Field.DIP, Field.SPORT, Field.DPORT),
        ),
        None,
    ),
    # Proxy (squid): rewrites dst address and payload.
    "proxy": (
        _acts(
            reads=(Field.DIP, Field.PAYLOAD),
            writes=(Field.DIP, Field.PAYLOAD),
        ),
        None,
    ),
    # Compression (Cisco IOS): rewrites payload.
    "compression": (
        _acts(reads=(Field.PAYLOAD,), writes=(Field.PAYLOAD,)),
        None,
    ),
    # Traffic shaper (linux tc): delays packets, touches nothing.
    "shaper": (_acts(), None),
    # Monitor (NetFlow): reads the 4-tuple, keeps counters.
    "monitor": (
        _acts(reads=(Field.SIP, Field.DIP, Field.SPORT, Field.DPORT)),
        None,
    ),
    # The paper's prototype also implements these two (§6.1); profile-wise
    # the L3 forwarder reads DIP (LPM), decrements TTL (a read-modify-
    # write) and drops expired or unroutable packets, while the IDS
    # matches the NIDS profile.  The TTL read and the drop were found by
    # the profile-audit oracle: the original transcription omitted both.
    "forwarder": (
        _acts(reads=(Field.DIP, Field.TTL), writes=(Field.TTL,), drop=True),
        None,
    ),
    "ids": (
        _acts(reads=(Field.SIP, Field.DIP, Field.SPORT, Field.DPORT, Field.PAYLOAD)),
        None,
    ),
    # IPS = IDS that drops on a match -- the NF of §3's Priority example.
    "ips": (
        _acts(
            reads=(Field.SIP, Field.DIP, Field.SPORT, Field.DPORT, Field.PAYLOAD),
            drop=True,
        ),
        None,
    ),
    # Stateful connection-tracking firewall: same externally visible
    # actions as the stateless row (reads the 4-tuple, may drop).
    "conntrack-firewall": (
        _acts(reads=(Field.SIP, Field.DIP, Field.SPORT, Field.DPORT), drop=True),
        None,
    ),
    # The VPN's far end: strips the AH and decrypts the payload.
    "vpn-decrypt": (
        _acts(
            reads=(Field.SIP, Field.DIP, Field.PAYLOAD),
            writes=(Field.PAYLOAD,),
            removes=(Field.AH_HEADER,),
            drop=True,
        ),
        None,
    ),
    # ---- Lemur-module expansion (not in Table 2; excluded from the
    # §4.3 pair statistics, which pin TABLE2_NF_SET).  Their disjoint
    # L2/tunnel footprints widen compiled graphs.
    "macswap": (
        _acts(reads=(Field.SMAC, Field.DMAC), writes=(Field.SMAC, Field.DMAC)),
        None,
    ),
    "vlan-push": (_acts(adds=(Field.VLAN_HEADER,)), None),
    "vlan-pop": (_acts(removes=(Field.VLAN_HEADER,)), None),
    "vxlan-encap": (_acts(adds=(Field.VXLAN_HEADER,)), None),
    "vxlan-decap": (
        _acts(reads=(Field.DPORT,), removes=(Field.VXLAN_HEADER,)),
        None,
    ),
    "dedup": (
        _acts(reads=(Field.PAYLOAD,), writes=(Field.DSCP,)),
        None,
    ),
}


class ActionTable:
    """Registry of NF action profiles (the orchestrator's "AT")."""

    def __init__(self):
        self._profiles: Dict[str, ActionProfile] = {}

    def register(self, profile: ActionProfile, replace: bool = False) -> None:
        """Add a profile; refuses to silently overwrite unless ``replace``."""
        if profile.name in self._profiles and not replace:
            raise ValueError(f"profile {profile.name!r} already registered")
        self._profiles[profile.name] = profile

    def fetch(self, nf_name: str) -> ActionProfile:
        """Algorithm 1's ``fetchAction(AT, NF)``."""
        try:
            return self._profiles[nf_name.lower()]
        except KeyError:
            raise KeyError(
                f"NF {nf_name!r} has no registered action profile; register "
                "one manually or via repro.core.inspector"
            ) from None

    def __contains__(self, nf_name: str) -> bool:
        return nf_name.lower() in self._profiles

    def __iter__(self) -> Iterator[ActionProfile]:
        return iter(self._profiles.values())

    def __len__(self) -> int:
        return len(self._profiles)

    def names(self) -> List[str]:
        return sorted(self._profiles)

    def weighted_profiles(self) -> List[Tuple[ActionProfile, float]]:
        """Profiles with normalised deployment weights.

        NFs without a Table 2 percentage share the residual probability
        mass equally, so the pair statistics cover the whole table.
        """
        with_share = [p for p in self if p.deployment_share is not None]
        without = [p for p in self if p.deployment_share is None]
        assigned = sum(p.deployment_share for p in with_share)
        if assigned > 1.0 + 1e-9:
            raise ValueError("deployment shares sum to more than 1")
        residual = max(0.0, 1.0 - assigned)
        each = residual / len(without) if without else 0.0
        weighted = [(p, p.deployment_share) for p in with_share]
        weighted += [(p, each) for p in without]
        total = sum(w for _, w in weighted)
        return [(p, w / total) for p, w in weighted if total > 0]


def default_action_table() -> ActionTable:
    """A fresh :class:`ActionTable` pre-loaded with Table 2."""
    table = ActionTable()
    for name, (actions, share) in TABLE2_ROWS.items():
        table.register(ActionProfile(name, actions, deployment_share=share))
    return table
