"""NFP policy specification scheme (§3).

Three rule types express chaining intents:

* ``Order(NF1, before, NF2)`` -- sequential intent; the orchestrator
  still probes the pair for parallelism and upgrades it when safe.
* ``Priority(NF1 > NF2)`` -- parallel intent with NF1's result winning
  on conflicting actions.
* ``Position(NF, first/last)`` -- pin an NF to the head/tail of the
  graph.

A :class:`Policy` is an ordered collection of rules over NF *instances*.
``Policy.from_chain`` converts a traditional sequential chain description
into Order rules, which is how NFP stays backward compatible ("we are
able to automatically transfer it to NFP policies", §3).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

__all__ = [
    "Position",
    "OrderRule",
    "PriorityRule",
    "PositionRule",
    "Rule",
    "Policy",
    "NFSpec",
]


class Position(enum.Enum):
    FIRST = "first"
    LAST = "last"

    @classmethod
    def parse(cls, token: str) -> "Position":
        token = token.strip().lower()
        for member in cls:
            if member.value == token:
                return member
        raise ValueError(f"position must be 'first' or 'last', got {token!r}")


class NFSpec:
    """Declares an NF instance: a unique name bound to an NF type.

    ``name`` identifies the instance inside the policy (e.g. ``"fw1"``);
    ``kind`` selects the action profile / implementation (``"firewall"``).
    A bare kind used as a name is the common single-instance case.
    """

    __slots__ = ("name", "kind")

    def __init__(self, name: str, kind: Optional[str] = None):
        if not name:
            raise ValueError("NF instance needs a name")
        self.name = name
        self.kind = (kind or name).lower()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NFSpec)
            and self.name == other.name
            and self.kind == other.kind
        )

    def __hash__(self) -> int:
        return hash((self.name, self.kind))

    def __repr__(self) -> str:
        if self.name == self.kind:
            return f"NFSpec({self.name})"
        return f"NFSpec({self.name}:{self.kind})"


class OrderRule:
    """``Order(before, before_keyword, after)``: execute ``before`` first."""

    __slots__ = ("before", "after")

    def __init__(self, before: str, after: str):
        if before == after:
            raise ValueError(f"Order rule cannot relate {before!r} to itself")
        self.before = before
        self.after = after

    def __repr__(self) -> str:
        return f"Order({self.before}, before, {self.after})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, OrderRule)
            and (self.before, self.after) == (other.before, other.after)
        )

    def __hash__(self) -> int:
        return hash(("order", self.before, self.after))


class PriorityRule:
    """``Priority(high > low)``: run in parallel, ``high`` wins conflicts."""

    __slots__ = ("high", "low")

    def __init__(self, high: str, low: str):
        if high == low:
            raise ValueError(f"Priority rule cannot relate {high!r} to itself")
        self.high = high
        self.low = low

    def __repr__(self) -> str:
        return f"Priority({self.high} > {self.low})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PriorityRule)
            and (self.high, self.low) == (other.high, other.low)
        )

    def __hash__(self) -> int:
        return hash(("priority", self.high, self.low))


class PositionRule:
    """``Position(nf, first/last)``: pin an NF to an end of the graph."""

    __slots__ = ("nf", "position")

    def __init__(self, nf: str, position: Union[Position, str]):
        self.nf = nf
        self.position = (
            position if isinstance(position, Position) else Position.parse(position)
        )

    def __repr__(self) -> str:
        return f"Position({self.nf}, {self.position.value})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PositionRule)
            and (self.nf, self.position) == (other.nf, other.position)
        )

    def __hash__(self) -> int:
        return hash(("position", self.nf, self.position))


Rule = Union[OrderRule, PriorityRule, PositionRule]


class Policy:
    """An ordered set of NFP rules plus the NF instances they mention.

    Instances can be declared explicitly (giving a name *and* type) or
    implicitly by mentioning a type name in a rule.
    """

    def __init__(
        self,
        rules: Iterable[Rule] = (),
        instances: Iterable[NFSpec] = (),
        name: str = "policy",
    ):
        self.name = name
        self.rules: List[Rule] = []
        self._instances: Dict[str, NFSpec] = {}
        for spec in instances:
            self.declare(spec)
        for rule in rules:
            self.add(rule)

    # ------------------------------------------------------------ building
    def declare(self, spec: NFSpec) -> "Policy":
        existing = self._instances.get(spec.name)
        if existing is not None and existing.kind != spec.kind:
            raise ValueError(
                f"instance {spec.name!r} redeclared with kind {spec.kind!r} "
                f"(was {existing.kind!r})"
            )
        self._instances[spec.name] = spec
        return self

    def _touch(self, name: str) -> None:
        if name not in self._instances:
            self._instances[name] = NFSpec(name)

    def add(self, rule: Rule) -> "Policy":
        """Append a rule, implicitly declaring any new NF names."""
        if isinstance(rule, OrderRule):
            self._touch(rule.before)
            self._touch(rule.after)
        elif isinstance(rule, PriorityRule):
            self._touch(rule.high)
            self._touch(rule.low)
        elif isinstance(rule, PositionRule):
            self._touch(rule.nf)
        else:
            raise TypeError(f"not an NFP rule: {rule!r}")
        self.rules.append(rule)
        return self

    def order(self, before: str, after: str) -> "Policy":
        return self.add(OrderRule(before, after))

    def priority(self, high: str, low: str) -> "Policy":
        return self.add(PriorityRule(high, low))

    def position(self, nf: str, where: Union[Position, str]) -> "Policy":
        return self.add(PositionRule(nf, where))

    @classmethod
    def from_chain(
        cls, chain: Sequence[Union[str, NFSpec]], name: str = "chain"
    ) -> "Policy":
        """Convert a traditional sequential chain into Order rules.

        ``Assign(NF, i)`` positions become ``Order`` rules for adjacent
        NFs (Table 1, rows 1-2), letting the orchestrator hunt for
        parallelism within the chain.
        """
        specs = [nf if isinstance(nf, NFSpec) else NFSpec(nf) for nf in chain]
        if len({s.name for s in specs}) != len(specs):
            raise ValueError("chain contains duplicate instance names")
        policy = cls(instances=specs, name=name)
        for left, right in zip(specs, specs[1:]):
            policy.order(left.name, right.name)
        return policy

    # ------------------------------------------------------------- queries
    @property
    def instances(self) -> Dict[str, NFSpec]:
        return dict(self._instances)

    def nf_names(self) -> Set[str]:
        return set(self._instances)

    def kind_of(self, name: str) -> str:
        return self._instances[name].kind

    def order_rules(self) -> Iterator[OrderRule]:
        return (r for r in self.rules if isinstance(r, OrderRule))

    def priority_rules(self) -> Iterator[PriorityRule]:
        return (r for r in self.rules if isinstance(r, PriorityRule))

    def position_rules(self) -> Iterator[PositionRule]:
        return (r for r in self.rules if isinstance(r, PositionRule))

    def __len__(self) -> int:
        return len(self.rules)

    def __repr__(self) -> str:
        return f"Policy({self.name!r}, {len(self.rules)} rules, {len(self._instances)} NFs)"
