"""Textual policy language: parse the paper's rule syntax.

Operators write policies in exactly the notation of §3 / Table 1::

    # north-south chain of Fig. 13
    NF vpn: vpn
    NF mon: monitor
    Order(vpn, before, mon)
    Order(mon, before, firewall)
    Order(firewall, before, loadbalancer)

    Position(vpn, first)
    Priority(ips > firewall)

Grammar (case-insensitive keywords, ``#`` comments):

* ``NF <name>: <kind>`` -- declare an instance (optional; a bare name
  used in a rule implicitly declares an instance whose kind is the name).
* ``Order(<nf>, before, <nf>)``
* ``Priority(<nf> > <nf>)``
* ``Position(<nf>, first|last)``
* ``Assign(<nf>, <index>)`` -- the *traditional* description (Table 1
  row 1); consecutive indices are translated into Order rules.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .policy import NFSpec, OrderRule, Policy, PositionRule, PriorityRule

__all__ = ["parse_policy", "PolicySyntaxError", "format_policy"]


class PolicySyntaxError(ValueError):
    """A malformed policy line, annotated with its line number."""

    def __init__(self, lineno: int, line: str, reason: str):
        super().__init__(f"line {lineno}: {reason}: {line!r}")
        self.lineno = lineno
        self.line = line
        self.reason = reason


_NF_DECL = re.compile(r"^nf\s+(?P<name>[\w.-]+)\s*:\s*(?P<kind>[\w.-]+)$", re.I)
_ORDER = re.compile(
    r"^order\s*\(\s*(?P<a>[\w.-]+)\s*,\s*before\s*,\s*(?P<b>[\w.-]+)\s*\)$", re.I
)
_PRIORITY = re.compile(
    r"^priority\s*\(\s*(?P<a>[\w.-]+)\s*>\s*(?P<b>[\w.-]+)\s*\)$", re.I
)
_POSITION = re.compile(
    r"^position\s*\(\s*(?P<nf>[\w.-]+)\s*,\s*(?P<pos>first|last)\s*\)$", re.I
)
_ASSIGN = re.compile(
    r"^assign\s*\(\s*(?P<nf>[\w.-]+)\s*,\s*(?P<idx>\d+)\s*\)$", re.I
)


def parse_policy(text: str, name: str = "policy") -> Policy:
    """Parse policy text into a :class:`~repro.core.policy.Policy`.

    ``Assign`` rules (the traditional chain description) are collected
    and translated to Order rules over consecutive positions, preserving
    NFP's backward compatibility with sequential specifications.
    """
    policy = Policy(name=name)
    assigns: List[Tuple[int, str]] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        match = _NF_DECL.match(line)
        if match:
            policy.declare(NFSpec(match["name"], match["kind"]))
            continue

        match = _ORDER.match(line)
        if match:
            try:
                policy.add(OrderRule(match["a"], match["b"]))
            except ValueError as exc:
                raise PolicySyntaxError(lineno, raw, str(exc)) from None
            continue

        match = _PRIORITY.match(line)
        if match:
            try:
                policy.add(PriorityRule(match["a"], match["b"]))
            except ValueError as exc:
                raise PolicySyntaxError(lineno, raw, str(exc)) from None
            continue

        match = _POSITION.match(line)
        if match:
            policy.add(PositionRule(match["nf"], match["pos"]))
            continue

        match = _ASSIGN.match(line)
        if match:
            assigns.append((int(match["idx"]), match["nf"]))
            continue

        raise PolicySyntaxError(lineno, raw, "unrecognised rule")

    if assigns:
        _translate_assigns(policy, assigns)
    return policy


def _translate_assigns(policy: Policy, assigns: List[Tuple[int, str]]) -> None:
    """Turn ``Assign(NF, i)`` positions into adjacent Order rules."""
    by_index: Dict[int, str] = {}
    for idx, nf in assigns:
        if idx in by_index:
            raise ValueError(
                f"Assign index {idx} used by both {by_index[idx]!r} and {nf!r}"
            )
        by_index[idx] = nf
    ordered = [by_index[i] for i in sorted(by_index)]
    for left, right in zip(ordered, ordered[1:]):
        policy.add(OrderRule(left, right))


def format_policy(policy: Policy) -> str:
    """Render a policy back into the textual syntax (round-trippable)."""
    lines: List[str] = []
    for spec in policy.instances.values():
        if spec.name != spec.kind:
            lines.append(f"NF {spec.name}: {spec.kind}")
    for rule in policy.rules:
        if isinstance(rule, OrderRule):
            lines.append(f"Order({rule.before}, before, {rule.after})")
        elif isinstance(rule, PriorityRule):
            lines.append(f"Priority({rule.high} > {rule.low})")
        elif isinstance(rule, PositionRule):
            lines.append(f"Position({rule.nf}, {rule.position.value})")
    return "\n".join(lines)
