"""Action dependency analysis: Table 3 and Algorithm 1 (§4.1-§4.3).

Given ``Order(NF1, before, NF2)``, the orchestrator decides whether the
two NFs can run in parallel and whether doing so requires a packet copy,
using the *result correctness principle*: parallel execution must yield
the same processed packet and NF internal state as sequential execution.

The dependency table (DT) below encodes Table 3, one cell per ordered
verb pair.  Two cells -- (Read, Write) and (Write, Write) -- are
field-sensitive: they need a copy only when both actions touch the same
field (OP#1 *Dirty Memory Reusing*); Algorithm 1 special-cases them
before consulting the DT, exactly as in the paper's pseudocode.

Cell rationale (reconstructed from the paper's prose and its Fig. 13
outputs):

* ``(Write, Read)`` is never parallelizable: the operator intends NF1's
  modification to reach NF2.
* ``(Add/Rm, *)`` is never parallelizable: a structural change by NF1 is
  meant to be visible downstream (e.g. a VPN header must be present when
  later NFs run).
* ``(Drop, Write)``/``(Drop, Add/Rm)`` are not parallelizable: a writer
  (e.g. a NAT allocating bindings) must not act on a packet an upstream
  NF would have dropped -- this is what keeps the Fig. 13 north-south
  load balancer sequential after the firewall.
* ``(Drop, Read)`` *is* parallelizable without copy: the paper
  explicitly parallelizes Firewall and Monitor (Fig. 1, Fig. 13) and
  resolves the drop through nil packets at the merger.
* ``(Read, Add/Rm)`` / ``(Write, Add/Rm)`` parallelize with a copy: the
  structural change happens on NF2's own version and the merger splices
  the added header into the final packet.  This only holds for units the
  field accessors parse *through* (AH, the VLAN tag); add/remove of an
  encapsulating outer stack (VXLAN) re-homes every field referent and is
  never parallelizable, in either direction (see
  :attr:`repro.net.fields.Field.is_encapsulating`).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from .actions import Action, ActionProfile, Verb

__all__ = [
    "Parallelism",
    "DependencyTable",
    "ParallelismResult",
    "identify_parallelism",
    "can_share_buffer",
    "DEFAULT_DEPENDENCY_TABLE",
]


class Parallelism(enum.Enum):
    """Outcome classes of Table 3."""

    NOT_PARALLELIZABLE = "not_parallelizable"
    NO_COPY = "parallelizable_no_copy"
    WITH_COPY = "parallelizable_with_copy"


_NC = Parallelism.NO_COPY
_C = Parallelism.WITH_COPY
_NP = Parallelism.NOT_PARALLELIZABLE

#: Sentinel for the two field-sensitive cells Algorithm 1 handles inline.
_FIELD_SENSITIVE = "field-sensitive"


class DependencyTable:
    """Table 3: ordered verb pair -> parallelizability class."""

    def __init__(self, overrides: Optional[Dict[Tuple[Verb, Verb], Parallelism]] = None):
        self._cells: Dict[Tuple[Verb, Verb], object] = {
            # NF1 = READ
            (Verb.READ, Verb.READ): _NC,
            (Verb.READ, Verb.WRITE): _FIELD_SENSITIVE,
            (Verb.READ, Verb.ADD): _C,
            (Verb.READ, Verb.REMOVE): _C,
            (Verb.READ, Verb.DROP): _NC,
            # NF1 = WRITE
            (Verb.WRITE, Verb.READ): _NP,
            (Verb.WRITE, Verb.WRITE): _FIELD_SENSITIVE,
            (Verb.WRITE, Verb.ADD): _C,
            (Verb.WRITE, Verb.REMOVE): _C,
            (Verb.WRITE, Verb.DROP): _NC,
            # NF1 = ADD
            (Verb.ADD, Verb.READ): _NP,
            (Verb.ADD, Verb.WRITE): _NP,
            (Verb.ADD, Verb.ADD): _NP,
            (Verb.ADD, Verb.REMOVE): _NP,
            (Verb.ADD, Verb.DROP): _NP,
            # NF1 = REMOVE
            (Verb.REMOVE, Verb.READ): _NP,
            (Verb.REMOVE, Verb.WRITE): _NP,
            (Verb.REMOVE, Verb.ADD): _NP,
            (Verb.REMOVE, Verb.REMOVE): _NP,
            (Verb.REMOVE, Verb.DROP): _NP,
            # NF1 = DROP
            (Verb.DROP, Verb.READ): _NC,
            (Verb.DROP, Verb.WRITE): _NP,
            (Verb.DROP, Verb.ADD): _NP,
            (Verb.DROP, Verb.REMOVE): _NP,
            (Verb.DROP, Verb.DROP): _NC,
        }
        if overrides:
            for pair, value in overrides.items():
                if pair not in self._cells:
                    raise KeyError(f"unknown DT cell: {pair}")
                self._cells[pair] = value

    def fetch(self, a1: Action, a2: Action) -> Parallelism:
        """Algorithm 1's ``fetchParallelism(DT, (a1, a2))``.

        Must not be called on the field-sensitive cells -- the algorithm
        resolves those inline (lines 6-9 of the pseudocode).
        """
        cell = self._cells[(a1.verb, a2.verb)]
        if cell is _FIELD_SENSITIVE:
            raise ValueError(
                f"cell ({a1.verb}, {a2.verb}) is field-sensitive; "
                "Algorithm 1 must resolve it inline"
            )
        return cell  # type: ignore[return-value]

    def is_field_sensitive(self, a1: Action, a2: Action) -> bool:
        return self._cells[(a1.verb, a2.verb)] is _FIELD_SENSITIVE


#: The default Table 3 used throughout the orchestrator.
DEFAULT_DEPENDENCY_TABLE = DependencyTable()


class ParallelismResult:
    """Output of Algorithm 1.

    Attributes
    ----------
    parallelizable:
        The ``p`` flag: can the two NFs run in parallel at all?
    conflicting_actions:
        The ``ca`` list: action pairs that force NF2 onto its own packet
        copy.  Non-empty iff a copy is needed.
    """

    __slots__ = ("parallelizable", "conflicting_actions")

    def __init__(
        self,
        parallelizable: bool,
        conflicting_actions: Optional[List[Tuple[Action, Action]]] = None,
    ):
        self.parallelizable = parallelizable
        self.conflicting_actions = list(conflicting_actions or [])

    @property
    def needs_copy(self) -> bool:
        return self.parallelizable and bool(self.conflicting_actions)

    @property
    def classification(self) -> Parallelism:
        if not self.parallelizable:
            return Parallelism.NOT_PARALLELIZABLE
        return Parallelism.WITH_COPY if self.conflicting_actions else Parallelism.NO_COPY

    def __repr__(self) -> str:
        return (
            f"ParallelismResult({self.classification.value}, "
            f"conflicts={self.conflicting_actions!r})"
        )


def identify_parallelism(
    nf1: ActionProfile,
    nf2: ActionProfile,
    table: DependencyTable = DEFAULT_DEPENDENCY_TABLE,
) -> ParallelismResult:
    """Algorithm 1: NF Parallelism Identification.

    Input is the ordered pair from ``Order(NF1, before, NF2)`` (or the
    two NFs of a ``Priority`` rule, §4.3); output is whether they are
    parallelizable and which actions conflict (requiring packet copying).
    """
    conflicting: List[Tuple[Action, Action]] = []
    for a1, a2 in nf1.action_pairs(nf2):
        # Encapsulation guard: adding/removing an outer stack (VXLAN)
        # re-homes every field accessor, so no copy/merge discipline can
        # reconcile it with *any* concurrent action -- not even the
        # (Read, Add)-with-copy cell that works for offset-transparent
        # units like AH or a VLAN tag.
        if _encapsulation_conflict(a1, a2):
            return ParallelismResult(False)
        # Lines 6-9: read-write / write-write are decided by field overlap
        # (OP#1, Dirty Memory Reusing).  A table override of these cells
        # disables the optimisation (used by the ablation benchmarks).
        if table.is_field_sensitive(a1, a2):
            if a1.conflicts_same_field(a2):
                conflicting.append((a1, a2))
            continue
        outcome = table.fetch(a1, a2)
        if outcome is Parallelism.NOT_PARALLELIZABLE:
            return ParallelismResult(False)
        if outcome is Parallelism.WITH_COPY:
            conflicting.append((a1, a2))
        # NO_COPY: continue.
    return ParallelismResult(True, conflicting)


def _encapsulation_conflict(a1: Action, a2: Action) -> bool:
    return any(
        a.verb.is_structural and a.field is not None and a.field.is_encapsulating
        for a in (a1, a2)
    )


def can_share_buffer(
    nf_a: ActionProfile,
    nf_b: ActionProfile,
    table: DependencyTable = DEFAULT_DEPENDENCY_TABLE,
) -> bool:
    """Whether two *parallel* NFs may operate on the same packet copy.

    Parallel NFs on one buffer race in both directions, so sharing is
    safe only when Algorithm 1 reports "parallelizable without copy" for
    both orderings (this is the buffer-assignment side of OP#1).
    """
    forward = identify_parallelism(nf_a, nf_b, table)
    backward = identify_parallelism(nf_b, nf_a, table)
    return (
        forward.parallelizable
        and backward.parallelizable
        and not forward.conflicting_actions
        and not backward.conflicting_actions
    )
