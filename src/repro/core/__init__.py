"""NFP's primary contribution: policies, dependency analysis, compiler.

Public surface:

* Policy language: :class:`Policy`, rule classes, :func:`parse_policy`.
* Action model: :class:`Action`, :class:`ActionProfile`,
  :class:`ActionTable` (Table 2), :func:`inspect_nf` (§5.4 tool).
* Dependency analysis: :class:`DependencyTable` (Table 3),
  :func:`identify_parallelism` (Algorithm 1).
* Compilation: :class:`NFPCompiler`, :class:`ServiceGraph`,
  :func:`build_tables`, :class:`Orchestrator`.
* Extensions: :func:`check_policy` (conflict detection),
  :func:`partition_graph` (cross-server sketch).
"""

from .actions import Action, ActionProfile, Verb
from .action_table import ActionTable, TABLE2_ROWS, default_action_table
from .dependency import (
    DEFAULT_DEPENDENCY_TABLE,
    DependencyTable,
    Parallelism,
    ParallelismResult,
    can_share_buffer,
    identify_parallelism,
)
from .policy import (
    NFSpec,
    OrderRule,
    Policy,
    Position,
    PositionRule,
    PriorityRule,
)
from .policy_dsl import PolicySyntaxError, format_policy, parse_policy
from .conflicts import ConflictReport, PolicyConflictError, check_policy
from .graph import (
    ORIGINAL_VERSION,
    CopySpec,
    MergeOp,
    MergeOpKind,
    NFNode,
    ServiceGraph,
    Stage,
    StageEntry,
)
from .closures import CompiledGraph, CopyCounters
from .compiler import CompilationResult, CompileError, NFPCompiler, compile_policy
from .tables import (
    MERGER_TARGET,
    OUTPUT_TARGET,
    ClassificationTable,
    CTEntry,
    ForwardingTable,
    FTAction,
    FTActionKind,
    TableSet,
    build_tables,
)
from .inspector import InspectionError, inspect_nf, inspect_nf_source
from .match import FlowMatch
from .profiles_io import (
    load_action_table,
    profile_from_dict,
    profile_to_dict,
    save_action_table,
)
from .micrograph import (
    Decomposition,
    Micrograph,
    MicrographKind,
    PairIR,
    PositionIR,
    decompose,
)
from .resolution import ResolutionReport, resolve_policy
from .scaling import ScalePlan, plan_scale_out
from .orchestrator import DeployedGraph, Orchestrator
from .partition import PartitionError, ServerSlice, partition_graph

__all__ = [
    "Action",
    "ActionProfile",
    "Verb",
    "ActionTable",
    "TABLE2_ROWS",
    "default_action_table",
    "DependencyTable",
    "DEFAULT_DEPENDENCY_TABLE",
    "Parallelism",
    "ParallelismResult",
    "identify_parallelism",
    "can_share_buffer",
    "NFSpec",
    "Policy",
    "OrderRule",
    "PriorityRule",
    "PositionRule",
    "Position",
    "parse_policy",
    "format_policy",
    "PolicySyntaxError",
    "check_policy",
    "ConflictReport",
    "PolicyConflictError",
    "ServiceGraph",
    "Stage",
    "StageEntry",
    "NFNode",
    "CopySpec",
    "MergeOp",
    "MergeOpKind",
    "ORIGINAL_VERSION",
    "NFPCompiler",
    "CompilationResult",
    "CompileError",
    "compile_policy",
    "CompiledGraph",
    "CopyCounters",
    "build_tables",
    "TableSet",
    "ClassificationTable",
    "CTEntry",
    "ForwardingTable",
    "FTAction",
    "FTActionKind",
    "MERGER_TARGET",
    "OUTPUT_TARGET",
    "inspect_nf",
    "inspect_nf_source",
    "InspectionError",
    "FlowMatch",
    "profile_to_dict",
    "profile_from_dict",
    "save_action_table",
    "load_action_table",
    "resolve_policy",
    "decompose",
    "Decomposition",
    "Micrograph",
    "MicrographKind",
    "PairIR",
    "PositionIR",
    "ResolutionReport",
    "plan_scale_out",
    "ScalePlan",
    "Orchestrator",
    "DeployedGraph",
    "partition_graph",
    "ServerSlice",
    "PartitionError",
]
