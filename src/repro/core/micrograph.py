"""Intermediate representations and micrographs (§4.4.1-§4.4.2, Fig. 2).

The compiler in :mod:`repro.core.compiler` produces the final graph via
closure + layering; this module exposes the paper's *intermediate*
artifacts for inspection and tooling, exactly as Fig. 2 draws them:

1. **Transform** (§4.4.1): every rule becomes an IR block --
   :class:`PositionIR` for Position rules (``string NF_name; int
   position``) and :class:`PairIR` for Order/Priority rules (``high/low
   names; bool is_parallelizable; List<Action> conflicting_actions``).
2. **Compile** (§4.4.2): IRs with overlapping NFs concatenate into
   micrographs, classified as *Single NF* (pinned or free NFs), *Tree*
   (contains an unparallelizable pair), or *Plain Parallelism* (every
   pair parallelizable).

``decompose`` returns both, and tests assert the decomposition is
consistent with the compiled final graph.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .action_table import ActionTable, default_action_table
from .dependency import (
    DEFAULT_DEPENDENCY_TABLE,
    DependencyTable,
    identify_parallelism,
)
from .policy import Policy, Position

__all__ = [
    "PositionIR",
    "PairIR",
    "MicrographKind",
    "Micrograph",
    "Decomposition",
    "decompose",
]


@dataclass
class PositionIR:
    """Fig. 2's left IR block: one pinned NF."""

    nf: str
    position: Position


@dataclass
class PairIR:
    """Fig. 2's right IR block: the relationship between two NFs.

    ``high`` is the merge-priority winner (the later NF of an Order
    rule, or the Priority rule's left side).
    """

    high: str
    low: str
    is_parallelizable: bool
    conflicting_actions: List[Tuple] = field(default_factory=list)
    origin: str = "order"  # "order" | "priority"

    @property
    def needs_copy(self) -> bool:
        return self.is_parallelizable and bool(self.conflicting_actions)


class MicrographKind(enum.Enum):
    SINGLE = "single"
    TREE = "tree"
    PLAIN_PARALLELISM = "plain-parallelism"


@dataclass
class Micrograph:
    """A connected group of IRs (§4.4.2)."""

    kind: MicrographKind
    members: List[str]
    #: unparallelizable (sequential) edges inside the group.
    hard_edges: List[Tuple[str, str]] = field(default_factory=list)
    #: total packet copies the group's conflicts require.
    copies_needed: int = 0

    def __contains__(self, nf: str) -> bool:
        return nf in self.members


@dataclass
class Decomposition:
    """Everything §4.4.1-2 produce, before the final merge step."""

    position_irs: List[PositionIR]
    pair_irs: List[PairIR]
    micrographs: List[Micrograph]

    def micrograph_of(self, nf: str) -> Micrograph:
        for micrograph in self.micrographs:
            if nf in micrograph:
                return micrograph
        raise KeyError(nf)


def _transform(
    policy: Policy, table: ActionTable, dt: DependencyTable
) -> Tuple[List[PositionIR], List[PairIR]]:
    """§4.4.1: rules -> intermediate representations."""
    position_irs = [
        PositionIR(rule.nf, rule.position) for rule in policy.position_rules()
    ]
    pair_irs: List[PairIR] = []
    for rule in policy.order_rules():
        verdict = identify_parallelism(
            table.fetch(policy.kind_of(rule.before)),
            table.fetch(policy.kind_of(rule.after)),
            dt,
        )
        pair_irs.append(
            PairIR(
                high=rule.after,  # "the NF with the back order is higher"
                low=rule.before,
                is_parallelizable=verdict.parallelizable,
                conflicting_actions=list(verdict.conflicting_actions),
                origin="order",
            )
        )
    for rule in policy.priority_rules():
        verdict = identify_parallelism(
            table.fetch(policy.kind_of(rule.low)),
            table.fetch(policy.kind_of(rule.high)),
            dt,
        )
        pair_irs.append(
            PairIR(
                high=rule.high,
                low=rule.low,
                # Priority pairs are "directly parallelizable" (§4.1).
                is_parallelizable=True,
                conflicting_actions=list(verdict.conflicting_actions),
                origin="priority",
            )
        )
    return position_irs, pair_irs


def decompose(
    policy: Policy,
    table: Optional[ActionTable] = None,
    dt: DependencyTable = DEFAULT_DEPENDENCY_TABLE,
) -> Decomposition:
    """Run §4.4.1-2: IRs, then micrographs by overlapping-NF union."""
    table = table or default_action_table()
    position_irs, pair_irs = _transform(policy, table, dt)

    pinned = {ir.nf for ir in position_irs}

    # Union-find over pair IRs (pinned NFs stay out: they become the
    # head/tail singles of §4.4.3).
    parent: Dict[str, str] = {}

    def find(name: str) -> str:
        parent.setdefault(name, name)
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    def union(a: str, b: str) -> None:
        parent[find(a)] = find(b)

    for ir in pair_irs:
        if ir.high in pinned or ir.low in pinned:
            continue
        union(ir.high, ir.low)

    groups: Dict[str, List[str]] = {}
    for name in policy.nf_names():
        if name in pinned:
            continue
        groups.setdefault(find(name), []).append(name)

    micrographs: List[Micrograph] = []
    for nf in sorted(pinned):
        micrographs.append(Micrograph(MicrographKind.SINGLE, [nf]))

    for members in groups.values():
        members = sorted(members)
        if len(members) == 1:
            micrographs.append(Micrograph(MicrographKind.SINGLE, members))
            continue
        relevant = [
            ir for ir in pair_irs if ir.high in members and ir.low in members
        ]
        hard = [
            (ir.low, ir.high) for ir in relevant if not ir.is_parallelizable
        ]
        copies = len({
            ir.high for ir in relevant if ir.needs_copy and ir.is_parallelizable
        })
        kind = (
            MicrographKind.TREE if hard else MicrographKind.PLAIN_PARALLELISM
        )
        micrographs.append(
            Micrograph(kind, members, hard_edges=hard, copies_needed=copies)
        )

    return Decomposition(position_irs, pair_irs, micrographs)
