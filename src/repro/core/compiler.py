"""The NFP compiler: policies -> high-performance service graphs (§4.4).

Pipeline, mirroring Fig. 2:

1. **Transform** rules into intermediate representations: per-NF position
   pins and per-pair parallelism verdicts (Algorithm 1 output).
2. **Compile** the pair relation into a hard-dependency DAG: an ordered
   pair whose Algorithm 1 verdict is NOT_PARALLELIZABLE becomes a hard
   edge; parallelizable pairs stay soft (they only influence copy/merge
   decisions).  Pins translate to hard edges from/to every other NF.
   Unrelated NFs ("free NFs" and cross-micrograph pairs) are probed in
   both directions; when neither direction is parallelizable, they are
   sequenced in declaration order and the operator is warned (§4.4.3
   "network operators will be informed").
3. **Merge** into the final graph: longest-path layering of the hard DAG
   yields the stages; inside each stage, buffer sharing (OP#1) groups
   NFs onto versions -- readers keep the original version 1, conflicting
   writers get header-only copies (OP#2) unless they touch the payload.
   Finally the merging operations are derived from each copy version's
   writes, resolved by NF priority ("the NF with the back order is
   assigned a higher priority", §3).

The compiler's two optimisation goals are the paper's: "fully benefit
from the high performance brought by NF parallelism, while introducing
very little resource overhead" (§4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..net.fields import Field
from ..net.packet import PacketMeta
from .action_table import ActionTable, default_action_table
from .actions import ActionProfile
from .conflicts import check_policy
from .dependency import (
    DEFAULT_DEPENDENCY_TABLE,
    DependencyTable,
    ParallelismResult,
    can_share_buffer,
    identify_parallelism,
)
from .graph import (
    ORIGINAL_VERSION,
    CopySpec,
    MergeOp,
    MergeOpKind,
    NFNode,
    ServiceGraph,
    Stage,
    StageEntry,
)
from .policy import Policy, Position

__all__ = ["CompileError", "CompilationResult", "NFPCompiler", "compile_policy"]

#: Highest usable version number: the metadata version field is 4 bits
#: (§5.2) and versions are numbered from 1, so a graph can hold at most
#: 15 concurrent packet versions (v1 plus 14 copies).
MAX_VERSIONS = (1 << PacketMeta.VERSION_BITS) - 1


class CompileError(ValueError):
    """The policy compiles to a graph the dataplane cannot execute."""


class CompilationResult:
    """Graph plus the compiler's reasoning, for inspection and tests."""

    def __init__(
        self,
        graph: ServiceGraph,
        decisions: Dict[Tuple[str, str], ParallelismResult],
        warnings: List[str],
    ):
        self.graph = graph
        #: (before, after) -> Algorithm 1 verdict for every ordered pair
        #: the compiler analysed.
        self.decisions = decisions
        self.warnings = warnings

    def __repr__(self) -> str:
        return f"CompilationResult({self.graph.describe()})"


class NFPCompiler:
    """Compiles NFP policies into service graphs."""

    def __init__(
        self,
        action_table: Optional[ActionTable] = None,
        dependency_table: DependencyTable = DEFAULT_DEPENDENCY_TABLE,
    ):
        self.action_table = action_table or default_action_table()
        self.dependency_table = dependency_table

    # ------------------------------------------------------------ pipeline
    def compile(self, policy: Policy) -> CompilationResult:
        """Run the full pipeline; raises on hard policy conflicts."""
        report = check_policy(policy)
        report.raise_on_error()
        warnings = list(report.warnings)

        names = self._declaration_order(policy)
        profiles = {n: self.action_table.fetch(policy.kind_of(n)) for n in names}

        closure = self._order_closure(policy, names)
        priority_pairs = {(r.high, r.low) for r in policy.priority_rules()}
        pins = self._pins(policy)

        hard_edges, decisions = self._hard_edges(
            names, profiles, closure, priority_pairs, pins, warnings
        )
        priorities = self._merge_priorities(names, closure, priority_pairs, pins)

        # NFs with downstream hard dependents must process version 1 (the
        # dependent consumes their output, which only version 1 carries
        # before the final merge).  Two such NFs that cannot share one
        # buffer therefore cannot share a stage: sequentialise them and
        # re-layer until stable.
        while True:
            levels = self._layer(names, hard_edges)
            added = self._sequentialise_v1_claimants(
                names, profiles, levels, hard_edges, priorities
            )
            if not added:
                break

        needs_v1 = {a for a, _ in hard_edges}
        nodes = {
            n: NFNode(n, policy.kind_of(n), profiles[n], priorities[n]) for n in names
        }
        stages, copies = self._assign_versions(names, nodes, levels, needs_v1)
        merge_ops = self._merge_ops(stages)

        graph = ServiceGraph(stages, copies, merge_ops, name=policy.name)
        return CompilationResult(graph, decisions, warnings)

    # ---------------------------------------------------------- sub-steps
    @staticmethod
    def _declaration_order(policy: Policy) -> List[str]:
        return list(policy.instances)

    @staticmethod
    def _order_closure(policy: Policy, names: Sequence[str]) -> Set[Tuple[str, str]]:
        """Transitive closure of the Order relation (Floyd-Warshall)."""
        reach: Set[Tuple[str, str]] = {
            (r.before, r.after) for r in policy.order_rules()
        }
        changed = True
        while changed:
            changed = False
            for a, b in list(reach):
                for c, d in list(reach):
                    if b == c and (a, d) not in reach and a != d:
                        reach.add((a, d))
                        changed = True
        return reach

    @staticmethod
    def _pins(policy: Policy) -> Dict[str, Position]:
        return {r.nf: r.position for r in policy.position_rules()}

    def _hard_edges(
        self,
        names: Sequence[str],
        profiles: Dict[str, ActionProfile],
        closure: Set[Tuple[str, str]],
        priority_pairs: Set[Tuple[str, str]],
        pins: Dict[str, Position],
        warnings: List[str],
    ) -> Tuple[Set[Tuple[str, str]], Dict[Tuple[str, str], ParallelismResult]]:
        hard: Set[Tuple[str, str]] = set()
        decisions: Dict[Tuple[str, str], ParallelismResult] = {}

        prioritised = priority_pairs | {(b, a) for a, b in priority_pairs}

        # Ordered pairs: Algorithm 1 decides hard vs soft.
        for before, after in closure:
            if (before, after) in prioritised:
                # A Priority rule declares the pair "directly
                # parallelizable" (§4.1); Algorithm 1 is only consulted
                # for conflicting actions, during version assignment.
                continue
            verdict = identify_parallelism(
                profiles[before], profiles[after], self.dependency_table
            )
            decisions[(before, after)] = verdict
            if not verdict.parallelizable:
                hard.add((before, after))

        # Position pins dominate everything.
        for nf, where in pins.items():
            for other in names:
                if other == nf:
                    continue
                if where is Position.FIRST:
                    hard.add((nf, other))
                else:
                    hard.add((other, nf))

        # Free / cross-micrograph pairs: probe both directions.
        related = closure | {(b, a) for a, b in closure} | prioritised
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if (a, b) in related or a in pins or b in pins:
                    continue
                forward = identify_parallelism(
                    profiles[a], profiles[b], self.dependency_table
                )
                decisions.setdefault((a, b), forward)
                if forward.parallelizable:
                    continue
                backward = identify_parallelism(
                    profiles[b], profiles[a], self.dependency_table
                )
                decisions.setdefault((b, a), backward)
                if backward.parallelizable:
                    continue
                hard.add((a, b))
                warnings.append(
                    f"unordered NFs {a!r} and {b!r} are not parallelizable; "
                    "sequenced in declaration order -- consider an Order or "
                    "Priority rule"
                )
        return hard, decisions

    @staticmethod
    def _layer(names: Sequence[str], hard: Set[Tuple[str, str]]) -> Dict[str, int]:
        """Longest-path levels over the hard DAG (Kahn's algorithm)."""
        succs: Dict[str, List[str]] = {n: [] for n in names}
        indeg: Dict[str, int] = {n: 0 for n in names}
        for a, b in hard:
            succs[a].append(b)
            indeg[b] += 1
        level = {n: 0 for n in names}
        queue = [n for n in names if indeg[n] == 0]
        seen = 0
        while queue:
            node = queue.pop(0)
            seen += 1
            for nxt in succs[node]:
                level[nxt] = max(level[nxt], level[node] + 1)
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        if seen != len(names):
            # check_policy rejects Order cycles; reaching this means pins
            # or free-NF sequencing built one, which is a real conflict.
            raise ValueError("dependency cycle while layering the service graph")
        return level

    @staticmethod
    def _merge_priorities(
        names: Sequence[str],
        closure: Set[Tuple[str, str]],
        priority_pairs: Set[Tuple[str, str]],
        pins: Dict[str, Position],
    ) -> Dict[str, int]:
        """Merge priority: later chain position wins; Priority rules override."""
        # Base: longest path through the full (soft+hard) order relation.
        succs: Dict[str, List[str]] = {n: [] for n in names}
        indeg: Dict[str, int] = {n: 0 for n in names}
        edges = set(closure)
        for nf, where in pins.items():
            for other in names:
                if other != nf:
                    edges.add((nf, other) if where is Position.FIRST else (other, nf))
        for a, b in edges:
            succs[a].append(b)
            indeg[b] += 1
        depth = {n: 0 for n in names}
        queue = [n for n in names if indeg[n] == 0]
        while queue:
            node = queue.pop(0)
            for nxt in succs[node]:
                depth[nxt] = max(depth[nxt], depth[node] + 1)
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        # Scale so Priority bumps cannot collide with depth steps, then
        # enforce explicit Priority rules to a fixpoint (acyclic by
        # check_policy).
        priority = {n: depth[n] * (len(names) + 1) + i for i, n in enumerate(names)}
        for _ in range(len(priority_pairs) + 1):
            changed = False
            for high, low in priority_pairs:
                if priority[high] <= priority[low]:
                    priority[high] = priority[low] + 1
                    changed = True
            if not changed:
                break
        else:
            raise ValueError("could not satisfy Priority rules (cycle?)")
        return priority

    def _sequentialise_v1_claimants(
        self,
        names: Sequence[str],
        profiles: Dict[str, ActionProfile],
        levels: Dict[str, int],
        hard_edges: Set[Tuple[str, str]],
        priorities: Dict[str, int],
    ) -> bool:
        """Break same-stage conflicts between NFs that both need version 1.

        Returns True when a new hard edge was added (caller re-layers).
        """
        claimants = {a for a, _ in hard_edges}
        for level in set(levels.values()):
            members = sorted(
                (n for n in names if levels[n] == level and n in claimants),
                key=lambda n: priorities[n],
            )
            for i, first in enumerate(members):
                for second in members[i + 1:]:
                    if not can_share_buffer(
                        profiles[first], profiles[second], self.dependency_table
                    ):
                        hard_edges.add((first, second))
                        return True
        return False

    def _assign_versions(
        self,
        names: Sequence[str],
        nodes: Dict[str, NFNode],
        levels: Dict[str, int],
        needs_v1: Optional[Set[str]] = None,
    ) -> Tuple[List[Stage], List[CopySpec]]:
        """Group each stage's NFs onto packet versions (OP#1 + OP#2)."""
        needs_v1 = needs_v1 or set()
        stages: List[Stage] = []
        copies: List[CopySpec] = []
        next_version = ORIGINAL_VERSION + 1
        max_level = max(levels.values()) if levels else 0

        for level in range(max_level + 1):
            members = [n for n in names if levels[n] == level]
            if not members:
                continue
            # Version-1 claimants first (their output feeds later stages),
            # then readers, so the original buffer is held by NFs that do
            # not modify it; ties keep chain order.
            members.sort(
                key=lambda n: (
                    n not in needs_v1,
                    not nodes[n].profile.is_read_only,
                    nodes[n].priority,
                )
            )
            groups: List[Tuple[int, List[str]]] = []  # (version, members)
            trunk: List[str] = []  # version-1 group
            for name in members:
                profile = nodes[name].profile
                if all(
                    can_share_buffer(profile, nodes[m].profile, self.dependency_table)
                    for m in trunk
                ):
                    trunk.append(name)
                    continue
                if name in needs_v1:
                    # The fixpoint in compile() sequentialises conflicting
                    # version-1 claimants, so this cannot be reached.
                    raise ValueError(
                        f"NF {name!r} feeds a later stage but cannot share "
                        "the original packet buffer"
                    )
                placed = False
                for version, group in groups:
                    if all(
                        can_share_buffer(
                            profile, nodes[m].profile, self.dependency_table
                        )
                        for m in group
                    ):
                        group.append(name)
                        placed = True
                        break
                if not placed:
                    if next_version > MAX_VERSIONS:
                        # Without this check version numbers would wrap
                        # the 4-bit metadata field and silently collide.
                        raise CompileError(
                            f"graph needs more than {MAX_VERSIONS} concurrent "
                            f"packet versions; the metadata version field is "
                            f"{PacketMeta.VERSION_BITS} bits "
                            f"(versions 1..{MAX_VERSIONS})"
                            " -- split the policy into smaller micrographs"
                        )
                    groups.append((next_version, [name]))
                    next_version += 1

            entries = [StageEntry(nodes[n], ORIGINAL_VERSION) for n in trunk]
            stage_index = len(stages)
            for version, group in groups:
                touches_payload = any(
                    self._touches_payload(nodes[n].profile) for n in group
                )
                copies.append(
                    CopySpec(stage_index, version, header_only=not touches_payload)
                )
                entries.extend(StageEntry(nodes[n], version) for n in group)
            stages.append(Stage(entries))
        return stages, copies

    @staticmethod
    def _touches_payload(profile: ActionProfile) -> bool:
        fields = profile.reads | profile.writes
        return Field.PAYLOAD in fields or Field.WHOLE_PACKET in fields

    @staticmethod
    def _merge_ops(stages: Sequence[Stage]) -> List[MergeOp]:
        """Derive MOs from copy-version writes, resolved by priority."""
        # field -> list of (priority, version) writers.
        writers: Dict[Field, List[Tuple[int, int]]] = {}
        adds: List[Tuple[int, Field, int]] = []
        removes: List[Tuple[int, Field, int]] = []
        for stage in stages:
            for entry in stage:
                profile = entry.node.profile
                for field in profile.writes:
                    writers.setdefault(field, []).append(
                        (entry.node.priority, entry.version)
                    )
                for field in profile.adds:
                    adds.append((entry.node.priority, field, entry.version))
                for field in profile.removes:
                    removes.append((entry.node.priority, field, entry.version))

        ops: List[MergeOp] = []
        for field in sorted(writers, key=str):
            priority, version = max(writers[field])
            if version != ORIGINAL_VERSION:
                ops.append(MergeOp(MergeOpKind.MODIFY, field, version))
        for _, field, version in sorted(adds):
            if version != ORIGINAL_VERSION:
                ops.append(MergeOp(MergeOpKind.ADD, field, version))
        for _, field, version in sorted(removes):
            if version != ORIGINAL_VERSION:
                ops.append(MergeOp(MergeOpKind.REMOVE, field))
        return ops


def compile_policy(
    policy: Policy,
    action_table: Optional[ActionTable] = None,
    dependency_table: DependencyTable = DEFAULT_DEPENDENCY_TABLE,
) -> CompilationResult:
    """Convenience wrapper around :class:`NFPCompiler`."""
    return NFPCompiler(action_table, dependency_table).compile(policy)
