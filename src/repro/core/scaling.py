"""NF scaling analysis (§7): sizing instance counts for a target rate.

"NFP can support NF scaling inside one server by allocating remaining
CPU cores to new NF instances with new IDs and constructing service
graphs containing these new instances."  This module does the sizing
arithmetic the orchestrator needs before doing that: given a compiled
graph, the calibrated timing model, and a target rate, how many
instances of each component are required, and does the server have the
cores?

The analysis uses the same per-core demand model as
:func:`repro.eval.model.nfp_capacity`: a component with per-packet
demand ``d`` µs sustains ``1/d`` Mpps per instance, so a target rate
``R`` needs ``ceil(R * d)`` instances (flows are RSS-split across
instances, which preserves per-flow ordering).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Union

from ..sim.params import SimParams
from .graph import ServiceGraph

__all__ = ["ScalePlan", "ScaledGraph", "plan_scale_out", "scale_graph"]


@dataclass
class ScalePlan:
    """Instance counts per component to sustain ``target_mpps``."""

    target_mpps: float
    achievable_mpps: float
    instances: Dict[str, int] = field(default_factory=dict)
    #: components that cannot be replicated (the NIC).
    limiting: Optional[str] = None

    @property
    def feasible(self) -> bool:
        return self.limiting is None

    @property
    def total_nf_cores(self) -> int:
        return sum(self.instances.values())

    def scaled_components(self) -> List[str]:
        return sorted(n for n, count in self.instances.items() if count > 1)

    @property
    def merger_count(self) -> int:
        """How many merger instances the plan sized (>= 1)."""
        return max(1, self.instances.get("merger", 1))

    def nf_counts(self, graph: ServiceGraph) -> Dict[str, int]:
        """The plan's instance counts restricted to the graph's NFs.

        The plan also sizes the classifier and merger pool; those are
        not NF runtimes, so executing the plan needs just this slice
        (the merger count rides separately via :attr:`merger_count`).
        """
        return {name: max(1, self.instances.get(name, 1))
                for name in graph.nf_names()}

    def __str__(self) -> str:
        status = "feasible" if self.feasible else f"limited by {self.limiting}"
        parts = ", ".join(f"{n}x{c}" for n, c in sorted(self.instances.items()))
        return (
            f"ScalePlan({self.target_mpps:.2f} Mpps -> "
            f"{self.achievable_mpps:.2f} Mpps, {status}: {parts})"
        )


def plan_scale_out(
    graph: ServiceGraph,
    params: SimParams,
    target_mpps: float,
    packet_size: int = 64,
    available_cores: Optional[int] = None,
    num_mergers: int = 1,
) -> ScalePlan:
    """Compute the instance counts needed to sustain ``target_mpps``.

    Components (classifier, every NF, the merger pool) are replicated
    independently; the NIC line rate is the only hard ceiling.  When
    ``available_cores`` is given, the plan is truncated to what fits
    and ``achievable_mpps`` reports the resulting best rate.
    """
    if target_mpps <= 0:
        raise ValueError("target rate must be positive")
    from ..eval.model import nfp_capacity

    line_rate = params.line_rate_mpps(packet_size)
    capacity = nfp_capacity(
        graph, params, num_mergers=num_mergers, packet_size=packet_size
    )

    if target_mpps > line_rate:
        return ScalePlan(
            target_mpps=target_mpps,
            achievable_mpps=line_rate,
            instances={name: 1 for name in capacity.demands},
            limiting="nic",
        )

    instances: Dict[str, int] = {}
    for name, demand in capacity.demands.items():
        instances[name] = max(1, math.ceil(target_mpps * demand - 1e-9))

    plan = ScalePlan(
        target_mpps=target_mpps,
        achievable_mpps=min(
            line_rate,
            min(
                instances[name] / demand if demand > 0 else float("inf")
                for name, demand in capacity.demands.items()
            ),
        ),
        instances=instances,
    )

    if available_cores is not None and plan.total_nf_cores > available_cores:
        # Greedily strip instances from the least-pressured components
        # until the plan fits, then report the degraded rate.
        while plan.total_nf_cores > available_cores:
            candidates = [n for n, c in plan.instances.items() if c > 1]
            if not candidates:
                break
            # Remove where the per-instance headroom is largest.
            slack = {
                n: plan.instances[n] / capacity.demands[n] - target_mpps
                for n in candidates
            }
            victim = max(slack, key=slack.get)
            plan.instances[victim] -= 1
        plan.achievable_mpps = min(
            line_rate,
            min(
                plan.instances[name] / demand if demand > 0 else float("inf")
                for name, demand in capacity.demands.items()
            ),
        )
    return plan


class ScaledGraph:
    """A service graph plus executable instance counts (§7).

    "NFP can support NF scaling inside one server by allocating
    remaining CPU cores to new NF instances with new IDs" -- this is
    that artifact: the compiled graph unchanged, each NF annotated with
    an instance count, and every replicated instance given a fresh
    instance ID and a stable label (``name#k``) that both dataplanes
    and telemetry use.  Flows are pinned to one instance per NF by the
    shared RSS split (:mod:`repro.dataplane.flowsplit`), which is what
    preserves per-flow order across the scale-out.
    """

    __slots__ = ("base", "counts", "instance_ids")

    def __init__(self, base: ServiceGraph, counts: Mapping[str, int]):
        names = base.nf_names()
        unknown = sorted(set(counts) - set(names))
        if unknown:
            raise ValueError(f"scale names not in graph: {unknown}")
        self.base = base
        self.counts: Dict[str, int] = {}
        for name in names:
            count = int(counts.get(name, 1))
            if count < 1:
                raise ValueError(f"scale for {name!r} must be >= 1")
            self.counts[name] = count
        #: New IDs per instance, allocated densely in graph order.
        self.instance_ids: Dict[str, int] = {}
        next_id = 1
        for name in names:
            for label in self.labels(name):
                self.instance_ids[label] = next_id
                next_id += 1

    def labels(self, name: str) -> List[str]:
        """Instance labels for one NF: ``[name]`` or ``[name#0, ...]``."""
        count = self.counts[name]
        if count == 1:
            return [name]
        return [f"{name}#{k}" for k in range(count)]

    def rescaled(self, name: str, count: int) -> "ScaledGraph":
        """A copy of this artifact with one NF's instance count changed.

        The autoscaler's control-plane record: live membership change on
        the dataplane is mirrored here so ``Orchestrator.deploy`` state
        and the running server agree on the instance set.
        """
        if name not in self.counts:
            raise ValueError(f"{name!r} is not an NF of this graph")
        if count < 1:
            raise ValueError(f"scale for {name!r} must be >= 1")
        counts = dict(self.counts)
        counts[name] = count
        return ScaledGraph(self.base, counts)

    @property
    def total_instances(self) -> int:
        return sum(self.counts.values())

    def scaled_names(self) -> List[str]:
        return sorted(n for n, c in self.counts.items() if c > 1)

    def describe(self) -> str:
        parts = ", ".join(
            f"{name}x{count}" for name, count in self.counts.items())
        return f"{self.base.describe()} scaled[{parts}]"

    def __repr__(self) -> str:
        return f"ScaledGraph({self.describe()!r})"


def scale_graph(
    graph: ServiceGraph,
    scale: Union[int, ScalePlan, Mapping[str, int]],
) -> ScaledGraph:
    """Normalise any scale spec into an executable :class:`ScaledGraph`.

    Accepts a uniform instance count (int), a :class:`ScalePlan` (its
    NF slice is taken; classifier/merger sizing is ignored here), or an
    explicit name -> count mapping.
    """
    if isinstance(scale, ScalePlan):
        return ScaledGraph(graph, scale.nf_counts(graph))
    if isinstance(scale, int):
        if scale < 1:
            raise ValueError("uniform scale must be >= 1")
        return ScaledGraph(graph, {name: scale for name in graph.nf_names()})
    return ScaledGraph(graph, scale)
