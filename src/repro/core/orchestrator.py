"""The NFP orchestrator facade (§4): policies in, installed tables out.

Ties the pieces together the way Fig. 3's control plane does:

1. operators submit policies (objects or DSL text);
2. the compiler turns each policy into a service graph;
3. a fresh MID is allocated (20 bits -> up to 1M graphs) and the
   CT/FT/MO tables are built;
4. the tables are handed to whatever infrastructure is attached (the
   simulated NFP server's chaining manager, §5).

It also owns the NF action table and exposes the §5.4 registration flow
for new NFs (manual profile or inspector-derived).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .action_table import ActionTable, default_action_table
from .actions import ActionProfile
from .compiler import CompilationResult, NFPCompiler
from .dependency import DEFAULT_DEPENDENCY_TABLE, DependencyTable
from .inspector import inspect_nf
from .policy import Policy
from .policy_dsl import parse_policy
from .scaling import ScaledGraph, ScalePlan, plan_scale_out, scale_graph
from .tables import TableSet, build_tables

__all__ = ["Orchestrator", "DeployedGraph"]

_MAX_MID = (1 << 20) - 1


class DeployedGraph:
    """A compiled graph bound to a MID with its generated tables.

    ``scaled`` (optional) is the §7 scale-out artifact: the same graph
    with per-NF instance counts and fresh instance IDs; dataplanes that
    deploy this object spin up one runtime per instance and RSS-split
    flows across them.
    """

    def __init__(
        self,
        mid: int,
        result: CompilationResult,
        tables: TableSet,
        scaled: Optional[ScaledGraph] = None,
        plan: Optional[ScalePlan] = None,
    ):
        self.mid = mid
        self.result = result
        self.tables = tables
        self.scaled = scaled
        #: The sizing plan this deployment executes, when it came from one.
        self.plan = plan

    @property
    def graph(self):
        return self.result.graph

    @property
    def scale(self) -> Dict[str, int]:
        """NF name -> instance count (empty when unscaled)."""
        if self.scaled is None:
            return {}
        return dict(self.scaled.counts)

    def __repr__(self) -> str:
        desc = self.scaled.describe() if self.scaled else self.graph.describe()
        return f"DeployedGraph(mid={self.mid}, {desc!r})"


class Orchestrator:
    """Compiles policies and manages deployed service graphs."""

    def __init__(
        self,
        action_table: Optional[ActionTable] = None,
        dependency_table: DependencyTable = DEFAULT_DEPENDENCY_TABLE,
    ):
        self.action_table = action_table or default_action_table()
        self.compiler = NFPCompiler(self.action_table, dependency_table)
        self._deployed: Dict[int, DeployedGraph] = {}
        self._next_mid = 1

    # -------------------------------------------------------- NF lifecycle
    def register_profile(self, profile: ActionProfile, replace: bool = False) -> None:
        """Register a manually written action profile (§4.3)."""
        self.action_table.register(profile, replace=replace)

    def register_nf(
        self, nf: Union[type, object], name: Optional[str] = None, replace: bool = False
    ) -> ActionProfile:
        """Register an NF by inspecting its code (§5.4)."""
        profile = inspect_nf(nf, name=name)
        self.action_table.register(profile, replace=replace)
        return profile

    # ----------------------------------------------------------- compiling
    def compile(self, policy: Union[Policy, str]) -> CompilationResult:
        """Compile a policy (object or DSL text) without deploying it."""
        if isinstance(policy, str):
            policy = parse_policy(policy)
        return self.compiler.compile(policy)

    def deploy(
        self,
        policy: Union[Policy, str],
        match: object = "*",
        scale: Union[int, ScalePlan, Dict[str, int], None] = None,
    ) -> DeployedGraph:
        """Compile a policy, allocate a MID, and build its tables.

        ``scale`` turns the deployment into a §7 scale-out: a uniform
        instance count, an explicit name -> count mapping, or a
        :class:`~repro.core.scaling.ScalePlan` straight from
        :func:`~repro.core.scaling.plan_scale_out`.
        """
        result = self.compile(policy)
        mid = self._allocate_mid()
        tables = build_tables(result.graph, mid, match=match)
        scaled = None
        plan = None
        if scale is not None:
            scaled = scale_graph(result.graph, scale)
            if isinstance(scale, ScalePlan):
                plan = scale
        deployed = DeployedGraph(mid, result, tables, scaled=scaled, plan=plan)
        self._deployed[mid] = deployed
        return deployed

    def deploy_scaled(
        self,
        policy: Union[Policy, str],
        target_mpps: float,
        params,
        match: object = "*",
        packet_size: int = 64,
        available_cores: Optional[int] = None,
        num_mergers: int = 1,
    ) -> DeployedGraph:
        """Compile, size with :func:`plan_scale_out`, and deploy scaled.

        The returned deployment carries both the executable
        :class:`ScaledGraph` and the sizing :class:`ScalePlan` (as
        ``.plan``), so callers can pass ``plan.merger_count`` when
        building the server.
        """
        if isinstance(policy, str):
            policy = parse_policy(policy)
        graph = self.compile(policy).graph
        plan = plan_scale_out(
            graph, params, target_mpps, packet_size=packet_size,
            available_cores=available_cores, num_mergers=num_mergers,
        )
        return self.deploy(policy, match=match, scale=plan)

    # ----------------------------------------------------------- placement
    def request(self, name: str, policy: Union[Policy, str], slo, **kwargs):
        """Compile ``policy`` into a placement :class:`ChainRequest`.

        ``kwargs`` pass through (``anti_affinity``, ``partial_order``,
        ``packet_size``); ``slo`` is a :class:`repro.placement.Slo`.
        """
        from ..placement import ChainRequest

        graph = self.compile(policy).graph
        return ChainRequest(name, graph, slo, **kwargs)

    def place(
        self,
        topology,
        chains,
        params=None,
        solver: str = "heuristic",
        backups: bool = True,
    ):
        """Place compiled chains onto a topology under their SLOs.

        ``chains`` is a list of :class:`repro.placement.ChainRequest`
        (build them with :meth:`request`).  ``solver`` is ``heuristic``
        (default, scales) or ``brute`` (exact, <= 4 servers).  With
        ``backups`` each placed chain also reserves a server-disjoint
        standby, so a PR-5 server crash fails over without replanning.
        Returns the :class:`repro.placement.PlacementPlan`; unplaceable
        chains land in ``plan.infeasible`` with the binding reason.
        """
        from ..placement import brute_force_place, heuristic_place, plan_backups
        from ..sim.params import DEFAULT_PARAMS

        if params is None:
            params = DEFAULT_PARAMS
        if solver == "brute":
            plan = brute_force_place(topology, chains, params)
        elif solver == "heuristic":
            plan = heuristic_place(topology, chains, params)
        else:
            raise ValueError(f"unknown solver {solver!r} (heuristic|brute)")
        if backups:
            unprotected = plan_backups(plan, params)
            plan.unprotected = unprotected
        return plan

    def rescale(self, mid: int, name: str, count: int) -> DeployedGraph:
        """Record a live instance-count change for deployment ``mid``.

        The autoscaler calls this after the dataplane executes a
        scale-up/scale-down so the orchestrator's record (the
        :class:`ScaledGraph` with its fresh instance IDs) tracks the
        actual membership.  Tables are untouched: the CT match and MID
        survive a §7 rescale, only the RSS instance set changes.
        """
        deployed = self.get(mid)
        if deployed.scaled is None:
            deployed.scaled = scale_graph(deployed.graph, {})
        deployed.scaled = deployed.scaled.rescaled(name, count)
        return deployed

    def degrade(self, mid: int) -> DeployedGraph:
        """Deploy the sequential linearization of graph ``mid``.

        Graceful-degradation control path: when a dataplane loses every
        instance of an NF in a parallel graph, the orchestrator falls
        back to the graph's sequential chain -- same NFs, same CT match,
        fresh MID -- trading the latency win for single-copy execution
        that tolerates one-instance-at-a-time processing.  The original
        deployment stays installed for in-flight packets.
        """
        from ..faults.recovery import linearize

        original = self.get(mid)
        seq = linearize(original.graph)
        new_mid = self._allocate_mid()
        tables = build_tables(seq, new_mid, match=original.tables.ct_entry.match)
        result = CompilationResult(seq, {}, [
            f"degraded from MID {mid}: sequential fallback of "
            f"{original.graph.describe()!r}"
        ])
        deployed = DeployedGraph(new_mid, result, tables)
        self._deployed[new_mid] = deployed
        return deployed

    def undeploy(self, mid: int) -> None:
        if mid not in self._deployed:
            raise KeyError(f"no deployed graph with MID {mid}")
        del self._deployed[mid]

    def deployed(self) -> List[DeployedGraph]:
        return list(self._deployed.values())

    def get(self, mid: int) -> DeployedGraph:
        return self._deployed[mid]

    def _allocate_mid(self) -> int:
        while self._next_mid in self._deployed:
            self._next_mid += 1
        if self._next_mid > _MAX_MID:
            raise RuntimeError("MID space exhausted (20 bits)")
        mid = self._next_mid
        self._next_mid += 1
        return mid
