"""Policy conflict detection (§3's future work, implemented here).

The paper notes operators "could write two rules with conflicting
orders ... or assign an NF at different positions" and defers detection
to future work, citing header-space analysis and PGA.  We implement the
checks a compiler actually needs before graph construction:

* **Order cycles** -- the Order relation must be a DAG.
* **Position clashes** -- one NF pinned both first and last, or two NFs
  pinned to the same end.
* **Order/Position contradictions** -- e.g. ``Position(X, first)`` while
  some rule orders another NF before X.
* **Priority contradictions** -- both ``Priority(A > B)`` and
  ``Priority(B > A)``.
* **Priority/Order redundancy warnings** -- a pair constrained by both
  rule types (legal, but flagged since the paper treats them as
  different intents).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .policy import Policy, Position

__all__ = ["PolicyConflictError", "ConflictReport", "check_policy"]


class PolicyConflictError(ValueError):
    """Raised when a policy contains hard conflicts."""

    def __init__(self, conflicts: List[str]):
        super().__init__("; ".join(conflicts))
        self.conflicts = conflicts


class ConflictReport:
    """Outcome of :func:`check_policy`: hard errors and soft warnings."""

    def __init__(self):
        self.errors: List[str] = []
        self.warnings: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_on_error(self) -> None:
        if self.errors:
            raise PolicyConflictError(self.errors)

    def __repr__(self) -> str:
        return f"ConflictReport(errors={self.errors!r}, warnings={self.warnings!r})"


def _order_cycle(policy: Policy) -> List[str]:
    """Return one cycle through the Order relation, if any (DFS)."""
    adjacency: Dict[str, List[str]] = {}
    for rule in policy.order_rules():
        adjacency.setdefault(rule.before, []).append(rule.after)

    WHITE, GRAY, BLACK = 0, 1, 2
    colour: Dict[str, int] = {}
    stack_path: List[str] = []

    def visit(node: str) -> List[str]:
        colour[node] = GRAY
        stack_path.append(node)
        for nxt in adjacency.get(node, ()):
            state = colour.get(nxt, WHITE)
            if state == GRAY:
                return stack_path[stack_path.index(nxt):] + [nxt]
            if state == WHITE:
                cycle = visit(nxt)
                if cycle:
                    return cycle
        stack_path.pop()
        colour[node] = BLACK
        return []

    for start in list(adjacency):
        if colour.get(start, WHITE) == WHITE:
            cycle = visit(start)
            if cycle:
                return cycle
    return []


def check_policy(policy: Policy) -> ConflictReport:
    """Validate a policy; returns a report of errors and warnings."""
    report = ConflictReport()

    # 1. Order cycles.
    cycle = _order_cycle(policy)
    if cycle:
        report.errors.append(f"Order rules form a cycle: {' -> '.join(cycle)}")

    # 2. Position clashes.
    pinned: Dict[str, Set[Position]] = {}
    by_end: Dict[Position, List[str]] = {Position.FIRST: [], Position.LAST: []}
    for rule in policy.position_rules():
        pinned.setdefault(rule.nf, set()).add(rule.position)
        if rule.nf not in by_end[rule.position]:
            by_end[rule.position].append(rule.nf)
    for nf, ends in pinned.items():
        if len(ends) > 1:
            report.errors.append(f"{nf} pinned both first and last")
    for end, nfs in by_end.items():
        if len(nfs) > 1:
            report.errors.append(
                f"multiple NFs pinned {end.value}: {', '.join(sorted(nfs))}"
            )

    # 3. Order vs Position contradictions.
    firsts = {nf for nf, ends in pinned.items() if ends == {Position.FIRST}}
    lasts = {nf for nf, ends in pinned.items() if ends == {Position.LAST}}
    for rule in policy.order_rules():
        if rule.after in firsts:
            report.errors.append(
                f"{rule.after} is pinned first but ordered after {rule.before}"
            )
        if rule.before in lasts:
            report.errors.append(
                f"{rule.before} is pinned last but ordered before {rule.after}"
            )

    # 4. Priority contradictions and duplicates.
    seen_priorities: Set[Tuple[str, str]] = set()
    for rule in policy.priority_rules():
        if (rule.low, rule.high) in seen_priorities:
            report.errors.append(
                f"contradictory priorities between {rule.high} and {rule.low}"
            )
        if (rule.high, rule.low) in seen_priorities:
            report.warnings.append(
                f"duplicate priority rule {rule.high} > {rule.low}"
            )
        seen_priorities.add((rule.high, rule.low))

    # 5. A pair constrained by both Order and Priority.
    ordered_pairs = {(r.before, r.after) for r in policy.order_rules()}
    for high, low in seen_priorities:
        if (high, low) in ordered_pairs or (low, high) in ordered_pairs:
            report.warnings.append(
                f"pair ({high}, {low}) constrained by both Order and Priority"
            )

    return report
