"""Cross-server graph partitioning (§7 "NFP Scalability", future work).

When a graph has more NFs than one server has cores, the paper sketches
the constraint for splitting it: "each server sends only one copy of a
packet to the next server", so cross-server parallelism never inflates
network bandwidth.

We implement that sketch: a service graph is cut at *stage boundaries*
(a stage never spans servers, since its NFs exchange shared-memory
references), greedily packing consecutive stages onto servers under a
per-server core budget.  Because copies other than version 1 live and
die within a single stage (they are merged into v1 by the stage's
merge semantics before any cross-server hop), every inter-server link
carries exactly one packet copy -- the paper's constraint.
"""

from __future__ import annotations

from typing import List, Sequence

from .graph import ServiceGraph, Stage

__all__ = ["ServerSlice", "partition_graph", "partition_at", "PartitionError"]

#: Cores a server must reserve beyond NFs: classifier + merger (§6).
_OVERHEAD_CORES = 2


class PartitionError(ValueError):
    """Raised when a graph cannot fit the given servers."""


class ServerSlice:
    """The stages assigned to one server, with core accounting."""

    def __init__(self, server_index: int, stages: Sequence[Stage]):
        self.server_index = server_index
        self.stages = list(stages)

    @property
    def nf_cores(self) -> int:
        return sum(len(stage) for stage in self.stages)

    @property
    def total_cores(self) -> int:
        return self.nf_cores + _OVERHEAD_CORES

    def nf_names(self) -> List[str]:
        return [e.node.name for stage in self.stages for e in stage]

    def __repr__(self) -> str:
        return (
            f"ServerSlice(server={self.server_index}, "
            f"nfs={self.nf_names()}, cores={self.total_cores})"
        )


def partition_at(graph: ServiceGraph, cuts: Sequence[int]) -> List[ServerSlice]:
    """Slice ``graph`` at explicit stage boundaries.

    ``cuts`` lists the stage indices that *start* a new server (index 0
    is implicit): ``cuts=(2,)`` over four stages yields slices
    ``[0,1]`` and ``[2,3]``.  This is the placement solvers' primitive:
    they search over cut vectors instead of trusting the greedy
    first-fit of :func:`partition_graph`.  Slices reuse the graph's own
    :class:`~repro.core.graph.Stage` objects so
    :func:`repro.multiserver.timed.slice_subgraph` can rebase them.
    """
    bounds = sorted(set(cuts))
    if any(not 0 < cut < len(graph.stages) for cut in bounds):
        raise PartitionError(
            f"cut indices must fall inside (0, {len(graph.stages)}); got {cuts}"
        )
    starts = [0] + bounds
    ends = bounds + [len(graph.stages)]
    return [
        ServerSlice(index, graph.stages[start:end])
        for index, (start, end) in enumerate(zip(starts, ends))
    ]


def partition_graph(
    graph: ServiceGraph, cores_per_server: int, max_servers: int = 64
) -> List[ServerSlice]:
    """Split ``graph`` across servers at stage boundaries.

    Greedy first-fit over consecutive stages.  Raises
    :class:`PartitionError` when a single stage needs more NF cores than
    one server offers, or when ``max_servers`` is exceeded.

    The returned slices satisfy the paper's bandwidth constraint by
    construction: only version 1 crosses a slice boundary.
    """
    if cores_per_server <= _OVERHEAD_CORES:
        raise PartitionError(
            f"need more than {_OVERHEAD_CORES} cores per server "
            "(classifier + merger overhead)"
        )
    budget = cores_per_server - _OVERHEAD_CORES

    slices: List[ServerSlice] = []
    current: List[Stage] = []
    used = 0
    for stage in graph.stages:
        need = len(stage)
        if need > budget:
            raise PartitionError(
                f"stage with {need} parallel NFs cannot fit a server "
                f"offering {budget} NF cores"
            )
        if used + need > budget:
            slices.append(ServerSlice(len(slices), current))
            current, used = [], 0
        current.append(stage)
        used += need
    if current:
        slices.append(ServerSlice(len(slices), current))
    if len(slices) > max_servers:
        raise PartitionError(
            f"graph needs {len(slices)} servers, more than max_servers={max_servers}"
        )
    return slices
