"""Flow match specifications for the Classification Table.

The paper's CT matches flows on "match fields (e.g. five tuple)"
(§5.1).  Besides exact 5-tuple keys and the wildcard, operators steer
*classes* of traffic into graphs; :class:`FlowMatch` expresses the
classic ACL-style predicate: source/destination prefixes, protocol,
and port ranges.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..net.headers import ip_to_int

__all__ = ["FlowMatch"]

_FULL_RANGE = (0, 65535)


class FlowMatch:
    """An ACL-style predicate over the 5-tuple.

    All criteria default to "any"; omitted fields do not constrain the
    match.  Prefixes are ``(address, length)`` pairs.
    """

    __slots__ = ("_src_net", "_src_mask", "_dst_net", "_dst_mask",
                 "protocol", "sport_range", "dport_range", "name")

    def __init__(
        self,
        src_prefix: Optional[Tuple[str, int]] = None,
        dst_prefix: Optional[Tuple[str, int]] = None,
        protocol: Optional[int] = None,
        sport_range: Tuple[int, int] = _FULL_RANGE,
        dport_range: Tuple[int, int] = _FULL_RANGE,
        name: str = "",
    ):
        self._src_net, self._src_mask = self._compile_prefix(src_prefix)
        self._dst_net, self._dst_mask = self._compile_prefix(dst_prefix)
        if protocol is not None and not 0 <= protocol <= 255:
            raise ValueError("protocol must be one byte")
        self.protocol = protocol
        for low, high in (sport_range, dport_range):
            if not (0 <= low <= high <= 65535):
                raise ValueError("invalid port range")
        self.sport_range = sport_range
        self.dport_range = dport_range
        self.name = name

    @staticmethod
    def _compile_prefix(prefix):
        if prefix is None:
            return 0, 0
        address, length = prefix
        if not 0 <= length <= 32:
            raise ValueError("prefix length out of range")
        mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
        return ip_to_int(address) & mask, mask

    def matches(self, five_tuple: Tuple) -> bool:
        """Test a classifier key (src, dst, proto, sport, dport)."""
        src, dst, proto, sport, dport = five_tuple
        if ip_to_int(src) & self._src_mask != self._src_net:
            return False
        if ip_to_int(dst) & self._dst_mask != self._dst_net:
            return False
        if self.protocol is not None and proto != self.protocol:
            return False
        if not self.sport_range[0] <= sport <= self.sport_range[1]:
            return False
        if not self.dport_range[0] <= dport <= self.dport_range[1]:
            return False
        return True

    def __repr__(self) -> str:
        return f"FlowMatch({self.name or 'unnamed'})"
