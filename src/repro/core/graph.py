"""Service graph data model: the compiler's output artifact (§4.4).

A compiled :class:`ServiceGraph` arranges NF instances into ordered
*stages*.  All NFs inside one stage run in parallel; consecutive stages
are sequential (the *equivalent chain length* of §6.2.4 is the number of
stages).  Each NF is assigned a packet *version*:

* version 1 is the original packet;
* any other version is a header-only copy created the moment that
  version is first needed (§4.2 OP#2), carrying the writes of the NFs
  that conflict with version-1 processing.

Execution semantics (mirrors §5):

* refs of version ``v`` advance from stage ``s`` to stage ``s+1`` once
  every stage-``s`` NF assigned to ``v`` has finished (so a downstream
  writer can never race an in-stage reader of the same buffer);
* when a version has no NFs in any later stage, each of its final NFs
  independently notifies the merger (hence the Accumulating Table's
  *count* can exceed the number of *versions*, §5.3);
* the merger fires once ``total_count`` notifications arrive and applies
  the merging operations (MOs) to produce the output packet.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..net.fields import Field
from .actions import ActionProfile

__all__ = [
    "NFNode",
    "StageEntry",
    "Stage",
    "CopySpec",
    "MergeOpKind",
    "MergeOp",
    "ServiceGraph",
]

ORIGINAL_VERSION = 1


class NFNode:
    """One NF instance placed in a service graph."""

    __slots__ = ("name", "kind", "profile", "priority")

    def __init__(self, name: str, kind: str, profile: ActionProfile, priority: int = 0):
        self.name = name
        self.kind = kind
        self.profile = profile
        #: Merge priority: higher wins field conflicts.  Derived from the
        #: NF's position in the original chain order ("the NF with the
        #: back order is assigned a higher priority", §3) or from explicit
        #: Priority rules.
        self.priority = priority

    def __repr__(self) -> str:
        return f"NFNode({self.name}:{self.kind}, prio={self.priority})"


class StageEntry:
    """An NF running in a particular stage, on a particular version."""

    __slots__ = ("node", "version")

    def __init__(self, node: NFNode, version: int):
        if version < 1:
            raise ValueError("versions are numbered from 1")
        self.node = node
        self.version = version

    def __repr__(self) -> str:
        return f"{self.node.name}@v{self.version}"


class Stage:
    """A parallel block of stage entries."""

    def __init__(self, entries: Sequence[StageEntry]):
        if not entries:
            raise ValueError("a stage needs at least one NF")
        names = [e.node.name for e in entries]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate NF in stage: {names}")
        self.entries = list(entries)

    def versions(self) -> Set[int]:
        return {e.version for e in self.entries}

    def entries_on(self, version: int) -> List[StageEntry]:
        return [e for e in self.entries if e.version == version]

    def __iter__(self) -> Iterator[StageEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return f"Stage({', '.join(map(repr, self.entries))})"


class CopySpec:
    """A packet copy: create ``version`` at the entry of ``stage_index``.

    ``header_only`` reflects OP#2: copies are 64-byte header copies
    unless some NF on the new version touches the payload.
    """

    __slots__ = ("stage_index", "version", "header_only")

    def __init__(self, stage_index: int, version: int, header_only: bool = True):
        self.stage_index = stage_index
        self.version = version
        self.header_only = header_only

    def __repr__(self) -> str:
        mode = "hdr" if self.header_only else "full"
        return f"Copy(v{self.version}@stage{self.stage_index},{mode})"


class MergeOpKind(enum.Enum):
    MODIFY = "modify"
    ADD = "add"
    REMOVE = "remove"


class MergeOp:
    """One merging operation (§5.3): modify / add / remove.

    * ``MODIFY``: overwrite ``field`` of v1 with the value from
      ``src_version``.
    * ``ADD``: splice the header unit ``field`` (e.g. the AH) from
      ``src_version`` into v1.
    * ``REMOVE``: delete the header unit ``field`` from v1.
    """

    __slots__ = ("kind", "field", "src_version")

    def __init__(self, kind: MergeOpKind, field: Field, src_version: Optional[int] = None):
        if kind in (MergeOpKind.MODIFY, MergeOpKind.ADD) and src_version is None:
            raise ValueError(f"{kind.value} needs a source version")
        self.kind = kind
        self.field = field
        self.src_version = src_version

    def __repr__(self) -> str:
        if self.kind is MergeOpKind.REMOVE:
            return f"remove(v1.{self.field})"
        return f"{self.kind.value}(v1.{self.field}, v{self.src_version}.{self.field})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MergeOp)
            and (self.kind, self.field, self.src_version)
            == (other.kind, other.field, other.src_version)
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.field, self.src_version))


class ServiceGraph:
    """The compiled service graph plus everything the dataplane needs."""

    def __init__(
        self,
        stages: Sequence[Stage],
        copies: Sequence[CopySpec] = (),
        merge_ops: Sequence[MergeOp] = (),
        name: str = "graph",
    ):
        if not stages:
            raise ValueError("a service graph needs at least one stage")
        self.name = name
        self.stages = list(stages)
        self.copies = list(copies)
        self.merge_ops = list(merge_ops)
        self._validate()

    def _validate(self) -> None:
        seen: Set[str] = set()
        for stage in self.stages:
            for entry in stage:
                if entry.node.name in seen:
                    raise ValueError(f"NF {entry.node.name} appears in two stages")
                seen.add(entry.node.name)
        copy_versions = {c.version for c in self.copies}
        if ORIGINAL_VERSION in copy_versions:
            raise ValueError("version 1 is the original and cannot be a copy")
        for version in self.versions():
            if version != ORIGINAL_VERSION and version not in copy_versions:
                raise ValueError(f"version {version} has no CopySpec")

    # ------------------------------------------------------------- queries
    def nodes(self) -> List[NFNode]:
        return [entry.node for stage in self.stages for entry in stage]

    def nf_names(self) -> List[str]:
        return [node.name for node in self.nodes()]

    def versions(self) -> Set[int]:
        versions: Set[int] = set()
        for stage in self.stages:
            versions |= stage.versions()
        return versions or {ORIGINAL_VERSION}

    @property
    def num_versions(self) -> int:
        """The parallelism *copy degree* d of §6.3.1."""
        return len(self.versions())

    @property
    def equivalent_length(self) -> int:
        """Number of sequential stages (§6.2.4's 'equivalent chain length')."""
        return len(self.stages)

    @property
    def is_sequential(self) -> bool:
        """True when every stage holds exactly one NF and only v1 exists."""
        return all(len(stage) == 1 for stage in self.stages) and self.num_versions == 1

    @property
    def has_parallelism(self) -> bool:
        return not self.is_sequential

    def last_stage_of_version(self, version: int) -> int:
        last = -1
        for index, stage in enumerate(self.stages):
            if stage.entries_on(version):
                last = index
        if last < 0:
            raise ValueError(f"version {version} never used")
        return last

    def first_stage_of_version(self, version: int) -> int:
        for index, stage in enumerate(self.stages):
            if stage.entries_on(version):
                return index
        raise ValueError(f"version {version} never used")

    def merger_notifications(self) -> List[StageEntry]:
        """The stage entries that notify the merger (each version's final NFs)."""
        notifications: List[StageEntry] = []
        for version in sorted(self.versions()):
            last = self.last_stage_of_version(version)
            notifications.extend(self.stages[last].entries_on(version))
        return notifications

    @property
    def total_count(self) -> int:
        """The CT's 'Total Count': notifications the merger must collect."""
        return len(self.merger_notifications())

    @property
    def needs_merger(self) -> bool:
        """A strictly sequential graph bypasses the merger entirely (§6.2.1)."""
        return self.has_parallelism

    def stage_of(self, nf_name: str) -> Tuple[int, StageEntry]:
        for index, stage in enumerate(self.stages):
            for entry in stage:
                if entry.node.name == nf_name:
                    return index, entry
        raise KeyError(f"NF {nf_name!r} not in graph")

    def describe(self) -> str:
        """Human-readable structure, e.g. ``vpn -> (monitor | firewall) -> lb``."""
        parts: List[str] = []
        for stage in self.stages:
            labels = [
                e.node.name if e.version == ORIGINAL_VERSION else f"{e.node.name}[v{e.version}]"
                for e in stage
            ]
            parts.append(labels[0] if len(labels) == 1 else "(" + " | ".join(labels) + ")")
        return " -> ".join(parts)

    def __repr__(self) -> str:
        return f"ServiceGraph({self.name!r}: {self.describe()})"

    # --------------------------------------------------------- construction
    @classmethod
    def sequential(cls, nodes: Sequence[NFNode], name: str = "chain") -> "ServiceGraph":
        """A plain sequential chain (the traditional composition)."""
        stages = [Stage([StageEntry(node, ORIGINAL_VERSION)]) for node in nodes]
        return cls(stages, name=name)
