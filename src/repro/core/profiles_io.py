"""Action-profile serialization: the operator registration format.

§4.3: "network operators could generate an action profile of the NF
manually or with the analysis tool provided by NFP, and register it
into Table 2."  The manual path needs a concrete format; we use a
plain dict/JSON structure::

    {
      "name": "my-nf",
      "deployment_share": 0.05,
      "reads":   ["sip", "dip"],
      "writes":  ["ttl"],
      "adds":    [],
      "removes": [],
      "drop":    true
    }

Round-trips losslessly through :func:`profile_to_dict` /
:func:`profile_from_dict`; :func:`save_action_table` /
:func:`load_action_table` persist an entire table.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from ..net.fields import Field
from .action_table import ActionTable
from .actions import Action, ActionProfile, Verb

__all__ = [
    "profile_to_dict",
    "profile_from_dict",
    "save_action_table",
    "load_action_table",
]


def profile_to_dict(profile: ActionProfile) -> Dict:
    """Serialise a profile to a JSON-compatible dict."""
    return {
        "name": profile.name,
        "deployment_share": profile.deployment_share,
        "reads": sorted(str(f) for f in profile.reads),
        "writes": sorted(str(f) for f in profile.writes),
        "adds": sorted(str(f) for f in profile.adds),
        "removes": sorted(str(f) for f in profile.removes),
        "drop": profile.may_drop,
    }


def profile_from_dict(data: Dict) -> ActionProfile:
    """Parse a profile dict; raises ``ValueError`` on malformed input."""
    try:
        name = data["name"]
    except KeyError:
        raise ValueError("profile dict needs a 'name'") from None
    actions: List[Action] = []
    for key, verb in (
        ("reads", Verb.READ),
        ("writes", Verb.WRITE),
        ("adds", Verb.ADD),
        ("removes", Verb.REMOVE),
    ):
        for token in data.get(key, ()):
            actions.append(Action(verb, Field.parse(token)))
    if data.get("drop"):
        actions.append(Action(Verb.DROP))
    return ActionProfile(
        name, actions, deployment_share=data.get("deployment_share")
    )


def save_action_table(table: ActionTable, path: Union[str, Path]) -> None:
    """Write every profile in the table as a JSON document."""
    payload = {"profiles": [profile_to_dict(p) for p in table]}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_action_table(path: Union[str, Path]) -> ActionTable:
    """Load an action table previously written by :func:`save_action_table`."""
    payload = json.loads(Path(path).read_text())
    table = ActionTable()
    for entry in payload.get("profiles", ()):
        table.register(profile_from_dict(entry))
    return table
