"""Policy conflict *resolution* (§3's future work, beyond detection).

`check_policy` finds conflicts; this module repairs them.  Strategy
(following the PGA-style "most recent / most specific intent wins"
heuristics the paper cites):

* **Order cycles** — drop the latest-added Order rule on the cycle
  (earlier intents are treated as more authoritative).
* **Position clashes** — keep the first pin per NF and per end; drop
  later contradicting pins.
* **Order/Position contradictions** — Position rules are stronger
  intents ("requires all packets to be processed by the VPN first"),
  so the contradicting Order rule is dropped.
* **Priority contradictions** — keep the first of a contradictory
  pair.

Every repair is reported so the operator can audit what was discarded.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from .conflicts import check_policy
from .policy import OrderRule, Policy, Position, PositionRule, PriorityRule

__all__ = ["ResolutionReport", "resolve_policy"]


class ResolutionReport:
    """What :func:`resolve_policy` changed."""

    def __init__(self, policy: Policy, dropped: List[str]):
        self.policy = policy
        self.dropped = dropped

    @property
    def clean(self) -> bool:
        """True when nothing had to be dropped."""
        return not self.dropped

    def __repr__(self) -> str:
        return f"ResolutionReport(dropped={len(self.dropped)} rules)"


def resolve_policy(policy: Policy, max_rounds: int = 100) -> ResolutionReport:
    """Return a conflict-free copy of ``policy`` plus a repair log."""
    rules = list(policy.rules)
    dropped: List[str] = []

    for _ in range(max_rounds):
        candidate = Policy(instances=policy.instances.values(),
                           name=policy.name)
        for rule in rules:
            candidate.add(rule)
        report = check_policy(candidate)
        if report.ok:
            return ResolutionReport(candidate, dropped)
        victim_index = _pick_victim(rules, report.errors)
        dropped.append(f"dropped {rules[victim_index]!r}: {report.errors[0]}")
        del rules[victim_index]
    raise RuntimeError("policy resolution did not converge")


def _pick_victim(rules: List, errors: List[str]) -> int:
    """Choose the rule to drop for the first reported error."""
    error = errors[0]

    if "cycle" in error:
        cycle_nodes = set(error.split(": ", 1)[1].split(" -> "))
        # Latest-added Order rule fully inside the cycle.
        for index in range(len(rules) - 1, -1, -1):
            rule = rules[index]
            if isinstance(rule, OrderRule) and {rule.before, rule.after} <= cycle_nodes:
                return index

    if "pinned both first and last" in error or "multiple NFs pinned" in error:
        seen: Set[Tuple] = set()
        # Latest Position rule that re-pins an NF or an end.
        for index in range(len(rules) - 1, -1, -1):
            rule = rules[index]
            if isinstance(rule, PositionRule):
                return index

    if "pinned first but ordered after" in error or \
            "pinned last but ordered before" in error:
        # Drop the contradicting Order rule (Position wins).
        pinned_first = {
            r.nf for r in rules
            if isinstance(r, PositionRule) and r.position is Position.FIRST
        }
        pinned_last = {
            r.nf for r in rules
            if isinstance(r, PositionRule) and r.position is Position.LAST
        }
        for index in range(len(rules) - 1, -1, -1):
            rule = rules[index]
            if isinstance(rule, OrderRule) and (
                rule.after in pinned_first or rule.before in pinned_last
            ):
                return index

    if "contradictory priorities" in error:
        seen_pairs: Set[Tuple[str, str]] = set()
        for index, rule in enumerate(rules):
            if isinstance(rule, PriorityRule):
                if (rule.low, rule.high) in seen_pairs:
                    return index
                seen_pairs.add((rule.high, rule.low))

    # Fallback: drop the last rule.
    return len(rules) - 1
