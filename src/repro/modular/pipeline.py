"""Modular NF pipelines and the OpenBox / OpenBox+NFP transformations.

A :class:`BlockPipeline` is the (linearised) processing pipeline of one
modular NF -- the per-packet block sequence of Fig. 15's left side.
Two transformations reproduce the figure:

* :func:`openbox_merge` -- concatenate two NFs' pipelines while sharing
  common prefix blocks (OpenBox's "sharing common building blocks"):
  the classic Firewall + IPS merge shares ReadPackets and the
  HeaderClassifier, leaving Alert(FW), DPI, Alert(IPS), Drop, Output.
* :func:`nfp_parallelize` -- run Algorithm 1 over adjacent merged
  blocks and pack independent ones into parallel stages, exactly as the
  NFP compiler does for whole NFs.  In Fig. 15 this lets Alert(FW) run
  beside DPI, shortening the critical path further.

Costs are per-packet microseconds; :meth:`BlockPipeline.critical_path`
is the figure's latency metric.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.dependency import (
    DEFAULT_DEPENDENCY_TABLE,
    DependencyTable,
    can_share_buffer,
)
from .blocks import Block

__all__ = ["BlockPipeline", "openbox_merge", "nfp_parallelize", "StagedPipeline"]


class BlockPipeline:
    """A sequential pipeline of blocks (one modular NF, or a merged one)."""

    def __init__(self, name: str, blocks: Sequence[Block]):
        if not blocks:
            raise ValueError("pipeline needs at least one block")
        self.name = name
        self.blocks = list(blocks)

    @property
    def total_cost(self) -> float:
        return sum(block.cost_us for block in self.blocks)

    def critical_path(self) -> float:
        """Sequential pipelines: the critical path is the full sum."""
        return self.total_cost

    def block_names(self) -> List[str]:
        return [block.name for block in self.blocks]

    def __len__(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:
        return f"BlockPipeline({self.name}: {' -> '.join(self.block_names())})"


class StagedPipeline:
    """A pipeline whose stages may hold several parallel blocks."""

    def __init__(self, name: str, stages: Sequence[Sequence[Block]]):
        if not stages or any(not s for s in stages):
            raise ValueError("stages must be non-empty")
        self.name = name
        self.stages = [list(stage) for stage in stages]

    def critical_path(self) -> float:
        """Per stage, only the slowest parallel block counts."""
        return sum(max(b.cost_us for b in stage) for stage in self.stages)

    @property
    def total_cost(self) -> float:
        return sum(b.cost_us for stage in self.stages for b in stage)

    def describe(self) -> str:
        parts = []
        for stage in self.stages:
            names = [b.name for b in stage]
            parts.append(names[0] if len(names) == 1 else "(" + " | ".join(names) + ")")
        return " -> ".join(parts)

    def __repr__(self) -> str:
        return f"StagedPipeline({self.name}: {self.describe()})"


def openbox_merge(first: BlockPipeline, second: BlockPipeline) -> BlockPipeline:
    """Merge two pipelines, sharing the common block prefix (OpenBox).

    Blocks from the second pipeline that are equivalent to a
    same-position block of the first are deduplicated; the remaining
    blocks are appended in order.
    """
    merged: List[Block] = list(first.blocks)
    prefix = 0
    while (
        prefix < len(first.blocks)
        and prefix < len(second.blocks)
        and first.blocks[prefix].equivalent(second.blocks[prefix])
    ):
        prefix += 1
    merged.extend(second.blocks[prefix:])
    return BlockPipeline(f"{first.name}+{second.name}", merged)


def nfp_parallelize(
    pipeline: BlockPipeline,
    table: DependencyTable = DEFAULT_DEPENDENCY_TABLE,
) -> StagedPipeline:
    """Apply NFP's parallelism analysis at block granularity.

    Greedy left-to-right stage packing: a block joins the current stage
    iff Algorithm 1 finds it parallelizable (without copy -- blocks of
    one NF share the packet buffer) with *every* block already in the
    stage, in both directions.
    """
    stages: List[List[Block]] = []
    placed_stage: dict = {}  # base name -> stage index holding it
    for block in pipeline.blocks:
        # The earliest stage this block may join: strictly after every
        # control dependency already placed.
        min_stage = 0
        for dep in block.depends_on:
            if dep in placed_stage:
                min_stage = max(min_stage, placed_stage[dep] + 1)
        placed = False
        for index in range(min_stage, len(stages)):
            current = stages[index]
            compatible = all(
                can_share_buffer(member.profile, block.profile, table)
                and block.base_name not in member.depends_on
                for member in current
            )
            if compatible:
                current.append(block)
                placed_stage[block.base_name] = index
                placed = True
                break
        if not placed:
            stages.append([block])
            placed_stage[block.base_name] = len(stages) - 1
    return StagedPipeline(f"{pipeline.name}||nfp", stages)
