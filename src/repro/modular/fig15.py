"""Fig. 15: the OpenBox+NFP Firewall/IPS merge.

Builds the figure's two modular NFs, applies the OpenBox merge and then
NFP block-level parallelism, and reports the three critical paths:

* plain sequential composition (Firewall then IPS, no sharing);
* OpenBox merge (shared ReadPackets + HeaderClassifier);
* OpenBox + NFP (Alert(firewall) parallel with DPI).
"""

from __future__ import annotations

from dataclasses import dataclass

from .blocks import alert, dpi, drop, header_classifier, output, read_packets
from .pipeline import BlockPipeline, StagedPipeline, nfp_parallelize, openbox_merge

__all__ = ["Fig15Result", "build_firewall_pipeline", "build_ips_pipeline", "fig15"]


def build_firewall_pipeline() -> BlockPipeline:
    """Fig. 15's modular firewall: read -> classify -> alert (drop/out
    handled at the tail of the merged pipeline)."""
    return BlockPipeline(
        "firewall",
        [read_packets(), header_classifier(),
         alert("firewall", depends_on=("header_classifier",))],
    )


def build_ips_pipeline() -> BlockPipeline:
    """Fig. 15's modular IPS: read -> classify -> DPI -> alert -> drop -> out."""
    return BlockPipeline(
        "ips",
        [read_packets(), header_classifier(), dpi(),
         alert("ips", depends_on=("dpi",)),
         drop(depends_on=("header_classifier", "dpi")), output()],
    )


@dataclass
class Fig15Result:
    sequential: BlockPipeline
    openbox: BlockPipeline
    openbox_nfp: StagedPipeline

    @property
    def sequential_cost(self) -> float:
        return self.sequential.critical_path()

    @property
    def openbox_cost(self) -> float:
        return self.openbox.critical_path()

    @property
    def openbox_nfp_cost(self) -> float:
        return self.openbox_nfp.critical_path()

    def reduction_vs_sequential(self) -> float:
        return 1.0 - self.openbox_nfp_cost / self.sequential_cost

    def reduction_vs_openbox(self) -> float:
        return 1.0 - self.openbox_nfp_cost / self.openbox_cost

    def __str__(self) -> str:
        return (
            f"sequential: {self.sequential_cost:.1f}us | "
            f"openbox: {self.openbox_cost:.1f}us | "
            f"openbox+nfp: {self.openbox_nfp_cost:.1f}us "
            f"({self.reduction_vs_sequential()*100:.1f}% vs seq, "
            f"{self.reduction_vs_openbox()*100:.1f}% vs openbox)\n"
            f"graph: {self.openbox_nfp.describe()}"
        )


def fig15() -> Fig15Result:
    """Run the Fig. 15 merge and parallelisation."""
    firewall = build_firewall_pipeline()
    ips = build_ips_pipeline()
    sequential = BlockPipeline("fw;ips", firewall.blocks + ips.blocks)
    merged = openbox_merge(firewall, ips)
    parallel = nfp_parallelize(merged)
    return Fig15Result(sequential=sequential, openbox=merged, openbox_nfp=parallel)
