"""OpenBox-style modular NFs + block-level NFP parallelism (§7, Fig. 15)."""

from .blocks import Block, alert, dpi, drop, header_classifier, output, read_packets
from .pipeline import BlockPipeline, StagedPipeline, nfp_parallelize, openbox_merge
from .fig15 import Fig15Result, build_firewall_pipeline, build_ips_pipeline, fig15

__all__ = [
    "Block",
    "read_packets",
    "header_classifier",
    "dpi",
    "alert",
    "drop",
    "output",
    "BlockPipeline",
    "StagedPipeline",
    "openbox_merge",
    "nfp_parallelize",
    "fig15",
    "Fig15Result",
    "build_firewall_pipeline",
    "build_ips_pipeline",
]
