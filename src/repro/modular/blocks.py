"""Processing blocks: OpenBox-style modular NF building blocks (§7).

"OpenBox decomposes NFs into building blocks, many of which share no
dependencies.  Therefore, NFP can be used here to exploit block level
parallelism."  A :class:`Block` is a named processing step with an
action profile (reusing the orchestrator's action model, so Algorithm 1
applies unchanged at block granularity) and a calibrated cost.

The standard blocks below are those of Fig. 15: ReadPackets,
HeaderClassifier, DPI, Alert, Drop and Output.
"""

from __future__ import annotations

from typing import Iterable

from ..core.actions import Action, ActionProfile, Verb
from ..net.fields import Field

__all__ = [
    "Block",
    "read_packets",
    "header_classifier",
    "dpi",
    "alert",
    "drop",
    "output",
]


class Block:
    """One building block: name, action profile, per-packet cost.

    ``depends_on`` lists base names of blocks whose *verdict* this block
    consumes (control dependencies).  OpenBox graphs encode these as
    edges; NFP's block-level parallelism must respect them in addition
    to the data-action analysis -- a Drop that acts on the DPI verdict
    cannot run beside the DPI, even though their packet actions commute.
    """

    __slots__ = ("name", "profile", "cost_us", "depends_on")

    def __init__(
        self,
        name: str,
        actions: Iterable[Action],
        cost_us: float,
        depends_on: Iterable[str] = (),
    ):
        if cost_us < 0:
            raise ValueError("block cost must be non-negative")
        self.name = name
        self.profile = ActionProfile(name, actions)
        self.cost_us = cost_us
        self.depends_on = frozenset(depends_on)

    def equivalent(self, other: "Block") -> bool:
        """Two blocks are shareable when they do the same work.

        OpenBox merges "common building blocks"; we treat blocks with
        the same name prefix (before any ``#instance`` suffix) and the
        same action profile as common.
        """
        return (
            self.base_name == other.base_name
            and self.profile.actions == other.profile.actions
        )

    @property
    def base_name(self) -> str:
        return self.name.split("#", 1)[0]

    def renamed(self, suffix: str) -> "Block":
        return Block(
            f"{self.base_name}#{suffix}", self.profile.actions, self.cost_us,
            self.depends_on,
        )

    def __repr__(self) -> str:
        return f"Block({self.name})"


def read_packets(cost_us: float = 0.5) -> Block:
    """Pull the packet in; no field semantics."""
    return Block("read_packets", [], cost_us)


def header_classifier(cost_us: float = 1.5) -> Block:
    """Match the 5-tuple against rules (read-only header access)."""
    return Block(
        "header_classifier",
        [Action(Verb.READ, f) for f in (Field.SIP, Field.DIP, Field.SPORT, Field.DPORT)],
        cost_us,
        depends_on=("read_packets",),
    )


def dpi(cost_us: float = 12.0) -> Block:
    """Deep packet inspection: reads the payload."""
    return Block(
        "dpi",
        [Action(Verb.READ, Field.PAYLOAD)],
        cost_us,
        depends_on=("header_classifier",),
    )


def alert(owner: str, cost_us: float = 1.0, depends_on: Iterable[str] = ()) -> Block:
    """Raise an alert on a verdict; tagged with the owning NF."""
    return Block(f"alert#{owner}", [], cost_us, depends_on=depends_on)


def drop(cost_us: float = 0.3, depends_on: Iterable[str] = ("header_classifier",)) -> Block:
    """Drop the packet on a classifier/DPI verdict."""
    return Block("drop", [Action(Verb.DROP)], cost_us, depends_on=depends_on)


def output(cost_us: float = 0.5) -> Block:
    """Emit the packet."""
    return Block("output", [], cost_us, depends_on=("drop",))
