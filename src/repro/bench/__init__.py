"""repro.bench: the machine-readable benchmark trajectory.

The observability layer for performance: a registry of named, seeded
scenarios (:mod:`repro.bench.spec`) run by :func:`run_bench` into
schema-versioned ``BENCH_<n>.json`` reports (:mod:`repro.bench.schema`)
that a tolerance-banded comparator (:mod:`repro.bench.compare`) can
gate CI on.  Every report also records harness self-observability --
wall-time, peak RSS, and per-stage time attribution rolled up from
:mod:`repro.telemetry` tracer spans.

Entry points: ``python -m repro bench [--quick|--full]`` to measure,
``python -m repro bench --compare old.json new.json`` to gate.
"""

from .schema import (
    GATED_METRICS,
    SCHEMA,
    BenchReport,
    ScenarioResult,
    measurement_to_dict,
    validate_bench,
)
from .spec import REGISTRY, BenchmarkSpec, SpecOutcome, specs_for
from .runner import (
    DEFAULT_PACKETS,
    git_describe,
    next_bench_path,
    run_bench,
    run_spec,
    summary_table,
)
from .compare import (
    DEFAULT_TOLERANCES,
    ComparisonReport,
    MetricDelta,
    compare_reports,
)

__all__ = [
    "SCHEMA",
    "GATED_METRICS",
    "BenchReport",
    "ScenarioResult",
    "measurement_to_dict",
    "validate_bench",
    "BenchmarkSpec",
    "SpecOutcome",
    "REGISTRY",
    "specs_for",
    "DEFAULT_PACKETS",
    "run_bench",
    "run_spec",
    "summary_table",
    "next_bench_path",
    "git_describe",
    "DEFAULT_TOLERANCES",
    "ComparisonReport",
    "MetricDelta",
    "compare_reports",
]
