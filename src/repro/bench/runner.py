"""Run the registered scenarios and assemble a ``BenchReport``.

Besides the simulated metrics every scenario reports, the runner
observes the reproduction harness *itself*: wall-time and peak RSS per
scenario (``resource.getrusage``), total session wall-time, and the
commit the numbers were produced from -- so the ``BENCH_<n>.json``
trajectory can answer both "did the simulated system regress?" and
"did the Python that simulates it get slower?".
"""

from __future__ import annotations

import os
import platform
import re
import subprocess
import sys
import time
from typing import Callable, List, Optional, Tuple

from ..eval.report import render_table
from ..telemetry.rollup import STAGE_NAMES
from .schema import SCHEMA, BenchReport, ScenarioResult
from .spec import BenchmarkSpec, specs_for

__all__ = [
    "DEFAULT_PACKETS",
    "git_describe",
    "next_bench_path",
    "run_spec",
    "run_bench",
    "summary_table",
]

#: Per-scenario packet budgets by mode.
DEFAULT_PACKETS = {"quick": 800, "full": 3000}


def git_describe(cwd: Optional[str] = None) -> Tuple[str, bool]:
    """(commit hash, dirty flag); ("unknown", False) outside a checkout."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, cwd=cwd, timeout=10,
        ).stdout.strip()
        if not commit:
            return "unknown", False
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, cwd=cwd, timeout=10,
        ).stdout.strip()
        return commit, bool(status)
    except (OSError, subprocess.SubprocessError):
        return "unknown", False


def _peak_rss_kb() -> int:
    """Process peak RSS in KiB (0 where ``resource`` is unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes; normalise to KiB.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        rss //= 1024
    return int(rss)


def next_bench_path(root: str = ".") -> str:
    """The next free ``BENCH_<n>.json`` path under ``root``."""
    taken = []
    for name in os.listdir(root or "."):
        match = re.fullmatch(r"BENCH_(\d+)\.json", name)
        if match:
            taken.append(int(match.group(1)))
    index = max(taken, default=-1) + 1
    return os.path.join(root, f"BENCH_{index}.json")


def run_spec(spec: BenchmarkSpec, packets: int, seed: int) -> ScenarioResult:
    """Run one scenario with wall-time and RSS self-observation."""
    started = time.perf_counter()
    outcome = spec.runner(packets, seed)
    wall_s = time.perf_counter() - started
    return ScenarioResult.from_parts(
        name=spec.name,
        measurement=outcome.measurement,
        rollup=outcome.rollup,
        params=outcome.params or {"packets": packets, "seed": seed},
        wall_time_s=wall_s,
        peak_rss_kb=_peak_rss_kb(),
        extra_metrics=outcome.extra_metrics,
        volatile=outcome.volatile,
    )


def run_bench(
    mode: str = "quick",
    packets: Optional[int] = None,
    seed: int = 1,
    names: Optional[List[str]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> BenchReport:
    """Run the selected scenarios and return the assembled report."""
    specs = specs_for(mode, names=names)
    budget = DEFAULT_PACKETS[mode] if packets is None else packets
    commit, dirty = git_describe()
    started = time.perf_counter()
    scenarios: List[ScenarioResult] = []
    for spec in specs:
        if log is not None:
            log(f"running {spec.name} ({spec.description})")
        scenarios.append(run_spec(spec, budget, seed))
    report = BenchReport(
        meta={
            "schema": SCHEMA,
            "mode": mode,
            "packets": budget,
            "seed": seed,
            "commit": commit,
            "dirty": dirty,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "created_unix": int(time.time()),
            "wall_time_s": round(time.perf_counter() - started, 3),
            "peak_rss_kb": _peak_rss_kb(),
            "scenarios": len(scenarios),
        },
        scenarios=scenarios,
    )
    return report


def summary_table(report: BenchReport) -> str:
    """Per-scenario ASCII summary for the CLI."""
    rows = []
    for result in report.scenarios:
        shares = result.stage_shares
        dominant = max(
            STAGE_NAMES, key=lambda name: shares.get(name, 0.0)
        ) if shares else "-"
        rows.append([
            result.name,
            result.metrics.get("latency_p50_us", 0.0),
            result.metrics.get("latency_p99_us", 0.0),
            result.metrics.get("throughput_mpps", 0.0),
            result.metrics.get("resource_overhead", 0.0) * 100,
            f"{dominant} ({shares.get(dominant, 0.0) * 100:.0f}%)",
            f"{result.wall_time_s:.2f}",
        ])
    return render_table(
        ["scenario", "p50 us", "p99 us", "Mpps", "overhead %",
         "dominant stage", "wall s"],
        rows,
    )
