"""The benchmark scenario registry: named, seeded, budgeted workloads.

Every scenario wraps an existing ``repro.eval`` entry point with fixed
seeds and a packet budget, collects telemetry spans while it runs, and
reports the measurement plus a per-stage time attribution
(:mod:`repro.telemetry.rollup`).  The registry is the single source of
truth for what ``python -m repro bench`` runs:

* ``seq_chain_N`` / ``par_chain_N`` -- firewall chains of length 2-6,
  sequential vs NFP-parallel (Fig. 9/11 forced setups, 300 busy cycles);
* ``fig11_degree_*`` -- the parallelism-degree sweep points;
* ``fig13_north_south`` / ``fig13_west_east`` -- the real-world
  data-center chains, compiled from policies, data-center size mix;
* ``ablation_op1_full_copy`` / ``ablation_op2_header_copy`` -- the §4.2
  copy-operation ablations (full vs header-only copies, degree 2);
* ``scale_ids_x{1..4}`` -- the §7 scale-out sweep: one heavy IDS,
  1-4 RSS-split instances, throughput scaling with the instance count;
* ``fig13_ns_x2_cache_off`` / ``fig13_ns_x2_cache_on`` -- the
  north-south chain at 2 instances/NF without and with the classifier
  flow cache (same seed, so the classify-stage attribution delta is the
  cache's doing);
* ``fig13_ns_faults`` / ``fig13_we_faults`` -- fault-injected runs with
  the windowed telemetry sampler and watch rules armed: a crash/failover
  episode on the north-south chain, and the AT-timeout episode (hung
  monitor stranding AT entries) on the copy-bearing west-east chain;
* ``batched_scale_ids_x4`` / ``batched_fig13_ns`` -- the batched hot
  path raced against the scalar functional plane on identical streams;
  output divergences publish as ``lost`` and gate at absolute zero;
* ``des_fastpath_fig13_ns`` -- the DES event-core fast path (calendar
  scheduler + burst ring transfers): same delivery/drop accounting as
  the per-packet model, far fewer simulator events;
* ``flash_crowd_autoscale`` -- a flash crowd over a Zipf flow mix on an
  elastic nat->vpn chain: the PR-10 autoscaler rescales the VPN
  bottleneck live and the extras carry core-seconds vs static peak;
* ``fuzz_corpus_replay`` -- the committed differential-fuzz corpus
  replayed through all three planes, as a throughput workload.

Scenarios tagged ``quick`` form the CI smoke set; ``--full`` runs
everything at a larger packet budget.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional

from ..core.orchestrator import Orchestrator
from ..core.policy import Policy
from ..eval.experiments import NORTH_SOUTH_CHAIN, WEST_EAST_CHAIN
from ..eval.forced import forced_parallel, forced_sequential
from ..eval.harness import measure_nfp
from ..sim import DEFAULT_PARAMS
from ..sim.stats import summarize
from ..telemetry import (
    Sampler,
    SpanKind,
    StageRollup,
    TelemetryHub,
    Tracer,
    Watcher,
    stage_rollup,
)
from ..traffic.generator import DATACENTER_MIX, PacketSizeDistribution
from .schema import measurement_to_dict

__all__ = [
    "BenchmarkSpec",
    "SpecOutcome",
    "REGISTRY",
    "specs_for",
    "corpus_dir",
]

#: Busy-loop cycles for the synthetic firewall chains (Fig. 9/11 point).
CHAIN_BUSY_CYCLES = 300

#: The copy ablations run 512 B frames so OP#1 (full copy) and OP#2
#: (64 B header copy) actually differ -- at 64 B they are the same copy.
FIXED_512B = PacketSizeDistribution([(512, 1.0)], name="512B")


@dataclass
class SpecOutcome:
    """What one scenario runner hands back to the bench runner."""

    measurement: Dict
    rollup: StageRollup
    extra_metrics: Dict = field(default_factory=dict)
    volatile: List[str] = field(default_factory=list)
    params: Dict = field(default_factory=dict)


@dataclass(frozen=True)
class BenchmarkSpec:
    """A named scenario: description, quick-set membership, runner."""

    name: str
    description: str
    quick: bool
    runner: Callable[[int, int], SpecOutcome]


def _counter_extras(hub: TelemetryHub) -> Dict:
    registry = hub.registry
    extras = {
        "copies_full": registry.counter_value("copy.full"),
        "copies_header": registry.counter_value("copy.header"),
        "ring_hops": registry.counter_value("ring.hops"),
        "merged": registry.counter_value("merger.merged"),
    }
    hits = registry.counter_value("classifier.cache_hit")
    misses = registry.counter_value("classifier.cache_miss")
    if hits or misses:
        extras["cache_hits"] = hits
        extras["cache_misses"] = misses
    return extras


def _measured(
    target_factory: Callable,
    extra_cycles: int = 0,
    sizes=None,
    label: str = "",
    instances=None,
    flow_cache: bool = False,
    faults: Optional[str] = None,
    watch: Optional[List[str]] = None,
    window_us: float = 1000.0,
    sim_params=None,
    scheduler: Optional[str] = None,
) -> Callable[[int, int], SpecOutcome]:
    """Build a runner around :func:`measure_nfp` with span collection.

    ``faults`` runs the scenario under fault injection; every
    delivery-dependent metric becomes volatile (fault timing vs load
    makes them workload-specific), and the fault/failover counters ride
    along as extras instead.

    ``watch`` arms a windowed :class:`~repro.telemetry.timeseries.Sampler`
    (one window per ``window_us`` of simulated time) with the given
    watch rules; peak-window stats and alert fire/clear counts then ride
    along as volatile extras (schema v2).  The sampler observes the same
    hub the scenario already fills, so an unarmed run costs nothing.

    ``sim_params`` overrides the calibrated :class:`~repro.sim.SimParams`
    (e.g. ``burst_transfers=True``); ``scheduler`` selects the DES
    pending-event structure (``"calendar"``).  The calendar scheduler is
    order-identical to the heap, so it changes no metric at all; burst
    transfers keep delivery/drop/throughput accounting identical but
    coalesce each burst's ring posts, which shifts absolute latency by a
    small deterministic amount (see
    :attr:`~repro.sim.SimParams.burst_transfers`) -- such scenarios gate
    against a baseline recorded in the same mode.  The event-count win
    rides along as the volatile ``events_processed`` extra.
    """

    def run(packets: int, seed: int) -> SpecOutcome:
        tracer = Tracer()
        hub = TelemetryHub(tracer=tracer)
        kwargs = dict(packets=packets, seed=seed, telemetry=hub,
                      extra_cycles=extra_cycles)
        if sizes is not None:
            kwargs["sizes"] = sizes
        if label:
            kwargs["label"] = label
        if instances is not None:
            kwargs["instances"] = instances
        if flow_cache:
            kwargs["flow_cache"] = True
        if faults:
            kwargs["faults"] = faults
        if sim_params is not None:
            kwargs["params"] = sim_params
        if scheduler is not None:
            kwargs["scheduler"] = scheduler
        sampler = watcher = None
        if watch is not None:
            sampler = Sampler(hub, window_us=window_us)
            watcher = Watcher(list(watch), hub=hub).attach(sampler)
            kwargs["sampler"] = sampler
        result = measure_nfp(target_factory(), **kwargs)
        params = {"packets": packets, "seed": seed,
                  "extra_cycles": extra_cycles}
        if instances is not None:
            params["instances"] = instances
        if flow_cache:
            params["flow_cache"] = True
        extras = _counter_extras(hub)
        volatile: List[str] = []
        if scheduler is not None:
            params["scheduler"] = scheduler
            extras["events_processed"] = result.events_processed
            volatile.append("events_processed")
        if sim_params is not None and getattr(
                sim_params, "burst_transfers", False):
            params["burst_transfers"] = True
        if faults:
            params["faults"] = faults
            registry = hub.registry
            extras.update({
                "faults_injected": registry.counter_value("faults.injected"),
                "at_timeouts": registry.counter_value("merger.at_timeout"),
                "restarts": registry.counter_value("failover.restarts"),
                "degraded_graphs":
                    registry.counter_value("failover.degraded_graphs"),
            })
            volatile += ["latency_mean_us", "latency_p50_us", "latency_p99_us",
                         "delivered", "lost", "nil_dropped"]
        if sampler is not None:
            params["window_us"] = window_us
            params["watch"] = list(watch)
            series = sampler.series
            telemetry_extras = {
                "windows": len(series.windows),
                "alerts_fired": watcher.fired,
                "alerts_cleared": watcher.cleared,
            }
            for key, metric in (("peak_window_tx", "tx.packets"),
                                ("peak_ring_occupancy", "ring.occupancy"),
                                ("peak_at_depth", "at.depth")):
                peak = series.peak(metric)
                if peak is not None:
                    telemetry_extras[key] = round(float(peak[0]), 6)
            extras.update(telemetry_extras)
            # Window timing under faults follows the fault timing, so
            # everything the sampler saw is reported, never gated.
            volatile = volatile + sorted(telemetry_extras)
        return SpecOutcome(
            measurement=measurement_to_dict(result),
            rollup=stage_rollup(tracer.events),
            extra_metrics=extras,
            volatile=volatile,
            params=params,
        )

    return run


def _batched_compare(
    target_factory: Callable,
    instances=None,
    label: str = "",
    num_flows: int = 64,
    batch_size: int = 32,
) -> Callable[[int, int], SpecOutcome]:
    """Build a runner that races the batched plane against the scalar one.

    Both planes consume byte-identical packet streams (same generator
    seed); the batched plane's outputs are compared byte-for-byte
    against the scalar plane's, and the divergence count is published as
    the ``lost`` metric -- which the compare gate holds to an absolute
    tolerance of zero, so any semantic drift fails CI, not just slows
    it.  Wall-clock rates (and the speedup ratio) are volatile: they
    measure this host, not the model.  The rollup attributes the two
    measured walls to the classify/ft stages so schema validation has a
    real per-stage attribution to check.
    """

    def run(packets: int, seed: int) -> SpecOutcome:
        from ..dataplane.batched import BatchedDataplane
        from ..dataplane.functional import FunctionalDataplane
        from ..traffic.generator import FIXED_64B, FlowGenerator

        scale = instances if instances is not None and instances > 1 else None
        stream = FlowGenerator(num_flows=num_flows, sizes=FIXED_64B,
                               seed=seed)
        scalar_pkts = stream.packets(packets)
        stream = FlowGenerator(num_flows=num_flows, sizes=FIXED_64B,
                               seed=seed)
        batched_pkts = stream.packets(packets)

        scalar = FunctionalDataplane(target_factory(), scale=scale)
        started = perf_counter()
        scalar_out = scalar.process_many(scalar_pkts)
        scalar_s = max(perf_counter() - started, 1e-9)

        plane = BatchedDataplane(target_factory(), scale=scale,
                                 batch_size=batch_size)
        started = perf_counter()
        batched_out = plane.process_many(batched_pkts)
        batched_s = max(perf_counter() - started, 1e-9)

        divergences = 0
        for got, want in zip(batched_out, scalar_out):
            if (got is None) != (want is None):
                divergences += 1
            elif got is not None and bytes(got.buf) != bytes(want.buf):
                divergences += 1

        scalar_mpps = packets / scalar_s / 1e6
        batched_mpps = packets / batched_s / 1e6
        emitted = sum(1 for pkt in batched_out if pkt is not None)
        rollup = StageRollup()
        rollup.add("classify", batched_s * 1e6 * plane.ct_walks
                   / max(plane.processed, 1))
        rollup.add("ft", batched_s * 1e6
                   * (1.0 - plane.ct_walks / max(plane.processed, 1)))
        # Wall-clock processing cost as the latency fields (volatile):
        # mean/p50 is the per-packet cost, p99 the per-batch cost -- a
        # packet's completion waits for its whole batch.
        per_pkt_us = batched_s * 1e6 / max(plane.processed, 1)
        measurement = {
            "system": "NFP-batched",
            "label": label or "batched vs scalar",
            "latency_mean_us": per_pkt_us,
            "latency_p50_us": per_pkt_us,
            "latency_p99_us": per_pkt_us * batch_size,
            "throughput_mpps": batched_mpps,
            "bottleneck": "host",
            "offered_mpps": scalar_mpps,
            "delivered": emitted,
            "lost": divergences,
            "nil_dropped": plane.dropped,
            "resource_overhead": 0.0,
            "cores_used": 0,
        }
        extras = {
            "copies_full": plane.counters.copies_full,
            "copies_header": plane.counters.copies_header,
            "scalar_mpps": round(scalar_mpps, 6),
            "batched_mpps": round(batched_mpps, 6),
            "speedup_vs_scalar": round(batched_mpps / max(scalar_mpps, 1e-12),
                                       6),
            "divergences": divergences,
            "closure_compiles": plane.chaining.closures_compiled,
            "ct_walks": plane.ct_walks,
        }
        return SpecOutcome(
            measurement=measurement,
            rollup=rollup,
            extra_metrics=extras,
            volatile=["throughput_mpps", "offered_mpps", "scalar_mpps",
                      "batched_mpps", "speedup_vs_scalar",
                      "latency_mean_us", "latency_p50_us",
                      "latency_p99_us"],
            params={"packets": packets, "seed": seed,
                    "batch_size": batch_size,
                    "instances": instances if instances else 1,
                    "num_flows": num_flows},
        )

    return run


def _compiled_chain(chain) -> Callable:
    def build():
        policy = Policy.from_chain(list(chain))
        return Orchestrator().compile(policy).graph

    return build


def corpus_dir() -> str:
    """Locate the committed fuzz corpus (repo checkout or cwd)."""
    here = os.path.dirname(os.path.abspath(__file__))
    candidates = [
        os.path.normpath(os.path.join(here, "..", "..", "..", "tests", "corpus")),
        os.path.join(os.getcwd(), "tests", "corpus"),
    ]
    for candidate in candidates:
        if os.path.isdir(candidate):
            return candidate
    raise FileNotFoundError(
        "fuzz corpus not found (looked in "
        + ", ".join(candidates)
        + "); run from a repo checkout or pass a corpus explicitly"
    )


def _replay_corpus(packets: int, seed: int) -> SpecOutcome:
    """Replay the committed fuzz corpus through all three planes.

    Latency percentiles come from the DES plane's span timestamps
    (simulated time, deterministic); the packets/s figure is wall-clock
    and therefore marked volatile.  Each case gets a fresh tracer so
    packet keys never collide across cases.
    """
    from ..check import FuzzCase, run_case

    rollup = StageRollup()
    latencies: List[float] = []
    cases = failures = replayed_packets = 0
    copies_full = copies_header = 0
    started = perf_counter()
    for path in sorted(glob.glob(os.path.join(corpus_dir(), "*.json"))):
        tracer = Tracer()
        hub = TelemetryHub(tracer=tracer)
        outcome = run_case(FuzzCase.load(path), include_des=True, telemetry=hub)
        cases += 1
        replayed_packets += outcome.packets
        if not outcome.ok:
            failures += 1
        copies_full += hub.registry.counter_value("copy.full")
        copies_header += hub.registry.counter_value("copy.header")
        rollup.merge(stage_rollup(tracer.events))
        for trace in tracer.traces().values():
            classify = next(
                (e for e in trace.events if e.kind is SpanKind.CLASSIFY), None)
            terminal = trace.terminal
            if classify is None or terminal is None:
                continue
            if terminal.kind is not SpanKind.OUTPUT:
                continue
            ingress = (classify.args or {}).get("ingress_us", classify.ts_us)
            latencies.append(terminal.ts_us - float(ingress))
    wall_s = max(perf_counter() - started, 1e-9)
    if latencies:
        summary = summarize(latencies)
        mean, p50, p99 = summary.mean, summary.p50, summary.p99
    else:
        mean = p50 = p99 = 0.0
    measurement = {
        "system": "NFP-DES",
        "label": f"fuzz corpus replay ({cases} cases)",
        "latency_mean_us": mean,
        "latency_p50_us": p50,
        "latency_p99_us": p99,
        "throughput_mpps": replayed_packets / wall_s / 1e6,
        "bottleneck": "harness",
        "offered_mpps": replayed_packets / wall_s / 1e6,
        "delivered": len(latencies),
        "lost": failures,
        "nil_dropped": 0,
        "resource_overhead": 0.0,
        "cores_used": 0,
    }
    return SpecOutcome(
        measurement=measurement,
        rollup=rollup,
        extra_metrics={"copies_full": copies_full,
                       "copies_header": copies_header,
                       "cases": cases, "cases_failed": failures},
        volatile=["throughput_mpps", "offered_mpps"],
        params={"cases": cases, "corpus": "tests/corpus"},
    )


def _flash_crowd_autoscale(packets: int, seed: int) -> SpecOutcome:
    """Flash crowd against an elastic nat->vpn chain (PR-10 tentpole).

    The offered rate traces a flash crowd (floor -> linear ramp ->
    plateau -> exponential decay) over a heavy-tailed (Zipf) flow mix;
    a :class:`~repro.autoscale.Autoscaler` watches windowed ring
    occupancy and rescales the VPN -- the chain's bottleneck at ~1.5
    Mpps/instance -- live, membership changes executing the classifier
    hold + drain barrier + stateful-handover protocol.

    The headline extras are the autoscaling claim itself: ``core_us``
    (exact elastic core-time integral) versus ``static_peak_core_us``
    (the same wall clock pinned at the peak core count), and
    ``unaccounted`` from the conservation ledger, which must stay 0
    across every membership change.  The timeline scales with the
    packet budget so quick and full runs both see ramp, plateau and
    decay.  Every drop is attributed (``ingress_full`` while the crowd
    outruns the ramping capacity); ``lost`` gates at the baseline like
    any other scenario, and a deterministic seed makes the whole
    episode -- alerts, rescales, drops -- reproducible.
    """
    from ..autoscale import ScalePolicy
    from ..eval.harness import measure_autoscale
    from ..traffic import FlashCrowdShape

    base_mpps, peak_mpps = 0.8, 3.5
    # Nominal horizon if the whole budget arrived at twice the floor
    # rate (the crowd roughly doubles the average); carves the crowd
    # phases out of that so any budget sees the full episode.
    horizon_us = packets / (base_mpps * 2.0)
    window_us = max(10.0, horizon_us / 100.0)
    shape = FlashCrowdShape(
        base_mpps=base_mpps, peak_mpps=peak_mpps,
        start_us=0.20 * horizon_us, ramp_us=0.10 * horizon_us,
        hold_us=0.35 * horizon_us, decay_us=0.15 * horizon_us,
    )
    policy = ScalePolicy(
        "vpn", min_instances=1, max_instances=4,
        # 0.25 of a 1024-slot ring: low enough that the quick budget's
        # proportionally smaller backlog still trips it, hysteretic via
        # the 2-window streak.
        up_rule="ring.occupancy > 0.25 for 2 windows",
        down_rule="ring.occupancy < 0.05 for 6 windows",
        cooldown_us=3.0 * window_us,
        max_barrier_us=horizon_us,
    )
    tracer = Tracer()
    hub = TelemetryHub(tracer=tracer)
    result = measure_autoscale(
        ["nat", "vpn"], policy, shape,
        packets=packets, seed=seed, telemetry=hub,
        num_flows=256, popularity="zipf",
        window_us=window_us, label="flash-crowd nat->vpn",
    )
    scaler = result.scaler
    extras = _counter_extras(hub)
    registry = hub.registry
    extras.update({
        "scale_ups": scaler.scale_ups,
        "scale_downs": scaler.scale_downs,
        "peak_cores": result.peak_cores,
        "core_us": round(result.core_us, 3),
        "static_peak_core_us": round(result.static_peak_core_us, 3),
        "core_savings_fraction": round(result.core_savings_fraction, 6),
        "unaccounted": result.conservation["unaccounted"],
        "moved_flows": registry.counter_value("autoscale.moved_flows"),
        "handover_flows":
            registry.counter_value("autoscale.handover_flows"),
        "barrier_timeouts":
            registry.counter_value("autoscale.barrier_timeout"),
    })
    sampler_extras = {
        "windows": len(result.sampler.series.windows),
        "alerts_fired": scaler.watcher.fired,
        "alerts_cleared": scaler.watcher.cleared,
    }
    peak = result.sampler.series.peak("ring.occupancy")
    if peak is not None:
        sampler_extras["peak_ring_occupancy"] = round(float(peak[0]), 6)
    extras.update(sampler_extras)
    return SpecOutcome(
        measurement=measurement_to_dict(result.measurement),
        rollup=stage_rollup(tracer.events),
        extra_metrics=extras,
        volatile=sorted(sampler_extras),
        params={"packets": packets, "seed": seed,
                "policy": "vpn 1..4",
                "up_rule": policy.up_rule, "down_rule": policy.down_rule,
                "window_us": round(window_us, 3),
                "base_mpps": base_mpps, "peak_mpps": peak_mpps,
                "popularity": "zipf", "num_flows": 256},
    )


def _placement_fig13(packets: int, seed: int) -> SpecOutcome:
    """Fig. 13 chains placed onto a 4-server line; solvers compared.

    Servers are sized (5 cores) so the north-south chain cannot fit one
    box: the solvers must cut it across a link, and the DES measurement
    of the heuristic's placement includes the real link serialisation.
    The heuristic/brute/round-robin objectives ride along as extras, so
    the report shows the optimality gap (heuristic == brute here) and
    what the naive dealer would have cost.
    """
    from ..eval.harness import measure_placed
    from ..placement import (
        Slo,
        Topology,
        brute_force_place,
        heuristic_place,
        round_robin_place,
    )

    orch = Orchestrator()
    topology = Topology.from_spec("line:4x5")
    slo = Slo(max_delay_us=150.0, max_mpps=0.8)
    requests = [
        orch.request("north-south", Policy.from_chain(list(NORTH_SOUTH_CHAIN)),
                     slo),
        orch.request("west-east", Policy.from_chain(list(WEST_EAST_CHAIN)),
                     slo),
    ]
    heuristic = heuristic_place(topology, requests)
    brute = brute_force_place(topology, requests)
    naive = round_robin_place(topology, requests)

    placement = heuristic.placement_for("north-south")
    tracer = Tracer()
    hub = TelemetryHub(tracer=tracer)
    result = measure_placed(
        placement, packets=packets, seed=seed, telemetry=hub,
        sizes=DATACENTER_MIX,
        label=f"north-south@{'->'.join(placement.path)}",
    )
    extras = _counter_extras(hub)
    extras.update({
        "heuristic_objective_us": round(heuristic.objective_us, 3),
        "brute_objective_us": round(brute.objective_us, 3),
        "round_robin_objective_us": round(naive.objective_us, 3),
        "heuristic_placed": len(heuristic.placements),
        "brute_placed": len(brute.placements),
        "round_robin_placed": len(naive.placements),
        "predicted_delay_us": round(placement.delay_us, 3),
        "servers_used": placement.num_servers,
    })
    return SpecOutcome(
        measurement=measurement_to_dict(result),
        rollup=stage_rollup(tracer.events),
        extra_metrics=extras,
        params={"packets": packets, "seed": seed, "topology": "line:4x5",
                "slo_delay_us": slo.max_delay_us,
                "slo_mpps": slo.max_mpps},
    )


def _firewall_specs() -> List[BenchmarkSpec]:
    specs = []
    for length in (2, 3, 4, 5, 6):
        quick = length in (2, 4, 6)
        specs.append(BenchmarkSpec(
            name=f"seq_chain_{length}",
            description=(f"sequential firewall chain x{length} "
                         f"({CHAIN_BUSY_CYCLES} busy cycles)"),
            quick=quick,
            runner=_measured(
                lambda n=length: forced_sequential(["firewall"] * n),
                extra_cycles=CHAIN_BUSY_CYCLES,
            ),
        ))
        specs.append(BenchmarkSpec(
            name=f"par_chain_{length}",
            description=(f"NFP parallel firewall chain x{length}, no copy "
                         f"({CHAIN_BUSY_CYCLES} busy cycles)"),
            quick=quick,
            runner=_measured(
                lambda n=length: forced_parallel(["firewall"] * n,
                                                 with_copy=False),
                extra_cycles=CHAIN_BUSY_CYCLES,
            ),
        ))
    return specs


def _build_registry() -> Dict[str, BenchmarkSpec]:
    specs: List[BenchmarkSpec] = []
    specs.extend(_firewall_specs())
    specs.append(BenchmarkSpec(
        name="fig11_degree_3_nocopy",
        description="Fig. 11 degree sweep: 3 firewalls, shared buffer",
        quick=False,
        runner=_measured(
            lambda: forced_parallel(["firewall"] * 3, with_copy=False),
            extra_cycles=CHAIN_BUSY_CYCLES,
        ),
    ))
    specs.append(BenchmarkSpec(
        name="fig11_degree_5_nocopy",
        description="Fig. 11 degree sweep: 5 firewalls, shared buffer",
        quick=True,
        runner=_measured(
            lambda: forced_parallel(["firewall"] * 5, with_copy=False),
            extra_cycles=CHAIN_BUSY_CYCLES,
        ),
    ))
    specs.append(BenchmarkSpec(
        name="fig11_degree_5_copy",
        description="Fig. 11 degree sweep: 5 firewalls, per-NF copies",
        quick=False,
        runner=_measured(
            lambda: forced_parallel(["firewall"] * 5, with_copy=True),
            extra_cycles=CHAIN_BUSY_CYCLES,
        ),
    ))
    specs.append(BenchmarkSpec(
        name="fig13_north_south",
        description="Fig. 13 north-south chain (compiled, data-center mix)",
        quick=True,
        runner=_measured(_compiled_chain(NORTH_SOUTH_CHAIN),
                         sizes=DATACENTER_MIX, label="north-south"),
    ))
    specs.append(BenchmarkSpec(
        name="fig13_west_east",
        description="Fig. 13 west-east chain (compiled, data-center mix)",
        quick=True,
        runner=_measured(_compiled_chain(WEST_EAST_CHAIN),
                         sizes=DATACENTER_MIX, label="west-east"),
    ))
    specs.append(BenchmarkSpec(
        name="ablation_op1_full_copy",
        description="OP#1 ablation: degree-2 firewall, full 512B copies",
        quick=True,
        runner=_measured(
            lambda: forced_parallel(["firewall", "firewall"], with_copy=True,
                                    header_only=False),
            extra_cycles=CHAIN_BUSY_CYCLES, sizes=FIXED_512B,
        ),
    ))
    specs.append(BenchmarkSpec(
        name="ablation_op2_header_copy",
        description="OP#2 ablation: degree-2 firewall, header-only copies of "
                    "512B frames",
        quick=True,
        runner=_measured(
            lambda: forced_parallel(["firewall", "firewall"], with_copy=True,
                                    header_only=True),
            extra_cycles=CHAIN_BUSY_CYCLES, sizes=FIXED_512B,
        ),
    ))
    for count in (1, 2, 3, 4):
        specs.append(BenchmarkSpec(
            name=f"scale_ids_x{count}",
            description=(f"§7 scale-out sweep: single IDS chain, "
                         f"{count} instance(s), RSS flow-split"),
            quick=count != 3,
            runner=_measured(
                lambda: forced_sequential(["ids"]),
                instances=count if count > 1 else None,
                label=f"ids x{count}",
            ),
        ))
    specs.append(BenchmarkSpec(
        name="batched_scale_ids_x4",
        description="batched hot path vs scalar: single IDS chain, 4 "
                    "RSS-split instances, byte-identical streams; "
                    "divergences gate as `lost` (abs 0), wall-clock "
                    "speedup rides along volatile",
        quick=True,
        runner=_batched_compare(lambda: forced_sequential(["ids"]),
                                instances=4, label="batched ids x4"),
    ))
    specs.append(BenchmarkSpec(
        name="batched_fig13_ns",
        description="batched hot path vs scalar: compiled north-south "
                    "chain (general closure path, merge ops exercised); "
                    "divergences gate as `lost` (abs 0)",
        quick=True,
        runner=_batched_compare(_compiled_chain(NORTH_SOUTH_CHAIN),
                                label="batched north-south"),
    ))
    specs.append(BenchmarkSpec(
        name="des_fastpath_fig13_ns",
        description="north-south chain on the DES fast path: calendar-"
                    "queue scheduler + burst ring transfers; delivery "
                    "and drop accounting match the per-packet model "
                    "exactly, latency carries the deterministic burst-"
                    "coalescing shift, and the run takes far fewer "
                    "simulator events",
        quick=True,
        runner=_measured(
            _compiled_chain(NORTH_SOUTH_CHAIN), sizes=DATACENTER_MIX,
            label="north-south des-fastpath",
            sim_params=DEFAULT_PARAMS.with_overrides(burst_transfers=True),
            scheduler="calendar"),
    ))
    specs.append(BenchmarkSpec(
        name="fig13_ns_x2_cache_off",
        description="north-south chain, 2 instances/NF, flow cache off",
        quick=True,
        runner=_measured(_compiled_chain(NORTH_SOUTH_CHAIN),
                         sizes=DATACENTER_MIX, instances=2,
                         label="north-south x2 cache-off"),
    ))
    specs.append(BenchmarkSpec(
        name="fig13_ns_x2_cache_on",
        description="north-south chain, 2 instances/NF, classifier flow "
                    "cache on (memoized CT+FT decision per flow)",
        quick=True,
        runner=_measured(_compiled_chain(NORTH_SOUTH_CHAIN),
                         sizes=DATACENTER_MIX, instances=2, flow_cache=True,
                         label="north-south x2 cache-on"),
    ))
    specs.append(BenchmarkSpec(
        name="fig13_ns_faults",
        description="north-south chain, 2 instances/NF, one NF instance "
                    "crashed mid-run: failover recovery cost, windowed "
                    "sampler armed (reported, delivery metrics volatile). "
                    "No AT-timeout episode is possible here: the chain "
                    "compiles to a single-version barrier graph, so a "
                    "wedged NF stalls the stage barrier before any AT "
                    "entry opens",
        quick=True,
        runner=_measured(_compiled_chain(NORTH_SOUTH_CHAIN),
                         sizes=DATACENTER_MIX, instances=2, flow_cache=True,
                         faults="crash:firewall:pkt=200",
                         watch=["ring.occupancy > 0.8 for 3 windows",
                                "merger.at_timeout > 0"],
                         window_us=50.0,
                         label="north-south x2 crash"),
    ))
    specs.append(BenchmarkSpec(
        name="fig13_we_faults",
        description="west-east chain (3-way parallel, copy-bearing), "
                    "monitor hung mid-run: the batch it holds strands AT "
                    "entries at a 2/3 rendezvous until the AT timeout "
                    "emits partial merges -- the windowed sampler sees the "
                    "episode as a firing-then-cleared merger.at_timeout "
                    "alert (reported, delivery metrics volatile)",
        quick=True,
        runner=_measured(_compiled_chain(WEST_EAST_CHAIN),
                         sizes=DATACENTER_MIX,
                         faults="hang:monitor:pkt=200",
                         watch=["merger.at_timeout > 0",
                                "ring.occupancy > 0.8 for 3 windows"],
                         label="west-east monitor hang"),
    ))
    specs.append(BenchmarkSpec(
        name="flash_crowd_autoscale",
        description="flash crowd on an elastic nat->vpn chain: windowed "
                    "watch rules scale the VPN bottleneck live (classifier "
                    "hold, drain barrier, stateful handover); extras carry "
                    "the core-seconds saved vs static peak provisioning "
                    "and the conservation ledger's unaccounted count (0)",
        quick=True,
        runner=_flash_crowd_autoscale,
    ))
    specs.append(BenchmarkSpec(
        name="placement_fig13",
        description="Fig. 13 chains placed on a 4-server line under SLOs: "
                    "DES latency of the heuristic plan; heuristic vs brute "
                    "vs round-robin objectives as extras",
        quick=True,
        runner=_placement_fig13,
    ))
    specs.append(BenchmarkSpec(
        name="fuzz_corpus_replay",
        description="committed fuzz corpus replayed through all three planes",
        quick=True,
        runner=_replay_corpus,
    ))
    return {spec.name: spec for spec in specs}


#: All registered scenarios, by name (insertion order = run order).
REGISTRY: Dict[str, BenchmarkSpec] = _build_registry()


def specs_for(mode: str = "quick",
              names: Optional[List[str]] = None) -> List[BenchmarkSpec]:
    """Select scenarios: ``quick``/``full`` mode or an explicit name list."""
    if names:
        unknown = [name for name in names if name not in REGISTRY]
        if unknown:
            raise KeyError(f"unknown scenario(s): {', '.join(unknown)}")
        return [REGISTRY[name] for name in names]
    if mode == "full":
        return list(REGISTRY.values())
    if mode == "quick":
        return [spec for spec in REGISTRY.values() if spec.quick]
    raise ValueError(f"unknown bench mode {mode!r} (use 'quick' or 'full')")
