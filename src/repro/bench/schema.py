"""The bench result model: schema-versioned, JSON-serialised, validated.

One :class:`BenchReport` is one benchmark session: run metadata (mode,
budgets, commit, interpreter) plus one :class:`ScenarioResult` per
registered scenario.  Reports serialise to the ``BENCH_<n>.json``
artifacts at the repo root -- the machine-readable perf trajectory the
comparator (:mod:`repro.bench.compare`) and CI gate on.

The same serializer backs ``python -m repro measure --json``
(:func:`measurement_to_dict`), so scripts never scrape ASCII tables.

Schema evolution: bump :data:`SCHEMA` when a field changes meaning or
disappears; adding optional fields is backward compatible.  The
comparator refuses to diff reports with different schema identifiers.

v2 (this schema): fault scenarios with a windowed sampler armed carry
peak-window stats (``peak_window_tx``, ``peak_ring_occupancy``,
``peak_at_depth``, ``windows``) and watch-rule alert counts
(``alerts_fired`` / ``alerts_cleared``) in their metrics.  All of them
are listed volatile: the comparator reports them but never gates on
them, since window timing under faults follows the fault timing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, IO, List, Union

from ..eval.harness import MeasurementResult
from ..telemetry.rollup import STAGE_NAMES, StageRollup

__all__ = [
    "SCHEMA",
    "GATED_METRICS",
    "measurement_to_dict",
    "ScenarioResult",
    "BenchReport",
    "validate_bench",
]

#: Current schema identifier, stored in every report.
SCHEMA = "repro.bench/2"

#: Metric keys the comparator gates on, with the direction that counts
#: as a regression ("up" = an increase is bad, "down" = a decrease is).
GATED_METRICS = {
    "latency_p50_us": "up",
    "latency_p99_us": "up",
    "latency_mean_us": "up",
    "throughput_mpps": "down",
    "resource_overhead": "up",
    "lost": "up",
}

#: Metric keys every scenario must carry (superset of the gated ones).
REQUIRED_METRICS = tuple(GATED_METRICS) + (
    "offered_mpps",
    "delivered",
    "nil_dropped",
    "cores_used",
    "copies_full",
    "copies_header",
)


def measurement_to_dict(result: MeasurementResult) -> Dict:
    """Serialise a :class:`MeasurementResult` to plain JSON-able data.

    The single serialisation of measurement output in the repo: the
    bench runner embeds these fields in scenario metrics and the
    ``measure --json`` CLI dumps them verbatim.
    """
    return {
        "system": result.system,
        "label": result.label,
        "latency_mean_us": result.latency_mean_us,
        "latency_p50_us": result.latency_p50_us,
        "latency_p99_us": result.latency_p99_us,
        "throughput_mpps": result.throughput_mpps,
        "bottleneck": result.bottleneck,
        "offered_mpps": result.offered_mpps,
        "delivered": result.delivered,
        "lost": result.lost,
        "nil_dropped": result.nil_dropped,
        "resource_overhead": result.resource_overhead,
        "cores_used": result.cores_used,
        "lossless": result.lossless,
    }


@dataclass
class ScenarioResult:
    """One scenario's measured metrics plus harness self-observability."""

    name: str
    system: str
    label: str
    params: Dict = field(default_factory=dict)
    metrics: Dict = field(default_factory=dict)
    #: Metric keys that depend on wall-clock (host speed) rather than
    #: simulated time; the comparator reports but never gates them.
    volatile: List[str] = field(default_factory=list)
    #: Harness self-observability: where the *Python* spent its time.
    wall_time_s: float = 0.0
    peak_rss_kb: int = 0
    stage_us: Dict[str, float] = field(default_factory=dict)
    stage_shares: Dict[str, float] = field(default_factory=dict)
    stage_events: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_parts(
        cls,
        name: str,
        measurement: Dict,
        rollup: StageRollup,
        params: Dict,
        wall_time_s: float,
        peak_rss_kb: int,
        extra_metrics: Dict = None,
        volatile: List[str] = None,
    ) -> "ScenarioResult":
        metrics = {
            key: value
            for key, value in measurement.items()
            if key not in ("system", "label")
        }
        if extra_metrics:
            metrics.update(extra_metrics)
        return cls(
            name=name,
            system=measurement.get("system", "NFP"),
            label=measurement.get("label", name),
            params=dict(params),
            metrics=metrics,
            volatile=list(volatile or []),
            wall_time_s=wall_time_s,
            peak_rss_kb=peak_rss_kb,
            stage_us=dict(rollup.times_us),
            stage_shares=rollup.shares(),
            stage_events=dict(rollup.events),
        )

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "system": self.system,
            "label": self.label,
            "params": self.params,
            "metrics": self.metrics,
            "volatile": self.volatile,
            "self": {
                "wall_time_s": self.wall_time_s,
                "peak_rss_kb": self.peak_rss_kb,
                "stage_us": self.stage_us,
                "stage_shares": self.stage_shares,
                "stage_events": self.stage_events,
            },
        }

    @classmethod
    def from_dict(cls, record: Dict) -> "ScenarioResult":
        harness = record.get("self", {})
        return cls(
            name=record["name"],
            system=record.get("system", "NFP"),
            label=record.get("label", record["name"]),
            params=dict(record.get("params", {})),
            metrics=dict(record.get("metrics", {})),
            volatile=list(record.get("volatile", [])),
            wall_time_s=float(harness.get("wall_time_s", 0.0)),
            peak_rss_kb=int(harness.get("peak_rss_kb", 0)),
            stage_us=dict(harness.get("stage_us", {})),
            stage_shares=dict(harness.get("stage_shares", {})),
            stage_events=dict(harness.get("stage_events", {})),
        )


@dataclass
class BenchReport:
    """A full benchmark session, ready for ``BENCH_<n>.json``."""

    meta: Dict = field(default_factory=dict)
    scenarios: List[ScenarioResult] = field(default_factory=list)
    schema: str = SCHEMA

    def scenario(self, name: str) -> ScenarioResult:
        for result in self.scenarios:
            if result.name == name:
                return result
        raise KeyError(f"no scenario {name!r} in report")

    def names(self) -> List[str]:
        return [result.name for result in self.scenarios]

    def to_dict(self) -> Dict:
        return {
            "schema": self.schema,
            "meta": self.meta,
            "scenarios": [result.to_dict() for result in self.scenarios],
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "BenchReport":
        return cls(
            schema=document.get("schema", ""),
            meta=dict(document.get("meta", {})),
            scenarios=[
                ScenarioResult.from_dict(record)
                for record in document.get("scenarios", [])
            ],
        )

    def save(self, target: Union[str, IO]) -> None:
        document = self.to_dict()
        problems = validate_bench(document)
        if problems:
            raise ValueError(
                "refusing to write an invalid bench report: "
                + "; ".join(problems)
            )
        own = isinstance(target, str)
        handle = open(target, "w") if own else target
        try:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        finally:
            if own:
                handle.close()

    @classmethod
    def load(cls, source: Union[str, IO]) -> "BenchReport":
        own = isinstance(source, str)
        handle = open(source) if own else source
        try:
            document = json.load(handle)
        finally:
            if own:
                handle.close()
        problems = validate_bench(document)
        if problems:
            raise ValueError(
                f"invalid bench report {source if own else ''}: "
                + "; ".join(problems)
            )
        return cls.from_dict(document)


def validate_bench(document: Dict) -> List[str]:
    """Check a bench document against the schema; returns problems found.

    An empty list means the document is valid.  Validation is structural
    (required keys, types, stage vocabulary) rather than jsonschema-based
    so it needs no third-party dependency.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not an object"]
    if document.get("schema") != SCHEMA:
        problems.append(
            f"schema is {document.get('schema')!r}, expected {SCHEMA!r}"
        )
    meta = document.get("meta")
    if not isinstance(meta, dict):
        problems.append("meta missing or not an object")
    else:
        for key in ("mode", "packets", "seed"):
            if key not in meta:
                problems.append(f"meta.{key} missing")
    scenarios = document.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        problems.append("scenarios missing or empty")
        return problems
    seen = set()
    for index, record in enumerate(scenarios):
        where = f"scenarios[{index}]"
        if not isinstance(record, dict):
            problems.append(f"{where} is not an object")
            continue
        name = record.get("name")
        if not name:
            problems.append(f"{where}.name missing")
        elif name in seen:
            problems.append(f"{where}: duplicate scenario name {name!r}")
        else:
            seen.add(name)
        metrics = record.get("metrics")
        if not isinstance(metrics, dict):
            problems.append(f"{where}.metrics missing")
            continue
        for key in REQUIRED_METRICS:
            if key not in metrics:
                problems.append(f"{where}.metrics.{key} missing")
            elif not isinstance(metrics[key], (int, float)):
                problems.append(f"{where}.metrics.{key} is not a number")
        harness = record.get("self")
        if not isinstance(harness, dict):
            problems.append(f"{where}.self missing")
            continue
        stage_us = harness.get("stage_us")
        if not isinstance(stage_us, dict):
            problems.append(f"{where}.self.stage_us missing")
        else:
            unknown = set(stage_us) - set(STAGE_NAMES)
            if unknown:
                problems.append(
                    f"{where}.self.stage_us has unknown stages {sorted(unknown)}"
                )
            if sum(stage_us.get(stage, 0.0) for stage in STAGE_NAMES) <= 0.0:
                problems.append(f"{where}.self.stage_us attributes no time")
    return problems
