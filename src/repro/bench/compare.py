"""Compare two bench reports and gate on per-metric tolerance bands.

``python -m repro bench --compare old.json new.json`` prints an ASCII
delta table and exits non-zero when any gated metric moved in its bad
direction beyond tolerance.  The gated metrics and their directions
live in :data:`repro.bench.schema.GATED_METRICS`; bands are relative
for latency/throughput (the DES is deterministic, so identical code
yields zero delta -- the band absorbs model-parameter tweaks that are
explicitly accepted by refreshing the baseline) and absolute for
resource overhead and loss counts.

Scenarios present in only one report are listed as added/removed, never
failed on -- growing the registry must not break the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..eval.report import render_table
from .schema import GATED_METRICS, BenchReport

__all__ = [
    "DEFAULT_TOLERANCES",
    "MetricDelta",
    "ComparisonReport",
    "compare_reports",
]

#: metric -> ("rel" | "abs", band width).
DEFAULT_TOLERANCES: Dict[str, Tuple[str, float]] = {
    "latency_p50_us": ("rel", 0.10),
    "latency_p99_us": ("rel", 0.10),
    "latency_mean_us": ("rel", 0.10),
    "throughput_mpps": ("rel", 0.10),
    "resource_overhead": ("abs", 0.02),
    "lost": ("abs", 0.0),
}


@dataclass
class MetricDelta:
    """One (scenario, metric) comparison row."""

    scenario: str
    metric: str
    old: float
    new: float
    status: str  # "ok" | "regression" | "improved" | "volatile"

    @property
    def delta(self) -> float:
        return self.new - self.old

    @property
    def delta_pct(self) -> float:
        if self.old == 0:
            return 0.0 if self.new == 0 else float("inf")
        return (self.new - self.old) / abs(self.old) * 100.0


@dataclass
class ComparisonReport:
    """Everything the compare CLI prints and gates on."""

    rows: List[MetricDelta] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [row for row in self.rows if row.status == "regression"]

    @property
    def improvements(self) -> List[MetricDelta]:
        return [row for row in self.rows if row.status == "improved"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render(self, verbose: bool = False) -> str:
        """ASCII delta table; non-ok rows always shown, ok rows on demand."""
        shown = [
            row for row in self.rows
            if verbose or row.status in ("regression", "improved")
        ]
        lines: List[str] = []
        if shown:
            table_rows = []
            for row in shown:
                pct = row.delta_pct
                pct_text = "inf" if pct == float("inf") else f"{pct:+.1f}%"
                table_rows.append([
                    row.scenario, row.metric, row.old, row.new,
                    pct_text, row.status,
                ])
            lines.append(render_table(
                ["scenario", "metric", "old", "new", "delta", "status"],
                table_rows,
            ))
        else:
            lines.append("all gated metrics within tolerance")
        for name in self.added:
            lines.append(f"note: scenario {name!r} only in the new report")
        for name in self.removed:
            lines.append(f"note: scenario {name!r} only in the old report")
        lines.extend(f"note: {note}" for note in self.notes)
        summary = (
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{sum(1 for r in self.rows if r.status == 'ok')} within band"
        )
        lines.append(summary)
        return "\n".join(lines)


def _classify(
    metric: str, old: float, new: float, tolerances: Dict[str, Tuple[str, float]]
) -> str:
    kind, band = tolerances[metric]
    if kind == "rel":
        limit = band * abs(old)
    elif kind == "abs":
        limit = band
    else:
        raise ValueError(f"unknown tolerance kind {kind!r} for {metric}")
    delta = new - old
    if abs(delta) <= limit:
        return "ok"
    bad_direction = GATED_METRICS[metric]
    worse = delta > 0 if bad_direction == "up" else delta < 0
    return "regression" if worse else "improved"


def compare_reports(
    old: BenchReport,
    new: BenchReport,
    tolerances: Dict[str, Tuple[str, float]] = None,
) -> ComparisonReport:
    """Diff two reports metric by metric; see module docstring."""
    if old.schema != new.schema:
        raise ValueError(
            f"schema mismatch: old={old.schema!r} new={new.schema!r} "
            "(regenerate the older report before comparing)"
        )
    tolerances = dict(DEFAULT_TOLERANCES if tolerances is None else tolerances)
    report = ComparisonReport()
    old_names = set(old.names())
    new_names = set(new.names())
    report.added = sorted(new_names - old_names)
    report.removed = sorted(old_names - new_names)
    if old.meta.get("packets") != new.meta.get("packets"):
        report.notes.append(
            f"packet budgets differ (old={old.meta.get('packets')} "
            f"new={new.meta.get('packets')}); deltas may reflect the budget"
        )
    for name in [n for n in old.names() if n in new_names]:
        old_scenario = old.scenario(name)
        new_scenario = new.scenario(name)
        skip = set(old_scenario.volatile) | set(new_scenario.volatile)
        for metric in tolerances:
            if metric not in GATED_METRICS:
                raise KeyError(f"cannot gate unknown metric {metric!r}")
            old_value = old_scenario.metrics.get(metric)
            new_value = new_scenario.metrics.get(metric)
            if old_value is None or new_value is None:
                continue
            if metric in skip:
                status = "volatile"
            else:
                status = _classify(metric, float(old_value),
                                   float(new_value), tolerances)
            report.rows.append(MetricDelta(
                scenario=name, metric=metric,
                old=float(old_value), new=float(new_value), status=status,
            ))
    return report
