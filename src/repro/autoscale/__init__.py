"""Runtime autoscaling: telemetry-driven live membership change."""

from .controller import Autoscaler, ScaleDecision, ScalePolicy

__all__ = ["Autoscaler", "ScalePolicy", "ScaleDecision"]
