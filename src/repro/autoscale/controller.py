"""The DES-resident autoscaler: watch windows, change membership live.

Closes the control loop the ROADMAP names: the PR-8 windowed sampler
streams ring occupancy / AT depth / per-core utilisation, hysteretic
:class:`~repro.telemetry.watch.WatchRule` conditions decide when the
deployment is under- or over-provisioned, and the decision executes as
the server's live membership protocol
(:meth:`~repro.dataplane.server.NFPServer.request_rescale`): classifier
hold, drain barrier, stateful handover per Khalid & Akella, RSS
re-split, flow-cache invalidation.

The controller is deliberately *windowed*, not per-packet: it acts at
sampler cadence, one membership change in flight at a time, with a
cooldown between decisions so the hysteresis of the watch rules and the
cost of the drain barrier are both respected.

Core-second accounting rides along: :meth:`Autoscaler.core_us` is the
exact integral of the server's active core count over time (piecewise
constant between scale events), the number the flash-crowd benchmark
compares against static peak provisioning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..telemetry.watch import AlertEvent, Watcher

__all__ = ["ScalePolicy", "ScaleDecision", "Autoscaler"]


@dataclass
class ScalePolicy:
    """What to scale, between which bounds, on which signals.

    ``up_rule`` / ``down_rule`` are watch-rule texts (the PR-8 grammar:
    ``"<metric> <op> <number|slo> [for N windows]"``).  While a rule is
    *firing* the controller steps the instance count once per
    ``cooldown_us`` until the rule clears or a bound is hit -- the rule's
    own ``for N windows`` streak provides the hysteresis.
    """

    name: str
    min_instances: int = 1
    max_instances: int = 4
    up_rule: str = "ring.occupancy > 0.5 for 2 windows"
    down_rule: str = "ring.occupancy < 0.05 for 6 windows"
    step: int = 1
    cooldown_us: float = 300.0
    #: Drain-barrier budget handed to the server per membership change.
    max_barrier_us: float = 10000.0

    def __post_init__(self) -> None:
        if not 1 <= self.min_instances <= self.max_instances:
            raise ValueError("need 1 <= min_instances <= max_instances")
        if self.step < 1:
            raise ValueError("step must be >= 1")
        if self.cooldown_us < 0:
            raise ValueError("cooldown must be >= 0")


@dataclass
class ScaleDecision:
    """One executed (or aborted) scaling action and its outcome."""

    ts_us: float
    direction: str  # "up" | "down"
    target: int
    #: The server's membership-change record (see NFPServer._rescale);
    #: filled in when the drain barrier completes.
    outcome: Optional[Dict] = field(default=None)

    @property
    def aborted(self) -> bool:
        return bool(self.outcome and self.outcome.get("aborted"))


class Autoscaler:
    """Watches a sampler and rescales one NF group live.

    Wire-up::

        sampler = Sampler(hub, window_us=50.0)
        server.arm_sampler(sampler)
        scaler = Autoscaler(server, sampler, ScalePolicy("ids", ...))

    The controller enables the server's flow directory (handover needs
    every live flow key), attaches its own :class:`Watcher` to the
    sampler, and from then on reacts to completed windows.  With
    ``orchestrator``/``mid`` given, every completed change is mirrored
    into the control plane via ``Orchestrator.rescale`` so the deployed
    :class:`~repro.core.scaling.ScaledGraph` record tracks reality.
    """

    def __init__(
        self,
        server,
        sampler,
        policy: ScalePolicy,
        orchestrator=None,
        mid: Optional[int] = None,
    ):
        if policy.name not in server.runtimes:
            raise ValueError(f"no runtime group {policy.name!r} on the server")
        self.server = server
        self.policy = policy
        self.orchestrator = orchestrator
        self.mid = mid
        server.enable_flow_directory()
        self.watcher = Watcher([policy.up_rule, policy.down_rule],
                               hub=server.telemetry)
        self._up_rule, self._down_rule = self.watcher.rules
        self.watcher.attach(sampler)
        sampler.subscribe(self._on_window)
        self.decisions: List[ScaleDecision] = []
        self._busy = False
        self._last_action_us = -float("inf")
        self._windows_seen = 0

    # ------------------------------------------------------------- control
    def _on_window(self, window) -> None:
        """Decide after each window (the watcher already observed it)."""
        self._windows_seen += 1
        now = window.end_us
        if self._busy or now - self._last_action_us < self.policy.cooldown_us:
            return
        group = self.server.runtimes[self.policy.name]
        count = group.count
        if self._up_rule.firing and count < self.policy.max_instances:
            target = min(count + self.policy.step, self.policy.max_instances)
            self._execute(now, "up", target)
        elif self._down_rule.firing and count > self.policy.min_instances:
            target = max(count - self.policy.step, self.policy.min_instances)
            self._execute(now, "down", target)

    def _execute(self, now: float, direction: str, target: int) -> None:
        decision = ScaleDecision(ts_us=now, direction=direction, target=target)
        self.decisions.append(decision)
        self._busy = True
        self._last_action_us = now
        proc = self.server.request_rescale(
            self.policy.name, target,
            max_barrier_us=self.policy.max_barrier_us,
        )

        def done(event) -> None:
            self._busy = False
            decision.outcome = event.value
            if (self.orchestrator is not None and self.mid is not None
                    and not decision.aborted):
                self.orchestrator.rescale(
                    self.mid, self.policy.name, decision.outcome["to"])

        proc.callbacks.append(done)

    # ------------------------------------------------------------- summary
    @property
    def alerts(self) -> List[AlertEvent]:
        return list(self.watcher.events)

    @property
    def scale_ups(self) -> int:
        return sum(1 for d in self.decisions
                   if d.direction == "up" and not d.aborted)

    @property
    def scale_downs(self) -> int:
        return sum(1 for d in self.decisions
                   if d.direction == "down" and not d.aborted)

    def core_us(self, end_us: Optional[float] = None) -> float:
        """Exact core-microsecond integral from t=0 to ``end_us``.

        The server's active core count is piecewise constant between
        membership changes; walk the scale-event log backwards from the
        current count to reconstruct each segment.  This is the cost
        side of the autoscaling claim: hold the SLO with fewer total
        core-seconds than static peak provisioning.
        """
        if end_us is None:
            end_us = self.server.env.now
        active = self.server.active_cores
        t = end_us
        total = 0.0
        for event in reversed(self.server.scale_events):
            if event["aborted"] or event["ts_us"] >= t:
                continue
            total += active * (t - event["ts_us"])
            active -= event["to"] - event["from"]
            t = event["ts_us"]
        total += active * t
        return total

    def describe(self) -> str:
        lines = [
            f"autoscaler[{self.policy.name}] "
            f"{self.policy.min_instances}..{self.policy.max_instances} "
            f"up[{self.policy.up_rule}] down[{self.policy.down_rule}]"
        ]
        for decision in self.decisions:
            outcome = decision.outcome or {}
            status = "aborted" if decision.aborted else (
                f"{outcome.get('from', '?')}->{outcome.get('to', '?')} "
                f"moved={outcome.get('moved_flows', 0)} "
                f"handover={outcome.get('handover_flows', 0)} "
                f"barrier={outcome.get('barrier_us', 0.0):.1f}us"
            )
            lines.append(
                f"  [{decision.ts_us:12.1f}us] scale-{decision.direction} "
                f"-> {decision.target} ({status})"
            )
        return "\n".join(lines)
