"""One function per table/figure of the paper's evaluation (§6, §7).

Each ``fig*``/``table*`` function runs the corresponding experiment on
the simulated testbed and returns an :class:`ExperimentTable` -- the
headers and rows the paper's figure plots -- ready for printing or
assertion.  Benchmarks call these with reduced packet counts; the
``examples/reproduce_paper.py`` script runs them all.

Paper-vs-measured notes live in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..core.orchestrator import Orchestrator
from ..core.policy import Policy
from ..sim import DEFAULT_PARAMS, SimParams
from ..traffic.generator import DATACENTER_MIX, PacketSizeDistribution
from .forced import forced_parallel, forced_sequential, forced_structure
from .harness import measure_bess, measure_nfp, measure_onvm
from .model import nfp_capacity, onvm_capacity
from .report import render_table

__all__ = [
    "ExperimentTable",
    "NORTH_SOUTH_CHAIN",
    "WEST_EAST_CHAIN",
    "fig7_sequential_chains",
    "fig8_nf_complexity",
    "fig9_cycles_sweep",
    "fig11_parallelism_degree",
    "fig12_graph_structures",
    "fig13_real_world_chains",
    "table4_rtc_comparison",
]

#: Fig. 13's real-world data-center chains [32, 36].
NORTH_SOUTH_CHAIN = ("vpn", "monitor", "firewall", "loadbalancer")
WEST_EAST_CHAIN = ("ids", "monitor", "loadbalancer")

#: The six §6.1 prototype NFs, in Fig. 8's order.
PROTOTYPE_NFS = ("forwarder", "loadbalancer", "firewall", "monitor", "vpn", "ids")


@dataclass
class ExperimentTable:
    """A reproduced table/figure: id, axis labels, and data rows."""

    experiment: str
    headers: List[str]
    rows: List[List] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        title = f"== {self.experiment} =="
        body = render_table(self.headers, self.rows)
        return f"{title}\n{body}" + (f"\n({self.notes})" if self.notes else "")

    def column(self, name: str) -> List:
        index = self.headers.index(name)
        return [row[index] for row in self.rows]


# ---------------------------------------------------------------- Fig. 7
def fig7_sequential_chains(
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 3000,
    max_len: int = 5,
    sizes: Sequence[int] = (64, 128, 256, 512, 1024, 1500),
) -> ExperimentTable:
    """Fig. 7: L3-forwarder chains of length 1-5, NFP vs OpenNetVM.

    (a) latency at 64 B; (b) processing rate vs packet size -- NFP
    reaches line rate for all sizes, OpenNetVM caps at its manager.
    """
    table = ExperimentTable(
        "Figure 7: sequential forwarder chains",
        ["chain_len", "onvm_lat_us", "nfp_lat_us",
         "pkt_size", "onvm_mpps", "nfp_mpps", "line_rate_mpps"],
        notes="NFP sequential chains bypass copy/merge entirely (§6.2.1)",
    )
    for length in range(1, max_len + 1):
        chain = ["forwarder"] * length
        onvm = measure_onvm(chain, params, packets=packets, load_fraction=0.3)
        nfp = measure_nfp(
            forced_sequential(chain), params, packets=packets, load_fraction=0.3
        )
        for size in sizes:
            onvm_rate = min(
                onvm_capacity(chain, params, packet_size=size).mpps,
                params.line_rate_mpps(size),
            )
            graph = forced_sequential(chain)
            nfp_rate = min(
                nfp_capacity(graph, params, packet_size=size).mpps,
                params.line_rate_mpps(size),
            )
            table.rows.append(
                [length, onvm.latency_mean_us, nfp.latency_mean_us,
                 size, onvm_rate, nfp_rate, params.line_rate_mpps(size)]
            )
    return table


# ---------------------------------------------------------------- Fig. 8
def fig8_nf_complexity(
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 3000,
    nfs: Sequence[str] = PROTOTYPE_NFS,
) -> ExperimentTable:
    """Fig. 8: two instances of each prototype NF -- sequential vs
    parallel (no copy / with copy), the Fig. 10 forced setups."""
    table = ExperimentTable(
        "Figure 8: NF complexity (2 instances of each NF)",
        ["nf", "onvm_seq_lat", "nfp_seq_lat", "par_nocopy_lat", "par_copy_lat",
         "onvm_seq_mpps", "nfp_seq_mpps", "par_nocopy_mpps", "par_copy_mpps"],
        notes="latency benefit grows with NF complexity (§6.2.2)",
    )
    for kind in nfs:
        pair = [kind, kind]
        onvm = measure_onvm(pair, params, packets=packets)
        seq = measure_nfp(forced_sequential(pair), params, packets=packets)
        par = measure_nfp(forced_parallel(pair, with_copy=False), params, packets=packets)
        parc = measure_nfp(forced_parallel(pair, with_copy=True), params, packets=packets)
        table.rows.append(
            [kind, onvm.latency_mean_us, seq.latency_mean_us,
             par.latency_mean_us, parc.latency_mean_us,
             onvm.throughput_mpps, seq.throughput_mpps,
             par.throughput_mpps, parc.throughput_mpps]
        )
    return table


# ---------------------------------------------------------------- Fig. 9
def fig9_cycles_sweep(
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 3000,
    cycles: Sequence[int] = (1, 300, 600, 900, 1200, 1500, 1800, 2100, 2400, 2700, 3000),
) -> ExperimentTable:
    """Fig. 9: firewall with a busy loop of 1..3000 cycles, degree 2."""
    table = ExperimentTable(
        "Figure 9: firewall complexity sweep (busy-loop cycles, 2 NFs)",
        ["cycles", "onvm_seq_lat", "nfp_seq_lat", "par_nocopy_lat",
         "par_copy_lat", "nocopy_reduction_pct", "nfp_seq_mpps", "par_mpps"],
        notes="~45% latency cut at 3000 cycles in the paper",
    )
    pair = ["firewall", "firewall"]
    for cyc in cycles:
        onvm = measure_onvm(pair, params, packets=packets, extra_cycles=cyc)
        seq = measure_nfp(
            forced_sequential(pair), params, packets=packets, extra_cycles=cyc
        )
        par = measure_nfp(
            forced_parallel(pair, with_copy=False), params,
            packets=packets, extra_cycles=cyc,
        )
        parc = measure_nfp(
            forced_parallel(pair, with_copy=True), params,
            packets=packets, extra_cycles=cyc,
        )
        reduction = (1 - par.latency_mean_us / seq.latency_mean_us) * 100
        table.rows.append(
            [cyc, onvm.latency_mean_us, seq.latency_mean_us,
             par.latency_mean_us, parc.latency_mean_us, reduction,
             seq.throughput_mpps, par.throughput_mpps]
        )
    return table


# --------------------------------------------------------------- Fig. 11
def fig11_parallelism_degree(
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 3000,
    degrees: Sequence[int] = (2, 3, 4, 5),
    busy_cycles: int = 300,
) -> ExperimentTable:
    """Fig. 11: 2-5 firewall instances (300 cycles), seq vs parallel."""
    table = ExperimentTable(
        "Figure 11: parallelism degree (firewall, 300 cycles)",
        ["degree", "onvm_seq_lat", "nfp_seq_lat", "par_nocopy_lat",
         "par_copy_lat", "nocopy_reduction_pct", "copy_reduction_pct",
         "par_nocopy_mpps", "par_copy_mpps"],
        notes="paper: no-copy 33%->52%, copy up to 32%",
    )
    for degree in degrees:
        chain = ["firewall"] * degree
        onvm = measure_onvm(chain, params, packets=packets, extra_cycles=busy_cycles)
        seq = measure_nfp(
            forced_sequential(chain), params, packets=packets,
            extra_cycles=busy_cycles,
        )
        par = measure_nfp(
            forced_parallel(chain, with_copy=False), params,
            packets=packets, extra_cycles=busy_cycles,
        )
        parc = measure_nfp(
            forced_parallel(chain, with_copy=True), params,
            packets=packets, extra_cycles=busy_cycles,
        )
        table.rows.append(
            [degree, onvm.latency_mean_us, seq.latency_mean_us,
             par.latency_mean_us, parc.latency_mean_us,
             (1 - par.latency_mean_us / seq.latency_mean_us) * 100,
             (1 - parc.latency_mean_us / seq.latency_mean_us) * 100,
             par.throughput_mpps, parc.throughput_mpps]
        )
    return table


# --------------------------------------------------------------- Fig. 12
#: Fig. 14's six candidate structures for 4 NFs, as stage widths.
FIG14_STRUCTURES = {
    "(1) sequential": (1, 1, 1, 1),
    "(2) all-parallel": (4,),
    "(3) 1->3": (1, 3),
    "(4) 1->2->1": (1, 2, 1),
    "(5) 1->1->2": (1, 1, 2),
    "(6) 2->2": (2, 2),
}


def fig12_graph_structures(
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 3000,
    busy_cycles: int = 300,
) -> ExperimentTable:
    """Fig. 12: the possible 4-NF graph shapes of Fig. 14.

    Shorter equivalent chain length -> bigger latency benefit.
    """
    table = ExperimentTable(
        "Figure 12: graph structures with 4 NFs",
        ["structure", "equivalent_length", "nocopy_lat", "copy_lat",
         "nocopy_mpps", "copy_mpps"],
        notes="latency tracks equivalent chain length (§6.2.4)",
    )
    for label, widths in FIG14_STRUCTURES.items():
        chain = ["firewall"] * 4
        nocopy = measure_nfp(
            forced_structure(chain, widths, with_copy=False), params,
            packets=packets, extra_cycles=busy_cycles,
        )
        copy = measure_nfp(
            forced_structure(chain, widths, with_copy=True), params,
            packets=packets, extra_cycles=busy_cycles,
        )
        table.rows.append(
            [label, len(widths), nocopy.latency_mean_us, copy.latency_mean_us,
             nocopy.throughput_mpps, copy.throughput_mpps]
        )
    return table


# --------------------------------------------------------------- Fig. 13
def fig13_real_world_chains(
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 3000,
    sizes: PacketSizeDistribution = DATACENTER_MIX,
) -> ExperimentTable:
    """Fig. 13: the north-south and west-east data-center chains.

    Policies are Order rules over adjacent NFs, exactly as the paper
    assumes; the compiler finds the parallelisation on its own.
    """
    table = ExperimentTable(
        "Figure 13: real-world service chains (data-center size mix)",
        ["chain", "graph", "onvm_lat", "nfp_lat", "reduction_pct",
         "resource_overhead_pct", "paper_reduction_pct", "paper_overhead_pct"],
    )
    orch = Orchestrator()
    paper = {"north-south": (12.9, 0.0), "west-east": (35.9, 8.8)}
    for name, chain in (
        ("north-south", NORTH_SOUTH_CHAIN),
        ("west-east", WEST_EAST_CHAIN),
    ):
        onvm = measure_onvm(list(chain), params, packets=packets, sizes=sizes)
        graph = orch.compile(Policy.from_chain(list(chain), name=name)).graph
        nfp = measure_nfp(graph, params, packets=packets, sizes=sizes)
        reduction = (1 - nfp.latency_mean_us / onvm.latency_mean_us) * 100
        table.rows.append(
            [name, graph.describe(), onvm.latency_mean_us, nfp.latency_mean_us,
             reduction, nfp.resource_overhead * 100,
             paper[name][0], paper[name][1]]
        )
    return table


# --------------------------------------------------------------- Table 4
def table4_rtc_comparison(
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 3000,
    lengths: Sequence[int] = (1, 2, 3),
) -> ExperimentTable:
    """Table 4: OpenNetVM vs NFP vs BESS, firewall chains, n+2 cores.

    NFP runs all NFs in parallel (the paper's highest-performance
    configuration); BESS duplicates the chain over the same n+2 cores.
    """
    table = ExperimentTable(
        "Table 4: pipelining vs RTC (firewall chains, n+2 cores)",
        ["chain_len", "cores",
         "onvm_lat", "nfp_lat", "bess_lat",
         "onvm_mpps", "nfp_mpps", "bess_mpps"],
    )
    for length in lengths:
        chain = ["firewall"] * length
        onvm = measure_onvm(chain, params, packets=packets, load_fraction=0.9)
        nfp = measure_nfp(
            forced_parallel(chain, with_copy=False), params,
            packets=packets, load_fraction=0.9,
        )
        bess = measure_bess(
            chain, params, num_cores=length + 2, packets=packets,
            load_fraction=0.9,
        )
        table.rows.append(
            [length, length + 2,
             onvm.latency_mean_us, nfp.latency_mean_us, bess.latency_mean_us,
             onvm.throughput_mpps, nfp.throughput_mpps, bess.throughput_mpps]
        )
    return table
