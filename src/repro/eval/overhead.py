"""§6.3: NFP's overheads -- memory, copy/merge latency, merger scaling.

Three experiments:

* :func:`resource_overhead_curve` -- §6.3.1's equation
  ``ro = 64 x (d - 1) / s`` evaluated per packet size and degree, plus
  the data-center expectation ``ro = 0.088 x (d - 1)`` (8.8% at d=2),
  cross-checked against the simulated packet pool's accounting.
* :func:`copy_merge_penalty` -- §6.3.2's latency penalty of the copy
  variant vs the no-copy variant (the paper measures ~15 us for the
  firewall at degree 2).
* :func:`merger_scaling` -- §6.3.3: one merger instance's capacity and
  how instances share load (hashing on the immutable PID).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..net.packet import HEADER_COPY_BYTES
from ..sim import DEFAULT_PARAMS, SimParams
from ..traffic.generator import DATACENTER_MIX, PacketSizeDistribution
from .forced import forced_parallel
from .harness import measure_nfp
from .model import nfp_capacity

__all__ = [
    "theoretical_overhead",
    "expected_overhead",
    "resource_overhead_curve",
    "copy_merge_penalty",
    "merger_scaling",
    "MergerScalingResult",
]


def theoretical_overhead(packet_size: int, degree: int) -> float:
    """§6.3.1: ro = 64 x (d - 1) / s for one packet size."""
    if packet_size <= 0:
        raise ValueError("packet size must be positive")
    if degree < 1:
        raise ValueError("degree must be at least 1")
    return HEADER_COPY_BYTES * (degree - 1) / packet_size


def expected_overhead(
    degree: int, sizes: PacketSizeDistribution = DATACENTER_MIX
) -> float:
    """ro averaged over a size distribution.

    The paper derives ``ro = 0.088 x (d - 1)`` from the data-center mix
    of [4]; copied bytes are compared against original traffic bytes, so
    the expectation is 64 x (d-1) / E[s].
    """
    return HEADER_COPY_BYTES * (degree - 1) / sizes.mean()


def resource_overhead_curve(
    degrees: Sequence[int] = (2, 3, 4, 5),
    sizes: PacketSizeDistribution = DATACENTER_MIX,
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 1500,
) -> List[Tuple[int, float, float]]:
    """(degree, theoretical ro, simulated pool ro) rows.

    The simulated value comes from the packet pool's byte accounting
    while running the forced copy-parallel graph over the size mix.
    """
    rows = []
    for degree in degrees:
        theory = expected_overhead(degree, sizes)
        result = measure_nfp(
            forced_parallel(["firewall"] * degree, with_copy=True),
            params, packets=packets, sizes=sizes,
        )
        rows.append((degree, theory, result.resource_overhead))
    return rows


def copy_merge_penalty(
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 3000,
    extra_cycles: int = 300,
) -> Tuple[float, float, float]:
    """§6.3.2: (no-copy latency, copy latency, penalty) for firewall d=2."""
    nocopy = measure_nfp(
        forced_parallel(["firewall", "firewall"], with_copy=False),
        params, packets=packets, extra_cycles=extra_cycles,
    )
    copy = measure_nfp(
        forced_parallel(["firewall", "firewall"], with_copy=True),
        params, packets=packets, extra_cycles=extra_cycles,
    )
    return (
        nocopy.latency_mean_us,
        copy.latency_mean_us,
        copy.latency_mean_us - nocopy.latency_mean_us,
    )


@dataclass
class MergerScalingResult:
    """§6.3.3 outcome: per-instance capacity and load split."""

    degree: int
    num_mergers: int
    capacity_mpps: float
    bottleneck: str
    lossless: bool
    per_merger_outputs: Dict[int, int]

    @property
    def imbalance(self) -> float:
        """max/mean outputs across merger instances (1.0 = balanced)."""
        counts = list(self.per_merger_outputs.values())
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0


def merger_scaling(
    degree: int = 2,
    num_mergers: int = 1,
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 3000,
    load_fraction: float = 0.95,
) -> MergerScalingResult:
    """Run the forced-parallel firewall graph and inspect the mergers.

    With one instance and degree 2 the capacity should land at the
    paper's ~10.7 Mpps; with two instances, the NIC/classifier becomes
    the limit even at degree 5.
    """
    from ..dataplane.server import NFPServer
    from ..sim import Environment
    from ..traffic.generator import FlowGenerator, TrafficSource
    from .harness import deployed_from_graph

    graph = forced_parallel(["firewall"] * degree, with_copy=False)
    capacity = nfp_capacity(graph, params, num_mergers=num_mergers)

    env = Environment()
    server = NFPServer(env, params, num_mergers=num_mergers)
    server.deploy(deployed_from_graph(graph))
    TrafficSource(
        env, server.inject, capacity.mpps * load_fraction, packets,
        flows=FlowGenerator(num_flows=128),
    )
    env.run()

    return MergerScalingResult(
        degree=degree,
        num_mergers=num_mergers,
        capacity_mpps=capacity.mpps,
        bottleneck=capacity.bottleneck,
        lossless=server.lost == 0,
        per_merger_outputs={m.index: m.merged for m in server.mergers},
    )
