"""Offered-load sweeps: latency and loss vs input rate.

The classic NFV characterisation the paper's latency/throughput pairs
come from: drive a system at increasing offered loads and record the
delivered rate, loss, and latency at each point.  Below capacity the
delivered rate tracks the offered rate and latency stays near the
floor; past capacity the delivered rate plateaus at the bottleneck and
latency/loss blow up (the hockey stick).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

from ..core.graph import ServiceGraph
from ..core.policy import Policy
from ..dataplane.server import NFPServer
from ..sim import DEFAULT_PARAMS, Environment, SimParams
from ..traffic.generator import FIXED_64B, FlowGenerator, PacketSizeDistribution, TrafficSource
from .harness import as_graph, deployed_from_graph
from .model import nfp_capacity

__all__ = ["LoadPoint", "load_sweep"]


@dataclass
class LoadPoint:
    """One operating point of the sweep."""

    offered_mpps: float
    delivered_mpps: float
    loss_fraction: float
    latency_mean_us: float
    latency_p99_us: float

    @property
    def saturated(self) -> bool:
        return self.loss_fraction > 0.001


def load_sweep(
    target: Union[ServiceGraph, Policy, Sequence[str]],
    params: SimParams = DEFAULT_PARAMS,
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 0.9, 1.1, 1.5),
    packets: int = 2500,
    sizes: PacketSizeDistribution = FIXED_64B,
    num_mergers: int = 1,
    seed: int = 1,
) -> List[LoadPoint]:
    """Measure the system at each fraction of its analytic capacity."""
    graph = as_graph(target)
    size = int(sizes.mean())
    capacity = nfp_capacity(
        graph, params, num_mergers=num_mergers, packet_size=size
    ).mpps

    points: List[LoadPoint] = []
    for fraction in fractions:
        rate = capacity * fraction
        env = Environment()
        server = NFPServer(env, params, num_mergers=num_mergers)
        server.deploy(deployed_from_graph(graph))
        flows = FlowGenerator(num_flows=64, sizes=sizes, seed=seed)
        TrafficSource(env, server.inject, rate, packets, flows=flows, seed=seed)
        env.run()

        total = server.rate.delivered + server.lost + server.nil_dropped
        loss = server.lost / total if total else 0.0
        if len(server.latency):
            summary = server.latency.summary()
            latency_mean = summary.mean
            latency_p99 = summary.p99
        else:  # pragma: no cover - everything lost
            latency_mean = latency_p99 = float("inf")
        span_rate = server.rate.mpps()
        points.append(
            LoadPoint(
                offered_mpps=rate,
                delivered_mpps=min(span_rate, rate),
                loss_fraction=loss,
                latency_mean_us=latency_mean,
                latency_p99_us=latency_p99,
            )
        )
    return points
