"""Measurement harness: run a workload against a simulated system.

One entry point per system (`measure_nfp`, `measure_onvm`,
`measure_bess`), each returning a :class:`MeasurementResult` with the
quantities the paper's figures plot: mean/percentile latency, maximum
lossless throughput (analytic, DES-validated), loss counts, memory
overhead from copies, and cores used.

Methodology mirrors §6: throughput is the capacity of the bottleneck
component; latency is measured with Poisson arrivals at
``latency_load_fraction`` of that capacity (the paper measures latency
at the highest sustainable rate, where queueing dominates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Union

from ..core.compiler import CompilationResult
from ..core.graph import ServiceGraph
from ..core.orchestrator import DeployedGraph, Orchestrator
from ..core.policy import Policy
from ..core.tables import build_tables
from ..baselines.bess import BessServer
from ..baselines.opennetvm import OpenNetVMServer
from ..dataplane.server import NFPServer
from ..nfs.base import create_nf
from ..sim import DEFAULT_PARAMS, Environment, SimParams
from ..telemetry.hooks import NULL_HUB, TelemetryHub
from ..traffic.generator import FIXED_64B, FlowGenerator, PacketSizeDistribution, TrafficSource
from .model import bess_capacity, nfp_capacity, onvm_capacity

__all__ = [
    "MeasurementResult",
    "AutoscaleResult",
    "as_graph",
    "deployed_from_graph",
    "measure_nfp",
    "measure_autoscale",
    "measure_onvm",
    "measure_bess",
    "measure_placed",
]


@dataclass
class MeasurementResult:
    """Everything a figure needs about one measured configuration."""

    system: str
    label: str
    latency_mean_us: float
    latency_p50_us: float
    latency_p99_us: float
    throughput_mpps: float
    bottleneck: str
    offered_mpps: float
    delivered: int
    lost: int
    nil_dropped: int
    resource_overhead: float
    cores_used: int
    #: Simulator events dispatched during the run (0 for harnesses that
    #: do not report it); lets event-core optimisations (calendar
    #: scheduler, burst ring transfers) report their DES-side savings.
    events_processed: int = 0

    @property
    def lossless(self) -> bool:
        return self.lost == 0

    def __str__(self) -> str:
        return (
            f"{self.system:<10s} {self.label:<28s} "
            f"lat={self.latency_mean_us:8.1f}us  "
            f"tput={self.throughput_mpps:6.2f}Mpps  "
            f"overhead={self.resource_overhead*100:5.1f}%  "
            f"cores={self.cores_used}"
        )


def as_graph(target: Union[ServiceGraph, Policy, Sequence[str]]) -> ServiceGraph:
    """Accept a compiled graph, a policy, or a chain of NF kinds."""
    if isinstance(target, ServiceGraph):
        return target
    if isinstance(target, Policy):
        return Orchestrator().compile(target).graph
    return Orchestrator().compile(Policy.from_chain(list(target))).graph


def deployed_from_graph(graph: ServiceGraph, mid: int = 1) -> DeployedGraph:
    """Wrap a (possibly forced) graph as a deployable artifact."""
    return DeployedGraph(mid, CompilationResult(graph, {}, []), build_tables(graph, mid))


def _drain(env: Environment) -> None:
    env.run()


def _latency_fields(server) -> dict:
    """Summary-stat fields shared by every measure_* entry point.

    One call into :meth:`repro.sim.stats.LatencyStats.summary` -- the
    single percentile/summary implementation -- instead of each harness
    re-deriving mean/median/p99 on its own.
    """
    summary = server.latency.summary()
    return {
        "latency_mean_us": summary.mean,
        "latency_p50_us": summary.p50,
        "latency_p99_us": summary.p99,
    }


def measure_nfp(
    target: Union[ServiceGraph, Policy, Sequence[str]],
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 3000,
    sizes: PacketSizeDistribution = FIXED_64B,
    num_mergers: int = 1,
    load_fraction: Optional[float] = None,
    extra_cycles: int = 0,
    num_flows: int = 64,
    label: str = "",
    seed: int = 1,
    telemetry: Optional[TelemetryHub] = None,
    instances: Union[int, Mapping[str, int], None] = None,
    flow_cache: bool = False,
    flow_cache_size: int = 4096,
    faults: Union[str, Sequence[str], None] = None,
    sampler=None,
    scheduler: str = "heap",
) -> MeasurementResult:
    """Measure an NFP service graph end to end.

    Pass a :class:`repro.telemetry.TelemetryHub` as ``telemetry`` to
    collect per-NF metrics (and span events, if the hub carries a
    tracer) during the run; end-of-run gauges are sampled before
    returning.

    ``instances`` replicates NFs (§7): a uniform count or a name ->
    count mapping; flows are RSS-split, the capacity model divides each
    replicated NF's demand accordingly, and the offered rate follows.
    ``flow_cache=True`` enables the classifier's per-flow decision cache
    (``flow_cache_size`` entries) and models its steady-state hit cost.

    ``faults`` (a :class:`repro.faults.FaultPlan` spec string or list,
    e.g. ``"crash:firewall:pkt=500"``) injects failures mid-run and
    measures throughput/latency of what survives -- failover, AT
    timeouts and degradation included.  Delivered counts under faults
    depend on fault timing vs the offered load, so treat them as
    workload-specific, not calibration anchors.

    ``sampler`` (a :class:`repro.telemetry.timeseries.Sampler`) arms
    windowed time-series collection: the server registers its live
    probes and the sampler runs as a periodic DES event, so ring/AT
    depth, windowed utilisation, throughput and latency histograms are
    captured per window instead of only at end-of-run.  A final partial
    window is flushed before returning.

    ``scheduler`` selects the simulator's pending-event structure
    (``"heap"`` or ``"calendar"``; see
    :class:`repro.sim.engine.Environment`).  Event order is identical
    either way -- the property suite proves it -- so measured numbers do
    not depend on the choice.
    """
    graph = as_graph(target)
    scale: Optional[Dict[str, int]] = None
    if instances is not None:
        if isinstance(instances, int):
            scale = {name: instances for name in graph.nf_names()}
        else:
            scale = {name: int(instances.get(name, 1))
                     for name in graph.nf_names()}
    size = int(sizes.mean())
    capacity = nfp_capacity(
        graph, params, num_mergers=num_mergers, packet_size=size,
        extra_cycles=extra_cycles, scale=scale, flow_cache=flow_cache,
    )
    fraction = params.latency_load_fraction if load_fraction is None else load_fraction
    rate = max(1e-6, capacity.mpps * fraction)

    env = Environment(track_stats=telemetry is not None and telemetry.enabled,
                      scheduler=scheduler)

    def factory(kind: str, name: str):
        nf = create_nf(kind, name=name)
        nf.extra_cycles = extra_cycles
        return nf

    injector = None
    if faults:
        from ..faults import FaultInjector, FaultPlan

        injector = FaultInjector(
            FaultPlan.parse(faults),
            telemetry=telemetry if telemetry is not None else NULL_HUB,
        )

    server = NFPServer(env, params, num_mergers=num_mergers, nf_factory=factory,
                       telemetry=telemetry,
                       flow_cache_size=flow_cache_size if flow_cache else 0,
                       injector=injector)
    server.deploy(deployed_from_graph(graph), scale=scale)
    if sampler is not None:
        server.arm_sampler(sampler)
    flows = FlowGenerator(num_flows=num_flows, sizes=sizes, seed=seed)
    source = TrafficSource(env, server.inject, rate, packets, flows=flows, seed=seed)
    _drain(env)
    if sampler is not None:
        sampler.flush(env.now)
    server.collect_telemetry()

    return MeasurementResult(
        system="NFP",
        label=label or graph.describe(),
        **_latency_fields(server),
        throughput_mpps=capacity.mpps,
        bottleneck=capacity.bottleneck,
        offered_mpps=rate,
        delivered=server.rate.delivered,
        lost=server.lost,
        nil_dropped=server.nil_dropped,
        resource_overhead=server.pool.copy_overhead_fraction(),
        cores_used=server.cores_used,
        events_processed=env.events_processed,
    )


@dataclass
class AutoscaleResult:
    """A :func:`measure_autoscale` run: the measurement plus the control
    loop's own ledger (decisions, alerts, core-second integral)."""

    measurement: MeasurementResult
    #: The live controller -- decisions, alerts, watch rules, core_us().
    scaler: object
    #: The windowed sampler the controller watched (flushed).
    sampler: object
    #: Final conservation report; ``unaccounted`` must be 0.
    conservation: Dict
    duration_us: float
    #: Exact core-microseconds spent by the elastic deployment.
    core_us: float
    #: Core-microseconds a static deployment pinned at the peak core
    #: count would have spent over the same wall clock.
    static_peak_core_us: float
    peak_cores: int

    @property
    def core_savings_fraction(self) -> float:
        """How much cheaper elastic was than static peak (0..1)."""
        if self.static_peak_core_us <= 0:
            return 0.0
        return 1.0 - self.core_us / self.static_peak_core_us


def measure_autoscale(
    target: Union[ServiceGraph, Policy, Sequence[str]],
    policy,
    shape,
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 3000,
    sizes: PacketSizeDistribution = FIXED_64B,
    num_mergers: int = 1,
    extra_cycles: int = 0,
    num_flows: int = 256,
    popularity: str = "uniform",
    label: str = "",
    seed: int = 1,
    telemetry: Optional[TelemetryHub] = None,
    instances: Union[int, Mapping[str, int], None] = None,
    flow_cache: bool = True,
    flow_cache_size: int = 4096,
    window_us: float = 100.0,
    scheduler: str = "heap",
    orchestrator: Optional[Orchestrator] = None,
) -> AutoscaleResult:
    """Run a time-varying load against an elastically scaled NFP server.

    ``policy`` is a :class:`repro.autoscale.ScalePolicy` naming the NF
    to scale; ``shape`` is a :class:`repro.traffic.LoadShape` driving
    the offered rate.  The scaled NF starts at ``policy.min_instances``
    (other NFs follow ``instances``), a windowed
    :class:`~repro.telemetry.timeseries.Sampler` streams the server's
    live probes, and a :class:`~repro.autoscale.Autoscaler` reacts to
    the policy's watch rules by changing membership live -- classifier
    hold, drain barrier, stateful handover, RSS re-split.

    The result pairs the usual :class:`MeasurementResult` with the
    numbers the autoscaling claim is judged on: the exact core-time
    integral versus static peak provisioning, and the conservation
    report across every membership change.  With ``orchestrator``
    given, the run deploys through it and every completed rescale is
    mirrored into the deployment record.
    """
    from ..autoscale import Autoscaler
    from ..telemetry.timeseries import Sampler

    graph = as_graph(target)
    scale: Dict[str, int] = {name: 1 for name in graph.nf_names()}
    if instances is not None:
        if isinstance(instances, int):
            scale = {name: instances for name in graph.nf_names()}
        else:
            scale.update({name: int(count)
                          for name, count in instances.items()})
    if policy.name not in scale:
        raise ValueError(f"policy names {policy.name!r}, not an NF of the graph")
    scale[policy.name] = policy.min_instances

    hub = telemetry if telemetry is not None else TelemetryHub()
    env = Environment(track_stats=hub.enabled, scheduler=scheduler)

    def factory(kind: str, name: str):
        nf = create_nf(kind, name=name)
        nf.extra_cycles = extra_cycles
        return nf

    server = NFPServer(env, params, num_mergers=num_mergers, nf_factory=factory,
                       telemetry=hub,
                       flow_cache_size=flow_cache_size if flow_cache else 0)
    mid: Optional[int] = None
    if orchestrator is not None:
        deployed = orchestrator.deploy(
            Policy.from_chain(list(graph.nf_names())), scale=scale)
        mid = deployed.mid
        server.deploy(deployed, scale=scale)
    else:
        server.deploy(deployed_from_graph(graph), scale=scale)

    sampler = Sampler(hub, window_us=window_us)
    server.arm_sampler(sampler)
    scaler = Autoscaler(server, sampler, policy,
                        orchestrator=orchestrator, mid=mid)

    flows = FlowGenerator(num_flows=num_flows, sizes=sizes, seed=seed,
                          popularity=popularity)
    base_rate = max(1e-6, shape.rate_mpps(0.0))
    TrafficSource(env, server.inject, base_rate, packets,
                  flows=flows, seed=seed, shape=shape)
    _drain(env)
    sampler.flush(env.now)
    server.collect_telemetry()
    duration_us = env.now

    # Peak core count actually reached (walking the scale log backwards
    # reconstructs the whole trajectory) -- the static comparator is a
    # deployment pinned there for the entire run.
    active = server.active_cores
    peak = active
    for event in reversed(server.scale_events):
        if event["aborted"]:
            continue
        active -= event["to"] - event["from"]
        peak = max(peak, active)
    core_us = scaler.core_us(duration_us)
    static_peak_core_us = peak * duration_us

    size = int(sizes.mean())
    peak_scale = dict(scale)
    peak_scale[policy.name] = max(
        policy.min_instances,
        max((e["to"] for e in server.scale_events if not e["aborted"]),
            default=policy.min_instances),
    )
    capacity = nfp_capacity(
        graph, params, num_mergers=num_mergers, packet_size=size,
        extra_cycles=extra_cycles, scale=peak_scale, flow_cache=flow_cache,
    )

    measurement = MeasurementResult(
        system="NFP-auto",
        label=label or f"{graph.describe()} autoscale[{policy.name}]",
        **_latency_fields(server),
        throughput_mpps=capacity.mpps,
        bottleneck=capacity.bottleneck,
        offered_mpps=shape.peak_mpps(duration_us),
        delivered=server.rate.delivered,
        lost=server.lost,
        nil_dropped=server.nil_dropped,
        resource_overhead=server.pool.copy_overhead_fraction(),
        cores_used=server.cores_used,
        events_processed=env.events_processed,
    )
    return AutoscaleResult(
        measurement=measurement,
        scaler=scaler,
        sampler=sampler,
        conservation=server.conservation_report(),
        duration_us=duration_us,
        core_us=core_us,
        static_peak_core_us=static_peak_core_us,
        peak_cores=peak,
    )


def measure_placed(
    placement,
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 3000,
    sizes: PacketSizeDistribution = FIXED_64B,
    num_mergers: int = 1,
    load_fraction: Optional[float] = None,
    num_flows: int = 64,
    label: str = "",
    seed: int = 1,
    telemetry: Optional[TelemetryHub] = None,
    topology=None,
) -> MeasurementResult:
    """DES-measure one placed chain on its planned servers and links.

    Drives a :class:`repro.multiserver.TimedMultiServer` built from the
    :class:`repro.placement.ChainPlacement` -- the placement's own
    slices, each hop serialising at its link's bandwidth and paying its
    propagation delay -- with Poisson arrivals at the chain's committed
    worst-case rate (``slo.max_mpps``, scaled by ``load_fraction``).
    The resulting p99 is the number the delay SLO is validated against:
    the plan promised ``delay <= slo.max_delay_us`` from the zero-load
    model, the DES shows what queueing at the committed rate adds.
    """
    from ..placement.runtime import build_timed  # local: avoids a cycle

    request = placement.request
    fraction = (
        params.latency_load_fraction if load_fraction is None
        else load_fraction
    )
    rate = max(1e-6, request.slo.max_mpps * fraction)

    env = Environment(track_stats=telemetry is not None and telemetry.enabled)
    plane = build_timed(
        placement, env, params, num_mergers=num_mergers, telemetry=telemetry
    )
    flows = FlowGenerator(num_flows=num_flows, sizes=sizes, seed=seed)
    TrafficSource(env, plane.inject, rate, packets, flows=flows, seed=seed)
    _drain(env)
    for server in plane.servers:
        server.collect_telemetry()
    if telemetry is not None and telemetry.enabled:
        # Publish the same gauge namespace the functional multi-server
        # plane uses, so the ASCII exporter table covers DES runs too.
        if topology is not None:
            for name, server_slice in zip(placement.path, placement.slices):
                capacity = topology.server(name).cores
                if capacity > 0:
                    telemetry.gauge(
                        f"multiserver.server.{name}.core_util",
                        server_slice.total_cores / capacity,
                    )
        for index, link in enumerate(plane.links):
            if not link.frames:
                continue
            telemetry.inc(f"multiserver.link{index}.frames", link.frames)
            telemetry.inc(f"multiserver.link{index}.bytes", link.bytes)
            telemetry.gauge(
                f"multiserver.link{index}.busy_us",
                link.bytes * 8 / (link.gbps * 1000.0),
            )
            mean_bits = link.bytes * 8 / link.frames
            telemetry.gauge(
                f"multiserver.link{index}.occupancy",
                rate * mean_bits / (link.gbps * 1000.0),
            )

    return MeasurementResult(
        system="NFP-placed",
        label=label or f"{request.name}@{'->'.join(placement.path)}",
        **_latency_fields(plane.tail),
        throughput_mpps=placement.capacity_mpps,
        bottleneck=placement.bottleneck,
        offered_mpps=rate,
        delivered=plane.delivered,
        lost=plane.lost,
        nil_dropped=plane.nil_dropped,
        resource_overhead=0.0,
        cores_used=plane.cores_used,
    )


def measure_onvm(
    chain: Sequence[str],
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 3000,
    sizes: PacketSizeDistribution = FIXED_64B,
    load_fraction: Optional[float] = None,
    extra_cycles: int = 0,
    num_flows: int = 64,
    label: str = "",
    seed: int = 1,
) -> MeasurementResult:
    """Measure a sequential chain under OpenNetVM."""
    size = int(sizes.mean())
    capacity = onvm_capacity(chain, params, packet_size=size, extra_cycles=extra_cycles)
    fraction = params.latency_load_fraction if load_fraction is None else load_fraction
    rate = max(1e-6, capacity.mpps * fraction)

    env = Environment()
    server = OpenNetVMServer(env, params, chain, extra_cycles=extra_cycles)
    flows = FlowGenerator(num_flows=num_flows, sizes=sizes, seed=seed)
    TrafficSource(env, server.inject, rate, packets, flows=flows, seed=seed)
    _drain(env)

    return MeasurementResult(
        system="OpenNetVM",
        label=label or "->".join(chain),
        **_latency_fields(server),
        throughput_mpps=capacity.mpps,
        bottleneck=capacity.bottleneck,
        offered_mpps=rate,
        delivered=server.rate.delivered,
        lost=server.lost,
        nil_dropped=server.nil_dropped,
        resource_overhead=0.0,
        cores_used=server.cores_used,
    )


def measure_bess(
    chain: Sequence[str],
    params: SimParams = DEFAULT_PARAMS,
    num_cores: int = 1,
    packets: int = 3000,
    sizes: PacketSizeDistribution = FIXED_64B,
    load_fraction: Optional[float] = None,
    extra_cycles: int = 0,
    num_flows: int = 64,
    label: str = "",
    seed: int = 1,
) -> MeasurementResult:
    """Measure a run-to-completion chain under BESS."""
    size = int(sizes.mean())
    capacity = bess_capacity(
        chain, params, num_cores=num_cores, packet_size=size,
        extra_cycles=extra_cycles,
    )
    fraction = params.latency_load_fraction if load_fraction is None else load_fraction
    rate = max(1e-6, capacity.mpps * fraction)

    env = Environment()
    server = BessServer(env, params, chain, num_cores=num_cores, extra_cycles=extra_cycles)
    flows = FlowGenerator(num_flows=num_flows, sizes=sizes, seed=seed)
    TrafficSource(env, server.inject, rate, packets, flows=flows, seed=seed)
    _drain(env)

    return MeasurementResult(
        system="BESS",
        label=label or "->".join(chain),
        **_latency_fields(server),
        throughput_mpps=capacity.mpps,
        bottleneck=capacity.bottleneck,
        offered_mpps=rate,
        delivered=server.rate.delivered,
        lost=server.lost,
        nil_dropped=server.nil_dropped,
        resource_overhead=0.0,
        cores_used=server.cores_used,
    )
