"""§4.3's headline statistics: how many NF pairs can run in parallel?

"We input all possible NF pairs from Table 2 into the algorithm.
According to the algorithm output and the appearance probabilities of
the NF pairs, we find that 53.8% NF pairs can work in parallel.  In
particular, 41.5% pairs can be parallelized without causing extra
resource overhead."  (So 12.3% parallelize with copying, §6.3.)

We rerun Algorithm 1 over every *ordered* pair of Table 2 profiles
(including same-type pairs).  With uniform pair weighting this
reproduction lands within ~2 points of every paper number (54.5 / 39.7
/ 14.9 / 45.5), which also validates the Table 3 reconstruction in
:mod:`repro.core.dependency`.  A deployment-share-weighted variant
(pair weight = product of the Table 2 percentages) is available via
``weighting="deployment"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.action_table import ActionTable, default_action_table
from ..core.dependency import (
    DEFAULT_DEPENDENCY_TABLE,
    DependencyTable,
    Parallelism,
    identify_parallelism,
)

__all__ = ["PairStatistics", "compute_pair_statistics", "TABLE2_NF_SET"]

#: The eleven NFs that appear in Table 2 (prototype-only kinds such as
#: "forwarder" are excluded from the statistic, as in the paper).
TABLE2_NF_SET = (
    "firewall",
    "nids",
    "gateway",
    "loadbalancer",
    "caching",
    "vpn",
    "nat",
    "proxy",
    "compression",
    "shaper",
    "monitor",
)

#: The paper's reported shares, for side-by-side reporting.
PAPER_SHARES = {
    "parallelizable": 53.8,
    "no_copy": 41.5,
    "with_copy": 12.3,
    "not_parallelizable": 46.2,
}


@dataclass
class PairStatistics:
    """Weighted shares of each Algorithm 1 outcome over NF pairs."""

    parallelizable: float  # no-copy + with-copy
    no_copy: float
    with_copy: float
    not_parallelizable: float
    per_pair: Dict[Tuple[str, str], Parallelism]

    def as_rows(self) -> List[Tuple[str, float, float]]:
        """(outcome, measured %, paper %) rows for the report table."""
        return [
            ("parallelizable (total)", self.parallelizable * 100,
             PAPER_SHARES["parallelizable"]),
            ("parallelizable, no copy", self.no_copy * 100,
             PAPER_SHARES["no_copy"]),
            ("parallelizable, with copy", self.with_copy * 100,
             PAPER_SHARES["with_copy"]),
            ("not parallelizable", self.not_parallelizable * 100,
             PAPER_SHARES["not_parallelizable"]),
        ]


def compute_pair_statistics(
    table: Optional[ActionTable] = None,
    nf_names: Sequence[str] = TABLE2_NF_SET,
    dependency_table: DependencyTable = DEFAULT_DEPENDENCY_TABLE,
    weighting: str = "uniform",
) -> PairStatistics:
    """Run Algorithm 1 over all ordered pairs.

    ``weighting`` is ``"uniform"`` (the paper-matching default) or
    ``"deployment"`` (pair weight = product of deployment shares, with
    unlisted NFs splitting the residual mass).
    """
    table = table or default_action_table()
    if weighting == "uniform":
        weights = {name: 1.0 for name in nf_names}
    elif weighting == "deployment":
        weights = {
            profile.name: weight
            for profile, weight in table.weighted_profiles()
            if profile.name in set(nf_names)
        }
    else:
        raise ValueError(f"unknown weighting: {weighting!r}")
    missing = set(nf_names) - set(weights)
    if missing:
        raise KeyError(f"no profiles for: {sorted(missing)}")
    total_weight = sum(weights.values())

    shares = {outcome: 0.0 for outcome in Parallelism}
    per_pair: Dict[Tuple[str, str], Parallelism] = {}
    for first in nf_names:
        for second in nf_names:
            verdict = identify_parallelism(
                table.fetch(first), table.fetch(second), dependency_table
            )
            outcome = verdict.classification
            per_pair[(first, second)] = outcome
            weight = (weights[first] / total_weight) * (
                weights[second] / total_weight
            )
            shares[outcome] += weight

    return PairStatistics(
        parallelizable=shares[Parallelism.NO_COPY] + shares[Parallelism.WITH_COPY],
        no_copy=shares[Parallelism.NO_COPY],
        with_copy=shares[Parallelism.WITH_COPY],
        not_parallelizable=shares[Parallelism.NOT_PARALLELIZABLE],
        per_pair=per_pair,
    )
