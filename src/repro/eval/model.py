"""Analytic capacity model: closed-form max lossless throughput.

Every core in the simulated dataplane is a deterministic single-server
queue, so the maximum lossless rate is exactly the reciprocal of the
largest per-packet service demand on any core (plus the NIC line-rate
cap).  The DES measures the same thing empirically; tests cross-validate
the two.  Benchmarks use the analytic value because it is exact and
instant.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from ..core.graph import ORIGINAL_VERSION, ServiceGraph
from ..net.packet import HEADER_COPY_BYTES
from ..sim.params import SimParams

__all__ = [
    "CapacityReport",
    "nfp_capacity",
    "placed_capacity",
    "onvm_capacity",
    "bess_capacity",
    "nfp_latency_floor",
]


class CapacityReport:
    """Max lossless throughput and the component that limits it."""

    __slots__ = ("mpps", "bottleneck", "demands")

    def __init__(self, mpps: float, bottleneck: str, demands: Dict[str, float]):
        self.mpps = mpps
        self.bottleneck = bottleneck
        #: per-component service demand in us/packet.
        self.demands = demands

    def __repr__(self) -> str:
        return f"CapacityReport({self.mpps:.2f} Mpps, bottleneck={self.bottleneck})"


def _finish(demands: Dict[str, float], line_rate: float) -> CapacityReport:
    demands = dict(demands)
    rates = {name: (1.0 / d if d > 0 else float("inf")) for name, d in demands.items()}
    rates["nic"] = line_rate
    bottleneck = min(rates, key=rates.get)
    return CapacityReport(rates[bottleneck], bottleneck, demands)


def _copy_cost(params: SimParams, header_only: bool, packet_size: int) -> float:
    nbytes = HEADER_COPY_BYTES if header_only else packet_size
    return params.copy_cost_us(nbytes)


def nfp_capacity(
    graph: ServiceGraph,
    params: SimParams,
    num_mergers: int = 1,
    packet_size: int = 64,
    extra_cycles: int = 0,
    scale: Optional[Mapping[str, int]] = None,
    flow_cache: bool = False,
) -> CapacityReport:
    """Throughput of an NFP server running one service graph.

    Per-packet demand per core:

    * classifier: CT service (+ metadata when parallel) + stage-0 copies
      + stage-0 ring hops;
    * each NF: runtime + NF service (+ barrier-completer hops/copies,
      amortised onto the version's NFs);
    * merger: notifications x per-copy + completion base, split across
      instances.

    ``scale`` (name -> instance count, §7) divides an NF's demand by its
    replica count: RSS splits the flow space, so each instance sees
    ``1/k`` of the load.  ``flow_cache=True`` models the steady state of
    the classifier flow cache -- every packet after a flow's first hits
    the memoized CT+FT decision and pays ``classifier_cache_hit_us``
    instead of the full lookup.
    """
    demands: Dict[str, float] = {}
    service = (
        params.classifier_cache_hit_us
        if flow_cache
        else (
            params.classifier_tag_us
            if graph.has_parallelism
            else params.classifier_fwd_us
        )
    )
    stage0 = graph.stages[0]
    for copy in graph.copies:
        if copy.stage_index == 0:
            service += _copy_cost(params, copy.header_only, packet_size)
    service += params.ring_hop_us * len(stage0.entries)
    demands["classifier"] = service

    for index, stage in enumerate(graph.stages):
        next_stage = graph.stages[index + 1] if index + 1 < len(graph.stages) else None
        for entry in stage:
            demand = params.nf_runtime_us + params.nf_service(
                entry.node.kind, extra_cycles
            )
            last = graph.last_stage_of_version(entry.version)
            if index == last:
                if graph.needs_merger:
                    demand += params.ring_hop_us
            elif next_stage is not None:
                # Forwarding work done once per version-barrier; amortise
                # over the version's NFs in this stage.
                peers = len(stage.entries_on(entry.version))
                hops = len(next_stage.entries_on(entry.version))
                cost = hops * params.ring_hop_us
                if entry.version == ORIGINAL_VERSION:
                    for copy in graph.copies:
                        if copy.stage_index == index + 1:
                            cost += _copy_cost(params, copy.header_only, packet_size)
                            cost += params.ring_hop_us * len(
                                next_stage.entries_on(copy.version)
                            )
                demand += cost / peers
            if scale:
                demand /= max(1, int(scale.get(entry.node.name, 1)))
            demands[entry.node.name] = demand

    if graph.needs_merger:
        per_packet = (
            graph.total_count * params.merger_per_copy_us + params.merger_base_us
        )
        demands["merger"] = per_packet / num_mergers

    return _finish(demands, params.line_rate_mpps(packet_size))


def placed_capacity(
    graph: ServiceGraph,
    slices: Sequence,
    params: SimParams,
    num_mergers: int = 1,
    packet_size: int = 64,
    scale: Optional[Mapping[str, int]] = None,
) -> CapacityReport:
    """Max lossless rate of a chain placed over several servers.

    Each slice runs as a standalone NFP server, so the chain's rate is
    the minimum over the slices' own bottlenecks; the winning component
    is reported as ``server<i>:<component>``.  Used by the placement
    solvers to check a candidate against a chain's [min,max] rate SLO.
    """
    from ..multiserver.timed import slice_subgraph  # local: avoids a cycle

    demands: Dict[str, float] = {}
    for server_slice in slices:
        sub = slice_subgraph(graph, server_slice)
        report = nfp_capacity(
            sub, params, num_mergers=num_mergers, packet_size=packet_size,
            scale=scale,
        )
        for name, demand in report.demands.items():
            demands[f"server{server_slice.server_index}:{name}"] = demand
    return _finish(demands, params.line_rate_mpps(packet_size))


def onvm_capacity(
    chain: Sequence[str],
    params: SimParams,
    packet_size: int = 64,
    extra_cycles: int = 0,
) -> CapacityReport:
    """Throughput under OpenNetVM: manager-bound at 9.38 Mpps typically."""
    demands: Dict[str, float] = {
        "manager": params.onvm_manager_us + len(chain) * params.onvm_hop_op_us
    }
    for index, kind in enumerate(chain):
        demands[f"{kind}{index}"] = params.nf_runtime_us + params.nf_service(
            kind, extra_cycles
        )
    return _finish(demands, params.line_rate_mpps(packet_size))


def bess_capacity(
    chain: Sequence[str],
    params: SimParams,
    num_cores: int = 1,
    packet_size: int = 64,
    extra_cycles: int = 0,
) -> CapacityReport:
    """Throughput under BESS RTC with duplicated chains on k cores."""
    per_chain = params.rtc_base_us + sum(
        params.rtc_per_nf_us + extra_cycles / 3000.0 for _ in chain
    )
    demands = {"rtc": per_chain / num_cores}
    return _finish(demands, params.line_rate_mpps(packet_size))


def nfp_latency_floor(
    graph: ServiceGraph,
    params: SimParams,
    packet_size: int = 64,
    extra_cycles: int = 0,
) -> float:
    """Zero-load latency through an NFP graph (no queueing).

    The packet's critical path: NIC in, classifier, per stage the
    slowest NF on the path plus a pipeline hop, the merge rendezvous,
    NIC out.  Used by tests as a lower bound for DES measurements.
    """
    latency = params.nic_io_us  # ingress driver
    latency += (
        params.classifier_tag_us if graph.has_parallelism else params.classifier_fwd_us
    )
    for stage in graph.stages:
        latency += params.batch_wait_us
        latency += max(
            params.nf_runtime_us + params.nf_service(e.node.kind, extra_cycles)
            for e in stage
        )
    if graph.needs_merger:
        latency += params.merger_hop_latency_us
        latency += graph.total_count * params.merger_per_copy_us + params.merger_base_us
        latency += params.merge_latency_us
        latency += graph.total_count * params.merge_per_notification_us
        latency += (graph.num_versions - 1) * params.copy_merge_latency_us
        latency += len(graph.merge_ops) * params.merge_per_mo_us
    latency += params.nic_io_us
    latency += (packet_size + 20) * 8 / (params.nic_gbps * 1000.0)
    return latency
