"""Forced graph constructions for the paper's synthetic setups (Fig. 10).

§6.2.2's experiment compares, for two instances of the *same* NF:

1. sequential composition,
2. parallel composition sharing one buffer (distribute -> merge), and
3. parallel composition with packet copying (copy -> merge),

regardless of what the dependency analysis would decide -- the setups
are forced.  These helpers build such graphs directly, bypassing the
compiler, for Figs. 8, 9, 11 and 12.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.action_table import default_action_table
from ..core.compiler import NFPCompiler
from ..core.graph import (
    ORIGINAL_VERSION,
    CopySpec,
    NFNode,
    ServiceGraph,
    Stage,
    StageEntry,
)

__all__ = [
    "forced_sequential",
    "forced_parallel",
    "forced_structure",
]


def _nodes(kinds: Sequence[str], names: Optional[Sequence[str]] = None) -> List[NFNode]:
    table = default_action_table()
    nodes = []
    for index, kind in enumerate(kinds):
        name = names[index] if names else f"{kind}{index}"
        nodes.append(NFNode(name, kind, table.fetch(kind), priority=index))
    return nodes


def forced_sequential(kinds: Sequence[str], name: str = "forced-seq") -> ServiceGraph:
    """Setup (1): a plain sequential chain."""
    return ServiceGraph.sequential(_nodes(kinds), name=name)


def forced_parallel(
    kinds: Sequence[str],
    with_copy: bool,
    name: str = "forced-par",
    header_only: bool = True,
) -> ServiceGraph:
    """Setups (2)/(3): all NFs in one parallel stage.

    ``with_copy=False`` puts every NF on the shared original buffer
    (distribute -> merge); ``with_copy=True`` gives every NF after the
    first its own copy version (copy -> merge), the §6.2.2 "copy" bars.
    """
    nodes = _nodes(kinds)
    copies: List[CopySpec] = []
    entries: List[StageEntry] = []
    for index, node in enumerate(nodes):
        if with_copy and index > 0:
            version = ORIGINAL_VERSION + index
            copies.append(
                CopySpec(
                    0,
                    version,
                    header_only=header_only and not NFPCompiler._touches_payload(node.profile),
                )
            )
            entries.append(StageEntry(node, version))
        else:
            entries.append(StageEntry(node, ORIGINAL_VERSION))
    stages = [Stage(entries)]
    merge_ops = _value_merge_ops(stages)
    return ServiceGraph(stages, copies, merge_ops, name=name)


def _value_merge_ops(stages):
    """Merge ops for forced graphs: field modifies only.

    Forced-parallel setups can duplicate structural NFs (two VPNs both
    adding an AH), where sequential semantics would be double
    encapsulation -- the paper's forced experiments measure timing, not
    semantics, so structural add/remove MOs are omitted.
    """
    from ..core.graph import MergeOpKind

    return [
        op
        for op in NFPCompiler._merge_ops(stages)
        if op.kind is MergeOpKind.MODIFY
    ]


def forced_structure(
    kinds: Sequence[str],
    structure: Sequence[int],
    with_copy: bool = False,
    name: str = "forced-structure",
) -> ServiceGraph:
    """Build one of Fig. 14's graph shapes.

    ``structure`` lists the width of each stage, e.g. ``[1, 2, 1]`` is
    Fig. 14(4); widths must sum to ``len(kinds)``.  Within a stage,
    ``with_copy`` assigns each NF beyond the first its own copy version.
    """
    if sum(structure) != len(kinds):
        raise ValueError("structure widths must sum to the NF count")
    if any(w <= 0 for w in structure):
        raise ValueError("stage widths must be positive")
    nodes = _nodes(kinds)
    stages: List[Stage] = []
    copies: List[CopySpec] = []
    next_version = ORIGINAL_VERSION + 1
    cursor = 0
    for stage_index, width in enumerate(structure):
        entries = []
        for slot in range(width):
            node = nodes[cursor]
            cursor += 1
            if with_copy and slot > 0:
                copies.append(CopySpec(stage_index, next_version, header_only=True))
                entries.append(StageEntry(node, next_version))
                next_version += 1
            else:
                entries.append(StageEntry(node, ORIGINAL_VERSION))
        stages.append(Stage(entries))
    merge_ops = _value_merge_ops(stages)
    return ServiceGraph(stages, copies, merge_ops, name=name)
