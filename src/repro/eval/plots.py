"""Terminal line plots for the reproduced figures.

A tiny dependency-free renderer: series of (x, y) points drawn on a
character canvas with axis labels, so `examples/reproduce_paper.py`
and the CLI can show figure *shapes* (Fig. 9's growing gap, Fig. 11's
degree curve) and not just tables.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_plot"]

_MARKERS = "*o+x#@%&"


def ascii_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series onto a character canvas.

    >>> print(ascii_plot({"linear": [(0, 0), (1, 1)]}, width=8, height=4))
    ... # doctest: +SKIP
    """
    if not series or all(not points for points in series.values()):
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("canvas too small")

    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = round((x - x_min) / x_span * (width - 1))
        row = height - 1 - round((y - y_min) / y_span * (height - 1))
        current = canvas[row][col]
        canvas[row][col] = marker if current in (" ", marker) else "?"

    legend = []
    for index, (name, points) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker}={name}")
        ordered = sorted(points)
        # Connect consecutive points with interpolated markers.
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            steps = max(2, round(abs(x1 - x0) / x_span * (width - 1)))
            for step in range(steps + 1):
                frac = step / steps
                place(x0 + (x1 - x0) * frac, y0 + (y1 - y0) * frac, marker)
        for x, y in ordered:
            place(x, y, marker)

    lines: List[str] = []
    if title:
        lines.append(title.center(width + 10))
    top_label = f"{y_max:9.1f} |"
    bottom_label = f"{y_min:9.1f} |"
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            prefix = top_label
        elif row_index == height - 1:
            prefix = bottom_label
        elif row_index == height // 2 and y_label:
            prefix = f"{y_label[:9]:>9s} |"
        else:
            prefix = " " * 9 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    x_axis = f"{x_min:<12.0f}{x_label.center(width - 24)}{x_max:>12.0f}"
    lines.append(" " * 10 + x_axis)
    lines.append(" " * 10 + "  ".join(legend))
    return "\n".join(lines)
