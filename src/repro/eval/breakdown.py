"""Latency breakdown: where each microsecond of a graph's latency goes.

Runs a workload with per-packet timeline instrumentation enabled and
aggregates the checkpoints into named segments:

* ``ingest``       -- NIC arrival until classification;
* ``stage k``      -- from the previous milestone until the *last* NF of
  stage *k* finished with the packet (barrier semantics included);
* ``merge``        -- final NF until the merger's rendezvous completed;
* ``egress``       -- merge until the frame cleared the TX NIC.

Useful for explaining measurements (which stage dominates, how much the
merge path costs) and asserted in tests: the segment means must sum to
the measured mean latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..core.graph import ServiceGraph
from ..core.policy import Policy
from ..dataplane.server import NFPServer
from ..sim import DEFAULT_PARAMS, Environment, SimParams
from ..traffic.generator import FIXED_64B, FlowGenerator, PacketSizeDistribution, TrafficSource
from .harness import as_graph, deployed_from_graph
from .model import nfp_capacity

__all__ = ["LatencyBreakdown", "latency_breakdown"]


@dataclass
class LatencyBreakdown:
    """Mean per-segment latency contributions (microseconds)."""

    segments: Dict[str, float]
    total_us: float
    packets: int

    def share(self, segment: str) -> float:
        """Fraction of total latency spent in ``segment``."""
        if self.total_us <= 0:
            return 0.0
        return self.segments.get(segment, 0.0) / self.total_us

    def dominant(self) -> str:
        return max(self.segments, key=self.segments.get)

    def rows(self) -> List[tuple]:
        return [
            (name, value, self.share(name) * 100)
            for name, value in self.segments.items()
        ]

    def __str__(self) -> str:
        parts = ", ".join(
            f"{name}={value:.1f}us ({self.share(name) * 100:.0f}%)"
            for name, value in self.segments.items()
        )
        return f"LatencyBreakdown(total={self.total_us:.1f}us: {parts})"


def _segment_packet(graph: ServiceGraph, timeline: List[tuple]) -> Dict[str, float]:
    """Turn one packet's checkpoints into named segment durations."""
    times = dict()
    nf_times: Dict[str, float] = {}
    for label, when in timeline:
        if label.startswith("nf:"):
            # Scaled instances are named name#k; normalise.
            name = label[3:].split("#", 1)[0]
            nf_times[name] = max(nf_times.get(name, 0.0), when)
        else:
            times[label] = when

    segments: Dict[str, float] = {}
    cursor = times["nic-rx"]
    if "classified" in times:
        segments["ingest"] = times["classified"] - cursor
        cursor = times["classified"]
    for index, stage in enumerate(graph.stages):
        finishes = [
            nf_times[e.node.name] for e in stage if e.node.name in nf_times
        ]
        if not finishes:
            continue
        stage_end = max(finishes)
        segments[f"stage {index}"] = max(0.0, stage_end - cursor)
        cursor = max(cursor, stage_end)
    if "merged" in times:
        segments["merge"] = max(0.0, times["merged"] - cursor)
        cursor = max(cursor, times["merged"])
    if "nic-tx" in times:
        segments["egress"] = max(0.0, times["nic-tx"] - cursor)
    return segments


def latency_breakdown(
    target: Union[ServiceGraph, Policy, Sequence[str]],
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 1500,
    sizes: PacketSizeDistribution = FIXED_64B,
    load_fraction: Optional[float] = None,
    num_mergers: int = 1,
    seed: int = 1,
) -> LatencyBreakdown:
    """Measure a graph with timeline instrumentation and aggregate."""
    graph = as_graph(target)
    size = int(sizes.mean())
    capacity = nfp_capacity(graph, params, num_mergers=num_mergers,
                            packet_size=size).mpps
    fraction = params.latency_load_fraction if load_fraction is None else load_fraction

    env = Environment()
    server = NFPServer(env, params, num_mergers=num_mergers)
    server.deploy(deployed_from_graph(graph))
    server.record_timeline = True
    server.keep_packets = True
    flows = FlowGenerator(num_flows=64, sizes=sizes, seed=seed)
    TrafficSource(env, server.inject, capacity * fraction, packets,
                  flows=flows, seed=seed)
    env.run()

    sums: Dict[str, float] = {}
    count = 0
    for pkt in server.emitted_packets:
        if not pkt.timeline:
            continue
        count += 1
        for name, value in _segment_packet(graph, pkt.timeline).items():
            sums[name] = sums.get(name, 0.0) + value
    if count == 0:
        raise RuntimeError("no instrumented packets were delivered")
    segments = {name: total / count for name, total in sums.items()}
    return LatencyBreakdown(
        segments=segments,
        total_us=sum(segments.values()),
        packets=count,
    )
