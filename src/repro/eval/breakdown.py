"""Latency breakdown: where each microsecond of a graph's latency goes.

Runs a workload with the :mod:`repro.telemetry` tracer enabled and
aggregates each packet's span events into named segments:

* ``ingest``       -- NIC arrival until classification;
* ``stage k``      -- from the previous milestone until the *last* NF of
  stage *k* finished with the packet (barrier semantics included, copy
  versions included -- the trace is keyed by (MID, PID), so branches of
  the service graph fold back into one per-packet view);
* ``merge``        -- final NF until the merger's rendezvous completed;
* ``egress``       -- merge until the frame cleared the TX NIC.

Useful for explaining measurements (which stage dominates, how much the
merge path costs) and asserted in tests: the segment means must sum to
the measured mean latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..core.graph import ServiceGraph
from ..core.policy import Policy
from ..dataplane.server import NFPServer
from ..sim import DEFAULT_PARAMS, Environment, SimParams
from ..telemetry import PacketTrace, SpanKind, TelemetryHub, Tracer
from ..traffic.generator import FIXED_64B, FlowGenerator, PacketSizeDistribution, TrafficSource
from .harness import as_graph, deployed_from_graph
from .model import nfp_capacity

__all__ = ["LatencyBreakdown", "latency_breakdown"]


@dataclass
class LatencyBreakdown:
    """Mean per-segment latency contributions (microseconds)."""

    segments: Dict[str, float]
    total_us: float
    packets: int

    def share(self, segment: str) -> float:
        """Fraction of total latency spent in ``segment``."""
        if self.total_us <= 0:
            return 0.0
        return self.segments.get(segment, 0.0) / self.total_us

    def dominant(self) -> str:
        return max(self.segments, key=self.segments.get)

    def rows(self) -> List[tuple]:
        return [
            (name, value, self.share(name) * 100)
            for name, value in self.segments.items()
        ]

    def __str__(self) -> str:
        parts = ", ".join(
            f"{name}={value:.1f}us ({self.share(name) * 100:.0f}%)"
            for name, value in self.segments.items()
        )
        return f"LatencyBreakdown(total={self.total_us:.1f}us: {parts})"


def _segment_trace(
    graph: ServiceGraph, trace: PacketTrace
) -> Optional[Dict[str, float]]:
    """Turn one packet's span events into named segment durations.

    Returns ``None`` for packets that never cleared the TX NIC (still
    in flight or dropped) -- the breakdown averages delivered packets.
    """
    classify_ts: Optional[float] = None
    ingress_us: Optional[float] = None
    merged_ts: Optional[float] = None
    output_ts: Optional[float] = None
    nf_times: Dict[str, float] = {}
    for event in trace.events:
        if event.kind is SpanKind.CLASSIFY:
            classify_ts = event.ts_us
            if event.args:
                ingress_us = event.args.get("ingress_us")
        elif event.kind is SpanKind.NF_END:
            # Scaled instances are named name#k; normalise.
            name = event.name.split("#", 1)[0]
            nf_times[name] = max(nf_times.get(name, 0.0), event.ts_us)
        elif event.kind is SpanKind.MERGE_APPLY:
            merged_ts = event.ts_us
        elif event.kind is SpanKind.OUTPUT:
            output_ts = event.ts_us
    if output_ts is None:
        return None

    segments: Dict[str, float] = {}
    cursor = ingress_us if ingress_us is not None else (classify_ts or 0.0)
    if classify_ts is not None:
        segments["ingest"] = classify_ts - cursor
        cursor = classify_ts
    for index, stage in enumerate(graph.stages):
        finishes = [
            nf_times[e.node.name] for e in stage if e.node.name in nf_times
        ]
        if not finishes:
            continue
        stage_end = max(finishes)
        segments[f"stage {index}"] = max(0.0, stage_end - cursor)
        cursor = max(cursor, stage_end)
    if merged_ts is not None:
        segments["merge"] = max(0.0, merged_ts - cursor)
        cursor = max(cursor, merged_ts)
    segments["egress"] = max(0.0, output_ts - cursor)
    return segments


def latency_breakdown(
    target: Union[ServiceGraph, Policy, Sequence[str]],
    params: SimParams = DEFAULT_PARAMS,
    packets: int = 1500,
    sizes: PacketSizeDistribution = FIXED_64B,
    load_fraction: Optional[float] = None,
    num_mergers: int = 1,
    seed: int = 1,
) -> LatencyBreakdown:
    """Measure a graph with span tracing enabled and aggregate."""
    graph = as_graph(target)
    size = int(sizes.mean())
    capacity = nfp_capacity(graph, params, num_mergers=num_mergers,
                            packet_size=size).mpps
    fraction = params.latency_load_fraction if load_fraction is None else load_fraction

    env = Environment(track_stats=True)
    tracer = Tracer()
    server = NFPServer(env, params, num_mergers=num_mergers,
                       telemetry=TelemetryHub(tracer=tracer))
    server.deploy(deployed_from_graph(graph))
    flows = FlowGenerator(num_flows=64, sizes=sizes, seed=seed)
    TrafficSource(env, server.inject, capacity * fraction, packets,
                  flows=flows, seed=seed)
    env.run()

    sums: Dict[str, float] = {}
    count = 0
    for trace in tracer.traces().values():
        segments = _segment_trace(graph, trace)
        if segments is None:
            continue
        count += 1
        for name, value in segments.items():
            sums[name] = sums.get(name, 0.0) + value
    if count == 0:
        raise RuntimeError("no traced packets were delivered")
    segments = {name: total / count for name, total in sums.items()}
    return LatencyBreakdown(
        segments=segments,
        total_us=sum(segments.values()),
        packets=count,
    )
