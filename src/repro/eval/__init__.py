"""Evaluation harness: per-figure experiments, models, measurement."""

from .harness import (
    AutoscaleResult,
    MeasurementResult,
    as_graph,
    deployed_from_graph,
    measure_autoscale,
    measure_bess,
    measure_nfp,
    measure_onvm,
)
from .model import (
    CapacityReport,
    bess_capacity,
    nfp_capacity,
    nfp_latency_floor,
    onvm_capacity,
    placed_capacity,
)
from .forced import forced_parallel, forced_sequential, forced_structure
from .pair_stats import PairStatistics, TABLE2_NF_SET, compute_pair_statistics
from .correctness import ReplayReport, replay_chain
from .overhead import (
    MergerScalingResult,
    copy_merge_penalty,
    expected_overhead,
    merger_scaling,
    resource_overhead_curve,
    theoretical_overhead,
)
from .experiments import (
    ExperimentTable,
    NORTH_SOUTH_CHAIN,
    WEST_EAST_CHAIN,
    fig7_sequential_chains,
    fig8_nf_complexity,
    fig9_cycles_sweep,
    fig11_parallelism_degree,
    fig12_graph_structures,
    fig13_real_world_chains,
    table4_rtc_comparison,
)
from .breakdown import LatencyBreakdown, latency_breakdown
from .load_sweep import LoadPoint, load_sweep
from .report import render_table

__all__ = [
    "MeasurementResult",
    "AutoscaleResult",
    "measure_nfp",
    "measure_autoscale",
    "measure_onvm",
    "measure_bess",
    "as_graph",
    "deployed_from_graph",
    "CapacityReport",
    "nfp_capacity",
    "placed_capacity",
    "onvm_capacity",
    "bess_capacity",
    "nfp_latency_floor",
    "forced_sequential",
    "forced_parallel",
    "forced_structure",
    "PairStatistics",
    "compute_pair_statistics",
    "TABLE2_NF_SET",
    "ReplayReport",
    "replay_chain",
    "theoretical_overhead",
    "expected_overhead",
    "resource_overhead_curve",
    "copy_merge_penalty",
    "merger_scaling",
    "MergerScalingResult",
    "ExperimentTable",
    "NORTH_SOUTH_CHAIN",
    "WEST_EAST_CHAIN",
    "fig7_sequential_chains",
    "fig8_nf_complexity",
    "fig9_cycles_sweep",
    "fig11_parallelism_degree",
    "fig12_graph_structures",
    "fig13_real_world_chains",
    "table4_rtc_comparison",
    "render_table",
    "load_sweep",
    "LoadPoint",
    "latency_breakdown",
    "LatencyBreakdown",
]
