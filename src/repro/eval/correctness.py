"""§6.4's correctness replay: parallel output == sequential output.

"We generate a series of packets ..., tag each packet with a unique
packet ID in the payload, and replay them to the sequential service
chain and the optimized NFP service graph.  We compare the processed
packets and find that NFP service graph could provide the same
execution results as the sequential service chain."

This module is that experiment: build the compiled graph for a chain,
run the same packet stream through :class:`FunctionalDataplane` and
:class:`SequentialReference` (with independent NF instances), and
compare outputs byte for byte -- including agreement on drops.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.orchestrator import Orchestrator
from ..core.policy import Policy
from ..dataplane.functional import FunctionalDataplane, SequentialReference
from ..net.packet import Packet
from ..nfs.base import create_nf
from ..traffic.generator import FlowGenerator, PacketSizeDistribution, FIXED_64B

__all__ = ["ReplayReport", "replay_chain"]


@dataclass
class ReplayReport:
    """Outcome of one replay comparison.

    Drops are recorded per packet index, per plane.  ``drop_agreements``
    is derived from the intersection of the two index sets, so two
    planes dropping the *same number* of *different* packets can never
    be reported as agreement -- any one-sided drop lands in
    ``mismatches`` instead.
    """

    chain: Tuple[str, ...]
    graph: str
    packets: int
    matches: int
    drops_parallel: List[int] = field(default_factory=list)  # pkt indices
    drops_sequential: List[int] = field(default_factory=list)
    mismatches: List[int] = field(default_factory=list)  # offending pkt indices

    @property
    def drop_agreements(self) -> int:
        return len(set(self.drops_parallel) & set(self.drops_sequential))

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def __str__(self) -> str:
        status = "OK" if self.ok else f"MISMATCH at {self.mismatches[:5]}"
        return (
            f"replay {'->'.join(self.chain)}: graph [{self.graph}] "
            f"{self.matches}/{self.packets} byte-identical, "
            f"{self.drop_agreements} agreed drops -- {status}"
        )


def _tagged_flow_generator(sizes: PacketSizeDistribution, seed: int) -> FlowGenerator:
    """Packets carrying a unique ID in the payload, as in §6.4."""

    def payload(sequence: int) -> bytes:
        return struct.pack("!Q", sequence) + b"replay"

    # Sizes below 80 B cannot carry the tag; bump the floor.
    points = [(max(size, 80), w) for size, w in sizes.points]
    return FlowGenerator(
        num_flows=32,
        sizes=PacketSizeDistribution(points, name=f"{sizes.name}+tag"),
        seed=seed,
        payload_fn=payload,
    )


def replay_chain(
    chain: Sequence[str],
    packets: int = 200,
    sizes: PacketSizeDistribution = FIXED_64B,
    seed: int = 7,
    orchestrator: Optional[Orchestrator] = None,
) -> ReplayReport:
    """Replay a tagged stream through parallel and sequential execution."""
    orch = orchestrator or Orchestrator()
    graph = orch.compile(Policy.from_chain(list(chain), name="replay")).graph

    parallel = FunctionalDataplane(graph)
    sequential = SequentialReference(
        [create_nf(kind, name=f"seq-{kind}-{i}") for i, kind in enumerate(chain)]
    )

    gen_a = _tagged_flow_generator(sizes, seed)
    gen_b = _tagged_flow_generator(sizes, seed)

    matches = 0
    drops_parallel: List[int] = []
    drops_sequential: List[int] = []
    mismatches: List[int] = []
    for index in range(packets):
        pkt_par = gen_a.next_packet()
        pkt_seq = gen_b.next_packet()
        assert bytes(pkt_par.buf) == bytes(pkt_seq.buf), "generators diverged"

        out_par = parallel.process(pkt_par)
        out_seq = sequential.process(pkt_seq)
        if out_par is None:
            drops_parallel.append(index)
        if out_seq is None:
            drops_sequential.append(index)
        if out_par is None and out_seq is None:
            continue  # agreed drop, derived from the index lists
        if (
            out_par is not None
            and out_seq is not None
            and bytes(out_par.buf) == bytes(out_seq.buf)
        ):
            matches += 1
        else:
            mismatches.append(index)

    return ReplayReport(
        chain=tuple(chain),
        graph=graph.describe(),
        packets=packets,
        matches=matches,
        drops_parallel=drops_parallel,
        drops_sequential=drops_sequential,
        mismatches=mismatches,
    )
