"""Tiny plain-text table renderer for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "fmt"]


def fmt(value) -> str:
    """Render one cell: floats get 2 decimals, everything else str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table, paper-style."""
    str_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
