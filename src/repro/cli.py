"""Command-line interface: ``python -m repro <command>``.

Commands
--------
compile
    Compile a policy (DSL file or ``--chain a,b,c``) and print the
    service graph, the per-pair Algorithm 1 verdicts, and the generated
    CT/FT tables.
measure
    Run a chain on the simulated testbed under NFP / OpenNetVM / BESS
    and print latency, throughput, and overhead.  ``--telemetry``
    additionally collects and prints per-NF metrics for the NFP runs;
    ``--json`` dumps the results as JSON instead of the ASCII table.
monitor
    Run a chain with the windowed time-series sampler armed: live
    firing/cleared alert lines from declarative watch rules
    (``--watch 'ring.occupancy > 0.8 for 3 windows'``, ``--slo-us``),
    then an ASCII sparkline dashboard, the per-packet critical-path
    attribution table, and optionally a Prometheus text exposition
    (``--prom``).  ``--faults`` injects failures to watch the episode.
autoscale
    Drive a time-varying load shape (flash crowd, diurnal, burst
    trains) against a chain with one NF under an autoscaling policy:
    watch rules fire on windowed telemetry, membership changes execute
    live (classifier hold, drain barrier, stateful handover), and the
    summary compares elastic core-seconds against static peak
    provisioning next to the conservation ledger.
bench
    Run the registered benchmark scenarios (``--quick``/``--full``)
    into a schema-versioned ``BENCH_<n>.json`` report, or compare two
    reports (``--compare old.json new.json``) and exit non-zero on
    regressions beyond tolerance.
trace
    Run a chain with packet-lifecycle tracing enabled; write a Chrome
    ``trace_event`` file (chrome://tracing / Perfetto) and print the
    per-NF summary table.
pairs
    Print the §4.3 parallelizability matrix and summary statistics.
fuzz
    Differential fuzzing: random valid policies + adversarial traffic
    through the sequential reference, the functional parallel dataplane,
    and the timed DES dataplane; failures are delta-debug-shrunk to a
    committable JSON seed + pytest repro.  ``--audit-profiles`` arms the
    fourth oracle: recorded field accesses are cross-checked against the
    declared action table per case.
profile-audit
    Run NFs over adversarial generated traffic with the access recorder
    attached, infer per-kind footprints, and print the inferred vs
    declared table; exits non-zero on any undeclared access.
sweep
    Plot a Fig. 9-style busy-cycle sweep or a Fig. 11-style degree
    sweep as a terminal chart.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import Orchestrator, Parallelism, Policy, parse_policy
from .eval import (
    compute_pair_statistics,
    forced_parallel,
    forced_sequential,
    measure_bess,
    measure_nfp,
    measure_onvm,
    render_table,
)
from .eval.plots import ascii_plot

__all__ = ["main"]


def _chain_from(args) -> List[str]:
    if not args.chain:
        raise SystemExit("--chain a,b,c is required")
    return [part.strip() for part in args.chain.split(",") if part.strip()]


def _load_policy(args) -> Policy:
    if args.policy:
        with open(args.policy) as handle:
            return parse_policy(handle.read(), name=args.policy)
    return Policy.from_chain(_chain_from(args))


def cmd_compile(args) -> int:
    orch = Orchestrator()
    policy = _load_policy(args)
    result = orch.compile(policy)
    graph = result.graph
    print(f"graph            : {graph.describe()}")
    print(f"equivalent length: {graph.equivalent_length}")
    print(f"packet versions  : {graph.num_versions} "
          f"({graph.num_versions - 1} copies)")
    print(f"merger count     : {graph.total_count}")
    if graph.merge_ops:
        print(f"merge operations : {graph.merge_ops}")
    for warning in result.warnings:
        print(f"warning          : {warning}")
    if args.verbose:
        print("\npairwise verdicts:")
        for (a, b), verdict in sorted(result.decisions.items()):
            print(f"  {a} before {b}: {verdict.classification.value}")
        deployed = orch.deploy(policy)
        print(f"\nCT: {deployed.tables.ct_entry}")
        for nf, actions in deployed.tables.forwarding.items():
            print(f"FT[{nf}]: {actions}")
    return 0


def cmd_measure(args) -> int:
    import json

    from .bench.schema import measurement_to_dict
    from .telemetry import TelemetryHub, nf_summary_table

    chain = _chain_from(args)
    rows = []
    results = []
    hub = (TelemetryHub()
           if (args.telemetry or args.timeseries) else None)
    sampler = None
    if args.timeseries:
        from .telemetry import Sampler

        # Windows delta from zero, so only the first NFP-family run can
        # be sampled against a shared hub.
        sampler = Sampler(hub)
    scale_out = args.instances if args.instances > 1 else None
    armed_sampler = None
    systems = args.systems.split(",")
    for system in systems:
        system = system.strip().lower()
        run_sampler = sampler if system in ("nfp", "nfp-seq") else None
        if run_sampler is not None:
            armed_sampler = run_sampler
            sampler = None
        if system == "nfp":
            graph = Orchestrator().compile(Policy.from_chain(chain)).graph
            result = measure_nfp(graph, packets=args.packets, telemetry=hub,
                                 instances=scale_out,
                                 flow_cache=args.flow_cache,
                                 sampler=run_sampler)
        elif system == "nfp-seq":
            result = measure_nfp(forced_sequential(chain), packets=args.packets,
                                 telemetry=hub, instances=scale_out,
                                 flow_cache=args.flow_cache,
                                 sampler=run_sampler)
        elif system == "onvm":
            result = measure_onvm(chain, packets=args.packets)
        elif system == "bess":
            result = measure_bess(chain, num_cores=len(chain) + 2,
                                  packets=args.packets)
        else:
            raise SystemExit(f"unknown system {system!r}")
        results.append(result)
        rows.append([
            result.system, result.label, result.latency_mean_us,
            result.latency_p99_us, result.throughput_mpps,
            result.bottleneck, result.resource_overhead * 100,
        ])
    if args.json:
        document = {"chain": chain, "packets": args.packets,
                    "results": [measurement_to_dict(r) for r in results]}
        if hub is not None:
            document["telemetry"] = hub.registry.snapshot()
        if armed_sampler is not None:
            series = armed_sampler.series
            document["timeseries"] = {
                "window_us": armed_sampler.window_us,
                "windows": series.total_windows,
                "peaks": {
                    name: {"value": peak[0], "window": peak[1]}
                    for name in series.metric_names()
                    if (peak := series.peak(name)) is not None
                },
            }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    print(render_table(
        ["system", "graph", "lat us", "p99 us", "Mpps", "bottleneck",
         "overhead %"], rows))
    if hub is not None and hub.registry.counters:
        print("\nper-NF telemetry (NFP runs):")
        print(nf_summary_table(hub.registry))
        print(f"\ncopies: full={hub.registry.counter_value('copy.full')} "
              f"header={hub.registry.counter_value('copy.header')}  "
              f"ring hops: {hub.registry.counter_value('ring.hops')}  "
              f"merged: {hub.registry.counter_value('merger.merged')}")
    if armed_sampler is not None:
        from .telemetry import sparkline

        series = armed_sampler.series
        print(f"\ntime series (first NFP run, "
              f"{series.total_windows} x {armed_sampler.window_us:g} us):")
        for label, values in (
            ("tx pkts/window", series.counter_values("tx.packets")),
            ("p99 latency us", [v for _, v in
                                series.percentile_series("latency_us", 99)]),
            ("ring occupancy", series.values("ring.occupancy")),
        ):
            if values and any(values):
                print(f"  {label:<16s} {sparkline(values):<60s} "
                      f"peak {max(values):.4g}")
    return 0


def cmd_trace(args) -> int:
    """Trace packet lifecycles through a compiled graph (Chrome export)."""
    from .telemetry import (
        TelemetryHub,
        Tracer,
        events_to_jsonl,
        nf_summary_table,
        write_chrome_trace,
    )

    policy = _load_policy(args)
    graph = Orchestrator().compile(policy).graph
    tracer = Tracer(max_events=args.max_events)
    hub = TelemetryHub(tracer=tracer)
    result = measure_nfp(graph, packets=args.packets, telemetry=hub)

    traces = tracer.traces()
    complete = sum(1 for trace in traces.values() if trace.is_complete())
    written = write_chrome_trace(tracer.events, args.out)

    print(f"graph          : {graph.describe()}")
    print(f"packets traced : {len(traces)} ({complete} complete lifecycles)")
    print(f"span events    : {len(tracer.events)} "
          f"(overflowed: {tracer.overflow})")
    print(f"chrome trace   : {args.out} ({written} trace events) "
          f"-- open in chrome://tracing or https://ui.perfetto.dev")
    if args.jsonl:
        count = events_to_jsonl(tracer.events, args.jsonl)
        print(f"jsonl dump     : {args.jsonl} ({count} lines)")
    print(f"mean latency   : {result.latency_mean_us:.1f} us  "
          f"p99: {result.latency_p99_us:.1f} us  "
          f"tput: {result.throughput_mpps:.2f} Mpps\n")
    print(nf_summary_table(hub.registry))
    return 0


def cmd_monitor(args) -> int:
    """Run a chain with windowed telemetry, watch rules and live alerts."""
    import json

    from .telemetry import (
        Sampler,
        TelemetryHub,
        Tracer,
        Watcher,
        critpath_report,
        sparkline,
        write_prometheus,
    )

    policy = _load_policy(args)
    graph = Orchestrator().compile(policy).graph
    tracer = Tracer()
    hub = TelemetryHub(tracer=tracer)
    sampler = Sampler(hub, window_us=args.window_us)

    rules = list(args.watch or [])
    if not rules:
        rules = ["ring.occupancy > 0.8 for 3 windows",
                 "merger.at_timeout > 0"]
    if args.slo_us is not None and not any("slo" in r for r in rules):
        rules.append("p99_us > slo")
    watcher = Watcher(rules, slo_us=args.slo_us, hub=hub).attach(sampler)
    if not args.json:
        watcher.on_alert(lambda event: print(event.describe()))

    scale_out = args.instances if args.instances > 1 else None
    result = measure_nfp(graph, packets=args.packets, telemetry=hub,
                         instances=scale_out, flow_cache=args.flow_cache,
                         faults=args.faults, sampler=sampler)

    series = sampler.series
    report = critpath_report(tracer.traces().values())

    if args.prom:
        write_prometheus(hub.registry, args.prom)

    if args.json:
        document = {
            "graph": graph.describe(),
            "packets": args.packets,
            "windows": series.total_windows,
            "window_us": sampler.window_us,
            "latency_p99_us": result.latency_p99_us,
            "throughput_mpps": result.throughput_mpps,
            "alerts": {
                "fired": watcher.fired,
                "cleared": watcher.cleared,
                "still_firing": [r.text for r in watcher.still_firing()],
                "events": [
                    {"rule": e.rule, "state": e.state, "ts_us": e.ts_us,
                     "window": e.window_index, "value": e.value,
                     "threshold": e.threshold}
                    for e in watcher.events
                ],
            },
            "peaks": {
                name: {"value": peak[0], "window": peak[1]}
                for name in series.metric_names()
                if (peak := series.peak(name)) is not None
            },
            "critical_path": report.to_dict(),
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0

    drops = [
        float(sum(v for k, v in w.counters.items() if k.startswith("drops.")))
        for w in series.windows
    ]

    def row(label: str, values) -> None:
        values = list(values)
        if not values or not any(values):
            return
        print(f"{label:<24s} {sparkline(values):<60s} peak {max(values):.4g}")

    print(f"\ngraph   : {graph.describe()}")
    print(f"windows : {series.total_windows} x {sampler.window_us:g} us  "
          f"(p99 {result.latency_p99_us:.1f} us, "
          f"{result.throughput_mpps:.2f} Mpps)")
    row("tx pkts/window", series.counter_values("tx.packets"))
    row("p99 latency us", (v for _, v in
                           series.percentile_series("latency_us", 99)))
    row("ring occupancy (max)", series.values("ring.occupancy"))
    row("AT depth", series.values("at.depth"))
    row("drops/window", drops)
    pinned = hub.registry.counter_value("rss.pinned_flows")
    if pinned:
        print(f"rss.pinned_flows: {pinned} (keyless traffic on instance 0)")

    print(f"\nalerts  : {watcher.fired} fired, {watcher.cleared} cleared"
          + (f", still firing: {[r.text for r in watcher.still_firing()]}"
             if watcher.still_firing() else ""))
    for rule in watcher.rules:
        print(f"  watch {rule.text!r}: fired={rule.fired} "
              f"cleared={rule.cleared}")

    if report.count:
        print("\ncritical path (per-packet, mean vs p99 cohort):")
        print(report.table())
        dominant = report.dominant_tail_segment()
        if dominant:
            delta = report.tail_delta()[dominant]
            print(f"p99 attribution: '{dominant}' dominates the tail "
                  f"(+{delta:.2f} us vs mean)")
    if args.prom:
        print(f"\nprometheus exposition: {args.prom}")
    return 0


def cmd_autoscale(args) -> int:
    """Drive a time-varying load against an elastically scaled chain."""
    import json

    from .autoscale import ScalePolicy
    from .eval.harness import measure_autoscale
    from .telemetry import TelemetryHub, sparkline
    from .traffic import (
        BurstTrainShape,
        ConstantShape,
        DiurnalShape,
        FlashCrowdShape,
    )

    policy = _load_policy(args)
    graph = Orchestrator().compile(policy).graph
    if args.nf not in graph.nf_names():
        raise SystemExit(f"--nf {args.nf!r} is not an NF of the chain "
                         f"({', '.join(graph.nf_names())})")

    base, peak = args.base_mpps, args.peak_mpps
    horizon = args.packets / (base * 2.0)
    if args.shape == "flash":
        shape = FlashCrowdShape(
            base_mpps=base, peak_mpps=peak,
            start_us=0.2 * horizon, ramp_us=0.1 * horizon,
            hold_us=0.35 * horizon, decay_us=0.15 * horizon)
    elif args.shape == "diurnal":
        shape = DiurnalShape(base_mpps=base, peak_mpps=peak,
                             period_us=horizon)
    elif args.shape == "bursts":
        shape = BurstTrainShape(base_mpps=base, burst_mpps=peak,
                                period_us=horizon / 8.0,
                                burst_len_us=horizon / 32.0)
    else:
        shape = ConstantShape(base)

    window_us = args.window_us
    if window_us is None:
        window_us = max(10.0, horizon / 100.0)
    scale_policy = ScalePolicy(
        args.nf,
        min_instances=args.min_instances,
        max_instances=args.max_instances,
        up_rule=args.up_rule,
        down_rule=args.down_rule,
        cooldown_us=(3.0 * window_us if args.cooldown_us is None
                     else args.cooldown_us),
    )
    hub = TelemetryHub()
    orch = Orchestrator()
    result = measure_autoscale(
        graph, scale_policy, shape,
        packets=args.packets, seed=args.seed, telemetry=hub,
        num_flows=args.num_flows, popularity=args.popularity,
        window_us=window_us, orchestrator=orch,
    )
    scaler = result.scaler
    watcher = scaler.watcher
    conservation = result.conservation
    series = result.sampler.series

    if args.json:
        document = {
            "graph": graph.describe(),
            "shape": args.shape,
            "packets": args.packets,
            "windows": series.total_windows,
            "window_us": window_us,
            "latency_p99_us": result.measurement.latency_p99_us,
            "duration_us": result.duration_us,
            "policy": {
                "nf": scale_policy.name,
                "min": scale_policy.min_instances,
                "max": scale_policy.max_instances,
                "up_rule": scale_policy.up_rule,
                "down_rule": scale_policy.down_rule,
            },
            "alerts": {"fired": watcher.fired, "cleared": watcher.cleared},
            "decisions": [
                {"ts_us": d.ts_us, "direction": d.direction,
                 "target": d.target, "aborted": d.aborted,
                 "outcome": d.outcome}
                for d in scaler.decisions
            ],
            "cores": {
                "peak": result.peak_cores,
                "elastic_core_us": result.core_us,
                "static_peak_core_us": result.static_peak_core_us,
                "savings_fraction": result.core_savings_fraction,
            },
            "conservation": conservation,
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0 if conservation["unaccounted"] == 0 else 1

    print(f"\ngraph   : {graph.describe()}")
    print(f"shape   : {args.shape} {base:g}->{peak:g} Mpps over "
          f"{result.duration_us:.0f} us")
    print(f"policy  : {scale_policy.name} "
          f"{scale_policy.min_instances}..{scale_policy.max_instances}  "
          f"up[{scale_policy.up_rule}]  down[{scale_policy.down_rule}]")
    print(f"windows : {series.total_windows} x {window_us:g} us  "
          f"(p99 {result.measurement.latency_p99_us:.1f} us)")
    occupancy = list(series.values("ring.occupancy"))
    if occupancy and any(occupancy):
        print(f"{'ring occupancy (max)':<24s} {sparkline(occupancy):<60s} "
              f"peak {max(occupancy):.4g}")

    print()
    for event in watcher.events:
        print(event.describe())
    for decision in scaler.decisions:
        outcome = decision.outcome or {}
        status = "ABORTED" if decision.aborted else (
            f"{outcome.get('from', '?')}->{outcome.get('to', '?')} "
            f"moved={outcome.get('moved_flows', 0)} "
            f"handover={outcome.get('handover_flows', 0)} "
            f"barrier={outcome.get('barrier_us', 0.0):.1f}us")
        print(f"[{decision.ts_us:12.1f}us] SCALE-{decision.direction.upper()} "
              f"{scale_policy.name} -> {decision.target} ({status})")

    print(f"\nalerts  : {watcher.fired} fired, {watcher.cleared} cleared")
    print(f"scale   : {scaler.scale_ups} up, {scaler.scale_downs} down "
          f"(peak {result.peak_cores} cores)")
    print(f"cores   : elastic {result.core_us:.0f} core-us vs static-peak "
          f"{result.static_peak_core_us:.0f} core-us "
          f"({result.core_savings_fraction * 100:.1f}% saved)")
    drops = ", ".join(f"{k}={v}" for k, v in conservation["drops"].items())
    print(f"ledger  : injected={conservation['injected']} "
          f"emitted={conservation['emitted']} "
          f"drops[{drops}] unaccounted={conservation['unaccounted']}")
    record = orch.get(scaler.mid).scaled
    print(f"record  : {record.describe()}")
    return 0 if conservation["unaccounted"] == 0 else 1


def cmd_fuzz(args) -> int:
    """Differential fuzzing of sequential vs parallel execution."""
    from .check import replay_corpus, run_fuzz
    from .telemetry import TelemetryHub

    hub = TelemetryHub()
    include_des = not args.no_des
    if args.instances < 1:
        raise SystemExit("--instances must be >= 1")

    if args.replay:
        results = replay_corpus(args.replay, include_des=include_des,
                                telemetry=hub, instances=args.instances,
                                audit_profiles=args.audit_profiles,
                                batched=args.batched)
        failures = 0
        for path, outcome in results:
            status = "ok" if outcome.ok else f"FAIL {outcome.kind}"
            print(f"{status:<20s} {path}")
            if not outcome.ok:
                failures += 1
                print(f"    {outcome.detail}")
        print(f"\nreplayed {len(results)} corpus cases, {failures} failing")
        return 1 if failures else 0

    faults = tuple(
        kind.strip() for kind in (args.faults or "").split(",") if kind.strip()
    )
    if faults and args.audit_profiles:
        raise SystemExit(
            "--audit-profiles cannot be combined with --faults: injected "
            "crashes drop packets inside the NF scope and would be "
            "misattributed as undeclared drops")
    if faults and args.batched:
        raise SystemExit(
            "--batched cannot be combined with --faults: the batched plane "
            "models healthy semantics only, so fault-mode conservation has "
            "no batched counterpart to compare against")
    report = run_fuzz(
        cases=args.cases,
        seed=args.seed,
        max_seconds=args.max_seconds,
        include_des=include_des,
        packets_per_case=args.packets,
        max_nfs=args.max_nfs,
        inject=args.inject_bug or (),
        telemetry=hub,
        out_dir=args.out_dir,
        stop_after=args.stop_after,
        shrink=not args.no_shrink,
        log=lambda line: print(f"  {line}"),
        instances=args.instances,
        faults=faults,
        audit_profiles=args.audit_profiles,
        batched=args.batched,
    )

    counters = hub.registry
    print(f"\nseed        : {report.seed}")
    print(f"cases       : {report.cases} "
          f"({report.cases_per_s:.1f}/s over {report.duration_s:.1f}s)")
    print(f"packets     : {report.packets}")
    if faults:
        print(f"faults      : {','.join(faults)} "
              f"(injected {counters.counter_value('faults.injected')}, "
              f"AT timeouts {counters.counter_value('merger.at_timeout')}, "
              f"restarts {counters.counter_value('failover.restarts')})")
    else:
        print(f"shrink runs : {counters.counter_value('fuzz.shrink_steps')}")
    if report.ok:
        if faults:
            print("result      : conservation held for every fault case")
        elif args.batched:
            print("result      : all cases agree across the four planes")
        else:
            print("result      : all cases agree across the three planes")
        return 0
    print(f"result      : {len(report.failures)} failing case(s)")
    for failure in report.failures:
        print(f"  case {failure.index}: {failure.outcome.kind} "
              f"-- {failure.outcome.detail}")
        if failure.shrunk is not None:
            chain = [kind for _, kind in failure.shrunk.case.instances]
            print(f"    minimized to {len(chain)} NF(s) {chain}, "
                  f"{failure.shrunk.packets} packet(s)")
        if failure.test_path:
            print(f"    repro: {failure.json_path}  {failure.test_path}")
    return 1


def cmd_profile_audit(args) -> int:
    """Infer NF footprints from traced execution; diff against the table."""
    from .profiles import audit_catalog

    report = audit_catalog(
        kinds=args.nf or None,
        cases=args.cases,
        seed=args.seed,
        packets_per_case=args.packets,
    )
    print(render_table(
        ["kind", "packets", "inferred", "declared", "hard", "info"],
        [[row["kind"], row["packets"], row["inferred"], row["declared"],
          row["hard"], row["info"]] for row in report.rows()],
    ))
    print(f"\ncases   : {report.cases} ({report.packets} packets)")
    print(f"kinds   : {len(report.inferred)} audited")
    hard = report.hard
    info = [f for f in report.findings if not f.hard]
    if args.verbose and info:
        print("\ninfo findings (declared but never observed):")
        for finding in info:
            print(f"  {finding.kind}: {finding.message}")
    if not hard:
        print("result  : every observed access is covered by its "
              "declared profile")
        return 0
    print(f"result  : {len(hard)} hard finding(s) -- declared profiles "
          "under-approximate the observed footprint:")
    for finding in hard:
        print(f"  {finding.kind}: {finding.message}")
    return 1


def cmd_bench(args) -> int:
    """Run the benchmark scenario registry, or compare two reports."""
    from .bench import (
        BenchReport,
        REGISTRY,
        compare_reports,
        next_bench_path,
        run_bench,
        summary_table,
    )

    if args.compare:
        old_path, new_path = args.compare
        try:
            old = BenchReport.load(old_path)
            new = BenchReport.load(new_path)
            comparison = compare_reports(old, new)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"bench compare failed: {exc}")
        print(f"old: {old_path} (commit {old.meta.get('commit', '?')}, "
              f"{old.meta.get('mode', '?')}, {len(old.scenarios)} scenarios)")
        print(f"new: {new_path} (commit {new.meta.get('commit', '?')}, "
              f"{new.meta.get('mode', '?')}, {len(new.scenarios)} scenarios)\n")
        print(comparison.render(verbose=args.verbose))
        return comparison.exit_code

    if args.list:
        for spec in REGISTRY.values():
            tag = "quick" if spec.quick else "full "
            print(f"{tag}  {spec.name:<26s} {spec.description}")
        return 0

    mode = "full" if args.full else "quick"
    names = [n.strip() for n in args.only.split(",") if n.strip()] \
        if args.only else None
    try:
        report = run_bench(mode=mode, packets=args.packets, seed=args.seed,
                           names=names, log=lambda line: print(f"  {line}"))
    except KeyError as exc:
        raise SystemExit(str(exc))
    out = args.out or next_bench_path(".")
    report.save(out)
    print()
    print(summary_table(report))
    meta = report.meta
    print(f"\nmode={meta['mode']} packets={meta['packets']} "
          f"seed={meta['seed']} commit={meta['commit']}"
          f"{' (dirty)' if meta['dirty'] else ''}")
    print(f"wall time: {meta['wall_time_s']:.1f}s  "
          f"peak rss: {meta['peak_rss_kb'] / 1024:.0f} MiB")
    print(f"report   : {out} ({len(report.scenarios)} scenarios, "
          f"schema {report.schema})")
    return 0


def cmd_place(args) -> int:
    """Place chains onto a topology under SLOs; print plan + utilisation."""
    from .placement import Topology, Slo, round_robin_place

    topo = Topology.from_spec(args.topology)
    orch = Orchestrator()
    requests = []
    for chunk in args.chains.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, sep, rest = chunk.partition("=")
        if not sep:
            raise SystemExit(
                f"chain {chunk!r} must look like name=nf1,nf2,... "
                f"(optionally @<max_delay_us>)"
            )
        delay = args.max_delay_us
        if "@" in rest:
            rest, _, override = rest.partition("@")
            delay = float(override)
        chain = [part.strip() for part in rest.split(",") if part.strip()]
        requests.append(orch.request(
            name.strip(), Policy.from_chain(chain),
            Slo(max_delay_us=delay, max_mpps=args.max_mpps),
        ))
    if not requests:
        raise SystemExit("--chains is empty")

    solvers = (["heuristic", "brute"] if args.solver == "both"
               else [args.solver])
    exit_code = 0
    for solver in solvers:
        if solver == "round-robin":
            plan = round_robin_place(topo, requests)
        else:
            plan = orch.place(topo, requests, solver=solver,
                              backups=not args.no_backup)
        print(plan.describe())
        print("\nserver utilisation:")
        print(render_table(
            ["server", "cores", "used", "util %", "mem MB used"],
            [(name, topo.server(name).cores,
              plan.ledger.cores_used[name], f"{util * 100:.0f}",
              f"{plan.ledger.memory_used[name]:.0f}")
             for name, util in sorted(plan.ledger.server_utilisation().items())],
        ))
        busy = {
            name: util
            for name, util in plan.ledger.link_utilisation().items()
            if util > 0
        }
        if busy:
            print("\nlink utilisation (loaded links):")
            print(render_table(
                ["link", "util %"],
                [(name, f"{util * 100:.1f}")
                 for name, util in sorted(busy.items())],
            ))
        if args.measure and plan.placements:
            from .eval.harness import measure_placed
            from .telemetry import TelemetryHub, multiserver_summary_table

            hub = TelemetryHub()
            rows = []
            for placement in plan.placements:
                result = measure_placed(placement, packets=args.packets,
                                        telemetry=hub, topology=topo)
                slo = placement.request.slo
                rows.append([
                    placement.request.name, "->".join(placement.path),
                    f"{result.latency_p99_us:.1f}", f"{slo.max_delay_us:.1f}",
                    "yes" if result.latency_p99_us <= slo.max_delay_us
                    else "NO",
                ])
            print("\nDES validation (measured at committed rate):")
            print(render_table(
                ["chain", "path", "p99 us", "slo us", "meets slo"], rows))
            summary = multiserver_summary_table(hub.registry)
            if summary:
                print("\nserver/link telemetry:")
                print(summary)
        if not plan.feasible:
            exit_code = 1
        print()
    return exit_code


def cmd_pairs(args) -> int:
    stats = compute_pair_statistics()
    names = sorted({a for a, _ in stats.per_pair})
    symbol = {
        Parallelism.NO_COPY: ".",
        Parallelism.WITH_COPY: "c",
        Parallelism.NOT_PARALLELIZABLE: "X",
    }
    width = max(len(n) for n in names)
    print(" " * (width + 1) + " ".join(n[:2] for n in names))
    for first in names:
        cells = " ".join(
            symbol[stats.per_pair[(first, second)]] + " " for second in names
        )
        print(f"{first:>{width}s} {cells}")
    print("\n(. = no copy, c = with copy, X = not parallelizable; "
          "row runs before column)\n")
    print(render_table(["outcome", "measured %", "paper %"], stats.as_rows()))
    return 0


def cmd_replay(args) -> int:
    """Replay a pcap trace through a compiled graph, write the output."""
    from .dataplane import FunctionalDataplane
    from .net import read_pcap, write_pcap

    orch = Orchestrator()
    policy = _load_policy(args)
    graph = orch.compile(policy).graph
    plane = FunctionalDataplane(graph)
    records = read_pcap(args.input)
    outputs = []
    for timestamp, pkt in records:
        try:
            out = plane.process(pkt)
        except ValueError as exc:
            print(f"skipping unparsable packet at {timestamp:.0f}us: {exc}",
                  file=sys.stderr)
            continue
        if out is not None:
            out.ingress_us = timestamp
            outputs.append(out)
    written = write_pcap(args.output, outputs) if args.output else 0
    print(f"graph   : {graph.describe()}")
    print(f"input   : {len(records)} packets")
    print(f"emitted : {plane.emitted}, dropped: {plane.dropped}")
    if args.output:
        print(f"output  : {written} packets -> {args.output}")
    return 0


def cmd_breakdown(args) -> int:
    """Per-segment latency attribution for a compiled graph."""
    from .eval import latency_breakdown

    policy = _load_policy(args)
    graph = Orchestrator().compile(policy).graph
    breakdown = latency_breakdown(graph, packets=args.packets)
    print(f"graph : {graph.describe()}")
    print(f"total : {breakdown.total_us:.1f} us "
          f"(over {breakdown.packets} packets)\n")
    print(render_table(
        ["segment", "mean us", "share %"],
        [(name, f"{value:.1f}", f"{share:.1f}")
         for name, value, share in breakdown.rows()],
    ))
    return 0


def cmd_sweep(args) -> int:
    series = {"sequential": [], "parallel": []}
    if args.kind == "cycles":
        points = (1, 600, 1200, 1800, 2400, 3000)
        for cycles in points:
            seq = measure_nfp(forced_sequential(["firewall"] * 2),
                              packets=args.packets, extra_cycles=cycles)
            par = measure_nfp(forced_parallel(["firewall"] * 2, with_copy=False),
                              packets=args.packets, extra_cycles=cycles)
            series["sequential"].append((cycles, seq.latency_mean_us))
            series["parallel"].append((cycles, par.latency_mean_us))
        x_label = "busy cycles per packet"
    else:
        for degree in (2, 3, 4, 5):
            seq = measure_nfp(forced_sequential(["firewall"] * degree),
                              packets=args.packets, extra_cycles=300)
            par = measure_nfp(forced_parallel(["firewall"] * degree,
                                              with_copy=False),
                              packets=args.packets, extra_cycles=300)
            series["sequential"].append((degree, seq.latency_mean_us))
            series["parallel"].append((degree, par.latency_mean_us))
        x_label = "parallelism degree"
    print(ascii_plot(series, title=f"latency vs {x_label}",
                     x_label=x_label, y_label="us"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile a policy")
    p_compile.add_argument("--policy", help="policy DSL file")
    p_compile.add_argument("--chain", help="comma-separated NF kinds")
    p_compile.add_argument("-v", "--verbose", action="store_true")
    p_compile.set_defaults(func=cmd_compile)

    p_measure = sub.add_parser("measure", help="measure a chain")
    p_measure.add_argument("--chain", required=True)
    p_measure.add_argument("--systems", default="nfp,onvm,bess")
    p_measure.add_argument("--packets", type=int, default=2000)
    p_measure.add_argument("--telemetry", action="store_true",
                           help="collect and print per-NF metrics (NFP runs)")
    p_measure.add_argument("--instances", type=int, default=1,
                           help="replicate every NF this many times with RSS "
                                "flow-split (§7 scale-out; NFP runs only)")
    p_measure.add_argument("--flow-cache", action="store_true",
                           help="enable the classifier per-flow decision "
                                "cache (NFP runs only)")
    p_measure.add_argument("--json", action="store_true",
                           help="dump results as JSON instead of a table")
    p_measure.add_argument("--timeseries", action="store_true",
                           help="arm a windowed sampler on the first NFP run "
                                "and print per-window sparklines (implies "
                                "telemetry collection)")
    p_measure.set_defaults(func=cmd_measure)

    p_monitor = sub.add_parser(
        "monitor", help="run a chain with live windowed telemetry, watch "
                        "rules and alerts")
    p_monitor.add_argument("--policy", help="policy DSL file")
    p_monitor.add_argument("--chain", help="comma-separated NF kinds")
    p_monitor.add_argument("--packets", type=int, default=2000)
    p_monitor.add_argument("--window-us", type=float, default=100.0,
                           help="sampling window in sim microseconds "
                                "(default 100)")
    p_monitor.add_argument("--watch", action="append", metavar="RULE",
                           help="watch rule, e.g. 'ring.occupancy > 0.8 for "
                                "3 windows' or 'p99_us > slo'; repeatable "
                                "(default: ring occupancy + AT timeouts)")
    p_monitor.add_argument("--slo-us", type=float, default=None,
                           help="latency SLO resolving the 'slo' threshold "
                                "(adds a p99_us > slo rule)")
    p_monitor.add_argument("--instances", type=int, default=1,
                           help="replicate every NF this many times")
    p_monitor.add_argument("--flow-cache", action="store_true",
                           help="enable the classifier flow cache")
    p_monitor.add_argument("--faults", metavar="SPEC",
                           help="fault plan to inject, e.g. "
                                "'ring:ids:cap=2:pkt=100'")
    p_monitor.add_argument("--prom", metavar="FILE",
                           help="write a Prometheus text exposition of the "
                                "final registry")
    p_monitor.add_argument("--json", action="store_true",
                           help="print a structured JSON summary instead of "
                                "the dashboard (suppresses live alerts)")
    p_monitor.set_defaults(func=cmd_monitor)

    p_autoscale = sub.add_parser(
        "autoscale", help="drive a time-varying load against an elastic "
                          "chain: watch rules rescale one NF live")
    p_autoscale.add_argument("--policy", help="policy DSL file")
    p_autoscale.add_argument("--chain", default="nat,vpn",
                             help="comma-separated NF kinds "
                                  "(default nat,vpn)")
    p_autoscale.add_argument("--nf", default="vpn",
                             help="the NF the policy scales (default vpn)")
    p_autoscale.add_argument("--min-instances", type=int, default=1)
    p_autoscale.add_argument("--max-instances", type=int, default=4)
    p_autoscale.add_argument("--up-rule",
                             default="ring.occupancy > 0.25 for 2 windows",
                             help="watch rule that triggers scale-up")
    p_autoscale.add_argument("--down-rule",
                             default="ring.occupancy < 0.05 for 6 windows",
                             help="watch rule that triggers scale-down")
    p_autoscale.add_argument("--cooldown-us", type=float, default=None,
                             help="gap between decisions "
                                  "(default 3 windows)")
    p_autoscale.add_argument("--shape", default="flash",
                             choices=["flash", "diurnal", "bursts",
                                      "constant"],
                             help="offered-load shape (default flash)")
    p_autoscale.add_argument("--base-mpps", type=float, default=0.8)
    p_autoscale.add_argument("--peak-mpps", type=float, default=3.5)
    p_autoscale.add_argument("--packets", type=int, default=3000)
    p_autoscale.add_argument("--num-flows", type=int, default=256)
    p_autoscale.add_argument("--popularity", default="zipf",
                             choices=["uniform", "zipf"],
                             help="flow popularity mix (default zipf)")
    p_autoscale.add_argument("--window-us", type=float, default=None,
                             help="sampling window (default: horizon/100)")
    p_autoscale.add_argument("--seed", type=int, default=1)
    p_autoscale.add_argument("--json", action="store_true",
                             help="structured JSON summary instead of the "
                                  "dashboard")
    p_autoscale.set_defaults(func=cmd_autoscale)

    p_bench = sub.add_parser(
        "bench", help="run benchmark scenarios / compare BENCH reports")
    p_bench.add_argument("--quick", action="store_true",
                         help="quick scenario set (default)")
    p_bench.add_argument("--full", action="store_true",
                         help="every scenario at the full packet budget")
    p_bench.add_argument("--packets", type=int, default=None,
                         help="override the per-scenario packet budget")
    p_bench.add_argument("--seed", type=int, default=1,
                         help="traffic/flow seed (default 1)")
    p_bench.add_argument("--only", metavar="A,B,...",
                         help="run only the named scenarios")
    p_bench.add_argument("--out", help="output path "
                         "(default: next free BENCH_<n>.json in cwd)")
    p_bench.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                         help="compare two reports; exit 1 on regressions")
    p_bench.add_argument("--list", action="store_true",
                         help="list registered scenarios")
    p_bench.add_argument("-v", "--verbose", action="store_true",
                         help="with --compare, show within-band rows too")
    p_bench.set_defaults(func=cmd_bench)

    p_trace = sub.add_parser("trace",
                             help="trace packet lifecycles through a chain")
    p_trace.add_argument("--policy", help="policy DSL file")
    p_trace.add_argument("--chain", help="comma-separated NF kinds")
    p_trace.add_argument("--packets", type=int, default=500)
    p_trace.add_argument("--out", default="nfp-trace.json",
                         help="Chrome trace_event output file")
    p_trace.add_argument("--jsonl", help="also dump raw span events as JSONL")
    p_trace.add_argument("--max-events", type=int, default=None,
                         help="cap stored span events (default: unbounded)")
    p_trace.set_defaults(func=cmd_trace)

    p_place = sub.add_parser(
        "place", help="place chains onto a topology under SLOs")
    p_place.add_argument("--topology", required=True, metavar="SPEC",
                         help="mesh:4x8 | line:3x6@25 | star:5x8@40 "
                              "(<shape>:<servers>x<cores>[@<gbps>])")
    p_place.add_argument("--chains", required=True, metavar="SPECS",
                         help="semicolon-separated name=nf1,nf2,... chains; "
                              "append @<us> to override --max-delay-us "
                              "per chain")
    p_place.add_argument("--max-delay-us", type=float, default=100.0,
                         help="end-to-end delay SLO per chain (default 100)")
    p_place.add_argument("--max-mpps", type=float, default=1.0,
                         help="committed worst-case rate per chain "
                              "(default 1.0)")
    p_place.add_argument("--solver", default="heuristic",
                         choices=["heuristic", "brute", "round-robin", "both"],
                         help="placement solver; 'both' runs heuristic then "
                              "brute for comparison")
    p_place.add_argument("--no-backup", action="store_true",
                         help="skip reserving disjoint backup placements")
    p_place.add_argument("--measure", action="store_true",
                         help="DES-validate each placement at its committed "
                              "rate and print server/link telemetry")
    p_place.add_argument("--packets", type=int, default=2000,
                         help="packets per DES validation run (default 2000)")
    p_place.set_defaults(func=cmd_place)

    p_pairs = sub.add_parser("pairs", help="§4.3 parallelizability matrix")
    p_pairs.set_defaults(func=cmd_pairs)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing (sequential vs parallel)")
    p_fuzz.add_argument("--cases", type=int, default=500,
                        help="case budget (default 500)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="generator seed (default 0)")
    p_fuzz.add_argument("--max-seconds", type=float, default=None,
                        help="wall-clock budget; stops early when exceeded")
    p_fuzz.add_argument("--packets", type=int, default=16,
                        help="packets per case (default 16)")
    p_fuzz.add_argument("--max-nfs", type=int, default=5,
                        help="max NF instances per policy (default 5)")
    p_fuzz.add_argument("--no-des", action="store_true",
                        help="skip the timed DES plane (faster)")
    p_fuzz.add_argument("--instances", type=int, default=1,
                        help="replicate every NF this many times (§7 "
                             "scale-out axis; sequential oracle becomes a "
                             "bank of per-instance chains)")
    p_fuzz.add_argument("--inject-bug", action="append", metavar="SPEC",
                        help="perturb a profile, e.g. "
                             "hidden-write:loadbalancer:DIP, "
                             "read-only:firewall, no-drop:ips (repeatable)")
    p_fuzz.add_argument("--faults", metavar="KINDS", default="",
                        help="fault-mode fuzzing: comma-separated fault kinds "
                             "(crash,hang,slow,ring) injected one per case; "
                             "the oracle becomes the packet-conservation "
                             "invariant on the DES plane")
    p_fuzz.add_argument("--replay", metavar="DIR",
                        help="replay a corpus directory instead of fuzzing")
    p_fuzz.add_argument("--out-dir", default="fuzz-artifacts",
                        help="where shrunk repros are written")
    p_fuzz.add_argument("--stop-after", type=int, default=3,
                        help="stop after this many failures (default 3)")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="report failures without minimizing them")
    p_fuzz.add_argument("--audit-profiles", action="store_true",
                        help="arm the profile oracle: record every NF field "
                             "access on the sequential plane and fail the "
                             "case on undeclared reads/writes/adds/removes/"
                             "drops (incompatible with --faults)")
    p_fuzz.add_argument("--batched", action="store_true",
                        help="run the batched dataplane as a fourth plane: "
                             "byte-identical packets vs the functional plane "
                             "plus word-identical metadata vs the DES plane "
                             "(incompatible with --faults)")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_audit = sub.add_parser(
        "profile-audit",
        help="infer NF action profiles from traced execution and diff "
             "against the declared table")
    p_audit.add_argument("--cases", type=int, default=200,
                         help="generated traffic cases (default 200)")
    p_audit.add_argument("--seed", type=int, default=0,
                         help="traffic generator seed (default 0)")
    p_audit.add_argument("--packets", type=int, default=8,
                         help="packets per case (default 8)")
    p_audit.add_argument("--nf", action="append", metavar="KIND",
                         help="audit an explicit chain of kinds in order "
                              "(repeatable); default: every catalog NF via "
                              "generated policies")
    p_audit.add_argument("-v", "--verbose", action="store_true",
                         help="also print info findings (declared-but-"
                              "unobserved actions)")
    p_audit.set_defaults(func=cmd_profile_audit)

    p_replay = sub.add_parser("replay", help="replay a pcap through a graph")
    p_replay.add_argument("--policy", help="policy DSL file")
    p_replay.add_argument("--chain", help="comma-separated NF kinds")
    p_replay.add_argument("--input", required=True, help="input pcap")
    p_replay.add_argument("--output", help="output pcap")
    p_replay.set_defaults(func=cmd_replay)

    p_breakdown = sub.add_parser("breakdown",
                                 help="latency attribution per segment")
    p_breakdown.add_argument("--policy", help="policy DSL file")
    p_breakdown.add_argument("--chain", help="comma-separated NF kinds")
    p_breakdown.add_argument("--packets", type=int, default=1200)
    p_breakdown.set_defaults(func=cmd_breakdown)

    p_sweep = sub.add_parser("sweep", help="plot a latency sweep")
    p_sweep.add_argument("kind", choices=["cycles", "degree"])
    p_sweep.add_argument("--packets", type=int, default=1500)
    p_sweep.set_defaults(func=cmd_sweep)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
