"""Fuzzing sessions: budgets, corpus replay, telemetry, artifacts.

:func:`run_fuzz` drives the generator -> differential executor ->
shrinker pipeline under a case and/or wall-clock budget, counting
progress into a :class:`~repro.telemetry.hooks.TelemetryHub` (counters
``fuzz.cases``, ``fuzz.packets``, ``fuzz.failures``,
``fuzz.shrink_steps``) so fuzz throughput is observable like any other
dataplane metric.  Failures are shrunk automatically and written to an
artifact directory as a JSON seed + pytest repro.

:func:`replay_corpus` deterministically re-runs the committed seed
corpus (``tests/corpus/*.json``); the tier-1 suite calls it so every
checked-in repro stays green.
"""

from __future__ import annotations

import glob
import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..faults import FaultPlan, FaultSpec
from ..telemetry.hooks import NULL_HUB, TelemetryHub
from .cases import FuzzCase, ProfileTweak
from .differential import CaseOutcome, run_case, run_fault_case
from .generator import CaseGenerator
from .shrinker import ShrinkResult, shrink_case, write_repro

__all__ = ["FuzzFailure", "FuzzReport", "run_fuzz", "replay_corpus"]


@dataclass
class FuzzFailure:
    """One failing case, before and after shrinking."""

    index: int
    outcome: CaseOutcome
    shrunk: Optional[ShrinkResult] = None
    json_path: str = ""
    test_path: str = ""


@dataclass
class FuzzReport:
    """Summary of a fuzzing session."""

    cases: int = 0
    packets: int = 0
    duration_s: float = 0.0
    seed: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def cases_per_s(self) -> float:
        return self.cases / self.duration_s if self.duration_s > 0 else 0.0


def run_fuzz(
    cases: int = 500,
    seed: int = 0,
    max_seconds: Optional[float] = None,
    include_des: bool = True,
    packets_per_case: int = 16,
    max_nfs: int = 5,
    inject: Sequence[str] = (),
    telemetry: TelemetryHub = NULL_HUB,
    out_dir: Optional[str] = None,
    stop_after: int = 3,
    shrink: bool = True,
    log: Optional[Callable[[str], None]] = None,
    instances: int = 1,
    faults: Sequence[str] = (),
    audit_profiles: bool = False,
    batched: bool = False,
) -> FuzzReport:
    """Run a seeded fuzzing session under a case/time budget.

    ``instances > 1`` fuzzes the §7 scale-out axis: every case runs all
    three planes with each NF uniformly replicated, the sequential
    oracle partitioned into per-instance banks, and the DES classifier
    flow cache enabled (see :func:`repro.check.differential.run_case`).

    ``faults`` (fault kinds, e.g. ``("crash", "hang")``) switches to
    fault-mode fuzzing: each case runs on the DES plane only, with one
    deterministically derived fault per case (kind, target NF and
    trigger packet all rotate with the case index), and the oracle is
    the conservation invariant of
    :func:`repro.check.differential.run_fault_case` instead of byte
    equivalence.  Failures are not shrunk -- the fault schedule is part
    of the case, and dropping packets would shift every trigger.

    ``audit_profiles`` arms the fourth oracle: every case records the
    NFs' field accesses on the sequential plane and cross-checks the
    inferred footprints against the declared action table (failure kind
    ``profile-violation``).  Ignored in fault mode -- injected crashes
    drop packets through the NF scope and would be misattributed as
    undeclared drops.

    ``batched`` runs the batched plane as a fourth output set per case,
    checked byte-for-byte against the functional plane and word-for-word
    against the DES metadata (see
    :func:`repro.check.differential.run_case`).  Not valid in fault
    mode: the batched plane models healthy semantics only.
    """
    if batched and faults:
        raise ValueError("batched parity cannot run in fault mode")
    tweaks = [ProfileTweak.parse(spec) for spec in inject]
    generator = CaseGenerator(
        seed=seed, max_nfs=max_nfs, packets_per_case=packets_per_case,
        tweaks=tweaks,
    )
    report = FuzzReport(seed=seed)
    started = time.monotonic()

    for index in range(cases):
        if max_seconds is not None and time.monotonic() - started >= max_seconds:
            if log:
                log(f"time budget of {max_seconds:.0f}s reached "
                    f"after {report.cases} cases")
            break
        case = generator.generate(index)
        if faults:
            plan = _fault_plan_for(case, index, faults, packets_per_case)
            outcome = run_fault_case(case, plan, telemetry=telemetry,
                                     instances=instances)
        else:
            outcome = run_case(case, include_des=include_des,
                               telemetry=telemetry, instances=instances,
                               audit_profiles=audit_profiles,
                               batched=batched)
        telemetry.inc("fuzz.cases")
        report.cases += 1
        report.packets += outcome.packets
        if outcome.ok:
            continue

        failure = FuzzFailure(index=index, outcome=outcome)
        if log:
            log(f"case {index}: {outcome.kind} -- {outcome.detail}")
        if shrink and not faults:
            failure.shrunk = shrink_case(
                case, include_des=include_des, telemetry=telemetry,
                instances=instances, audit_profiles=audit_profiles,
                batched=batched)
            if log:
                log(f"case {index}: {failure.shrunk.summary()}")
            if out_dir:
                failure.json_path, failure.test_path = write_repro(
                    failure.shrunk, out_dir, include_des=include_des,
                    instances=instances, batched=batched)
                if log:
                    log(f"case {index}: repro written to {failure.json_path} "
                        f"and {failure.test_path}")
        report.failures.append(failure)
        if len(report.failures) >= stop_after:
            if log:
                log(f"stopping after {stop_after} failures")
            break

    report.duration_s = time.monotonic() - started
    telemetry.gauge("fuzz.cases_per_s", report.cases_per_s)
    return report


def _fault_plan_for(
    case: FuzzCase,
    index: int,
    faults: Sequence[str],
    packets_per_case: int,
) -> FaultPlan:
    """One deterministic fault per case, derived from the case index.

    Kind, victim NF and trigger packet all rotate at different strides
    so a few hundred cases cover the (kind x target x timing) grid
    without any RNG state shared with the case generator.
    """
    kind = faults[index % len(faults)]
    names = sorted(case.kinds())
    target = names[(index // len(faults)) % len(names)]
    at_packet = 1 + (index // (len(faults) * len(names))) % max(
        packets_per_case, 1)
    return FaultPlan([FaultSpec.parse(f"{kind}:{target}:pkt={at_packet}")])


def replay_corpus(
    corpus_dir: str,
    include_des: bool = True,
    telemetry: TelemetryHub = NULL_HUB,
    instances: int = 1,
    audit_profiles: bool = False,
    batched: bool = False,
) -> List[Tuple[str, CaseOutcome]]:
    """Re-run every ``*.json`` seed in ``corpus_dir`` (sorted, stable)."""
    results: List[Tuple[str, CaseOutcome]] = []
    for path in sorted(glob.glob(os.path.join(corpus_dir, "*.json"))):
        case = FuzzCase.load(path)
        outcome = run_case(case, include_des=include_des, telemetry=telemetry,
                           instances=instances, audit_profiles=audit_profiles,
                           batched=batched)
        telemetry.inc("fuzz.cases")
        results.append((path, outcome))
    return results
