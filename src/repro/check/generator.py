"""Random-but-valid case generation for the differential fuzzer.

Policies are drawn over several shapes (flat chains, chains with extra
Order edges, branching DAG micrographs, Priority pairs, Position pins),
action profiles are optionally perturbed with *sound* tweaks (added
reads / added drop declarations, which can only make the compiler more
conservative), and traffic mixes benign flows with the adversarial
flavours the dataplane has to get right: ACL-deny sources, IDS signature
payloads, max-MTU and minimum-size frames, ICMP (NAT's drop path),
fragments, flow collisions, and UDP.

Every generated case is validated by a trial compile before it is
returned, so downstream consumers only ever see policies that
``check_policy`` accepts.

Exclusions (documented in ``docs/TESTING.md``): ``conntrack-firewall``
is a *stateful* dropper; Table 3's (Drop, Drop) = no-copy parallelism
lets its connection table legitimately diverge between the parallel and
sequential planes, so it has no sound differential oracle and is kept
out of the pool.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..core.dependency import DEFAULT_DEPENDENCY_TABLE, identify_parallelism
from ..core.orchestrator import Orchestrator
from ..net.fields import Field
from ..net.headers import PROTO_TCP, PROTO_UDP, int_to_ip
from ..nfs.firewall import build_acl
from ..nfs.ids import build_signatures
from .cases import FuzzCase, PacketSpec, ProfileTweak

__all__ = ["CaseGenerator", "NF_POOL"]

#: NF kinds eligible for fuzzing.  conntrack-firewall is deliberately
#: absent (stateful dropper: no sound sequential oracle under parallel
#: drop semantics).
NF_POOL: Tuple[str, ...] = (
    "firewall", "monitor", "loadbalancer", "nat", "forwarder",
    "ids", "nids", "ips", "vpn", "vpn-decrypt", "proxy",
    "compression", "gateway", "caching", "shaper",
    "macswap", "vlan-push", "vlan-pop", "vxlan-encap", "vxlan-decap",
    "dedup",
)

#: Fields sound to over-declare as reads.
_READ_FIELDS = (Field.SIP, Field.DIP, Field.SPORT, Field.DPORT,
                Field.TTL, Field.DSCP, Field.PAYLOAD)

_PROTO_ICMP = 1


class CaseGenerator:
    """Deterministic, seeded generator of valid :class:`FuzzCase`s."""

    def __init__(
        self,
        seed: int = 0,
        max_nfs: int = 5,
        packets_per_case: int = 16,
        tweaks: Sequence[ProfileTweak] = (),
        pool: Sequence[str] = NF_POOL,
        sound_tweak_rate: float = 0.25,
    ):
        self.seed = seed
        self.max_nfs = max(2, max_nfs)
        self.packets_per_case = max(1, packets_per_case)
        self.extra_tweaks = list(tweaks)
        self.pool = list(pool)
        self.sound_tweak_rate = sound_tweak_rate
        # Shared adversarial-traffic material (deterministic builders).
        self._acl = [rule for rule in build_acl() if not rule.permit]
        self._signatures = build_signatures()

    # --------------------------------------------------------------- cases
    def generate(self, index: int) -> FuzzCase:
        """Case ``index`` of this generator's stream (stable per seed)."""
        rng = random.Random(f"nfp-fuzz:{self.seed}:{index}")
        last_error: Optional[Exception] = None
        for attempt in range(30):
            case = self._draw(rng, f"case-{self.seed}-{index}", index)
            try:
                Orchestrator(action_table=case.action_table()).compile(case.policy())
            except Exception as exc:  # invalid rule combination: redraw
                last_error = exc
                continue
            return case
        raise RuntimeError(
            f"could not draw a valid policy for case {index} "
            f"(last error: {last_error})")

    def _draw(self, rng: random.Random, case_id: str, index: int) -> FuzzCase:
        instances = self._draw_instances(rng)
        rules = self._draw_rules(rng, instances)
        tweaks = self._draw_tweaks(rng, instances) + self.extra_tweaks
        packets = self._draw_packets(rng)
        return FuzzCase(
            case_id=case_id,
            instances=instances,
            rules=rules,
            packets=packets,
            tweaks=tweaks,
            seed=self.seed,
        )

    # -------------------------------------------------------------- policy
    def _draw_instances(self, rng: random.Random) -> List[Tuple[str, str]]:
        count = rng.randint(2, self.max_nfs)
        kinds = [rng.choice(self.pool) for _ in range(count)]
        # vpn-decrypt without a vpn upstream drops everything -- valid but
        # boring; usually pair it with an encryptor.
        if "vpn-decrypt" in kinds and "vpn" not in kinds and rng.random() < 0.75:
            kinds[rng.randrange(len(kinds))] = "vpn"
            if "vpn-decrypt" not in kinds:
                kinds.append("vpn-decrypt")
        # A vpn-decrypt ordered before its vpn also drops everything.
        if "vpn" in kinds and "vpn-decrypt" in kinds:
            first = min(kinds.index("vpn"), kinds.index("vpn-decrypt"))
            last = max(kinds.index("vpn"), kinds.index("vpn-decrypt"))
            kinds[first], kinds[last] = "vpn", "vpn-decrypt"
        # Poppers/decapsulators are transparent on untagged traffic --
        # valid but under-exercised; usually pair them with their
        # pusher so the remove path actually runs.
        for popper, pusher in (("vlan-pop", "vlan-push"),
                               ("vxlan-decap", "vxlan-encap")):
            if popper in kinds and pusher not in kinds and rng.random() < 0.75:
                kinds.insert(kinds.index(popper), pusher)
        seen: dict = {}
        instances = []
        for kind in kinds:
            seen[kind] = seen.get(kind, 0) + 1
            name = kind if seen[kind] == 1 else f"{kind}{seen[kind]}"
            instances.append((name, kind))
        return instances

    def _draw_rules(
        self, rng: random.Random, instances: List[Tuple[str, str]]
    ) -> List[Tuple[str, ...]]:
        names = [name for name, _ in instances]
        kinds = dict(instances)
        shape = rng.choices(
            ["chain", "chain-extra", "dag", "priority", "position", "free"],
            weights=[0.3, 0.15, 0.2, 0.15, 0.1, 0.1],
        )[0]
        rules: List[Tuple[str, ...]] = []

        if shape in ("chain", "chain-extra"):
            rules = [("order", a, b) for a, b in zip(names, names[1:])]
            if shape == "chain-extra" and len(names) > 2:
                i = rng.randrange(len(names) - 2)
                j = rng.randrange(i + 2, len(names))
                rules.append(("order", names[i], names[j]))
        elif shape == "dag":
            for i in range(len(names)):
                for j in range(i + 1, len(names)):
                    if rng.random() < 0.45:
                        rules.append(("order", names[i], names[j]))
        elif shape == "priority":
            pair = self._pick_priority_pair(rng, instances)
            if pair is None:
                rules = [("order", a, b) for a, b in zip(names, names[1:])]
            else:
                high, low = pair
                rest = [n for n in names if n not in (high, low)]
                rules = [("order", a, b) for a, b in zip(rest, rest[1:])]
                rules.append(("priority", high, low))
        elif shape == "position":
            head, tail = names[0], names[-1]
            body = names[1:] if rng.random() < 0.5 else names[:-1]
            rules = [("order", a, b) for a, b in zip(body, body[1:])]
            if body and body[0] != head:
                rules.append(("position", head, "first"))
            else:
                rules.append(("position", tail, "last"))
        # "free": no rules; the compiler probes every pair.

        # Keep vpn before vpn-decrypt whenever both exist and the drawn
        # rules left them unordered.
        if "vpn" in kinds.values() and "vpn-decrypt" in kinds.values():
            vpn = next(n for n, k in instances if k == "vpn")
            dec = next(n for n, k in instances if k == "vpn-decrypt")
            ordered = {(r[1], r[2]) for r in rules if r[0] == "order"}
            if (vpn, dec) not in ordered and (dec, vpn) not in ordered:
                rules.append(("order", vpn, dec))
        return rules

    def _pick_priority_pair(
        self, rng: random.Random, instances: List[Tuple[str, str]]
    ) -> Optional[Tuple[str, str]]:
        """A (high, low) pair whose low-then-high order is parallelizable.

        That constraint is what makes the Priority rule's reference
        semantics (low first, high's effect wins) sound; see
        ``reference_order``.
        """
        from ..core.action_table import default_action_table

        table = default_action_table()
        candidates = []
        for i, (name_a, kind_a) in enumerate(instances):
            for name_b, kind_b in instances[i + 1:]:
                for high, low in ((name_a, name_b), (name_b, name_a)):
                    verdict = identify_parallelism(
                        table.fetch(dict(instances)[low]),
                        table.fetch(dict(instances)[high]),
                        DEFAULT_DEPENDENCY_TABLE,
                    )
                    if verdict.parallelizable:
                        candidates.append((high, low))
        return rng.choice(candidates) if candidates else None

    def _draw_tweaks(
        self, rng: random.Random, instances: List[Tuple[str, str]]
    ) -> List[ProfileTweak]:
        if rng.random() >= self.sound_tweak_rate:
            return []
        kinds = sorted({kind for _, kind in instances})
        tweaks = []
        for _ in range(rng.randint(1, 2)):
            kind = rng.choice(kinds)
            if rng.random() < 0.8:
                tweaks.append(ProfileTweak(
                    kind=kind, op="add-read", field=rng.choice(_READ_FIELDS)))
            else:
                tweaks.append(ProfileTweak(kind=kind, op="add-drop"))
        return list(dict.fromkeys(tweaks))

    # ------------------------------------------------------------- traffic
    def _draw_packets(self, rng: random.Random) -> List[PacketSpec]:
        flows = [self._draw_flow(rng) for _ in range(rng.randint(2, 5))]
        specs: List[PacketSpec] = []
        for i in range(self.packets_per_case):
            ident = i + 1
            flavour = rng.choices(
                ["benign", "max-mtu", "min", "acl-deny", "ids-sig",
                 "collision", "icmp", "frag", "udp"],
                weights=[0.38, 0.09, 0.06, 0.12, 0.10, 0.10, 0.05, 0.05, 0.05],
            )[0]
            src, dst, sport, dport = rng.choice(flows)
            size = rng.choice((64, 96, 128, 256, 512, 1024, 1500))
            payload = self._random_payload(rng, rng.randint(0, 24))
            proto = PROTO_TCP
            frag_mf, frag_offset = False, 0

            if flavour == "max-mtu":
                size = 1500
            elif flavour == "min":
                size, payload = 64, b""
            elif flavour == "acl-deny":
                rule = rng.choice(self._acl)
                src = int_to_ip(rule.src_net | rng.randrange(1, 255))
                low, high = rule.dport_range
                dport = rng.randint(low, min(high, 65535))
            elif flavour == "ids-sig":
                sig = rng.choice(self._signatures)
                pad = self._random_payload(rng, rng.randint(0, 12))
                payload = pad + sig + pad
                size = max(size, 54 + len(payload))
            elif flavour == "collision" and specs:
                donor = rng.choice(specs)
                src, dst = donor.src_ip, donor.dst_ip
                sport, dport = donor.src_port, donor.dst_port
                proto = donor.protocol if donor.protocol in (PROTO_TCP, PROTO_UDP) \
                    else PROTO_TCP
            elif flavour == "icmp":
                proto = _PROTO_ICMP
            elif flavour == "frag":
                if rng.random() < 0.5:
                    frag_mf = True
                else:
                    frag_offset = rng.randrange(1, 512)
            elif flavour == "udp":
                proto = PROTO_UDP

            specs.append(PacketSpec(
                src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
                protocol=proto, size=max(size, 54 + len(payload)),
                payload=payload, ident=ident,
                frag_mf=frag_mf, frag_offset=frag_offset,
            ))
        return specs

    @staticmethod
    def _draw_flow(rng: random.Random) -> Tuple[str, str, int, int]:
        src = f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
        dst = f"10.200.{rng.randrange(256)}.{rng.randrange(1, 255)}"
        sport = rng.randrange(1024, 65536)
        dport = rng.choice((80, 443, 8080, 53, rng.randrange(1, 65536)))
        return src, dst, sport, dport

    @staticmethod
    def _random_payload(rng: random.Random, length: int) -> bytes:
        return bytes(rng.randrange(256) for _ in range(length))
