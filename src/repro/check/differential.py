"""Differential execution: one case, three dataplanes, one verdict.

``run_case`` pushes the same packet stream through

1. :class:`~repro.dataplane.functional.SequentialReference` over the
   *policy-equivalent sequential chain* (computed here, from the policy
   rules -- NOT from the compiled graph, so compiler bugs cannot vouch
   for themselves),
2. :class:`~repro.dataplane.functional.FunctionalDataplane` over the
   compiled parallel graph, and
3. (optionally) the timed DES dataplane
   (:class:`~repro.dataplane.server.NFPServer`), checking the emitted
   bytes *and* the MID/version metadata word.

and reports the first divergence as a typed :class:`CaseOutcome`.

The reference linearization
---------------------------
A policy under-constrains the chain: free pairs have no order rule.  The
compiler commits to specific choices (declaration order for mutually
non-parallelizable free pairs, Algorithm 1's direction otherwise), so the
reference must replay the *same* commitments over the *declared*
profiles, while executing truly sequentially.  :func:`reference_order`
rebuilds that linearization from the policy + action table alone:

* Order-rule transitive closure edges (except pairs that also carry a
  Priority rule -- the priority winner must land last, per §3's "the NF
  with the back order is assigned a higher priority"),
* Position pins (first/last against every other NF),
* ``low -> high`` for every Priority rule,
* for free pairs: the parallelizable direction if only one direction is
  parallelizable, declaration order when neither is (mirroring the
  compiler's warning path),

then a deterministic topological sort (ties by declaration order).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.action_table import ActionTable
from ..core.dependency import (
    DEFAULT_DEPENDENCY_TABLE,
    DependencyTable,
    identify_parallelism,
)
from ..core.graph import ORIGINAL_VERSION
from ..core.orchestrator import Orchestrator
from ..core.policy import Policy, Position
from ..dataplane.functional import (
    FunctionalDataplane,
    SequentialBank,
    SequentialReference,
)
from ..dataplane.server import NFPServer
from ..faults import FaultInjector, FaultPlan
from ..net.recorder import AccessRecorder
from ..nfs.base import create_nf
from ..profiles import ProfileAuditor, hard_findings, infer_profiles
from ..sim import DEFAULT_PARAMS, Environment
from ..telemetry.hooks import NULL_HUB, TelemetryHub
from .cases import FuzzCase

__all__ = ["CaseOutcome", "reference_order", "run_case", "run_fault_case"]

#: Deterministic inter-arrival gap for the DES plane, far below any
#: graph's capacity so ring overflow (``server.lost``) cannot occur and
#: NF arrival order equals injection order.
DES_GAP_US = 25.0


@dataclass
class CaseOutcome:
    """Result of one differential run."""

    ok: bool
    kind: str  # "ok", "byte-mismatch", "drop-mismatch", "des-*", ...
    detail: str = ""
    case: Optional[FuzzCase] = None
    mismatched_idents: List[int] = field(default_factory=list)
    packets: int = 0
    matched: int = 0
    agreed_drops: int = 0
    graph_desc: str = ""
    reference: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0
    #: uniform §7 instance count the case ran with (1 = unscaled).
    instances: int = 1

    def __str__(self) -> str:
        status = "OK" if self.ok else f"FAIL({self.kind})"
        return (f"{status} packets={self.packets} matched={self.matched} "
                f"drops={self.agreed_drops} graph=[{self.graph_desc}] "
                f"{self.detail}")


def _transitive_closure(edges: Set[Tuple[str, str]]) -> Set[Tuple[str, str]]:
    closure = set(edges)
    changed = True
    while changed:
        changed = False
        for a, b in list(closure):
            for c, d in list(closure):
                if b == c and a != d and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    return closure


def _reaches(edges: Set[Tuple[str, str]], start: str, goal: str) -> bool:
    stack, seen = [start], set()
    succs: Dict[str, List[str]] = {}
    for a, b in edges:
        succs.setdefault(a, []).append(b)
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        if node in seen:
            continue
        seen.add(node)
        stack.extend(succs.get(node, ()))
    return False


def reference_order(
    policy: Policy,
    action_table: ActionTable,
    dependency_table: DependencyTable = DEFAULT_DEPENDENCY_TABLE,
) -> List[str]:
    """The sequential linearization the compiled graph must match."""
    names = list(policy.instances)
    decl = {name: i for i, name in enumerate(names)}
    profiles = {n: action_table.fetch(policy.kind_of(n)) for n in names}

    closure = _transitive_closure(
        {(r.before, r.after) for r in policy.order_rules()}
    )
    priority_pairs = {(r.high, r.low) for r in policy.priority_rules()}
    prioritised = priority_pairs | {(low, high) for high, low in priority_pairs}
    pins = {r.nf: r.position for r in policy.position_rules()}

    # Mandatory edges first -- these mirror the compiler's hard
    # constraints exactly, so they are acyclic whenever compilation
    # succeeded.
    edges: Set[Tuple[str, str]] = set()
    for a, b in closure:
        if (a, b) not in prioritised:
            edges.add((a, b))
    for nf, where in pins.items():
        for other in names:
            if other != nf:
                edges.add((nf, other) if where is Position.FIRST else (other, nf))

    related = closure | {(b, a) for a, b in closure} | prioritised
    soft: List[Tuple[str, str]] = []
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if (a, b) in related or a in pins or b in pins:
                continue
            forward = identify_parallelism(profiles[a], profiles[b], dependency_table)
            if forward.parallelizable:
                soft.append((a, b))
                continue
            backward = identify_parallelism(profiles[b], profiles[a], dependency_table)
            if backward.parallelizable:
                soft.append((b, a))
            else:
                # Compiler sequences mutually conflicting free pairs in
                # declaration order (and warns); mirror that choice.
                edges.add((a, b))

    # Soft edges: preferred directions that may legitimately conflict
    # with each other (a one-direction-parallelizable pair always puts a
    # pure reader on the flexible side, so dropping a soft edge cannot
    # change output bytes).  Priority semantics first -- the
    # high-priority NF's effect must land last, i.e. the equivalent
    # chain runs low first.  (The generator only emits
    # Priority(high > low) when (low, high) is parallelizable, which is
    # exactly when this linearization is sound.)
    soft = [(low, high) for high, low in sorted(priority_pairs)] + soft
    for a, b in soft:
        if not _reaches(edges, b, a):
            edges.add((a, b))

    # Kahn's algorithm; ties resolved by declaration order.
    indeg = {n: 0 for n in names}
    succs: Dict[str, List[str]] = {n: [] for n in names}
    for a, b in edges:
        succs[a].append(b)
        indeg[b] += 1
    ready = sorted((n for n in names if indeg[n] == 0), key=decl.__getitem__)
    order: List[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for nxt in succs[node]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)
        ready.sort(key=decl.__getitem__)
    if len(order) != len(names):
        raise ValueError("cycle in reference linearization")
    return order


def _first_divergence(
    case: FuzzCase,
    got: Dict[int, Optional[bytes]],
    want: Dict[int, Optional[bytes]],
    kind_prefix: str = "",
) -> Optional[Tuple[str, str, List[int]]]:
    """Compare two per-ident output maps; None = no divergence."""
    mismatched: List[int] = []
    first_kind = ""
    first_detail = ""
    for spec in case.packets:
        a = got.get(spec.ident)
        b = want.get(spec.ident)
        if a == b:
            continue
        mismatched.append(spec.ident)
        if first_kind:
            continue
        if (a is None) != (b is None):
            first_kind = kind_prefix + "drop-mismatch"
            side = "parallel" if a is None else "sequential"
            first_detail = f"packet ident={spec.ident} dropped only by the {side} plane"
        else:
            first_kind = kind_prefix + "byte-mismatch"
            diff = next(
                (i for i, (x, y) in enumerate(zip(a, b)) if x != y),
                min(len(a), len(b)),
            )
            first_detail = (f"packet ident={spec.ident} differs at byte {diff} "
                            f"(lengths {len(a)}/{len(b)})")
    if not mismatched:
        return None
    return first_kind, first_detail, mismatched


def _run_des(
    case: FuzzCase,
    orch: Orchestrator,
    policy: Policy,
    telemetry: TelemetryHub = NULL_HUB,
    instances: int = 1,
    flow_cache: bool = False,
) -> Tuple[Dict[int, Optional[bytes]], int, Optional[str], Dict[int, int]]:
    """Run the timed dataplane.

    Returns ``(outputs, lost, meta_error, words)`` where ``words`` maps
    each emitted ident to its packed 64-bit metadata word (for the
    batched plane's word-level comparison).
    """
    deployed = orch.deploy(policy, scale=instances if instances > 1 else None)
    env = Environment(track_stats=telemetry.enabled)
    server = NFPServer(env, DEFAULT_PARAMS, telemetry=telemetry,
                       flow_cache_size=4096 if flow_cache else 0)
    server.keep_packets = True
    server.deploy(deployed)
    packets = case.build_packets()

    def _feed():
        for pkt in packets:
            server.inject(pkt)
            yield env.timeout(DES_GAP_US)

    env.process(_feed())
    env.run()

    meta_error: Optional[str] = None
    outputs: Dict[int, Optional[bytes]] = {spec.ident: None for spec in case.packets}
    words: Dict[int, int] = {}
    for pkt in server.emitted_packets:
        ident = pkt.ipv4.identification
        outputs[ident] = bytes(pkt.buf)
        meta = pkt.meta
        if meta is None:
            meta_error = meta_error or f"ident={ident} emitted without metadata"
        elif meta.version != ORIGINAL_VERSION or meta.mid != deployed.mid:
            meta_error = meta_error or (
                f"ident={ident} emitted with version={meta.version} "
                f"mid={meta.mid} (want version={ORIGINAL_VERSION} "
                f"mid={deployed.mid})")
        else:
            words[ident] = meta.pack()
    return outputs, server.lost, meta_error, words


def run_case(
    case: FuzzCase,
    include_des: bool = True,
    telemetry: TelemetryHub = NULL_HUB,
    instances: int = 1,
    flow_cache: Optional[bool] = None,
    audit_profiles: bool = False,
    batched: bool = False,
) -> CaseOutcome:
    """Run one differential case end to end.

    ``instances > 1`` runs the §7 scale-out axis: every NF is replicated
    uniformly, and the sequential oracle becomes a
    :class:`~repro.dataplane.functional.SequentialBank` -- N independent
    sequential chains behind the same RSS split -- because replication
    partitions cross-flow NF state (NAT port allocation order, the VPN
    sequence counter), so a single shared chain is *not* byte-equivalent
    to a scaled deployment by construction.  ``flow_cache`` controls the
    DES classifier cache (default: on exactly when scaled, so both the
    cached and uncached classify paths see fuzz coverage).

    ``audit_profiles`` arms the fourth oracle: the sequential-reference
    pass runs with an :class:`AccessRecorder` attached, the observed
    footprints are audited against this case's (possibly tweaked)
    action table, and any undeclared access fails the case as
    ``profile-violation`` with the JSON findings in ``detail``.  Do not
    combine with fault injection: injected crashes surface as NF drops
    the declarations never promised.

    ``batched`` arms the fourth execution plane: the same packet stream
    runs through :class:`~repro.dataplane.batched.BatchedDataplane`
    (batch classification, SoA metadata words, precompiled closures) and
    must be byte-identical to the functional plane
    (``batched-byte-mismatch`` / ``batched-drop-mismatch``) with a
    well-formed metadata word per emitted packet.  With the DES plane
    included, the PID|version bits of each emitted word must also equal
    the DES word for that ident (``batched-meta-mismatch``) -- the MIDs
    legitimately differ, since each plane deploys in its own namespace.
    """
    if instances < 1:
        raise ValueError("instances must be >= 1")
    if flow_cache is None:
        flow_cache = instances > 1
    started = time.monotonic()

    def finish(outcome: CaseOutcome) -> CaseOutcome:
        outcome.elapsed_s = time.monotonic() - started
        telemetry.inc("fuzz.packets", outcome.packets)
        if not outcome.ok:
            telemetry.inc("fuzz.failures")
            telemetry.inc(f"fuzz.failures.{outcome.kind}")
        return outcome

    idents = [spec.ident for spec in case.packets]
    if len(set(idents)) != len(idents):
        raise ValueError("packet idents must be unique within a case")
    # Idents are the matching key across all planes and the IPv4 field
    # holding them is 16 bits: a wrapped ident would alias two packets
    # and could mask a real divergence, so refuse it up front.
    bad = [i for i in idents if not 0 <= i <= 0xFFFF]
    if bad:
        raise ValueError(
            f"packet idents outside the 16-bit identification field: "
            f"{bad[:4]}{'...' if len(bad) > 4 else ''} -- runs past 65,535 "
            "packets must re-key cases, not wrap idents"
        )

    policy = case.policy()
    table = case.action_table()
    orch = Orchestrator(action_table=table)
    try:
        result = orch.compile(policy)
    except Exception as exc:
        return finish(CaseOutcome(
            ok=False, kind="compile-error", detail=str(exc), case=case,
            packets=len(case.packets)))
    graph = result.graph

    try:
        order = reference_order(policy, table)
    except ValueError as exc:
        return finish(CaseOutcome(
            ok=False, kind="reference-error", detail=str(exc), case=case,
            packets=len(case.packets), graph_desc=graph.describe()))

    kinds = case.kinds()
    if instances == 1:
        sequential = SequentialReference(
            [create_nf(kinds[name], name=f"seq.{name}") for name in order]
        )
    else:
        sequential = SequentialBank(
            lambda k: [create_nf(kinds[name], name=f"seq{k}.{name}")
                       for name in order],
            instances,
        )
    recorder = AccessRecorder() if audit_profiles else None
    seq_out: Dict[int, Optional[bytes]] = {}
    for spec in case.packets:
        pkt = spec.build()
        if recorder is not None:
            pkt.recorder = recorder
        out = sequential.process(pkt)
        seq_out[spec.ident] = None if out is None else bytes(out.buf)

    if recorder is not None:
        findings = hard_findings(
            ProfileAuditor(table).audit(infer_profiles(recorder.events))
        )
        if findings:
            detail = json.dumps(
                [f.to_dict() for f in findings], sort_keys=True
            )
            return finish(CaseOutcome(
                ok=False, kind="profile-violation", detail=detail,
                case=case, packets=len(case.packets),
                graph_desc=graph.describe(), reference=order,
                instances=instances))

    functional = FunctionalDataplane(
        graph, scale=instances if instances > 1 else None)
    func_out: Dict[int, Optional[bytes]] = {}
    for spec in case.packets:
        out = functional.process(spec.build())
        func_out[spec.ident] = None if out is None else bytes(out.buf)

    matched = sum(
        1 for spec in case.packets
        if func_out[spec.ident] == seq_out[spec.ident]
        and func_out[spec.ident] is not None
    )
    agreed_drops = sum(
        1 for spec in case.packets
        if func_out[spec.ident] is None and seq_out[spec.ident] is None
    )
    base = dict(
        case=case, packets=len(case.packets), matched=matched,
        agreed_drops=agreed_drops, graph_desc=graph.describe(),
        reference=order, instances=instances,
    )

    divergence = _first_divergence(case, func_out, seq_out)
    if divergence is not None:
        kind, detail, mismatched = divergence
        return finish(CaseOutcome(
            ok=False, kind=kind, detail=detail,
            mismatched_idents=mismatched, **base))

    batched_words: Dict[int, int] = {}
    if batched:
        from ..dataplane.batched import BatchedDataplane

        plane = BatchedDataplane(
            graph, scale=instances if instances > 1 else None)
        outputs = plane.process_many([spec.build() for spec in case.packets])
        bat_out: Dict[int, Optional[bytes]] = {}
        bat_meta_error: Optional[str] = None
        for spec, out in zip(case.packets, outputs):
            bat_out[spec.ident] = None if out is None else bytes(out.buf)
            if out is None:
                continue
            meta = out.meta
            if meta is None:
                bat_meta_error = bat_meta_error or (
                    f"ident={spec.ident} emitted without metadata")
            elif meta.version != ORIGINAL_VERSION or meta.mid != plane.mid:
                bat_meta_error = bat_meta_error or (
                    f"ident={spec.ident} emitted with version={meta.version} "
                    f"mid={meta.mid} (want version={ORIGINAL_VERSION} "
                    f"mid={plane.mid})")
            else:
                batched_words[spec.ident] = meta.pack()
        if bat_meta_error:
            return finish(CaseOutcome(
                ok=False, kind="batched-meta-mismatch",
                detail=bat_meta_error, **base))
        divergence = _first_divergence(case, bat_out, func_out, "batched-")
        if divergence is not None:
            kind, detail, mismatched = divergence
            return finish(CaseOutcome(
                ok=False, kind=kind,
                detail=detail + " (batched vs functional)",
                mismatched_idents=mismatched, **base))

    if include_des:
        des_out, lost, meta_error, des_words = _run_des(
            case, orch, policy, telemetry=telemetry,
            instances=instances, flow_cache=flow_cache)
        if lost:
            return finish(CaseOutcome(
                ok=False, kind="des-loss",
                detail=f"DES dataplane lost {lost} packets to full rings",
                **base))
        if meta_error:
            return finish(CaseOutcome(
                ok=False, kind="meta-mismatch", detail=meta_error, **base))
        divergence = _first_divergence(case, des_out, func_out, "des-")
        if divergence is not None:
            kind, detail, mismatched = divergence
            return finish(CaseOutcome(
                ok=False, kind=kind,
                detail=detail + " (DES vs functional)",
                mismatched_idents=mismatched, **base))
        if batched:
            # Word-level agreement: the PID|version bits of every packet
            # emitted by both planes must match bit for bit (PIDs count
            # classified packets in arrival order on both planes).
            from ..net.packet import PacketMeta

            mask = (1 << (PacketMeta.PID_BITS + PacketMeta.VERSION_BITS)) - 1
            for spec in case.packets:
                got = batched_words.get(spec.ident)
                want = des_words.get(spec.ident)
                if got is None or want is None:
                    continue  # drop agreement was proven byte-wise above
                if (got & mask) != (want & mask):
                    return finish(CaseOutcome(
                        ok=False, kind="batched-meta-mismatch",
                        detail=(
                            f"ident={spec.ident} metadata word differs in "
                            f"pid/version bits: batched={got & mask:#x} "
                            f"des={want & mask:#x}"),
                        mismatched_idents=[spec.ident], **base))

    return finish(CaseOutcome(ok=True, kind="ok", **base))


def run_fault_case(
    case: FuzzCase,
    faults: FaultPlan,
    telemetry: TelemetryHub = NULL_HUB,
    instances: int = 1,
) -> CaseOutcome:
    """Run one case on the DES plane under fault injection.

    Byte equivalence is meaningless when instances crash mid-stream, so
    the oracle here is the **conservation invariant** instead: after the
    environment drains, every injected packet must have been emitted or
    accounted to exactly one drop reason, the mergers' Accumulating
    Tables must be empty, and no per-packet flight state may remain.
    Any residue is a ``conservation-violation`` -- a stranded AT entry,
    a leaked flight record, or a silently vanished packet.
    """
    if instances < 1:
        raise ValueError("instances must be >= 1")
    started = time.monotonic()

    def finish(outcome: CaseOutcome) -> CaseOutcome:
        outcome.elapsed_s = time.monotonic() - started
        telemetry.inc("fuzz.packets", outcome.packets)
        if not outcome.ok:
            telemetry.inc("fuzz.failures")
            telemetry.inc(f"fuzz.failures.{outcome.kind}")
        return outcome

    policy = case.policy()
    orch = Orchestrator(action_table=case.action_table())
    try:
        result = orch.compile(policy)
    except Exception as exc:
        return finish(CaseOutcome(
            ok=False, kind="compile-error", detail=str(exc), case=case,
            packets=len(case.packets)))
    graph = result.graph

    deployed = orch.deploy(policy, scale=instances if instances > 1 else None)
    env = Environment(track_stats=telemetry.enabled)
    injector = FaultInjector(faults, telemetry=telemetry)
    server = NFPServer(env, DEFAULT_PARAMS, telemetry=telemetry,
                       flow_cache_size=4096 if instances > 1 else 0,
                       injector=injector)
    server.deploy(deployed)
    packets = case.build_packets()

    def _feed():
        for pkt in packets:
            server.inject(pkt)
            yield env.timeout(DES_GAP_US)

    env.process(_feed())
    env.run()

    report = server.conservation_report()
    base = dict(
        case=case, packets=len(case.packets),
        matched=int(report["emitted"]), graph_desc=graph.describe(),
        instances=instances,
    )
    problems = []
    if report["unaccounted"]:
        problems.append(f"{report['unaccounted']} packets unaccounted "
                        f"(injected={report['injected']} "
                        f"emitted={report['emitted']} drops={report['drops']})")
    if report["at_depth"]:
        problems.append(f"{report['at_depth']} AT entries stranded after drain")
    if report["flight_depth"]:
        problems.append(
            f"{report['flight_depth']} flight records leaked after drain")
    if problems:
        return finish(CaseOutcome(
            ok=False, kind="conservation-violation",
            detail=f"[{faults.describe()}] " + "; ".join(problems), **base))
    return finish(CaseOutcome(
        ok=True, kind="ok",
        detail=f"[{faults.describe()}] drops={report['drops']}", **base))
