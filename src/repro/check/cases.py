"""Serializable fuzz cases: policy + profile tweaks + packet stream.

A :class:`FuzzCase` captures everything a differential run needs, in a
form that round-trips through JSON: the policy (instances + rules), a
list of :class:`ProfileTweak` perturbations over the Table 2 action
profiles, and a list of :class:`PacketSpec` describing the traffic.
The JSON form is what the shrinker emits as a repro seed and what the
``tests/corpus/`` files store.

Profile tweaks come in two flavours:

* *sound* tweaks (``add-read``, ``add-drop``) only add declared actions.
  Over-declaring reads/drops can only make the compiler more
  conservative (more copies, more sequentialisation), so the parallel
  graph must still match the sequential reference -- these are safe to
  mix into green fuzzing runs.
* *bug injections* (``hide-write``, ``hide-drop``, ``read-only``)
  remove declared actions, modelling an NF whose action profile lies
  about its behaviour.  These are expected to produce divergence and are
  only applied when explicitly requested (``fuzz --inject-bug``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.action_table import ActionTable, default_action_table
from ..core.actions import Action, ActionProfile, Verb
from ..core.policy import NFSpec, Policy
from ..net.fields import Field
from ..net.headers import ETH_HEADER_LEN, PROTO_TCP, PROTO_UDP
from ..net.packet import Packet, build_packet

__all__ = ["PacketSpec", "ProfileTweak", "FuzzCase", "SOUND_TWEAK_OPS"]

#: Tweak ops that only *add* declared actions -- safe for green fuzzing.
SOUND_TWEAK_OPS = frozenset({"add-read", "add-drop"})

#: Tweak ops that remove declared actions -- deliberate bug injection.
BUG_TWEAK_OPS = frozenset({"hide-write", "hide-drop", "read-only"})


@dataclass
class PacketSpec:
    """A reproducible recipe for one input packet.

    ``ident`` is stamped into the IPv4 identification field; no NF in
    the repo reads or writes it, so it survives both planes untouched
    and lets the differential executor match DES outputs back to their
    inputs regardless of emission order.
    """

    src_ip: str = "10.0.0.1"
    dst_ip: str = "10.200.0.1"
    src_port: int = 10000
    dst_port: int = 80
    protocol: int = PROTO_TCP
    size: int = 96
    payload: bytes = b""
    ident: int = 1
    tcp_flags: Optional[int] = None
    frag_mf: bool = False
    frag_offset: int = 0

    def build(self) -> Packet:
        """Materialise a fresh Packet (both planes need their own copy)."""
        # build_packet only knows TCP/UDP framing; other protocols (e.g.
        # ICMP for NAT's drop path) reuse the TCP skeleton and patch the
        # protocol number afterwards.
        skeleton = self.protocol if self.protocol in (PROTO_TCP, PROTO_UDP) else PROTO_TCP
        size = max(self.size, 54 + len(self.payload) + (8 if skeleton == PROTO_UDP else 20))
        pkt = build_packet(
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            protocol=skeleton,
            payload=self.payload,
            size=size,
            identification=self.ident,
        )
        dirty = False
        if self.protocol not in (PROTO_TCP, PROTO_UDP):
            pkt.ipv4.protocol = self.protocol
            dirty = True
        elif self.tcp_flags is not None and skeleton == PROTO_TCP:
            pkt.tcp.flags = self.tcp_flags
        if self.frag_mf or self.frag_offset:
            word = (0x2000 if self.frag_mf else 0) | (self.frag_offset & 0x1FFF)
            offset = ETH_HEADER_LEN + 6
            pkt.buf[offset] = (word >> 8) & 0xFF
            pkt.buf[offset + 1] = word & 0xFF
            dirty = True
        if dirty:
            pkt.ipv4.update_checksum()
        return pkt

    def to_dict(self) -> dict:
        data = {
            "src_ip": self.src_ip,
            "dst_ip": self.dst_ip,
            "src_port": self.src_port,
            "dst_port": self.dst_port,
            "protocol": self.protocol,
            "size": self.size,
            "ident": self.ident,
        }
        if self.payload:
            data["payload"] = self.payload.hex()
        if self.tcp_flags is not None:
            data["tcp_flags"] = self.tcp_flags
        if self.frag_mf:
            data["frag_mf"] = True
        if self.frag_offset:
            data["frag_offset"] = self.frag_offset
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PacketSpec":
        return cls(
            src_ip=data.get("src_ip", "10.0.0.1"),
            dst_ip=data.get("dst_ip", "10.200.0.1"),
            src_port=int(data.get("src_port", 10000)),
            dst_port=int(data.get("dst_port", 80)),
            protocol=int(data.get("protocol", PROTO_TCP)),
            size=int(data.get("size", 96)),
            payload=bytes.fromhex(data.get("payload", "")),
            ident=int(data.get("ident", 1)),
            tcp_flags=data.get("tcp_flags"),
            frag_mf=bool(data.get("frag_mf", False)),
            frag_offset=int(data.get("frag_offset", 0)),
        )


@dataclass(frozen=True)
class ProfileTweak:
    """One perturbation of a Table 2 action profile."""

    kind: str
    op: str
    field: Optional[Field] = None

    def __post_init__(self):
        if self.op not in SOUND_TWEAK_OPS | BUG_TWEAK_OPS:
            raise ValueError(f"unknown profile tweak op {self.op!r}")
        if self.op in ("add-read", "hide-write") and self.field is None:
            raise ValueError(f"tweak {self.op!r} needs a field")

    @property
    def sound(self) -> bool:
        return self.op in SOUND_TWEAK_OPS

    def apply(self, table: ActionTable) -> None:
        """Rewrite the profile for ``kind`` in place (register replace)."""
        base = table.fetch(self.kind)
        actions = set(base.actions)
        if self.op == "add-read":
            actions.add(Action(Verb.READ, self.field))
        elif self.op == "add-drop":
            actions.add(Action(Verb.DROP))
        elif self.op == "hide-write":
            actions = {a for a in actions
                       if not (a.verb is Verb.WRITE and a.field is self.field)}
        elif self.op == "hide-drop":
            actions = {a for a in actions if a.verb is not Verb.DROP}
        elif self.op == "read-only":
            actions = {a for a in actions
                       if a.verb in (Verb.READ, Verb.DROP)}
        table.register(
            ActionProfile(base.name, actions, deployment_share=base.deployment_share),
            replace=True,
        )

    def to_dict(self) -> dict:
        data = {"kind": self.kind, "op": self.op}
        if self.field is not None:
            data["field"] = self.field.name
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileTweak":
        fld = data.get("field")
        return cls(
            kind=data["kind"],
            op=data["op"],
            field=Field[fld] if fld else None,
        )

    @classmethod
    def parse(cls, spec: str) -> "ProfileTweak":
        """Parse a CLI spec like ``hidden-write:loadbalancer:DIP``.

        Accepted forms: ``hidden-write:<kind>:<FIELD>`` (alias
        ``hide-write``), ``no-drop:<kind>`` (alias ``hide-drop``),
        ``read-only:<kind>``, ``add-read:<kind>:<FIELD>``,
        ``add-drop:<kind>``.
        """
        parts = spec.split(":")
        op = {"hidden-write": "hide-write", "no-drop": "hide-drop"}.get(
            parts[0], parts[0])
        if op in ("hide-write", "add-read"):
            if len(parts) != 3:
                raise ValueError(f"tweak {spec!r} needs kind and field")
            return cls(kind=parts[1], op=op, field=Field[parts[2].upper()])
        if len(parts) != 2:
            raise ValueError(f"tweak {spec!r} needs exactly a kind")
        return cls(kind=parts[1], op=op)


@dataclass
class FuzzCase:
    """One differential-testing case: policy, profile tweaks, traffic."""

    case_id: str
    instances: List[Tuple[str, str]]  # (instance name, NF kind)
    rules: List[Tuple[str, ...]] = field(default_factory=list)
    packets: List[PacketSpec] = field(default_factory=list)
    tweaks: List[ProfileTweak] = field(default_factory=list)
    seed: Optional[int] = None

    def kinds(self) -> Dict[str, str]:
        return dict(self.instances)

    def policy(self) -> Policy:
        policy = Policy(name=self.case_id)
        for name, kind in self.instances:
            policy.declare(NFSpec(name, kind))
        for rule in self.rules:
            tag = rule[0]
            if tag == "order":
                policy.order(rule[1], rule[2])
            elif tag == "priority":
                policy.priority(rule[1], rule[2])
            elif tag == "position":
                policy.position(rule[1], rule[2])
            else:
                raise ValueError(f"unknown rule tag {tag!r}")
        return policy

    def action_table(self) -> ActionTable:
        table = default_action_table()
        for tweak in self.tweaks:
            tweak.apply(table)
        return table

    def build_packets(self) -> List[Packet]:
        return [spec.build() for spec in self.packets]

    @property
    def has_bug_injection(self) -> bool:
        return any(not tweak.sound for tweak in self.tweaks)

    def restricted_to(self, names: Sequence[str]) -> "FuzzCase":
        """The sub-case over a subset of NF instances.

        Order rules are restricted through their transitive closure so
        removing a middle NF keeps the ordering constraints between the
        survivors (the shrinker relies on this to preserve the policy's
        sequential semantics while deleting instances).
        """
        keep = [n for n, _ in self.instances if n in set(names)]
        kept = set(keep)
        edges = {(r[1], r[2]) for r in self.rules if r[0] == "order"}
        closure = set(edges)
        changed = True
        while changed:
            changed = False
            for a, b in list(closure):
                for c, d in list(closure):
                    if b == c and (a, d) not in closure and a != d:
                        closure.add((a, d))
                        changed = True
        rules: List[Tuple[str, ...]] = []
        for a, b in sorted(closure):
            if a in kept and b in kept:
                rules.append(("order", a, b))
        for rule in self.rules:
            if rule[0] == "priority" and rule[1] in kept and rule[2] in kept:
                rules.append(rule)
            elif rule[0] == "position" and rule[1] in kept:
                rules.append(rule)
        return FuzzCase(
            case_id=self.case_id,
            instances=[(n, k) for n, k in self.instances if n in kept],
            rules=rules,
            packets=list(self.packets),
            tweaks=list(self.tweaks),
            seed=self.seed,
        )

    def with_packets(self, packets: Sequence[PacketSpec]) -> "FuzzCase":
        return FuzzCase(
            case_id=self.case_id,
            instances=list(self.instances),
            rules=list(self.rules),
            packets=list(packets),
            tweaks=list(self.tweaks),
            seed=self.seed,
        )

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "seed": self.seed,
            "instances": [[n, k] for n, k in self.instances],
            "rules": [list(r) for r in self.rules],
            "tweaks": [t.to_dict() for t in self.tweaks],
            "packets": [p.to_dict() for p in self.packets],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        return cls(
            case_id=data.get("case_id", "case"),
            seed=data.get("seed"),
            instances=[(n, k) for n, k in data["instances"]],
            rules=[tuple(r) for r in data.get("rules", [])],
            tweaks=[ProfileTweak.from_dict(t) for t in data.get("tweaks", [])],
            packets=[PacketSpec.from_dict(p) for p in data.get("packets", [])],
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FuzzCase":
        with open(path) as handle:
            return cls.from_json(handle.read())
