"""Delta-debugging shrinker: minimal repro from a failing fuzz case.

Three phases, each preserving the original failure *kind* (so the
shrinker cannot wander onto a different bug):

1. **NF minimization** -- greedily drop policy instances; order rules
   are restricted through their transitive closure so the surviving
   NFs keep their relative constraints.
2. **Packet minimization** -- ddmin-style halving over the packet list,
   then a greedy single-packet sweep.
3. **Packet simplification** -- per surviving packet, try zeroing the
   payload, shrinking to minimum size, and clearing fragment bits.

The result is written out as a JSON repro seed plus a ready-to-commit
pytest file that replays it through :func:`repro.check.run_case`.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, replace
from typing import Callable, Tuple

from ..telemetry.hooks import NULL_HUB, TelemetryHub
from .cases import FuzzCase, PacketSpec
from .differential import CaseOutcome, run_case

__all__ = ["ShrinkResult", "shrink_case", "write_repro"]


@dataclass
class ShrinkResult:
    """A minimized failing case plus how we got there."""

    case: FuzzCase
    outcome: CaseOutcome
    original_nfs: int
    original_packets: int
    steps: int = 0

    @property
    def nfs(self) -> int:
        return len(self.case.instances)

    @property
    def packets(self) -> int:
        return len(self.case.packets)

    def summary(self) -> str:
        return (f"shrunk {self.original_nfs}->{self.nfs} NFs, "
                f"{self.original_packets}->{self.packets} packets "
                f"in {self.steps} runs ({self.outcome.kind})")


def shrink_case(
    case: FuzzCase,
    include_des: bool = True,
    max_runs: int = 400,
    telemetry: TelemetryHub = NULL_HUB,
    instances: int = 1,
    audit_profiles: bool = False,
    batched: bool = False,
) -> ShrinkResult:
    """Minimize ``case`` while it keeps failing with the same kind."""
    baseline = run_case(case, include_des=include_des, instances=instances,
                        audit_profiles=audit_profiles, batched=batched)
    if baseline.ok:
        raise ValueError("shrink_case needs a failing case")
    kind = baseline.kind
    # The DES plane triples the cost of every probe; only keep it when
    # the failure is DES-specific -- or when the batched word comparison
    # (which needs the DES words) is the failure being chased.
    probe_batched = batched and kind.startswith("batched-")
    probe_des = include_des and (
        kind.startswith("des-") or kind == "meta-mismatch"
        or kind == "batched-meta-mismatch")
    # Profile violations surface before the dataplane comparison, so the
    # probes only need the audit armed when that is the kind we chase.
    probe_audit = audit_profiles and kind == "profile-violation"

    state = {"runs": 0, "best": case, "best_outcome": baseline}

    def still_fails(candidate: FuzzCase) -> bool:
        if state["runs"] >= max_runs:
            return False
        state["runs"] += 1
        telemetry.inc("fuzz.shrink_steps")
        try:
            outcome = run_case(candidate, include_des=probe_des,
                               instances=instances,
                               audit_profiles=probe_audit,
                               batched=probe_batched)
        except Exception:
            return False
        if not outcome.ok and outcome.kind == kind:
            state["best"], state["best_outcome"] = candidate, outcome
            return True
        return False

    current = case
    current = _shrink_nfs(current, still_fails)
    current = _shrink_packets(current, still_fails)
    current = _simplify_packets(current, still_fails)

    final_case = replace(
        state["best"], case_id=f"{case.case_id}-min") \
        if state["best"] is not case else case
    final = run_case(final_case, include_des=include_des, instances=instances,
                     audit_profiles=audit_profiles, batched=batched)
    if final.ok or final.kind != kind:  # paranoid re-check with full planes
        final_case = replace(case, case_id=f"{case.case_id}-min")
        final = run_case(final_case, include_des=include_des,
                         instances=instances,
                         audit_profiles=audit_profiles, batched=batched)
    return ShrinkResult(
        case=final_case,
        outcome=final,
        original_nfs=len(case.instances),
        original_packets=len(case.packets),
        steps=state["runs"],
    )


def _shrink_nfs(case: FuzzCase, still_fails: Callable[[FuzzCase], bool]) -> FuzzCase:
    changed = True
    while changed and len(case.instances) > 1:
        changed = False
        for name, _ in list(case.instances):
            if len(case.instances) <= 1:
                break
            survivors = [n for n, _ in case.instances if n != name]
            candidate = case.restricted_to(survivors)
            if still_fails(candidate):
                case = candidate
                changed = True
                break
    return case


def _shrink_packets(
    case: FuzzCase, still_fails: Callable[[FuzzCase], bool]
) -> FuzzCase:
    # ddmin halving: try keeping ever-smaller slices.
    granularity = 2
    packets = list(case.packets)
    while len(packets) >= 2:
        chunk = max(1, len(packets) // granularity)
        reduced = False
        for start in range(0, len(packets), chunk):
            complement = packets[:start] + packets[start + chunk:]
            if not complement:
                continue
            candidate = case.with_packets(complement)
            if still_fails(candidate):
                packets = complement
                case = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if not reduced:
            if chunk <= 1:
                break
            granularity = min(len(packets), granularity * 2)
    # Greedy single-packet sweep mops up what halving missed.
    changed = True
    while changed and len(packets) > 1:
        changed = False
        for i in range(len(packets)):
            complement = packets[:i] + packets[i + 1:]
            candidate = case.with_packets(complement)
            if still_fails(candidate):
                packets = complement
                case = candidate
                changed = True
                break
    return case


def _simplify_packets(
    case: FuzzCase, still_fails: Callable[[FuzzCase], bool]
) -> FuzzCase:
    for index in range(len(case.packets)):
        for variant in _packet_variants(case.packets[index]):
            packets = list(case.packets)
            packets[index] = variant
            candidate = case.with_packets(packets)
            if still_fails(candidate):
                case = candidate
    return case


def _packet_variants(spec: PacketSpec):
    if spec.payload:
        yield replace(spec, payload=b"")
    if spec.size > 64:
        yield replace(spec, size=64)
    if spec.frag_mf or spec.frag_offset:
        yield replace(spec, frag_mf=False, frag_offset=0)
    if spec.tcp_flags is not None:
        yield replace(spec, tcp_flags=None)


# ---------------------------------------------------------------- emission
_TEST_TEMPLATE = '''"""Auto-generated regression test (shrunk by `python -m repro fuzz`).

Failure kind : {kind}
Detail       : {detail}
Graph        : {graph}

Commit this file under tests/ (and the JSON seed under tests/corpus/ if
you want the corpus replayer to pick it up); see docs/TESTING.md.
"""

from repro.check import FuzzCase, run_case

CASE_JSON = r"""
{case_json}
"""


def test_repro_{digest}():
    outcome = run_case(FuzzCase.from_json(CASE_JSON), include_des={include_des},
                       instances={instances}, audit_profiles={audit_profiles},
                       batched={batched})
    assert outcome.ok, f"{{outcome.kind}}: {{outcome.detail}}"
'''


def write_repro(
    result: ShrinkResult,
    out_dir: str,
    include_des: bool = True,
    instances: int = 1,
    batched: bool = False,
) -> Tuple[str, str]:
    """Write the JSON seed + pytest repro; returns both paths."""
    os.makedirs(out_dir, exist_ok=True)
    case_json = result.case.to_json()
    digest = hashlib.sha1(case_json.encode()).hexdigest()[:10]
    json_path = os.path.join(out_dir, f"repro-{digest}.json")
    test_path = os.path.join(out_dir, f"test_repro_{digest}.py")
    with open(json_path, "w") as handle:
        handle.write(case_json + "\n")
    with open(test_path, "w") as handle:
        handle.write(_TEST_TEMPLATE.format(
            kind=result.outcome.kind,
            detail=result.outcome.detail.replace('"""', "'''"),
            graph=result.outcome.graph_desc,
            case_json=case_json,
            digest=digest,
            include_des=include_des,
            instances=instances,
            audit_profiles=result.outcome.kind == "profile-violation",
            batched=batched,
        ))
    return json_path, test_path
