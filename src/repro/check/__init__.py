"""repro.check: differential fuzzing of sequential vs parallel execution.

The correctness backstop for the whole repo (§4.1's result correctness
principle, §6.4's replay experiment, generalised): random valid policies
x perturbed action profiles x adversarial traffic, executed through the
sequential reference, the functional parallel dataplane, and the timed
DES dataplane, with automatic delta-debugging shrinking of any
divergence down to a committable repro.

Entry points: ``python -m repro fuzz`` (CLI), :func:`run_fuzz` /
:func:`replay_corpus` (sessions), :func:`run_case` (one case),
:class:`CaseGenerator` (case streams), :func:`shrink_case` /
:func:`write_repro` (minimization).
"""

from .cases import FuzzCase, PacketSpec, ProfileTweak
from .differential import CaseOutcome, reference_order, run_case
from .fuzz import FuzzFailure, FuzzReport, replay_corpus, run_fuzz
from .generator import NF_POOL, CaseGenerator
from .shrinker import ShrinkResult, shrink_case, write_repro

__all__ = [
    "CaseGenerator",
    "CaseOutcome",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "NF_POOL",
    "PacketSpec",
    "ProfileTweak",
    "ShrinkResult",
    "reference_order",
    "replay_corpus",
    "run_case",
    "run_fuzz",
    "shrink_case",
    "write_repro",
]
