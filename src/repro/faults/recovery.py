"""Recovery building blocks shared by the execution planes.

Two pieces:

* :class:`HealthBoard` -- which instance indices of each replicated NF
  are still healthy.  Both the DES server and the functional dataplane
  keep one and hand its view to
  :func:`repro.dataplane.flowsplit.assign_instances`, so RSS failover
  (flows rehashed away from a dead instance) is one shared mechanism.
* :func:`linearize` -- the sequential fallback of a parallel
  micrograph: its NFs in stage order on a single version, no copies, no
  merger.  When an NF kind has zero healthy instances the orchestrator
  (or the server, acting locally) degrades the graph to this
  linearization, trading the parallelism win for a dataplane with no
  rendezvous state to strand.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.graph import ServiceGraph

__all__ = ["HealthBoard", "linearize"]


class HealthBoard:
    """Healthy instance indices per NF name.

    Groups are registered with their full instance count; marking
    instances down/up maintains the ordered healthy list.  ``view()``
    only reports names with at least one casualty, so the common
    all-healthy case keeps the RSS fast path (and its exact historical
    hash -> instance mapping).
    """

    def __init__(self):
        self._counts: Dict[str, int] = {}
        self._healthy: Dict[str, List[int]] = {}

    def register(self, name: str, count: int) -> None:
        self._counts[name] = count
        self._healthy[name] = list(range(count))

    def registered(self, name: str) -> bool:
        return name in self._counts

    def mark_down(self, name: str, index: int) -> List[int]:
        """Remove ``index`` from the healthy set; returns what remains."""
        if name not in self._healthy:
            self.register(name, index + 1)
        healthy = self._healthy[name]
        if index in healthy:
            healthy.remove(index)
        return list(healthy)

    def mark_up(self, name: str, index: int) -> None:
        healthy = self._healthy.setdefault(name, [])
        if index not in healthy:
            healthy.append(index)
            healthy.sort()

    def resize(self, name: str, count: int) -> None:
        """Change the registered instance count live (autoscaling).

        Unlike :meth:`register` this preserves health state: indices
        that were marked down and still exist stay down; indices removed
        by a shrink drop out of the healthy list; indices added by a
        grow are born healthy.
        """
        if count < 1:
            raise ValueError("instance count must be >= 1")
        old = self._counts.get(name, 0)
        healthy = self._healthy.setdefault(name, list(range(old)))
        healthy[:] = [i for i in healthy if i < count]
        for i in range(old, count):
            healthy.append(i)
        healthy.sort()
        self._counts[name] = count

    def healthy(self, name: str) -> List[int]:
        if name in self._healthy:
            return list(self._healthy[name])
        return list(range(self._counts.get(name, 1)))

    def degraded(self, name: str) -> bool:
        """True when ``name`` has lost at least one instance."""
        count = self._counts.get(name)
        return count is not None and len(self._healthy[name]) < count

    def up(self, name: str) -> bool:
        """True while ``name`` keeps at least one healthy instance.

        The placement runtime registers whole *servers* here (count 1),
        so this doubles as "is the server alive" for path selection.
        """
        return bool(self.healthy(name))

    def view(self) -> Optional[Dict[str, List[int]]]:
        """Healthy map for ``assign_instances``; None when all-healthy."""
        partial = {
            name: list(indices)
            for name, indices in self._healthy.items()
            if len(indices) < self._counts[name]
        }
        return partial or None


def linearize(graph: ServiceGraph, name: str = "") -> ServiceGraph:
    """The sequential fallback chain of a (parallel) service graph.

    Stage-major order: every hard dependency the compiler encoded lives
    across stages, so flattening stages in order yields a valid
    sequential execution.  NFs that shared a stage ran on independent
    buffer versions (or were judged parallelizable); running them back
    to back on one buffer is the paper's traditional chaining -- the
    safe, merger-free mode degraded traffic falls back to.
    """
    return ServiceGraph.sequential(
        graph.nodes(), name=name or f"{graph.name}-degraded"
    )
