"""Fault descriptions: what fails, where, and when.

A :class:`FaultSpec` names one failure to inject into one NF instance
(or any instance of an NF): the kind, the target, and a trigger -- a
per-instance packet count or an absolute sim time.  Triggers are
evaluated by the execution plane each time the target serves a packet,
so a time trigger fires on the first packet at or after that time (a
box that never sees traffic cannot crash mid-silence in this model).

Specs parse from compact strings so they can ride on CLI flags::

    crash                       first packet of any instance
    hang:ids                    first packet of any ``ids`` instance
    crash:fw#1:pkt=5            5th packet served by instance fw#1
    slow:nat:t=200:x=8          nat runs 8x slower from t=200us on
    ring:monitor:cap=4          shrink monitor's rx ring to 4 slots

:class:`FaultPlan` is an ordered collection of specs (``"crash,hang"``
parses to two untargeted specs); each spec fires at most once.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "base_name"]

#: Suffix introduced by restarted instances (``fw#1~r1``); stripped
#: together with the replica suffix when matching a spec's target.
_RESTART_SEP = "~"


def base_name(label: str) -> str:
    """The NF name behind an instance label (``fw#1~r2`` -> ``fw``)."""
    return label.split(_RESTART_SEP)[0].split("#")[0]


class FaultKind(enum.Enum):
    """The four injectable failure modes."""

    #: The instance dies: its in-flight batch and ring are aborted and
    #: the runtime never serves another packet.
    CRASH = "crash"
    #: The instance wedges: it keeps its current batch forever and its
    #: ring accepts packets nobody will drain (AT/flight timeouts and
    #: failover are the only way out).
    HANG = "hang"
    #: The instance keeps working at ``slow_factor`` times its normal
    #: service time (backpressure builds upstream).
    SLOW = "slow"
    #: Ring-overflow pressure: the instance's rx ring capacity collapses
    #: to ``ring_capacity`` slots, forcing ``try_put`` overflow drops.
    RING_PRESSURE = "ring"


_ALIASES = {
    "crash": FaultKind.CRASH,
    "hang": FaultKind.HANG,
    "slow": FaultKind.SLOW,
    "ring": FaultKind.RING_PRESSURE,
    "ring-pressure": FaultKind.RING_PRESSURE,
    "ring_pressure": FaultKind.RING_PRESSURE,
}


@dataclass
class FaultSpec:
    """One scheduled failure."""

    kind: FaultKind
    #: NF name or exact instance label; ``None`` matches any instance.
    target: Optional[str] = None
    #: Fire when the target has served this many packets (1-based).
    at_packet: Optional[int] = None
    #: Fire on the first packet served at or after this sim time (us).
    at_time_us: Optional[float] = None
    #: Service-time multiplier for :attr:`FaultKind.SLOW`.
    slow_factor: float = 4.0
    #: Collapsed rx-ring capacity for :attr:`FaultKind.RING_PRESSURE`.
    ring_capacity: int = 4

    def matches(self, label: str) -> bool:
        if self.target is None:
            return True
        return label == self.target or base_name(label) == self.target

    def triggered(self, packet_count: int, now_us: float) -> bool:
        if self.at_packet is not None:
            return packet_count >= self.at_packet
        if self.at_time_us is not None:
            return now_us >= self.at_time_us
        return packet_count >= 1

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``kind[:target][:pkt=N][:t=US][:x=F][:cap=N]``."""
        parts = [p for p in text.strip().split(":") if p]
        if not parts:
            raise ValueError("empty fault spec")
        kind = _ALIASES.get(parts[0].lower())
        if kind is None:
            raise ValueError(
                f"unknown fault kind {parts[0]!r} "
                f"(choose from {sorted(_ALIASES)})")
        spec = cls(kind)
        for part in parts[1:]:
            if "=" not in part:
                spec.target = part
                continue
            key, _, value = part.partition("=")
            key = key.lower()
            if key in ("pkt", "packet"):
                spec.at_packet = int(value)
            elif key in ("t", "time"):
                spec.at_time_us = float(value)
            elif key in ("x", "factor"):
                spec.slow_factor = float(value)
            elif key == "cap":
                spec.ring_capacity = int(value)
            else:
                raise ValueError(f"unknown fault spec key {key!r} in {text!r}")
        if spec.at_packet is not None and spec.at_packet < 1:
            raise ValueError("at_packet is 1-based and must be >= 1")
        if spec.slow_factor <= 0:
            raise ValueError("slow_factor must be positive")
        if spec.ring_capacity < 1:
            raise ValueError("ring_capacity must be >= 1")
        return spec

    def describe(self) -> str:
        bits = [self.kind.value]
        if self.target:
            bits.append(self.target)
        if self.at_packet is not None:
            bits.append(f"pkt={self.at_packet}")
        if self.at_time_us is not None:
            bits.append(f"t={self.at_time_us:g}")
        return ":".join(bits)


@dataclass
class FaultPlan:
    """An ordered list of fault specs; each fires at most once."""

    specs: List[FaultSpec] = field(default_factory=list)

    @classmethod
    def parse(cls, text: Union[str, Sequence[str]]) -> "FaultPlan":
        """Parse ``"crash,hang"`` / ``"crash:fw:pkt=3"`` / a list thereof."""
        if isinstance(text, str):
            chunks = [c for c in text.split(",") if c.strip()]
        else:
            chunks = [c for c in text if c.strip()]
        return cls([FaultSpec.parse(chunk) for chunk in chunks])

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def describe(self) -> str:
        return ",".join(spec.describe() for spec in self.specs)
