"""Injectable failure model for the NFP reproduction.

The paper's dataplane (§5) assumes every parallel branch eventually
reaches the merger; this package makes the opposite a supported,
observable scenario.  :mod:`~repro.faults.model` describes *what* fails
(crash / hang / slow / ring pressure) and *when* (packet count or sim
time); :mod:`~repro.faults.injector` tracks per-instance health and
fires the scheduled faults; :mod:`~repro.faults.recovery` holds the
pieces recovery shares across execution planes -- the health board the
RSS splitter consults and the sequential linearization a micrograph
degrades to when an NF kind has no healthy instance left.
"""

from .injector import FaultInjector, HealthState
from .model import FaultKind, FaultPlan, FaultSpec, base_name
from .recovery import HealthBoard, linearize

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "HealthState",
    "HealthBoard",
    "base_name",
    "linearize",
]
