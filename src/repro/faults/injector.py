"""The fault injector: per-instance health plus scheduled fault firing.

One :class:`FaultInjector` is shared by an execution plane (the DES
server or the functional dataplane).  The plane calls
:meth:`FaultInjector.on_packet` each time an instance is about to serve
a packet; the injector advances that instance's packet count, fires any
matching :class:`~repro.faults.model.FaultSpec` whose trigger is met,
and returns the instance's (possibly just-changed) health state.  Every
fired fault counts under ``faults.injected`` (and
``faults.injected.<kind>``) and is broadcast to transition listeners --
the hook failover and degradation hang off.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

from ..telemetry.hooks import NULL_HUB, TelemetryHub
from .model import FaultKind, FaultPlan, FaultSpec

__all__ = ["HealthState", "FaultInjector"]


class HealthState(enum.Enum):
    HEALTHY = "healthy"
    SLOW = "slow"
    HUNG = "hung"
    DEAD = "dead"

    @property
    def down(self) -> bool:
        """True when the instance can no longer make progress."""
        return self in (HealthState.HUNG, HealthState.DEAD)


#: Listener signature: (instance label, fired spec or None, new state).
TransitionListener = Callable[[str, Optional[FaultSpec], HealthState], None]


class FaultInjector:
    """Tracks instance health and fires scheduled faults."""

    def __init__(
        self,
        plan: Union[FaultPlan, Sequence[FaultSpec], None] = None,
        telemetry: TelemetryHub = NULL_HUB,
    ):
        if plan is None:
            specs: List[FaultSpec] = []
        elif isinstance(plan, FaultPlan):
            specs = list(plan.specs)
        else:
            specs = list(plan)
        self.specs = specs
        self.telemetry = telemetry
        self._health: Dict[str, HealthState] = {}
        self._slow: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._fired: Set[int] = set()
        self._listeners: List[TransitionListener] = []
        #: Total faults fired (mirrors the ``faults.injected`` counter).
        self.injected = 0

    # ----------------------------------------------------------- queries
    def state(self, label: str) -> HealthState:
        return self._health.get(label, HealthState.HEALTHY)

    def is_down(self, label: str) -> bool:
        return self.state(label).down

    def slow_factor(self, label: str) -> float:
        return self._slow.get(label, 1.0)

    def packet_count(self, label: str) -> int:
        return self._counts.get(label, 0)

    def on_transition(self, listener: TransitionListener) -> None:
        self._listeners.append(listener)

    # ------------------------------------------------------------ firing
    def on_packet(self, label: str, now_us: float) -> HealthState:
        """Advance ``label``'s packet count; fire due faults; health."""
        self._counts[label] = count = self._counts.get(label, 0) + 1
        for index, spec in enumerate(self.specs):
            if index in self._fired or not spec.matches(label):
                continue
            if spec.triggered(count, now_us):
                self._fired.add(index)
                self._fire(spec, label)
        return self.state(label)

    def _fire(self, spec: FaultSpec, label: str) -> None:
        self.injected += 1
        hub = self.telemetry
        if hub.enabled:
            hub.inc("faults.injected")
            hub.inc(f"faults.injected.{spec.kind.value}")
        if spec.kind is FaultKind.CRASH:
            self._health[label] = HealthState.DEAD
        elif spec.kind is FaultKind.HANG:
            self._health[label] = HealthState.HUNG
        elif spec.kind is FaultKind.SLOW:
            self._health[label] = HealthState.SLOW
            self._slow[label] = spec.slow_factor
        # RING_PRESSURE leaves health untouched: the instance still
        # serves packets, its ring just overflows; the listener (the
        # server) applies the capacity collapse.
        state = self.state(label)
        for listener in self._listeners:
            listener(label, spec, state)

    def revive(self, label: str) -> None:
        """Mark an instance healthy again (a restarted runtime)."""
        self._health[label] = HealthState.HEALTHY
        self._slow.pop(label, None)
        for listener in self._listeners:
            listener(label, None, HealthState.HEALTHY)
