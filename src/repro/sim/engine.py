"""A minimal discrete-event simulation (DES) engine.

This module is the substrate that stands in for the paper's physical
testbed (DPDK, CPU cores, NIC queues).  It is a deliberately small,
dependency-free cousin of SimPy: simulation *processes* are Python
generators that ``yield`` events; the :class:`Environment` advances a
virtual clock and resumes processes when the events they wait on fire.

Time is a ``float`` in *microseconds* throughout the repository, matching
the unit the paper reports latencies in.

Example
-------
>>> env = Environment()
>>> log = []
>>> def proc(env):
...     yield env.timeout(5.0)
...     log.append(env.now)
>>> _ = env.process(proc(env))
>>> env.run()
>>> log
[5.0]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for illegal uses of the simulation API."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; :meth:`succeed` or :meth:`fail` triggers it,
    which schedules all waiting callbacks at the current simulation time.
    Triggering twice is an error -- events are single-use, as in SimPy.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None  # None = pending
        self._scheduled = False
        self._processed = False  # callbacks have run

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event is still pending")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception, if it failed)."""
        if self._ok is None:
            raise SimulationError("event is still pending")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.
        """
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")


class Process(Event):
    """Wraps a generator so it can be driven by the environment.

    A process is itself an event: it triggers when the generator returns
    (success, with the generator's return value) or raises (failure).
    Other processes can therefore ``yield proc`` to join on it.
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError("process() expects a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        self._interrupt_pending = False
        # Bootstrap: resume the generator at the current time.  The init
        # event is deliberately not tracked as the wait target: an
        # interrupt carrier scheduled before the first resume carries a
        # later event id, so the bootstrap always runs first and the
        # Interrupt is never thrown into an unstarted generator.
        init = Event(env)
        init._ok = True
        init.callbacks.append(self._resume)
        env._schedule(init)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op error, matching SimPy.
        Concurrent interrupts are safe: causes queue on the process and a
        single carrier event drains them in arrival order, so a second
        interrupt racing the first can never re-enter the generator on a
        stale dispatch state.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        self._interrupts.append(Interrupt(cause))
        if self._interrupt_pending:
            # A carrier is already queued; it drains every pending cause.
            return
        self._interrupt_pending = True
        # Detach from whatever we were waiting on.
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
            self._target = None
        carrier = Event(self.env)
        carrier._ok = True
        carrier.callbacks.append(self._deliver_interrupts)
        self.env._schedule(carrier)

    def _deliver_interrupts(self, _carrier: Event) -> None:
        """Throw every queued :class:`Interrupt` into the generator.

        Runs as the carrier event's callback.  Causes queued while this
        drain is in flight (e.g. by an interrupt handler interrupting
        itself) are delivered in the same pass; interrupts that raced the
        process finishing are discarded, never thrown into a closed
        generator.
        """
        self._interrupt_pending = False
        while self._interrupts:
            if not self.is_alive:
                # The process finished between scheduling and delivery
                # (or a prior cause in this batch killed it): drop the
                # rest rather than throwing into a closed generator.
                self._interrupts.clear()
                return
            cause = self._interrupts.pop(0)
            # Detach again at delivery time: the process may have been
            # resumed (and re-armed on a new target) by an earlier event
            # at this same timestamp.
            if (self._target is not None
                    and self._resume in self._target.callbacks):
                self._target.callbacks.remove(self._resume)
            failure = Event(self.env)
            failure._ok = False
            failure._value = cause
            failure._defused = True  # type: ignore[attr-defined]
            failure._processed = True
            failure._scheduled = True
            self._resume(failure)

    # -- generator driving ------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.env._schedule(self)
            return
        except BaseException as exc:
            self._ok = False
            self._value = exc
            self.env._schedule(self)
            return
        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process yielded a non-event: {next_event!r}"
            )
        if next_event.processed:
            # Its callbacks already ran: resume at the current time.  The
            # fresh resume event is tracked as the wait target so a racing
            # interrupt can detach it instead of double-dispatching.
            resume = Event(self.env)
            resume._ok = next_event._ok
            resume._value = next_event._value
            resume.callbacks.append(self._resume)
            self._target = resume
            self.env._schedule(resume)
        else:
            self._target = next_event
            next_event.callbacks.append(self._resume)


class Environment:
    """The simulation clock and event queue.

    ``scheduler`` selects the event-queue implementation: ``"heap"``
    (the default binary heap) or ``"calendar"`` (the
    :class:`~repro.sim.calendar.CalendarQueue`, O(1) amortised when
    event times are dense).  Both yield the exact same event order --
    ties resolve by scheduling id either way -- which the property
    suite verifies over arbitrary schedules.
    """

    SCHEDULERS = ("heap", "calendar")

    def __init__(
        self,
        initial_time: float = 0.0,
        track_stats: bool = False,
        scheduler: str = "heap",
    ):
        if scheduler not in self.SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; pick from {self.SCHEDULERS}"
            )
        self._now = float(initial_time)
        self.scheduler = scheduler
        self._eid = itertools.count()
        self.queue_high_watermark = 0
        if scheduler == "calendar":
            from .calendar import CalendarQueue

            self._queue: List = CalendarQueue(start=self._now)
            # Shadow the heap methods on this instance only; the default
            # heap path stays branch-free.
            self._schedule = (  # type: ignore[method-assign]
                self._schedule_calendar_tracked
                if track_stats
                else self._schedule_calendar
            )
            self.step = self._step_calendar  # type: ignore[method-assign]
        else:
            self._queue = []
            if track_stats:
                # Shadow the class method with the tracking variant on
                # this instance only, so the default event loop pays
                # nothing.
                self._schedule = self._schedule_tracked  # type: ignore[method-assign]

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Events popped so far, derived from the id counter so the hot
        loop carries no bookkeeping: every draw of ``_eid`` is one push,
        and whatever is still queued has not been processed yet."""
        scheduled = self._eid.__reduce__()[1][0]
        return scheduled - len(self._queue)

    # -- factory helpers ----------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` microseconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Register a generator as a new simulation process."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires once every given event has succeeded."""
        events = list(events)
        done = self.event()
        remaining = [len(events)]
        if not events:
            done._ok = True
            done._value = []
            self._schedule(done)
            return done

        def on_fire(ev: Event) -> None:
            if not ev._ok:
                if not done.triggered:
                    done.fail(ev._value)
                return
            remaining[0] -= 1
            if remaining[0] == 0 and not done.triggered:
                done.succeed([e._value for e in events])

        for ev in events:
            if ev.processed:
                on_fire(ev)
            else:
                ev.callbacks.append(on_fire)
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that fires as soon as any given event succeeds."""
        events = list(events)
        done = self.event()

        def on_fire(ev: Event) -> None:
            if done.triggered:
                return
            if ev._ok:
                done.succeed(ev._value)
            else:
                done.fail(ev._value)

        for ev in events:
            if ev.processed:
                on_fire(ev)
                break
            ev.callbacks.append(on_fire)
        return done

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        heapq.heappush(self._queue, (self._now + delay, next(self._eid), event))

    def _schedule_tracked(self, event: Event, delay: float = 0.0) -> None:
        """`_schedule` plus queue-depth watermark (``track_stats=True``)."""
        if event._scheduled:
            return
        event._scheduled = True
        heapq.heappush(self._queue, (self._now + delay, next(self._eid), event))
        if len(self._queue) > self.queue_high_watermark:
            self.queue_high_watermark = len(self._queue)

    def _schedule_calendar(self, event: Event, delay: float = 0.0) -> None:
        """`_schedule` against the calendar queue (``scheduler="calendar"``)."""
        if event._scheduled:
            return
        event._scheduled = True
        self._queue.push(self._now + delay, next(self._eid), event)

    def _schedule_calendar_tracked(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._queue.push(self._now + delay, next(self._eid), event)
        if len(self._queue) > self.queue_high_watermark:
            self.queue_high_watermark = len(self._queue)

    def step(self) -> None:
        """Process the single next event in the queue."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        if not event._ok and not callbacks and not getattr(event, "_defused", False):
            # An unhandled failure with nobody listening: surface it.
            raise event._value

    def _step_calendar(self) -> None:
        """`step` popping from the calendar queue."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = self._queue.pop_min()
        self._now = when
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)
        if not event._ok and not callbacks and not getattr(event, "_defused", False):
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``."""
        if until is not None and until < self._now:
            raise SimulationError("run(until) lies in the past")
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")
