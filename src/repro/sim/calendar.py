"""A calendar-queue event scheduler (Brown 1988) for the DES engine.

The heapq scheduler pays ``O(log n)`` per push and pop.  A calendar
queue hashes events into *day* buckets of a fixed ``width`` and pops by
scanning forward from the current day -- ``O(1)`` amortised when the
bucket width tracks the inter-event gap, which the queue maintains by
doubling its bucket count (and re-deriving the width from the observed
event-time span) whenever it grows past two events per bucket.

Correctness relies on the engine's monotonicity invariant: every pushed
time is ``now + delay`` with ``delay >= 0``, and ``now`` only advances
via pops, so no push lands before the last popped time.  The day scan
therefore starts at the last popped time's day; an entry whose day lies
beyond one full bucket rotation (a far-future timeout) is found by the
full-sweep fallback instead of being missed.

Entries are the engine's ``(time, eid, event)`` tuples; ordering ties on
``(time, eid)`` exactly like the heap, so the pop sequence is identical
-- the Hypothesis property suite drives both schedulers through the same
programs and asserts equality event by event.

The container mimics just enough of a list for ``Environment.run`` /
``peek``: ``len()`` and ``queue[0]`` (the minimum entry).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = ["CalendarQueue"]

#: Bucket-count ceiling: beyond this, doubling buys nothing but memory.
_MAX_BUCKETS = 32768


class CalendarQueue:
    """Bucket-calendar priority queue over ``(time, eid, event)`` tuples."""

    __slots__ = ("_buckets", "_nb", "_width", "_size", "_last", "_cache")

    def __init__(
        self, num_buckets: int = 16, width: float = 1.0, start: float = 0.0
    ):
        if num_buckets < 1:
            raise ValueError("calendar queue needs at least one bucket")
        if width <= 0:
            raise ValueError("bucket width must be positive")
        self._buckets: List[List[tuple]] = [[] for _ in range(num_buckets)]
        self._nb = num_buckets
        self._width = float(width)
        self._size = 0
        #: Monotonic floor: the last popped time (or the start time).
        self._last = float(start)
        #: Cached location of the current minimum: (bucket, index).
        self._cache: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------- mutation
    def push(self, time: float, eid: int, event: object) -> None:
        bucket = int(time / self._width) % self._nb
        self._buckets[bucket].append((time, eid, event))
        self._size += 1
        self._cache = None
        if self._size > 2 * self._nb and self._nb < _MAX_BUCKETS:
            self._resize()

    def pop_min(self) -> tuple:
        """Remove and return the least ``(time, eid, event)`` entry."""
        where = self._find_min()
        bucket_index, entry_index = where
        bucket = self._buckets[bucket_index]
        entry = bucket[entry_index]
        # Swap-remove: bucket order is irrelevant, min search re-sorts.
        bucket[entry_index] = bucket[-1]
        bucket.pop()
        self._size -= 1
        self._cache = None
        self._last = entry[0]
        return entry

    # -------------------------------------------------------------- queries
    def _find_min(self) -> Tuple[int, int]:
        if self._size == 0:
            raise IndexError("pop from an empty calendar queue")
        if self._cache is not None:
            return self._cache
        width = self._width
        nb = self._nb
        day = int(self._last / width)
        for k in range(nb):
            bucket = self._buckets[(day + k) % nb]
            if not bucket:
                continue
            # Admit only entries that belong to the day being visited;
            # the same bucket also holds entries a full rotation ahead.
            limit = (day + k + 1) * width
            best = -1
            for index, entry in enumerate(bucket):
                if entry[0] < limit and (
                    best < 0 or entry[:2] < bucket[best][:2]
                ):
                    best = index
            if best >= 0:
                self._cache = ((day + k) % nb, best)
                return self._cache
        # Nothing within one rotation: every entry lies a year or more
        # ahead (sparse far-future timeouts).  Global sweep.
        best_where: Optional[Tuple[int, int]] = None
        best_key = None
        for bucket_index, bucket in enumerate(self._buckets):
            for index, entry in enumerate(bucket):
                key = entry[:2]
                if best_key is None or key < best_key:
                    best_key = key
                    best_where = (bucket_index, index)
        assert best_where is not None
        self._cache = best_where
        return best_where

    def _resize(self) -> None:
        entries = [entry for bucket in self._buckets for entry in bucket]
        self._nb = min(self._nb * 2, _MAX_BUCKETS)
        lows = min(entry[0] for entry in entries)
        highs = max(entry[0] for entry in entries)
        span = highs - lows
        if span > 0:
            # Aim for ~3 entries per active day so a pop scans few days.
            self._width = max(span * 3.0 / len(entries), 1e-9)
        self._buckets = [[] for _ in range(self._nb)]
        width = self._width
        nb = self._nb
        for entry in entries:
            self._buckets[int(entry[0] / width) % nb].append(entry)
        self._cache = None

    # ----------------------------------------------------- list-alike shims
    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int) -> tuple:
        """Support ``queue[0]``: the minimum entry (engine ``peek``)."""
        if index != 0:
            raise IndexError("calendar queue only exposes the minimum")
        where = self._find_min()
        return self._buckets[where[0]][where[1]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CalendarQueue({self._size} events, {self._nb} buckets, "
            f"width={self._width:g})"
        )
