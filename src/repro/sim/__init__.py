"""Discrete-event simulation substrate (the stand-in for DPDK + testbed).

Public surface:

- :class:`~repro.sim.engine.Environment` -- event loop / virtual clock.
- :class:`~repro.sim.ring.Ring` -- bounded rings (``rte_ring`` analogue).
- :class:`~repro.sim.cpu.Core` -- pinned-core single-server queue.
- :class:`~repro.sim.memory.PacketPool` -- huge-page mempool accounting.
- :class:`~repro.sim.nic.Nic` -- wire-rate serialisation model.
- :class:`~repro.sim.params.SimParams` -- the calibrated timing constants.
- :mod:`~repro.sim.stats` -- latency / rate collectors.
"""

from .calendar import CalendarQueue
from .engine import Environment, Event, Interrupt, Process, SimulationError, Timeout
from .ring import Ring, RingFullError
from .cpu import Core
from .memory import PacketPool, PoolExhaustedError
from .nic import Nic
from .params import DEFAULT_PARAMS, VM_PARAMS, SimParams, nic_line_rate_mpps
from .stats import LatencyStats, LatencySummary, RateMeter, percentile, summarize

__all__ = [
    "CalendarQueue",
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "Ring",
    "RingFullError",
    "Core",
    "PacketPool",
    "PoolExhaustedError",
    "Nic",
    "SimParams",
    "DEFAULT_PARAMS",
    "VM_PARAMS",
    "nic_line_rate_mpps",
    "LatencyStats",
    "LatencySummary",
    "RateMeter",
    "percentile",
    "summarize",
]
