"""CPU core model: one busy server per core, as in the paper's pinning.

The paper dedicates a physical core to each container (NF, classifier,
merger, OpenNetVM manager) and isolates it from the OS scheduler.  A
:class:`Core` is therefore a single-server queue: work items (batches of
packets) are serviced one at a time; the cumulative busy time yields the
utilisation statistics used in the evaluation harness.
"""

from __future__ import annotations

from .engine import Environment, Event

__all__ = ["Core"]


class Core:
    """A single CPU core servicing work serially.

    Processes call ``yield core.execute(duration)`` to occupy the core for
    ``duration`` microseconds.  Requests queue in FIFO order, mimicking a
    pinned poll-mode thread that handles one batch at a time.
    """

    def __init__(self, env: Environment, core_id: int = 0, name: str = ""):
        self.env = env
        self.core_id = core_id
        self.name = name or f"core{core_id}"
        self.busy_until = 0.0
        self.busy_time = 0.0
        self._started = env.now

    def execute(self, duration: float) -> Event:
        """Reserve the core for ``duration`` us; fires when work completes.

        The core is non-preemptive: if it is already busy, the new work
        starts when the current backlog drains.
        """
        if duration < 0:
            raise ValueError("negative execution duration")
        start = max(self.env.now, self.busy_until)
        finish = start + duration
        self.busy_until = finish
        self.busy_time += duration
        return self.env.timeout(finish - self.env.now)

    def utilisation(self) -> float:
        """Fraction of elapsed simulated time this core spent busy."""
        elapsed = self.env.now - self._started
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Core {self.name} busy_until={self.busy_until:.2f}>"
