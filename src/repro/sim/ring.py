"""Bounded ring buffers, the simulated analogue of DPDK ``rte_ring``.

In the paper each NF owns a *receive* and a *transmit* ring allocated in
huge-page shared memory; packet delivery writes a packet **reference**
into the target NF's receive ring (§5, "zero-copy delivery").  Here a
:class:`Ring` is a bounded FIFO of arbitrary Python objects living inside
the DES.  Capacity is enforced: ``try_put`` fails when the ring is full,
which is how the simulation models packet loss under overload (and hence
how the "maximum throughput without packet loss" measurements work).

Two flavours of consumption are offered:

* ``get()`` -- an event-based blocking get, used by NF runtime processes.
* ``get_batch(n)`` -- drain up to ``n`` items immediately, used to model
  DPDK-style batched polling.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from .engine import Environment, Event

__all__ = ["Ring", "RingFullError"]


class RingFullError(Exception):
    """Raised by :meth:`Ring.put` when the ring has no free slot."""


class Ring:
    """A bounded FIFO queue of packet references.

    Parameters
    ----------
    env:
        The simulation environment.
    capacity:
        Maximum number of outstanding items.  DPDK rings are powers of
        two; we default to 1024 like the common ``RTE_RING`` sizing.
    name:
        Diagnostic label (e.g. ``"fw0.rx"``).
    """

    def __init__(self, env: Environment, capacity: int = 1024, name: str = ""):
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        # Statistics -- consumed by the evaluation harness.
        self.enqueued = 0
        self.dropped = 0
        self.high_watermark = 0
        #: Overflow hook: called with the rejected item whenever
        #: ``try_put`` drops on a full ring, so owners (the NFP server)
        #: can surface the loss -- telemetry, drop accounting, merger
        #: notification -- instead of the item silently vanishing into
        #: the local ``dropped`` counter.
        self.on_drop: Optional[Callable[[Any], None]] = None

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Ring {self.name or id(self)} {len(self)}/{self.capacity}>"

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    # -- producer side ------------------------------------------------------
    def try_put(self, item: Any) -> bool:
        """Enqueue ``item``; return ``False`` (and count a drop) if full."""
        if self.is_full:
            self.dropped += 1
            if self.on_drop is not None:
                self.on_drop(item)
            return False
        self._deliver(item)
        return True

    def put(self, item: Any) -> None:
        """Enqueue ``item`` or raise :class:`RingFullError`."""
        if not self.try_put(item):
            raise RingFullError(self.name or "ring")

    def put_burst(self, items: List[Any]) -> int:
        """Enqueue items until the ring fills; return how many made it.

        ``rte_ring_enqueue_burst`` semantics: the leftover tail is the
        caller's problem -- nothing is dropped or counted here.
        """
        accepted = 0
        for item in items:
            if self.is_full:
                break
            self._deliver(item)
            accepted += 1
        return accepted

    def try_put_burst(self, items: List[Any]) -> int:
        """Enqueue what fits; count (and report) a drop per rejected item."""
        accepted = self.put_burst(items)
        for item in items[accepted:]:
            self.dropped += 1
            if self.on_drop is not None:
                self.on_drop(item)
        return accepted

    def _deliver(self, item: Any) -> None:
        # Hand the item straight to a waiting consumer when one exists;
        # otherwise buffer it.
        self.enqueued += 1
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            return
        self._items.append(item)
        if len(self._items) > self.high_watermark:
            self.high_watermark = len(self._items)

    # -- consumer side ------------------------------------------------------
    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = self.env.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def get_batch(self, max_items: int) -> List[Any]:
        """Immediately dequeue up to ``max_items`` items (may be empty).

        Models a poll-mode driver burst read (``rte_ring_dequeue_burst``).
        """
        if max_items <= 0:
            raise ValueError("batch size must be positive")
        batch: List[Any] = []
        while self._items and len(batch) < max_items:
            batch.append(self._items.popleft())
        return batch

    def peek(self) -> Optional[Any]:
        """The next item without removing it, or ``None`` if empty."""
        return self._items[0] if self._items else None
