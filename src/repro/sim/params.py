"""Calibrated timing model for the simulated NFV testbed.

The paper's numbers come from a physical testbed (dual Xeon E5-2690 v2 @
3.00 GHz, 10G NICs, DPDK 16.11, Docker containers pinned to cores).  This
module centralises every constant of the simulation's stand-in timing
model.  Constants were calibrated so that the *reference points the paper
states explicitly* come out right; everything else is emergent from the
queueing model:

==============================  ======================  ==================
Reference point                 Paper value             Model anchor
==============================  ======================  ==================
OpenNetVM manager capacity      9.38 Mpps (Table 4)     ``ONVM_MANAGER_US``
NFP classifier w/ metadata      10.90-10.92 Mpps (T4)   ``CLASSIFIER_TAG_US``
Merger instance capacity        10.7 Mpps, d=2 (§6.3.3) ``MERGER_BASE_US``
10G line rate @64B              14.7-14.88 Mpps         ``NIC_RATE_GBPS``
1-NF firewall chain latency     ~25 us (Table 4)        IO + per-hop costs
BESS RTC chain latency          ~11.3 us (Table 4)      ``RTC_*``
Copy+merge latency penalty      ~15 us (§6.3.2)         merge queueing
==============================  ======================  ==================

All times are microseconds (us); rates derive as ``1 / service_time``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["SimParams", "DEFAULT_PARAMS", "nic_line_rate_mpps"]

#: CPU frequency of the paper's testbed, used to convert the "busy loop
#: cycles" knob of Fig. 9 into service time.
CPU_FREQ_MHZ = 3000.0


def nic_line_rate_mpps(packet_size: int, nic_gbps: float = 10.0) -> float:
    """Line rate in Mpps for a given wire packet size on an ``nic_gbps`` NIC.

    Adds the 20-byte Ethernet overhead (preamble 8 B + IFG 12 B) per frame,
    so a 64 B frame on 10 GbE gives the classic 14.88 Mpps.
    """
    if packet_size <= 0:
        raise ValueError("packet size must be positive")
    bits_per_packet = (packet_size + 20) * 8
    return nic_gbps * 1000.0 / bits_per_packet


@dataclass
class SimParams:
    """Every tunable of the simulated dataplane, with calibrated defaults."""

    # ------------------------------------------------------------------ IO
    #: One-way NIC+DPDK driver cost (rx or tx), per packet.
    nic_io_us: float = 4.0
    #: NIC speed in Gbit/s (the paper's servers have 10G NICs).
    nic_gbps: float = 10.0

    # ------------------------------------------------------- NFP dataplane
    #: Classifier service time for a *sequential* chain entry (no metadata
    #: needed: trivial CT hit, forward the reference).
    classifier_fwd_us: float = 0.060
    #: Classifier service time when the graph needs MID/PID/version
    #: metadata tagging (any graph with parallelism).  1/0.0915 = 10.93
    #: Mpps, the NFP plateau in Table 4.
    classifier_tag_us: float = 0.0875
    #: Classifier service time on a flow-cache hit: the memoized CT
    #: match + fan-out decision is reused, leaving only the hash lookup
    #: and the metadata stamp.  Opt-in (the cache is off by default so
    #: the Table 4 calibration anchors are produced by the uncached
    #: path).
    classifier_cache_hit_us: float = 0.035
    #: Core cost of the distributed NF runtime writing a packet
    #: reference into a peer's receive ring (zero-copy, §5.2) -- a
    #: pointer enqueue, a few nanoseconds.
    ring_hop_us: float = 0.002
    #: Fixed NF-runtime overhead per packet (poll, metadata lookup).
    nf_runtime_us: float = 0.030
    #: Merger: base service per *output* packet (AT completion + MOs);
    #: with the per-notification cost below this lands one merger
    #: instance at 10.7 Mpps for parallelism degree 2 (§6.3.3).
    merger_base_us: float = 0.0925
    #: Service per notification collected into the Accumulating Table.
    merger_per_copy_us: float = 0.0005
    #: Latency of delivering a merger notification (tiny reference
    #: messages on a tight poll loop -- cheaper than a full NF hop).
    merger_hop_latency_us: float = 2.0
    #: Latency cost of a merge rendezvous (AT bookkeeping + MO execution),
    #: charged once per output packet on the latency path.
    merge_latency_us: float = 1.9
    #: Rendezvous latency per notification collected (the merger "has to
    #: collect and merge more packets, which increases latency", §6.2.3).
    merge_per_notification_us: float = 1.2
    #: Extra merge latency per merging operation (MO) applied.
    merge_per_mo_us: float = 0.35
    #: Extra rendezvous latency per *copy* version collected: calibrated
    #: against §6.3.2's "packet copying and merging could bring an
    #: average of 15 us latency penalty" at parallelism degree 2.
    copy_merge_latency_us: float = 8.0

    # ---------------------------------------------------------- packet copy
    #: Fixed cost of grabbing a pre-provisioned copy buffer (§5.2 notes
    #: buffers are pre-allocated, so this is an rte_memcpy setup cost).
    copy_base_us: float = 0.008
    #: Per-byte cost of the DPDK optimised memcpy (~0.2 ns/B).
    copy_per_byte_us: float = 0.0002

    # ------------------------------------------------------------ OpenNetVM
    #: Per-packet service of the centralized OpenNetVM manager/switch core;
    #: 1/0.1066 = 9.38 Mpps (Table 4).
    onvm_manager_us: float = 0.1066
    #: Extra latency of one traversal through the centralized switch, on
    #: top of the common per-stage pipeline latency.
    onvm_switch_hop_us: float = 1.0
    #: Manager-core cost of each *additional* switch traversal beyond the
    #: first (the first carries the full 0.1066 us manager service); this
    #: is what bends the Fig. 7(b) OpenNetVM lines down as chains grow.
    onvm_hop_op_us: float = 0.002

    # ----------------------------------------------------------------- BESS
    #: Per-NF cost when the chain runs run-to-completion on one core (no
    #: ring hops, no context switches; §7 Table 4).
    rtc_per_nf_us: float = 0.022
    #: Fixed RTC framework cost per packet.
    rtc_base_us: float = 0.012

    # ------------------------------------------------------------- batching
    #: DPDK poll-mode burst size.
    batch_size: int = 32
    #: Per-NF-stage pipeline latency: batch fill/flush residency plus
    #: container ring scheduling.  This is the dominant per-hop term in
    #: the paper's measurements (their per-NF latency contribution is
    #: tens of microseconds even for trivial NFs).
    batch_wait_us: float = 14.0
    #: Opt-in slot-based ring transfers: the classifier fans a whole
    #: burst out with one delayed transfer event per target ring instead
    #: of one event per packet.  Delivery, drop policy, and throughput
    #: accounting are unchanged, but the burst's transfers all start
    #: when the last packet in it finishes classification, so packets
    #: early in a burst see extra latency bounded by the burst's
    #: classifier occupancy (a deterministic shift of a few us at the
    #: calibrated service times).  The win is simulator event count --
    #: roughly one fewer event per packet per fan-out on busy bursts.
    burst_transfers: bool = False

    # ---------------------------------------------------------------- rings
    ring_capacity: int = 1024
    #: Bounded queue-full policy for in-pipeline deliveries: how many
    #: times a producer re-checks a full target ring before giving up
    #: and dropping.  0 (the calibrated default) preserves the paper's
    #: fail-fast ``rte_ring`` semantics; fault-tolerant runs raise it.
    ring_retry_limit: int = 0
    #: Backoff between ring-full retries.
    ring_retry_backoff_us: float = 5.0

    # ------------------------------------------------------ fault tolerance
    #: Merger Accumulating Table entry timeout: an entry older than this
    #: is reclaimed -- missing branches are treated as nil and whatever
    #: arrived is merged (when version 1 and every merge source made it)
    #: or accounted as an ``at_timeout`` drop.  <= 0 disables the
    #: sweeper (entries can then strand forever, the paper's implicit
    #: behaviour).  Also paces the server's flight-state sweeper, which
    #: reclaims per-packet state at twice this age when a fault injector
    #: is attached.
    at_timeout_us: float = 50_000.0

    # ------------------------------------------------- measurement settings
    #: Default load at which latency is reported, as a fraction of the
    #: max lossless rate.  At this load per-stage latency is dominated by
    #: burst/batch drain (32-packet DPDK bursts), which is the regime
    #: that reproduces the paper's Fig. 8/9/11/12 reduction percentages;
    #: the Table 4 benchmark overrides this with 0.9 (near saturation).
    latency_load_fraction: float = 0.55

    #: Per-NF service times at 64 B packets, microseconds/packet.  These
    #: model the six prototype NFs of §6.1 (plus extras from Table 2) and
    #: were chosen to land the Fig. 8 ordering: Forwarder < LB < Monitor <
    #: Firewall < VPN < IDS, with VPN/IDS an order of magnitude costlier.
    nf_service_us: Dict[str, float] = field(default_factory=lambda: {
        "forwarder": 0.035,
        "loadbalancer": 0.045,
        "monitor": 0.050,
        "firewall": 0.058,
        "conntrack-firewall": 0.075,
        "nat": 0.055,
        "caching": 0.080,
        "gateway": 0.042,
        "proxy": 0.100,
        "compression": 0.400,
        "shaper": 0.030,
        "vpn": 0.650,
        "ids": 0.700,
        "nids": 0.700,
        "ips": 0.720,
        "vpn-decrypt": 0.650,
        # L2/tunnel NFs: header-only work, between forwarder and LB;
        # dedup hashes the payload, so it sits near caching.
        "macswap": 0.036,
        "vlan-push": 0.038,
        "vlan-pop": 0.038,
        "vxlan-encap": 0.095,
        "vxlan-decap": 0.085,
        "dedup": 0.090,
    })

    def nf_service(self, kind: str, extra_cycles: int = 0) -> float:
        """Service time for an NF kind, plus an optional busy-loop (Fig 9)."""
        base = self.nf_service_us.get(kind.lower())
        if base is None:
            raise KeyError(f"no calibrated service time for NF kind {kind!r}")
        return base + extra_cycles / CPU_FREQ_MHZ

    def copy_cost_us(self, num_bytes: int) -> float:
        """Cost of copying ``num_bytes`` (header-only copies are 64 B)."""
        if num_bytes < 0:
            raise ValueError("cannot copy a negative number of bytes")
        return self.copy_base_us + num_bytes * self.copy_per_byte_us

    def line_rate_mpps(self, packet_size: int) -> float:
        return nic_line_rate_mpps(packet_size, self.nic_gbps)

    def with_overrides(self, **kwargs) -> "SimParams":
        """A copy of these parameters with selected fields replaced."""
        return replace(self, **kwargs)


#: The calibrated default parameter set used by all benchmarks
#: (Linux containers, as the paper's prototype).
DEFAULT_PARAMS = SimParams()

#: A VM-based deployment (§7: "NFP can also be implemented on VMs"):
#: containers "are more light-weight and can provide ... higher
#: performance", so the VM variant pays more per hop and per packet
#: (vhost/virtio crossings instead of shared-memory rings).
VM_PARAMS = SimParams().with_overrides(
    nf_runtime_us=0.120,
    batch_wait_us=22.0,
    classifier_tag_us=0.120,
    merger_base_us=0.130,
    nic_io_us=6.0,
)
