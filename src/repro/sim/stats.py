"""Measurement collectors for latency / throughput experiments.

`LatencyStats` accumulates per-packet end-to-end latencies and exposes the
summary statistics the paper plots (mean, percentiles).  `RateMeter`
counts packets over the measured interval to report Mpps.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Iterable, List, Optional

__all__ = [
    "LatencyStats",
    "LatencySummary",
    "RateMeter",
    "percentile",
    "summarize",
]


def percentile(sorted_values: List[float], pct: float) -> float:
    """Linear-interpolated percentile of an ascending-sorted list."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= pct <= 100.0:
        raise ValueError("percentile must be within [0, 100]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (pct / 100.0) * (len(sorted_values) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return sorted_values[lo]
    frac = rank - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


@dataclass(frozen=True)
class LatencySummary:
    """The summary quantities the paper's figures plot, in one place.

    Built by :func:`summarize`; the single source every consumer
    (`eval.harness`, `eval.load_sweep`, `telemetry.histogram`) shares
    instead of re-deriving mean/percentiles ad hoc.
    """

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float


def summarize(values: Iterable[float]) -> LatencySummary:
    """Summary statistics of a sample set (mean, p50/p90/p99, max)."""
    data = sorted(values)
    if not data:
        raise ValueError("summarize of empty data")
    return LatencySummary(
        count=len(data),
        mean=sum(data) / len(data),
        p50=percentile(data, 50.0),
        p90=percentile(data, 90.0),
        p99=percentile(data, 99.0),
        max=data[-1],
    )


class LatencyStats:
    """Accumulates end-to-end packet latencies (microseconds).

    The first ``warmup_fraction`` of samples is excluded from every
    statistic (the paper measures steady state).  With *fewer than*
    ``1 / warmup_fraction`` samples the computed skip is zero, so no
    warm-up trimming actually happens; by default that condition emits
    a ``UserWarning`` once.  Pass ``allow_partial_warmup=True`` to
    declare short runs intentional and silence the warning.
    """

    def __init__(self, warmup_fraction: float = 0.1,
                 allow_partial_warmup: bool = False):
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup fraction must be in [0, 1)")
        self._samples: List[float] = []
        self._warmup_fraction = warmup_fraction
        self._allow_partial_warmup = allow_partial_warmup
        self._warned = False

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ValueError("negative latency")
        self._samples.append(latency_us)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def warmup_skipped(self) -> int:
        """How many leading samples the statistics currently exclude."""
        return int(len(self._samples) * self._warmup_fraction)

    @property
    def warmup_effective(self) -> bool:
        """True when a non-empty warm-up prefix is actually trimmed."""
        return self.warmup_skipped > 0

    def _steady(self) -> List[float]:
        """Samples with the warm-up prefix removed.

        Explicit edge case: when the warm-up skip rounds down to zero
        (too few samples), the *full* sample set is returned and a
        ``UserWarning`` is emitted once, unless the instance was
        created with ``allow_partial_warmup=True``.
        """
        skip = self.warmup_skipped
        if (
            skip == 0
            and self._samples
            and self._warmup_fraction > 0.0
            and not self._allow_partial_warmup
            and not self._warned
        ):
            self._warned = True
            warnings.warn(
                f"LatencyStats has only {len(self._samples)} samples; the "
                f"{self._warmup_fraction:.0%} warm-up skip is empty and "
                "statistics include warm-up packets "
                "(pass allow_partial_warmup=True to silence)",
                UserWarning,
                stacklevel=3,
            )
        return self._samples[skip:] or self._samples

    def summary(self) -> LatencySummary:
        """Steady-state :class:`LatencySummary` of the recorded samples."""
        return summarize(self._steady())

    @property
    def mean(self) -> float:
        steady = self._steady()
        if not steady:
            raise ValueError("no latency samples recorded")
        return sum(steady) / len(steady)

    def pct(self, p: float) -> float:
        return percentile(sorted(self._steady()), p)

    @property
    def median(self) -> float:
        return self.pct(50.0)

    @property
    def p99(self) -> float:
        return self.pct(99.0)

    @property
    def max(self) -> float:
        steady = self._steady()
        if not steady:
            raise ValueError("no latency samples recorded")
        return max(steady)


class RateMeter:
    """Counts delivered packets to compute throughput in Mpps."""

    def __init__(self):
        self.delivered = 0
        self.dropped = 0
        self._first: Optional[float] = None
        self._last: Optional[float] = None

    def record_delivery(self, now_us: float) -> None:
        self.delivered += 1
        if self._first is None:
            self._first = now_us
        self._last = now_us

    def record_drop(self) -> None:
        self.dropped += 1

    @property
    def loss_fraction(self) -> float:
        total = self.delivered + self.dropped
        return self.dropped / total if total else 0.0

    def mpps(self) -> float:
        """Delivered packet rate over the observed span, in Mpps."""
        if self.delivered < 2 or self._first is None or self._last is None:
            return 0.0
        span = self._last - self._first
        if span <= 0:
            return 0.0
        # packets per microsecond == Mpps.
        return (self.delivered - 1) / span
