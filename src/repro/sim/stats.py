"""Measurement collectors for latency / throughput experiments.

`LatencyStats` accumulates per-packet end-to-end latencies and exposes the
summary statistics the paper plots (mean, percentiles).  `RateMeter`
counts packets over the measured interval to report Mpps.
"""

from __future__ import annotations

import math
from typing import List, Optional

__all__ = ["LatencyStats", "RateMeter", "percentile"]


def percentile(sorted_values: List[float], pct: float) -> float:
    """Linear-interpolated percentile of an ascending-sorted list."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= pct <= 100.0:
        raise ValueError("percentile must be within [0, 100]")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (pct / 100.0) * (len(sorted_values) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return sorted_values[lo]
    frac = rank - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


class LatencyStats:
    """Accumulates end-to-end packet latencies (microseconds)."""

    def __init__(self, warmup_fraction: float = 0.1):
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup fraction must be in [0, 1)")
        self._samples: List[float] = []
        self._warmup_fraction = warmup_fraction

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ValueError("negative latency")
        self._samples.append(latency_us)

    def __len__(self) -> int:
        return len(self._samples)

    def _steady(self) -> List[float]:
        """Samples with the warm-up prefix removed."""
        skip = int(len(self._samples) * self._warmup_fraction)
        return self._samples[skip:] or self._samples

    @property
    def mean(self) -> float:
        steady = self._steady()
        if not steady:
            raise ValueError("no latency samples recorded")
        return sum(steady) / len(steady)

    def pct(self, p: float) -> float:
        return percentile(sorted(self._steady()), p)

    @property
    def median(self) -> float:
        return self.pct(50.0)

    @property
    def p99(self) -> float:
        return self.pct(99.0)

    @property
    def max(self) -> float:
        steady = self._steady()
        if not steady:
            raise ValueError("no latency samples recorded")
        return max(steady)


class RateMeter:
    """Counts delivered packets to compute throughput in Mpps."""

    def __init__(self):
        self.delivered = 0
        self.dropped = 0
        self._first: Optional[float] = None
        self._last: Optional[float] = None

    def record_delivery(self, now_us: float) -> None:
        self.delivered += 1
        if self._first is None:
            self._first = now_us
        self._last = now_us

    def record_drop(self) -> None:
        self.dropped += 1

    @property
    def loss_fraction(self) -> float:
        total = self.delivered + self.dropped
        return self.dropped / total if total else 0.0

    def mpps(self) -> float:
        """Delivered packet rate over the observed span, in Mpps."""
        if self.delivered < 2 or self._first is None or self._last is None:
            return 0.0
        span = self._last - self._first
        if span <= 0:
            return 0.0
        # packets per microsecond == Mpps.
        return (self.delivered - 1) / span
