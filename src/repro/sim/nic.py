"""NIC model: a rate-limited serial link feeding/draining the dataplane.

The testbed uses two 10G NICs per server.  On the wire each frame takes
``(size + 20) * 8 / speed`` seconds (preamble + inter-frame gap included),
which caps 64 B traffic at the classic 14.88 Mpps -- the "Line Speed"
series in Fig. 7(b).  The :class:`Nic` serialises transmissions at that
rate and charges the fixed DPDK driver cost per packet.
"""

from __future__ import annotations

from .engine import Environment, Event
from .params import SimParams

__all__ = ["Nic"]


class Nic:
    """A simplex NIC port with wire-rate serialisation."""

    def __init__(self, env: Environment, params: SimParams, name: str = "nic"):
        self.env = env
        self.params = params
        self.name = name
        self._wire_free_at = 0.0
        self.tx_packets = 0

    def wire_time_us(self, packet_size: int) -> float:
        """Serialisation delay of one frame of ``packet_size`` bytes."""
        if packet_size <= 0:
            raise ValueError("packet size must be positive")
        bits = (packet_size + 20) * 8
        # Gbit/s == bits per nanosecond; convert to microseconds.
        return bits / (self.params.nic_gbps * 1000.0)

    def transmit(self, packet_size: int) -> Event:
        """Occupy the wire for one frame; fires when fully serialised."""
        start = max(self.env.now, self._wire_free_at)
        finish = start + self.wire_time_us(packet_size)
        self._wire_free_at = finish
        self.tx_packets += 1
        return self.env.timeout(finish - self.env.now)

    def line_rate_mpps(self, packet_size: int) -> float:
        return 1.0 / self.wire_time_us(packet_size)
