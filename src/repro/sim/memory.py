"""Shared-memory packet pool, the analogue of a DPDK huge-page mempool.

The paper stores packets, rings and tables in a shared memory region on
huge pages (§5); NFs exchange 8-byte *references*.  Copies made for
parallelism come from pre-provisioned buffers ("we prepare memory blocks
to store input or copied packets during the system initialization", §5.2)
so copying never allocates dynamically.

:class:`PacketPool` models that region: a bounded number of fixed-size
buffer slots with alloc/free accounting.  The evaluation harness reads
``bytes_in_use`` / ``peak_copy_bytes`` to reproduce the §6.3.1 resource
overhead results (ro = 64·(d−1)/s).
"""

from __future__ import annotations

__all__ = ["PacketPool", "PoolExhaustedError"]


class PoolExhaustedError(Exception):
    """Raised when the pool has no free buffer slot."""


class PacketPool:
    """Accounting model of a huge-page packet-buffer pool.

    Parameters
    ----------
    capacity:
        Number of buffer slots (DPDK mempools default to thousands).
    slot_bytes:
        Size of each slot; 2048 matches the common mbuf data-room size.
    """

    def __init__(self, capacity: int = 8192, slot_bytes: int = 2048):
        if capacity <= 0 or slot_bytes <= 0:
            raise ValueError("pool capacity and slot size must be positive")
        self.capacity = capacity
        self.slot_bytes = slot_bytes
        self.in_use = 0
        self.peak_in_use = 0
        # Byte-level accounting distinguishes original packet bytes from
        # bytes consumed by parallelism-induced copies.
        self.original_bytes = 0
        self.copy_bytes = 0
        self.cumulative_original_bytes = 0
        self.cumulative_copy_bytes = 0
        self.allocations = 0
        self.copy_allocations = 0

    def alloc(self, nbytes: int, is_copy: bool = False) -> None:
        """Claim one slot holding ``nbytes`` of packet data."""
        if nbytes < 0:
            raise ValueError("negative allocation size")
        if nbytes > self.slot_bytes:
            raise ValueError(
                f"packet of {nbytes} B exceeds slot size {self.slot_bytes} B"
            )
        if self.in_use >= self.capacity:
            raise PoolExhaustedError(
                f"pool exhausted ({self.capacity} slots in use)"
            )
        self.in_use += 1
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        self.allocations += 1
        if is_copy:
            self.copy_bytes += nbytes
            self.cumulative_copy_bytes += nbytes
            self.copy_allocations += 1
        else:
            self.original_bytes += nbytes
            self.cumulative_original_bytes += nbytes

    def free(self, nbytes: int, is_copy: bool = False) -> None:
        """Return one slot to the pool."""
        if self.in_use <= 0:
            raise ValueError("free() without a matching alloc()")
        self.in_use -= 1
        if is_copy:
            self.copy_bytes -= nbytes
        else:
            self.original_bytes -= nbytes

    @property
    def bytes_in_use(self) -> int:
        return self.original_bytes + self.copy_bytes

    def copy_overhead_fraction(self) -> float:
        """Extra memory consumed by copies, relative to original traffic.

        This is the quantity the paper's §6.3.1 equation
        ``ro = 64 × (d − 1) / s`` describes; with header-only copying the
        numerator counts only 64-byte header copies.
        """
        if self.cumulative_original_bytes == 0:
            return 0.0
        return self.cumulative_copy_bytes / self.cumulative_original_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PacketPool {self.in_use}/{self.capacity} slots, "
            f"{self.bytes_in_use} B in use>"
        )
