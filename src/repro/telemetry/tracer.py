"""Packet-lifecycle tracing keyed by the 64-bit NFP metadata word.

Every packet in flight carries ``(MID, PID, version)`` (Fig. 5); the
:class:`Tracer` records typed :class:`SpanEvent` checkpoints against
that key so one packet's journey can be re-assembled *across branches
of the service graph* -- the original and its copy versions share a
``(MID, PID)`` and differ only in ``version``.

Event vocabulary (``SpanKind``):

``classify``
    the classifier tagged the metadata word and ran CT actions;
``enqueue``
    a reference was posted to a ring (NF rx, merger rx, or a
    cross-server link);
``nf_start`` / ``nf_end``
    an NF runtime dequeued / finished one packet;
``copy``
    a new version was materialised (OP#1 full or OP#2 header-only);
``merge_wait``
    the merger opened an accumulating-table entry (first notification);
``merge_apply``
    the rendezvous completed and merge operations ran;
``output``
    the frame cleared the TX NIC;
``drop``
    the packet (or the whole rendezvous) was discarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

__all__ = ["SpanKind", "SpanEvent", "PacketTrace", "Tracer"]


class SpanKind(str, Enum):
    CLASSIFY = "classify"
    ENQUEUE = "enqueue"
    NF_START = "nf_start"
    NF_END = "nf_end"
    COPY = "copy"
    MERGE_WAIT = "merge_wait"
    MERGE_APPLY = "merge_apply"
    OUTPUT = "output"
    DROP = "drop"


@dataclass
class SpanEvent:
    """One typed checkpoint in a packet's lifecycle."""

    kind: SpanKind
    ts_us: float
    mid: int
    pid: int
    version: int
    name: str = ""
    duration_us: float = 0.0
    seq: int = 0
    args: Optional[Dict] = None

    @property
    def key(self) -> Tuple[int, int]:
        """The per-packet trace key: (MID, PID), version-agnostic."""
        return (self.mid, self.pid)

    def to_dict(self) -> Dict:
        record = {
            "kind": self.kind.value,
            "ts_us": self.ts_us,
            "mid": self.mid,
            "pid": self.pid,
            "version": self.version,
            "name": self.name,
            "duration_us": self.duration_us,
            "seq": self.seq,
        }
        if self.args:
            record["args"] = self.args
        return record

    @classmethod
    def from_dict(cls, record: Dict) -> "SpanEvent":
        return cls(
            kind=SpanKind(record["kind"]),
            ts_us=float(record["ts_us"]),
            mid=int(record["mid"]),
            pid=int(record["pid"]),
            version=int(record["version"]),
            name=record.get("name", ""),
            duration_us=float(record.get("duration_us", 0.0)),
            seq=int(record.get("seq", 0)),
            args=record.get("args"),
        )


@dataclass
class PacketTrace:
    """All events of one (MID, PID), in causal order."""

    mid: int
    pid: int
    events: List[SpanEvent] = field(default_factory=list)

    def kinds(self) -> List[SpanKind]:
        return [event.kind for event in self.events]

    def by_kind(self, kind: SpanKind) -> List[SpanEvent]:
        return [event for event in self.events if event.kind is kind]

    def nf_spans(self) -> List[Tuple[str, float, float]]:
        """Pair ``nf_start``/``nf_end`` into ``(name, start, end)`` spans.

        Unmatched starts are dropped (they indicate an incomplete
        trace; :meth:`unmatched_starts` exposes them for assertions).
        """
        open_starts: Dict[Tuple[str, int], List[float]] = {}
        spans: List[Tuple[str, float, float]] = []
        for event in self.events:
            slot = (event.name, event.version)
            if event.kind is SpanKind.NF_START:
                open_starts.setdefault(slot, []).append(event.ts_us)
            elif event.kind is SpanKind.NF_END:
                stack = open_starts.get(slot)
                if stack:
                    spans.append((event.name, stack.pop(0), event.ts_us))
                else:
                    spans.append(
                        (event.name, event.ts_us - event.duration_us, event.ts_us)
                    )
        spans.sort(key=lambda span: span[1])
        return spans

    def unmatched_starts(self) -> int:
        starts = len(self.by_kind(SpanKind.NF_START))
        ends = len(self.by_kind(SpanKind.NF_END))
        return max(0, starts - ends)

    @property
    def terminal(self) -> Optional[SpanEvent]:
        """The output/drop event closing the trace, if any."""
        for event in reversed(self.events):
            if event.kind in (SpanKind.OUTPUT, SpanKind.DROP):
                return event
        return None

    def is_complete(self) -> bool:
        """A complete lifecycle: classified and either emitted or dropped."""
        return bool(self.by_kind(SpanKind.CLASSIFY)) and self.terminal is not None


class Tracer:
    """Accumulates span events; bounded by ``max_events`` if given.

    When the cap is hit, further events are counted in ``overflow``
    instead of being stored -- tests assert ``overflow == 0`` to prove
    no spans were lost.
    """

    def __init__(self, max_events: Optional[int] = None):
        self.events: List[SpanEvent] = []
        self.max_events = max_events
        self.overflow = 0
        self._seq = 0

    def __len__(self) -> int:
        return len(self.events)

    def record(
        self,
        kind: SpanKind,
        ts_us: float,
        mid: int,
        pid: int,
        version: int,
        name: str = "",
        duration_us: float = 0.0,
        args: Optional[Dict] = None,
    ) -> None:
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.overflow += 1
            return
        self._seq += 1
        self.events.append(
            SpanEvent(
                kind=kind,
                ts_us=ts_us,
                mid=mid,
                pid=pid,
                version=version,
                name=name,
                duration_us=duration_us,
                seq=self._seq,
                args=args,
            )
        )

    def clear(self) -> None:
        self.events.clear()
        self.overflow = 0

    # ------------------------------------------------------- reassembly
    def traces(self) -> Dict[Tuple[int, int], PacketTrace]:
        """Group events by (MID, PID) and order each trace causally.

        Ordering is ``(ts_us, seq)``: simultaneous events (common in a
        DES) keep their recording order.
        """
        grouped: Dict[Tuple[int, int], PacketTrace] = {}
        for event in self.events:
            trace = grouped.get(event.key)
            if trace is None:
                trace = grouped[event.key] = PacketTrace(event.mid, event.pid)
            trace.events.append(event)
        for trace in grouped.values():
            trace.events.sort(key=lambda ev: (ev.ts_us, ev.seq))
        return grouped

    def events_for(self, pid: int, mid: Optional[int] = None) -> List[SpanEvent]:
        """Time-ordered events of one packet (optionally filtered by MID)."""
        selected = [
            event
            for event in self.events
            if event.pid == pid and (mid is None or event.mid == mid)
        ]
        selected.sort(key=lambda ev: (ev.ts_us, ev.seq))
        return selected
