"""The single interface instrumented layers talk to: :class:`TelemetryHub`.

The dataplane, the DES substrate, the NFs and the multi-server pipeline
never touch :class:`~repro.telemetry.metrics.MetricsRegistry` or
:class:`~repro.telemetry.tracer.Tracer` directly; they hold a hub and
call its narrow API.  A disabled hub (the module-level :data:`NULL_HUB`,
the default everywhere) turns every call into a single attribute check,
so instrumentation costs nothing when telemetry is off.

Hot-path convention::

    hub = self.telemetry
    if hub.enabled:                    # one attribute load + branch
        hub.span(SpanKind.NF_END, now, pkt.meta, name=self.nf.name)

The outer ``enabled`` guard also skips building the call arguments,
which is where the real cost would be.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .metrics import DEFAULT_LATENCY_BOUNDS_US, MetricsRegistry
from .tracer import SpanKind, Tracer

__all__ = ["TelemetryHub", "NULL_HUB"]


class TelemetryHub:
    """Bundles a metrics registry and an optional tracer behind one flag."""

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(
        self,
        enabled: bool = True,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer

    # ------------------------------------------------------------ metrics
    def inc(self, name: str, n: int = 1) -> None:
        """Bump a counter (no-op when disabled)."""
        if not self.enabled:
            return
        self.registry.counter(name).inc(n)

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge (no-op when disabled)."""
        if not self.enabled:
            return
        self.registry.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS_US,
    ) -> None:
        """Record a sample into a histogram (no-op when disabled)."""
        if not self.enabled:
            return
        self.registry.histogram(name, bounds).record(value)

    # ------------------------------------------------------------ tracing
    def span(
        self,
        kind: SpanKind,
        ts_us: float,
        meta,
        name: str = "",
        duration_us: float = 0.0,
        args: Optional[Dict] = None,
    ) -> None:
        """Record a span event keyed by a ``PacketMeta`` (or skip if None)."""
        if not self.enabled or self.tracer is None or meta is None:
            return
        self.tracer.record(
            kind,
            ts_us,
            mid=meta.mid,
            pid=meta.pid,
            version=meta.version,
            name=name,
            duration_us=duration_us,
            args=args,
        )

    @property
    def tracing(self) -> bool:
        """True when span events will actually be stored."""
        return self.enabled and self.tracer is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<TelemetryHub {state} tracer={'yes' if self.tracer else 'no'}>"


#: The shared disabled hub: every instrumented layer defaults to this,
#: making telemetry opt-in per server/run.
NULL_HUB = TelemetryHub(enabled=False)
