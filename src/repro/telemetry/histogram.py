"""Histogram + summary-stat façade for the telemetry package.

Percentile and summary logic for raw sample lists has exactly one
implementation in the repository: :mod:`repro.sim.stats`.  This module
re-exports it next to the fixed-bucket :class:`Histogram` so telemetry
consumers import everything from one place without duplicating the
math (`eval` and `sim` call the same functions).
"""

from __future__ import annotations

from ..sim.stats import LatencySummary, percentile, summarize
from .metrics import DEFAULT_LATENCY_BOUNDS_US, Histogram, exponential_bounds

__all__ = [
    "Histogram",
    "DEFAULT_LATENCY_BOUNDS_US",
    "exponential_bounds",
    "percentile",
    "summarize",
    "LatencySummary",
]
