"""Critical-path latency attribution: *why* is p99 what it is.

:func:`~repro.telemetry.rollup.stage_rollup` sums time across *all*
branches of a parallelised graph, so for a fork of three NFs it counts
three service times even though only the slowest one gated the packet.
This module walks each :class:`~repro.telemetry.tracer.PacketTrace`'s
fork/merge structure and decomposes the packet's *end-to-end* latency
into the segments that actually sat on the critical path:

``classify``
    NIC arrival to classification done;
``copy``
    version materialisation (OP#1/OP#2) before the branches run;
``branch``
    the slowest parallel branch -- the sum of its NF service times
    (for a sequential segment this is just the chain's service time);
``branch_wait``
    critical-branch time that was *not* NF service: ring queueing and
    scheduling gaps inside the slowest branch;
``merge_wait``
    rendezvous wait at the accumulating table after the slowest branch
    finished (``merge_apply.args["wait_us"]`` overlapping the branch is
    hidden -- only the exposed remainder gates the packet);
``merge_apply``
    merge-operation execution;
``residual``
    whatever end-to-end time the spans do not explain (TX, link hops).

Per-packet results aggregate into a :class:`CritPathReport` -- mean and
tail attribution tables plus the per-segment split of the p99 cohort,
which is the "why is p99 what it is" answer the bench and ``monitor``
surfaces print: if ``merge_wait`` dominates the p99 cohort but not the
mean, the tail is rendezvous-bound (Fig. 13's transient story), not
service-bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .tracer import PacketTrace, SpanKind

__all__ = ["SEGMENT_NAMES", "CritPath", "CritPathReport", "critical_path",
           "critpath_report"]

#: Canonical segment order for tables and the bench JSON.
SEGMENT_NAMES = ("classify", "copy", "branch", "branch_wait",
                 "merge_wait", "merge_apply", "residual")


@dataclass
class CritPath:
    """One packet's end-to-end latency, decomposed along its gating path."""

    mid: int
    pid: int
    total_us: float
    segments: Dict[str, float] = field(
        default_factory=lambda: {name: 0.0 for name in SEGMENT_NAMES}
    )
    #: Name of the branch-gating NF chain, e.g. ``"ids"`` or ``"vpn+fw"``.
    gating_branch: str = ""
    dropped: bool = False

    @property
    def explained_us(self) -> float:
        return sum(v for k, v in self.segments.items() if k != "residual")


def _branch_windows(
    trace: PacketTrace,
) -> Dict[int, Tuple[float, float, float, str]]:
    """Per-version ``(first_start, last_end, service_us, label)``.

    A "branch" is everything one metadata version executed; the fork
    point materialised versions via ``copy`` events, so each version's
    NF spans form one parallel branch of the service graph.
    """
    windows: Dict[int, Tuple[float, float, float, List[str]]] = {}
    open_starts: Dict[Tuple[str, int], List[float]] = {}
    for event in trace.events:
        slot = (event.name, event.version)
        if event.kind is SpanKind.NF_START:
            open_starts.setdefault(slot, []).append(event.ts_us)
        elif event.kind is SpanKind.NF_END:
            stack = open_starts.get(slot)
            start = (stack.pop(0) if stack
                     else event.ts_us - event.duration_us)
            entry = windows.get(event.version)
            if entry is None:
                windows[event.version] = (
                    start, event.ts_us, event.duration_us, [event.name]
                )
            else:
                first, last, service, names = entry
                if event.name not in names:
                    names.append(event.name)
                windows[event.version] = (
                    min(first, start), max(last, event.ts_us),
                    service + event.duration_us, names,
                )
    return {
        version: (first, last, service, "+".join(names))
        for version, (first, last, service, names) in windows.items()
    }


def critical_path(trace: PacketTrace) -> Optional[CritPath]:
    """Decompose one trace; None when it never completed (no terminal)."""
    terminal = trace.terminal
    if terminal is None:
        return None
    classify_events = trace.by_kind(SpanKind.CLASSIFY)
    if not classify_events:
        return None
    classify = classify_events[0]
    ingress_us = float((classify.args or {}).get("ingress_us", classify.ts_us))
    total_us = terminal.ts_us - ingress_us
    if total_us < 0:
        return None

    path = CritPath(trace.mid, trace.pid, total_us,
                    dropped=terminal.kind is SpanKind.DROP)
    path.segments["classify"] = classify.ts_us - ingress_us

    # Copies happen at the fork point, before any branch runs: they all
    # gate the packet (the original waits for its clones to exist).
    copy_us = sum(ev.duration_us for ev in trace.by_kind(SpanKind.COPY))
    path.segments["copy"] = copy_us

    branches = _branch_windows(trace)
    branch_end = classify.ts_us + copy_us
    if branches:
        # The gating branch is the one finishing last -- the merger
        # cannot rendezvous before it.
        gating_version, (first, last, service, label) = max(
            branches.items(), key=lambda item: item[1][1]
        )
        path.gating_branch = label
        path.segments["branch"] = service
        # Inside the gating branch: elapsed wall time minus service is
        # queueing/scheduling wait, floored at 0 for robustness.
        elapsed = last - min(first, classify.ts_us + copy_us)
        path.segments["branch_wait"] = max(0.0, elapsed - service)
        branch_end = last

    merge_applies = trace.by_kind(SpanKind.MERGE_APPLY)
    merge_apply_us = 0.0
    exposed_wait_us = 0.0
    for event in merge_applies:
        merge_apply_us += event.duration_us
        # The AT entry opened at merge_start = apply_ts - wait; only the
        # wait *after* the slowest branch finished gates the packet.
        wait = float((event.args or {}).get("wait_us", 0.0))
        apply_start = event.ts_us - event.duration_us
        exposed = min(wait, max(0.0, apply_start - branch_end))
        exposed_wait_us += exposed
    path.segments["merge_wait"] = exposed_wait_us
    path.segments["merge_apply"] = merge_apply_us

    path.segments["residual"] = max(0.0, total_us - path.explained_us)
    return path


@dataclass
class CritPathReport:
    """Scenario-level aggregation of per-packet critical paths."""

    paths: List[CritPath] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.paths)

    def mean_segments(self) -> Dict[str, float]:
        return self._mean(self.paths)

    def tail_segments(self, pct: float = 99.0) -> Dict[str, float]:
        """Mean segment split of the packets at/above the pct latency."""
        cohort = self.tail_cohort(pct)
        return self._mean(cohort)

    def tail_cohort(self, pct: float = 99.0) -> List[CritPath]:
        if not self.paths:
            return []
        ordered = sorted(self.paths, key=lambda p: p.total_us)
        cut = min(len(ordered) - 1,
                  max(0, int(len(ordered) * pct / 100.0)))
        return ordered[cut:]

    @staticmethod
    def _mean(paths: List[CritPath]) -> Dict[str, float]:
        if not paths:
            return {name: 0.0 for name in SEGMENT_NAMES}
        acc = {name: 0.0 for name in SEGMENT_NAMES}
        for path in paths:
            for name in SEGMENT_NAMES:
                acc[name] += path.segments[name]
        return {name: acc[name] / len(paths) for name in SEGMENT_NAMES}

    def dominant_tail_segment(self, pct: float = 99.0) -> str:
        """The segment explaining most of the tail cohort's latency."""
        tail = self.tail_segments(pct)
        if not any(tail.values()):
            return ""
        return max(tail.items(), key=lambda item: item[1])[0]

    def tail_delta(self, pct: float = 99.0) -> Dict[str, float]:
        """Tail-minus-mean per segment: what makes the tail *different*.

        The segment with the largest positive delta is the attribution
        answer -- e.g. a big ``merge_wait`` delta says the p99 cohort
        lost its time at the rendezvous, not in NF service.
        """
        mean = self.mean_segments()
        tail = self.tail_segments(pct)
        return {name: tail[name] - mean[name] for name in SEGMENT_NAMES}

    def gating_branches(self) -> Dict[str, int]:
        """How often each branch label gated a packet."""
        counts: Dict[str, int] = {}
        for path in self.paths:
            if path.gating_branch:
                counts[path.gating_branch] = (
                    counts.get(path.gating_branch, 0) + 1
                )
        return counts

    def to_dict(self, pct: float = 99.0) -> Dict:
        return {
            "packets": self.count,
            "mean_us": self.mean_segments(),
            f"p{pct:g}_us": self.tail_segments(pct),
            "tail_delta_us": self.tail_delta(pct),
            "dominant_tail_segment": self.dominant_tail_segment(pct),
            "gating_branches": self.gating_branches(),
        }

    def table(self, pct: float = 99.0) -> str:
        """Render the attribution table (mean vs tail vs delta)."""
        from ..eval.report import render_table  # local: avoid cycle

        mean = self.mean_segments()
        tail = self.tail_segments(pct)
        delta = self.tail_delta(pct)
        rows = []
        for name in SEGMENT_NAMES:
            if mean[name] == 0.0 and tail[name] == 0.0:
                continue
            rows.append([
                name,
                f"{mean[name]:.2f}",
                f"{tail[name]:.2f}",
                f"{delta[name]:+.2f}",
            ])
        header = ["segment", "mean us", f"p{pct:g} us", "tail delta us"]
        return render_table(header, rows)


def critpath_report(
    traces: Iterable[PacketTrace], include_drops: bool = False
) -> CritPathReport:
    """Aggregate critical paths over a scenario's traces."""
    report = CritPathReport()
    for trace in traces:
        path = critical_path(trace)
        if path is None:
            continue
        if path.dropped and not include_drops:
            continue
        report.paths.append(path)
    return report
