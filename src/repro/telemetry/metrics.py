"""Counters, gauges and fixed-bucket histograms for the dataplane.

The paper's evaluation needs to know *where* cycles go: per-NF service
time, copy counts for OP#1/OP#2, merger accumulating-table behaviour,
ring occupancy.  This module provides the primitive metric types and a
:class:`MetricsRegistry` that owns them by name.

Design constraints, in order:

* **near-zero overhead when disabled** -- the registry itself is always
  cheap (dict lookups and integer adds), and callers are expected to
  guard hot-path calls behind ``hub.enabled`` (see
  :mod:`repro.telemetry.hooks`);
* **mergeable** -- registries from scaled-out instances or repeated
  runs combine with :meth:`MetricsRegistry.merge`: counters and
  histogram buckets add, gauges keep the maximum (watermark
  semantics);
* **snapshot-able** -- :meth:`MetricsRegistry.snapshot` returns plain
  dicts suitable for JSON export or assertions in tests.

Histograms use fixed exponential bucket bounds so that recording is one
bisect plus one add, merging is element-wise addition, and percentile
estimation is a cumulative walk with linear interpolation inside the
winning bucket (the classic Prometheus/HdrHistogram trade-off).
Percentile/summary logic for *raw sample lists* intentionally lives in
:mod:`repro.sim.stats`; see :mod:`repro.telemetry.histogram`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS_US",
    "exponential_bounds",
]


def exponential_bounds(
    start: float = 1.0, factor: float = 2.0, count: int = 24
) -> Tuple[float, ...]:
    """Ascending exponential bucket upper bounds (``start * factor**k``)."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("bounds must be positive, growing, and non-empty")
    bounds = []
    value = float(start)
    for _ in range(count):
        bounds.append(value)
        value *= factor
    return tuple(bounds)


#: 1 us .. ~8.4 s in powers of two: covers a NIC hop through a saturated
#: multi-stage graph without ever overflowing in practice.
DEFAULT_LATENCY_BOUNDS_US = exponential_bounds(1.0, 2.0, 24)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        self.value += n

    def merge_from(self, other: "Counter") -> None:
        self.value += other.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time float metric (occupancy, utilisation, watermark)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def merge_from(self, other: "Gauge") -> None:
        # Watermark semantics: the merged gauge keeps the peak.
        self.value = max(self.value, other.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-bucket histogram with linear-interpolated percentiles.

    ``bounds`` are ascending bucket *upper* bounds; one extra overflow
    bucket catches everything above the last bound.  Exact ``min``,
    ``max`` and ``sum`` are tracked alongside so the mean is exact and
    percentile estimates can be clamped to the observed range.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS_US):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must be ascending and non-empty")
        self.name = name
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def record(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        return self.total / self.count

    def percentile(self, pct: float) -> float:
        """Bucket-interpolated percentile estimate, clamped to observed range."""
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not 0.0 <= pct <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        target = (pct / 100.0) * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            if cumulative + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else min(self.min, self.bounds[0])
                upper = self.bounds[index] if index < len(self.bounds) else self.max
                if bucket_count == 0:
                    estimate = lower
                else:
                    frac = (target - cumulative) / bucket_count
                    estimate = lower + frac * (upper - lower)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max  # pragma: no cover - cumulative always reaches count

    def merge_from(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for index, bucket_count in enumerate(other.buckets):
            self.buckets[index] += bucket_count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def snapshot(self) -> Dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Owns every metric by name; the per-server telemetry store."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------ access
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS_US
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, bounds)
        return metric

    @property
    def counters(self) -> Dict[str, Counter]:
        return self._counters

    @property
    def gauges(self) -> Dict[str, Gauge]:
        return self._gauges

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return self._histograms

    def counter_value(self, name: str, default: int = 0) -> int:
        metric = self._counters.get(name)
        return metric.value if metric is not None else default

    # ------------------------------------------------------------ combine
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (see module docstring)."""
        for name, counter in other._counters.items():
            self.counter(name).merge_from(counter)
        for name, gauge in other._gauges.items():
            self.gauge(name).merge_from(gauge)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.bounds).merge_from(histogram)
        return self

    def snapshot(self) -> Dict:
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
        }
