"""Exporters: JSON-lines, Chrome ``trace_event`` format, ASCII tables.

Three consumers, three formats:

* ``events_to_jsonl`` / ``events_from_jsonl`` -- a line-per-event dump
  for ad-hoc ``jq``/pandas analysis, loss-lessly round-trippable;
* ``to_chrome_trace`` / ``events_from_chrome_trace`` -- the Chrome
  ``trace_event`` JSON consumed by ``chrome://tracing`` and Perfetto:
  paired ``nf_start``/``nf_end`` become complete ("X") slices, every
  other span kind becomes an instant ("i") event.  The span kind rides
  in ``cat`` and the packet key in ``args`` so the import direction can
  reconstruct :class:`~repro.telemetry.tracer.SpanEvent` objects;
* ``nf_summary_table`` -- the per-NF ASCII summary the ``trace`` CLI
  prints (processed / dropped / errors / service-time percentiles);
* ``multiserver_summary_table`` -- per-server core utilisation and
  per-link occupancy from the ``multiserver.*`` gauge namespace that
  :class:`~repro.multiserver.dataplane.MultiServerDataplane` publishes,
  plus any ``placement.*`` failover/drop counters.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List, Union

from .metrics import MetricsRegistry
from .tracer import SpanEvent, SpanKind

__all__ = [
    "events_to_jsonl",
    "events_from_jsonl",
    "to_chrome_trace",
    "events_from_chrome_trace",
    "write_chrome_trace",
    "nf_summary_table",
    "multiserver_summary_table",
]


def events_to_jsonl(events: Iterable[SpanEvent], target: Union[str, IO]) -> int:
    """Write one JSON object per event; returns the number written."""
    own = isinstance(target, str)
    handle = open(target, "w") if own else target
    written = 0
    try:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=True))
            handle.write("\n")
            written += 1
    finally:
        if own:
            handle.close()
    return written


def events_from_jsonl(source: Union[str, IO]) -> List[SpanEvent]:
    """Inverse of :func:`events_to_jsonl`."""
    own = isinstance(source, str)
    handle = open(source) if own else source
    try:
        return [
            SpanEvent.from_dict(json.loads(line))
            for line in handle
            if line.strip()
        ]
    finally:
        if own:
            handle.close()


def to_chrome_trace(events: Iterable[SpanEvent]) -> Dict:
    """Render events as a Chrome ``trace_event`` document.

    Timestamps are already microseconds -- exactly Chrome's unit.  The
    trace viewer groups rows by (pid, tid): we map the service graph's
    MID to pid and the component name (NF, classifier, merger, ring) to
    an integer tid, emitting ``thread_name`` metadata ("M") events so
    each lane is labelled with the full component label -- including the
    scaled-instance (``name#k``) and restart (``name~rN``) suffixes,
    which keeps scaled/restarted runs readable in the viewer.
    """
    trace_events: List[Dict] = []
    open_starts: Dict[tuple, SpanEvent] = {}
    tids: Dict[str, int] = {}
    threads: set = set()  # (pid, tid, label) lanes actually used

    def lane(pid: int, label: str) -> int:
        tid = tids.setdefault(label, len(tids) + 1)
        threads.add((pid, tid, label))
        return tid

    for event in sorted(events, key=lambda ev: (ev.ts_us, ev.seq)):
        slot = (event.mid, event.pid, event.version, event.name)
        args = {"packet": event.pid, "version": event.version}
        if event.args:
            args.update(event.args)
        if event.kind is SpanKind.NF_START:
            open_starts[slot] = event
            continue
        if event.kind is SpanKind.NF_END:
            start = open_starts.pop(slot, None)
            begin = start.ts_us if start is not None else event.ts_us - event.duration_us
            trace_events.append({
                "name": event.name,
                "cat": SpanKind.NF_END.value,
                "ph": "X",
                "ts": begin,
                "dur": max(0.0, event.ts_us - begin),
                "pid": event.mid,
                "tid": lane(event.mid, event.name or "nf"),
                "args": args,
            })
            continue
        trace_events.append({
            "name": f"{event.kind.value}:{event.name}" if event.name else event.kind.value,
            "cat": event.kind.value,
            "ph": "i",
            "s": "p",
            "ts": event.ts_us,
            "pid": event.mid,
            "tid": lane(event.mid, event.name or event.kind.value),
            "args": args,
        })
    # Unmatched starts (packet still in flight at shutdown) surface as
    # zero-duration slices rather than vanishing.
    for start in open_starts.values():
        trace_events.append({
            "name": start.name,
            "cat": SpanKind.NF_END.value,
            "ph": "X",
            "ts": start.ts_us,
            "dur": 0.0,
            "pid": start.mid,
            "tid": lane(start.mid, start.name or "nf"),
            "args": {"packet": start.pid, "version": start.version,
                     "incomplete": True},
        })
    trace_events.sort(key=lambda entry: entry["ts"])
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "ts": 0.0,
            "pid": pid,
            "tid": tid,
            "args": {"name": label},
        }
        for pid, tid, label in sorted(threads)
    ]
    return {"traceEvents": metadata + trace_events, "displayTimeUnit": "ms"}


def events_from_chrome_trace(document: Dict) -> List[SpanEvent]:
    """Reconstruct span events from a Chrome trace document.

    "X" slices expand back into an ``nf_start``/``nf_end`` pair;
    instants map straight back through ``cat``.  Sequence numbers are
    regenerated, so round-tripping preserves kinds, names, packet keys
    and timestamps (the fields the analyses consume).
    """
    events: List[SpanEvent] = []
    for entry in document.get("traceEvents", []):
        if entry.get("ph") == "M":
            continue  # thread_name and friends carry no span payload
        kind = SpanKind(entry["cat"])
        args = dict(entry.get("args") or {})
        pid = int(args.pop("packet"))
        version = int(args.pop("version", 1))
        mid = int(entry["pid"])
        if entry["ph"] == "X":
            duration = float(entry.get("dur", 0.0))
            events.append(SpanEvent(SpanKind.NF_START, float(entry["ts"]), mid,
                                    pid, version, name=entry["name"]))
            events.append(SpanEvent(SpanKind.NF_END, float(entry["ts"]) + duration,
                                    mid, pid, version, name=entry["name"],
                                    duration_us=duration,
                                    args=args or None))
        else:
            name = entry["name"]
            prefix = f"{kind.value}:"
            if name.startswith(prefix):
                name = name[len(prefix):]
            elif name == kind.value:
                name = ""
            events.append(SpanEvent(kind, float(entry["ts"]), mid, pid, version,
                                    name=name, args=args or None))
    for seq, event in enumerate(sorted(events, key=lambda ev: ev.ts_us), start=1):
        event.seq = seq
    events.sort(key=lambda ev: (ev.ts_us, ev.seq))
    return events


def write_chrome_trace(events: Iterable[SpanEvent], path: str) -> int:
    """Serialise :func:`to_chrome_trace` to ``path``; returns event count."""
    document = to_chrome_trace(events)
    with open(path, "w") as handle:
        json.dump(document, handle)
    return len(document["traceEvents"])


def nf_summary_table(registry: MetricsRegistry) -> str:
    """Per-NF ASCII summary built from the ``nf.*`` metric namespace."""
    from ..eval.report import render_table  # local: avoids a package cycle

    names = sorted(
        name[len("nf."):-len(".rx")]
        for name in registry.counters
        if name.startswith("nf.") and name.endswith(".rx")
    )
    rows = []
    for name in names:
        histogram = registry.histograms.get(f"nf.{name}.service_us")
        if histogram is not None and histogram.count:
            mean = f"{histogram.mean:.2f}"
            p50 = f"{histogram.percentile(50):.2f}"
            p99 = f"{histogram.percentile(99):.2f}"
        else:
            mean = p50 = p99 = "-"
        rows.append([
            name,
            registry.counter_value(f"nf.{name}.rx"),
            registry.counter_value(f"nf.{name}.dropped"),
            registry.counter_value(f"nf.{name}.errors"),
            mean,
            p50,
            p99,
        ])
    return render_table(
        ["nf", "processed", "dropped", "errors", "svc mean us", "svc p50 us",
         "svc p99 us"],
        rows,
    )


def multiserver_summary_table(registry: MetricsRegistry) -> str:
    """Server/link ASCII summary from the ``multiserver.*`` namespace.

    One row per server (core-utilisation gauge) and one per inter-server
    link (frame/byte counters, wire-busy time and occupancy gauges),
    followed by any ``placement.*`` counters (failovers, server-down
    events, attributed drops).  Returns ``""`` when no multiserver run
    has published anything, so callers can print it unconditionally.
    """
    from ..eval.report import render_table  # local: avoids a package cycle

    parts: List[str] = []
    server_prefix = "multiserver.server."
    server_suffix = ".core_util"
    gauges = registry.gauges
    servers = sorted(
        name[len(server_prefix):-len(server_suffix)]
        for name in gauges
        if name.startswith(server_prefix) and name.endswith(server_suffix)
    )
    if servers:
        parts.append(render_table(
            ["server", "core util %"],
            [[name,
              f"{gauges[server_prefix + name + server_suffix].value * 100:.1f}"]
             for name in servers],
        ))

    link_prefix = "multiserver.link"
    link_ids = sorted(
        int(name[len(link_prefix):-len(".frames")])
        for name in registry.counters
        if name.startswith(link_prefix) and name.endswith(".frames")
    )
    if link_ids:
        rows = []
        for index in link_ids:
            busy = gauges.get(f"{link_prefix}{index}.busy_us")
            occupancy = gauges.get(f"{link_prefix}{index}.occupancy")
            rows.append([
                f"link{index}",
                registry.counter_value(f"{link_prefix}{index}.frames"),
                registry.counter_value(f"{link_prefix}{index}.bytes"),
                registry.counter_value(f"{link_prefix}{index}.nil_frames"),
                f"{busy.value:.2f}" if busy is not None else "-",
                f"{occupancy.value * 100:.2f}" if occupancy is not None else "-",
            ])
        parts.append(render_table(
            ["link", "frames", "bytes", "nil", "busy us", "occupancy %"],
            rows,
        ))

    placement = sorted(
        name for name in registry.counters if name.startswith("placement.")
    )
    if placement:
        parts.append(render_table(
            ["placement counter", "value"],
            [[name, registry.counter_value(name)] for name in placement],
        ))
    return "\n".join(parts)
