"""Declarative SLO watch rules over windowed telemetry.

A :class:`WatchRule` is a compiled one-line condition evaluated against
every completed :class:`~repro.telemetry.timeseries.Window`::

    ring.ids.rx.occupancy > 0.8 for 3 windows
    p99(latency_us) > 250
    p99_us > slo
    merger.at_timeout > 0

Grammar: ``<metric> <op> <threshold> [for <N> windows]``.

* ``<metric>`` resolves inside the window: a gauge probe first, then a
  counter delta.  ``p50(name)`` / ``p90(name)`` / ``p99(name)`` /
  ``mean(name)`` read the window's delta histogram; the shorthands
  ``p50_us``/``p99_us``/``mean_us`` mean the same over ``latency_us``.
* ``<op>`` is one of ``>``, ``>=``, ``<``, ``<=``.
* ``<threshold>`` is a number, or the literal ``slo`` -- resolved from
  the ``slo_us`` the :class:`Watcher` was built with (a
  :class:`~repro.placement.request.Slo`'s ``max_delay_us``), so the
  same rule text serves every chain.
* ``for N windows`` requires N *consecutive* breaching windows before
  the rule fires (default 1); one non-breaching window clears it.

Rules are hysteretic state machines: the transition into breach emits a
``firing`` :class:`AlertEvent`, the transition out emits ``cleared``.
Windows where the metric is absent (nothing happened) count as
non-breaching, so a rule armed on ``merger.at_timeout`` fires during
the episode and clears when the sweeper goes quiet -- exactly the
subscription surface the ROADMAP autoscaler consumes.

The :class:`Watcher` fans a window out to all its rules, collects the
alert log, and mirrors fire/clear counts into the hub's registry
(``watch.<rule>.fired`` / ``watch.<rule>.cleared``) so alert activity
rides along in every exporter.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from .hooks import TelemetryHub
from .timeseries import Sampler, Window

__all__ = ["AlertEvent", "WatchRule", "Watcher", "parse_rule"]

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}

_RULE_RE = re.compile(
    r"^\s*(?P<metric>[A-Za-z0-9_.#~()-]+)\s*"
    r"(?P<op>>=|<=|>|<)\s*"
    r"(?P<threshold>-?\d+(?:\.\d+)?|slo)\s*"
    r"(?:for\s+(?P<windows>\d+)\s+windows?)?\s*$"
)

_AGG_RE = re.compile(r"^(?P<agg>p50|p90|p99|mean)\((?P<name>[^)]+)\)$")

#: ``p99_us`` -> percentile 99 over the windowed latency histogram.
_SHORTHAND = {
    "p50_us": ("p50", "latency_us"),
    "p90_us": ("p90", "latency_us"),
    "p99_us": ("p99", "latency_us"),
    "mean_us": ("mean", "latency_us"),
}


@dataclass
class AlertEvent:
    """One watch-rule state transition."""

    rule: str
    state: str  # "firing" | "cleared"
    ts_us: float
    window_index: int
    value: Optional[float]
    threshold: float

    def describe(self) -> str:
        value = "-" if self.value is None else f"{self.value:.3g}"
        return (f"[{self.ts_us:12.1f}us] {self.state.upper():<7s} {self.rule} "
                f"(value={value}, threshold={self.threshold:g}, "
                f"window={self.window_index})")


def _resolve(window: Window, metric: str) -> Optional[float]:
    """Evaluate a metric expression inside one window."""
    shorthand = _SHORTHAND.get(metric)
    if shorthand is not None:
        agg, name = shorthand
    else:
        match = _AGG_RE.match(metric)
        if match is None:
            return window.value(metric)
        agg, name = match.group("agg"), match.group("name").strip()
    histogram = window.histograms.get(name)
    if histogram is None or histogram.count == 0:
        return None
    if agg == "mean":
        return histogram.mean
    return histogram.percentile(float(agg[1:]))


class WatchRule:
    """One compiled, hysteretic watch condition (see module docstring)."""

    def __init__(self, metric: str, op: str, threshold: Union[float, str],
                 for_windows: int = 1, text: Optional[str] = None):
        if op not in _OPS:
            raise ValueError(f"unknown operator {op!r}")
        if for_windows < 1:
            raise ValueError("for_windows must be >= 1")
        self.metric = metric
        self.op = op
        self.threshold = threshold  # float, or the literal "slo"
        self.for_windows = for_windows
        self.text = text or self._render()
        self.firing = False
        self.fired = 0
        self.cleared = 0
        self._streak = 0

    def _render(self) -> str:
        suffix = (f" for {self.for_windows} windows"
                  if self.for_windows > 1 else "")
        return f"{self.metric} {self.op} {self.threshold}{suffix}"

    def resolve_threshold(self, slo_us: Optional[float]) -> float:
        if self.threshold == "slo":
            if slo_us is None:
                raise ValueError(
                    f"rule {self.text!r} references 'slo' but the watcher "
                    "was built without one"
                )
            return float(slo_us)
        return float(self.threshold)

    def observe(self, window: Window,
                slo_us: Optional[float] = None) -> Optional[AlertEvent]:
        """Feed one window; returns an event on a state transition."""
        threshold = self.resolve_threshold(slo_us)
        value = _resolve(window, self.metric)
        breaching = value is not None and _OPS[self.op](value, threshold)
        if breaching:
            self._streak += 1
            if not self.firing and self._streak >= self.for_windows:
                self.firing = True
                self.fired += 1
                return AlertEvent(self.text, "firing", window.end_us,
                                  window.index, value, threshold)
            return None
        self._streak = 0
        if self.firing:
            self.firing = False
            self.cleared += 1
            return AlertEvent(self.text, "cleared", window.end_us,
                              window.index, value, threshold)
        return None


def parse_rule(text: str) -> WatchRule:
    """Compile ``"<metric> <op> <threshold> [for N windows]"`` text."""
    match = _RULE_RE.match(text)
    if match is None:
        raise ValueError(
            f"unparsable watch rule {text!r} (expected "
            "'<metric> <op> <number|slo> [for N windows]')"
        )
    threshold: Union[float, str] = match.group("threshold")
    if threshold != "slo":
        threshold = float(threshold)
    windows = int(match.group("windows") or 1)
    return WatchRule(match.group("metric"), match.group("op"), threshold,
                     for_windows=windows, text=" ".join(text.split()))


class Watcher:
    """Evaluates a rule set per window; the alert subscription surface.

    Attach to a sampler with :meth:`attach` (or hand
    :meth:`observe` to ``sampler.subscribe`` yourself).  Alert events
    accumulate in :attr:`events`; ``on_alert`` callbacks (a CLI printing
    live, a future autoscaler reacting) receive them synchronously.
    """

    def __init__(
        self,
        rules: Sequence[Union[str, WatchRule]],
        slo_us: Optional[float] = None,
        hub: Optional[TelemetryHub] = None,
    ):
        self.rules: List[WatchRule] = [
            rule if isinstance(rule, WatchRule) else parse_rule(rule)
            for rule in rules
        ]
        self.slo_us = slo_us
        self.hub = hub
        self.events: List[AlertEvent] = []
        self._callbacks: List[Callable[[AlertEvent], None]] = []

    @classmethod
    def for_slo(cls, slo, extra_rules: Sequence[str] = (),
                hub: Optional[TelemetryHub] = None) -> "Watcher":
        """A watcher pre-armed with a chain's latency SLO rule.

        ``slo`` is a :class:`repro.placement.request.Slo` (or anything
        with ``max_delay_us``); the canonical ``p99_us > slo`` rule is
        installed alongside any ``extra_rules``.
        """
        rules: List[Union[str, WatchRule]] = ["p99_us > slo"]
        rules.extend(extra_rules)
        return cls(rules, slo_us=float(slo.max_delay_us), hub=hub)

    def attach(self, sampler: Sampler) -> "Watcher":
        sampler.subscribe(self.observe)
        return self

    def on_alert(self, callback: Callable[[AlertEvent], None]) -> None:
        self._callbacks.append(callback)

    def observe(self, window: Window) -> List[AlertEvent]:
        """Evaluate every rule against one completed window."""
        emitted: List[AlertEvent] = []
        for rule in self.rules:
            event = rule.observe(window, slo_us=self.slo_us)
            if event is None:
                continue
            emitted.append(event)
            self.events.append(event)
            if self.hub is not None and self.hub.enabled:
                self.hub.inc(f"watch.{rule.text}.{'fired' if event.state == 'firing' else 'cleared'}")
            for callback in self._callbacks:
                callback(event)
        return emitted

    # ------------------------------------------------------------ summary
    @property
    def fired(self) -> int:
        return sum(rule.fired for rule in self.rules)

    @property
    def cleared(self) -> int:
        return sum(rule.cleared for rule in self.rules)

    def still_firing(self) -> List[WatchRule]:
        return [rule for rule in self.rules if rule.firing]

    def alert_log(self) -> str:
        return "\n".join(event.describe() for event in self.events)
