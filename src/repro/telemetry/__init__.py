"""Telemetry: per-NF metrics, packet-lifecycle tracing, exporters.

The observability layer the evaluation leans on (§6): a
:class:`MetricsRegistry` of counters / gauges / fixed-bucket histograms,
a :class:`Tracer` recording typed span events keyed by the 64-bit
metadata word, and exporters (JSON-lines, Chrome ``trace_event``, ASCII
per-NF tables).  Instrumented layers -- the DES engine, the NFP server,
the mergers, the NFs and the multi-server pipeline -- all talk to a
single :class:`TelemetryHub`; the default :data:`NULL_HUB` is disabled
and costs one branch per call site.

Quickstart::

    from repro.telemetry import TelemetryHub, Tracer

    hub = TelemetryHub(tracer=Tracer())
    result = measure_nfp(["firewall", "ids", "monitor"], telemetry=hub)
    traces = hub.tracer.traces()          # (mid, pid) -> PacketTrace
    print(nf_summary_table(hub.registry))
"""

from .metrics import (
    Counter,
    DEFAULT_LATENCY_BOUNDS_US,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_bounds,
)
from .tracer import PacketTrace, SpanEvent, SpanKind, Tracer
from .hooks import NULL_HUB, TelemetryHub
from .rollup import STAGE_NAMES, StageRollup, stage_rollup
from .export import (
    events_from_chrome_trace,
    events_from_jsonl,
    events_to_jsonl,
    multiserver_summary_table,
    nf_summary_table,
    to_chrome_trace,
    write_chrome_trace,
)
from .timeseries import Sampler, TimeSeries, Window, sparkline
from .watch import AlertEvent, WatchRule, Watcher, parse_rule
from .critpath import (
    SEGMENT_NAMES,
    CritPath,
    CritPathReport,
    critical_path,
    critpath_report,
)
from .prometheus import sanitize_metric_name, to_prometheus, write_prometheus

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS_US",
    "exponential_bounds",
    "SpanKind",
    "SpanEvent",
    "PacketTrace",
    "Tracer",
    "TelemetryHub",
    "NULL_HUB",
    "STAGE_NAMES",
    "StageRollup",
    "stage_rollup",
    "events_to_jsonl",
    "events_from_jsonl",
    "to_chrome_trace",
    "events_from_chrome_trace",
    "write_chrome_trace",
    "nf_summary_table",
    "multiserver_summary_table",
    "Sampler",
    "TimeSeries",
    "Window",
    "sparkline",
    "AlertEvent",
    "WatchRule",
    "Watcher",
    "parse_rule",
    "SEGMENT_NAMES",
    "CritPath",
    "CritPathReport",
    "critical_path",
    "critpath_report",
    "to_prometheus",
    "write_prometheus",
    "sanitize_metric_name",
]
