"""Stage attribution: where a run's simulated time went, per span kind.

The bench subsystem (``repro.bench``) wants one compact answer per
scenario: *which stage of the NFP pipeline dominates* -- classification,
NF processing, packet copying, the merger's rendezvous wait, or the
merge application itself.  Every one of those quantities is already
carried on the tracer's span events in a self-contained way (each event
records its own duration or, for ``classify``, its distance from the
NIC ingress timestamp in ``args``), so the rollup is a single pass over
the event list with no cross-event pairing.  That makes it safe to roll
up event streams where packet keys collide -- e.g. the fuzz-corpus
replay, where every case restarts MIDs/PIDs from scratch.

Stage vocabulary (the keys of :attr:`StageRollup.times_us`):

``classify``
    NIC arrival to classification done (``classify.ts - ingress_us``);
``ft``
    NF service time (``nf_end.duration_us`` -- the per-packet function
    time, FT-table actions included);
``copy``
    OP#1/OP#2 copy materialisation cost (``copy.duration_us``);
``merge_wait``
    rendezvous wait from the accumulating-table entry opening to the
    last notification arriving (``merge_apply.args["wait_us"]``);
``merge_apply``
    merge-operation execution plus rendezvous bookkeeping latency
    (``merge_apply.duration_us``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from .tracer import SpanEvent, SpanKind

__all__ = ["STAGE_NAMES", "StageRollup", "stage_rollup"]

#: Canonical stage order, used by reports and the bench JSON schema.
STAGE_NAMES = ("classify", "ft", "copy", "merge_wait", "merge_apply")


@dataclass
class StageRollup:
    """Summed per-stage simulated time plus contributing event counts."""

    times_us: Dict[str, float] = field(
        default_factory=lambda: {name: 0.0 for name in STAGE_NAMES}
    )
    events: Dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in STAGE_NAMES}
    )

    @property
    def total_us(self) -> float:
        return sum(self.times_us.values())

    @property
    def non_empty(self) -> bool:
        """True when at least one stage accumulated time."""
        return self.total_us > 0.0

    def shares(self) -> Dict[str, float]:
        """Per-stage fraction of the total attributed time.

        Stages that accumulated nothing stay at 0.0; an entirely empty
        rollup returns all-zero shares rather than dividing by zero.
        """
        total = self.total_us
        if total <= 0.0:
            return {name: 0.0 for name in STAGE_NAMES}
        return {name: self.times_us[name] / total for name in STAGE_NAMES}

    def add(self, stage: str, duration_us: float) -> None:
        if stage not in self.times_us:
            raise KeyError(f"unknown stage {stage!r}")
        if duration_us < 0.0:
            return
        self.times_us[stage] += duration_us
        self.events[stage] += 1

    def merge(self, other: "StageRollup") -> "StageRollup":
        for name in STAGE_NAMES:
            self.times_us[name] += other.times_us.get(name, 0.0)
            self.events[name] += other.events.get(name, 0)
        return self

    def __str__(self) -> str:
        shares = self.shares()
        parts = ", ".join(
            f"{name}={self.times_us[name]:.1f}us ({shares[name] * 100:.0f}%)"
            for name in STAGE_NAMES
            if self.events[name]
        )
        return f"StageRollup(total={self.total_us:.1f}us: {parts or 'empty'})"


def stage_rollup(events: Iterable[SpanEvent]) -> StageRollup:
    """Fold span events into a :class:`StageRollup` (one pass, no pairing)."""
    rollup = StageRollup()
    for event in events:
        if event.kind is SpanKind.CLASSIFY:
            ingress = (event.args or {}).get("ingress_us")
            if ingress is not None:
                rollup.add("classify", event.ts_us - float(ingress))
        elif event.kind is SpanKind.NF_END:
            rollup.add("ft", event.duration_us)
        elif event.kind is SpanKind.COPY:
            rollup.add("copy", event.duration_us)
        elif event.kind is SpanKind.MERGE_APPLY:
            wait = (event.args or {}).get("wait_us")
            if wait is not None:
                rollup.add("merge_wait", float(wait))
            rollup.add("merge_apply", event.duration_us)
    return rollup
