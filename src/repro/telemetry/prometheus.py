"""Prometheus text-exposition exporter for a :class:`MetricsRegistry`.

Sits alongside the JSONL and Chrome-trace exporters in
:mod:`repro.telemetry.export`: where those serve offline analysis, this
one emits the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ a
scrape endpoint would serve, so a real deployment of this dataplane
could be wired into an existing Prometheus/Grafana stack unchanged.

Mapping rules:

* metric names are sanitised (dots and every other illegal character
  become ``_``) and prefixed (default ``repro_``);
* counters gain the conventional ``_total`` suffix;
* gauges export verbatim;
* histograms become ``_bucket`` series with *cumulative* counts and
  canonical ``le`` labels (upper bounds plus ``+Inf``), ``_sum`` and
  ``_count`` -- the exact shape ``histogram_quantile()`` expects;
* output is deterministically ordered (sorted by metric name) so it is
  golden-file testable.

Everything is derived from the registry snapshot; no state is kept.
"""

from __future__ import annotations

import re
from typing import List, Optional

from .metrics import MetricsRegistry

__all__ = ["to_prometheus", "write_prometheus", "sanitize_metric_name"]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")


def sanitize_metric_name(name: str, prefix: str = "repro_") -> str:
    """``ring.ids#1.rx.depth`` -> ``repro_ring_ids_1_rx_depth``."""
    sanitized = _INVALID_CHARS.sub("_", name)
    sanitized = re.sub(r"__+", "_", sanitized).strip("_")
    full = f"{prefix}{sanitized}" if prefix else sanitized
    if _INVALID_FIRST.match(full):
        full = f"_{full}"
    return full


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(
    registry: MetricsRegistry,
    prefix: str = "repro_",
    help_text: bool = True,
) -> str:
    """Render a registry in Prometheus text exposition format."""
    lines: List[str] = []

    for name in sorted(registry.counters):
        counter = registry.counters[name]
        metric = sanitize_metric_name(name, prefix)
        if not metric.endswith("_total"):
            metric += "_total"
        if help_text:
            lines.append(f"# HELP {metric} Counter {name!r}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counter.value}")

    for name in sorted(registry.gauges):
        gauge = registry.gauges[name]
        metric = sanitize_metric_name(name, prefix)
        if help_text:
            lines.append(f"# HELP {metric} Gauge {name!r}.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauge.value)}")

    for name in sorted(registry.histograms):
        histogram = registry.histograms[name]
        metric = sanitize_metric_name(name, prefix)
        if help_text:
            lines.append(f"# HELP {metric} Histogram {name!r}.")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(histogram.bounds, histogram.buckets):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{metric}_sum {_format_value(histogram.total)}")
        lines.append(f"{metric}_count {histogram.count}")

    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(
    registry: MetricsRegistry,
    path: str,
    prefix: str = "repro_",
    help_text: bool = True,
) -> Optional[str]:
    """Write the exposition to ``path``; returns the rendered text."""
    text = to_prometheus(registry, prefix=prefix, help_text=help_text)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text
