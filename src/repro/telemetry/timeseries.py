"""Windowed time-series telemetry: the streaming half of observability.

The existing :class:`~repro.telemetry.metrics.MetricsRegistry` answers
*what happened over the whole run*; this module answers *what was
happening during window k* -- the sensor layer a runtime autoscaler (or
a human watching a flash crowd) subscribes to.

Design: the hot path is untouched.  Instrumented layers keep writing
cumulative counters and histograms into the registry exactly as before;
a :class:`Sampler` wakes up once per window (a periodic DES event on the
timed plane, a wall-clock ``maybe_tick`` on the functional plane) and
snapshots the *delta* since its previous wake-up:

* **counters** -- per-window increments (``tx.packets`` delta is the
  windowed throughput, ``drops.*`` deltas are windowed drops by reason);
* **histograms** -- per-window bucket deltas, materialised as real
  :class:`~repro.telemetry.metrics.Histogram` objects with the same
  bounds.  Because every sample lands in exactly one window's delta,
  merging all windows reproduces the whole-run histogram *exactly*
  (the property test in ``tests/property`` holds this invariant);
* **probes** -- live gauges the registry cannot see (ring depth, AT
  depth, per-core windowed utilisation), supplied as callables by the
  sampled component (:meth:`repro.dataplane.server.NFPServer.probes`).

Windows live in a bounded ring buffer; evicted windows fold into a
running remainder so :meth:`TimeSeries.merged_histogram`,
:meth:`TimeSeries.total` and :meth:`TimeSeries.peak` stay exact however
long the run is.  An unarmed sampler costs nothing: nothing is wired
into any packet path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .hooks import TelemetryHub
from .metrics import Histogram
from ..sim.engine import Environment

__all__ = ["Window", "TimeSeries", "Sampler", "sparkline"]

#: Unicode block ramp used by the ASCII dashboards.
_SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: List[float], width: int = 60) -> str:
    """Render a series as a one-line ASCII sparkline (empty -> '')."""
    if not values:
        return ""
    if len(values) > width:
        # Downsample by taking the max of each chunk: peaks must survive.
        chunk = len(values) / width
        values = [
            max(values[int(i * chunk):max(int(i * chunk) + 1,
                                          int((i + 1) * chunk))])
            for i in range(width)
        ]
    top = max(values)
    if top <= 0:
        return _SPARK_CHARS[0] * len(values)
    scale = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[min(scale, int(round(v / top * scale)))] for v in values
    )


@dataclass
class Window:
    """One fixed interval's telemetry: deltas, probes, delta histograms."""

    index: int
    start_us: float
    end_us: float
    #: Counter increments that landed inside this window.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Point-in-time probe samples (ring depth, AT depth, utilisation).
    gauges: Dict[str, float] = field(default_factory=dict)
    #: Per-window delta histograms (same bounds as the cumulative ones).
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def value(self, metric: str) -> Optional[float]:
        """Resolve a metric name inside this window (gauge, then counter)."""
        if metric in self.gauges:
            return self.gauges[metric]
        if metric in self.counters:
            return float(self.counters[metric])
        return None

    def percentile(self, metric: str, pct: float) -> Optional[float]:
        histogram = self.histograms.get(metric)
        if histogram is None or histogram.count == 0:
            return None
        return histogram.percentile(pct)


class TimeSeries:
    """A bounded ring of windows plus exact run-wide accumulators.

    The ring keeps the most recent ``capacity`` windows for plotting and
    rule evaluation; anything older folds into the ``_evicted_*``
    accumulators, so totals, merged histograms and peaks are exact for
    the whole run regardless of retention.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("time series capacity must be >= 1")
        self.capacity = capacity
        self.windows: Deque[Window] = deque()
        self.evicted = 0
        self._evicted_counters: Dict[str, int] = {}
        self._evicted_hists: Dict[str, Histogram] = {}
        #: metric -> (peak value, window index); gauges and counters both.
        self._peaks: Dict[str, Tuple[float, int]] = {}

    def __len__(self) -> int:
        return len(self.windows)

    @property
    def total_windows(self) -> int:
        return len(self.windows) + self.evicted

    def append(self, window: Window) -> None:
        for name, value in window.counters.items():
            peak = self._peaks.get(name)
            if peak is None or value > peak[0]:
                self._peaks[name] = (float(value), window.index)
        for name, value in window.gauges.items():
            peak = self._peaks.get(name)
            if peak is None or value > peak[0]:
                self._peaks[name] = (value, window.index)
        self.windows.append(window)
        if len(self.windows) > self.capacity:
            self._evict(self.windows.popleft())

    def _evict(self, window: Window) -> None:
        self.evicted += 1
        for name, value in window.counters.items():
            self._evicted_counters[name] = (
                self._evicted_counters.get(name, 0) + value
            )
        for name, histogram in window.histograms.items():
            merged = self._evicted_hists.get(name)
            if merged is None:
                merged = self._evicted_hists[name] = Histogram(
                    name, histogram.bounds
                )
            merged.merge_from(histogram)

    # ------------------------------------------------------------- queries
    def series(self, metric: str) -> List[Tuple[float, float]]:
        """``(window end time, value)`` points for the retained windows."""
        points = []
        for window in self.windows:
            value = window.value(metric)
            if value is not None:
                points.append((window.end_us, value))
        return points

    def values(self, metric: str) -> List[float]:
        return [value for _, value in self.series(metric)]

    def counter_values(self, metric: str) -> List[float]:
        """Per retained window counter deltas, zeros included.

        Unlike :meth:`values` (which skips windows without the metric),
        this keeps the time axis dense -- the right shape for
        throughput/drop sparklines where silence is signal.
        """
        return [float(window.counters.get(metric, 0))
                for window in self.windows]

    def percentile_series(self, metric: str,
                          pct: float) -> List[Tuple[float, float]]:
        """Per-window percentile points of a windowed histogram."""
        points = []
        for window in self.windows:
            value = window.percentile(metric, pct)
            if value is not None:
                points.append((window.end_us, value))
        return points

    def peak(self, metric: str) -> Optional[Tuple[float, int]]:
        """Run-wide ``(peak value, window index)``, eviction-proof."""
        return self._peaks.get(metric)

    def total(self, metric: str) -> int:
        """Run-wide counter total: evicted remainder + retained windows."""
        return self._evicted_counters.get(metric, 0) + sum(
            window.counters.get(metric, 0) for window in self.windows
        )

    def merged_histogram(self, metric: str) -> Optional[Histogram]:
        """Merge every window's delta histogram (evicted ones included).

        By construction this equals the cumulative registry histogram at
        the time of the last sample -- the partition invariant the
        property suite checks.
        """
        merged: Optional[Histogram] = None
        evicted = self._evicted_hists.get(metric)
        if evicted is not None:
            merged = Histogram(metric, evicted.bounds)
            merged.merge_from(evicted)
        for window in self.windows:
            histogram = window.histograms.get(metric)
            if histogram is None:
                continue
            if merged is None:
                merged = Histogram(metric, histogram.bounds)
            merged.merge_from(histogram)
        return merged

    def metric_names(self) -> List[str]:
        names = set(self._evicted_counters)
        for window in self.windows:
            names.update(window.counters)
            names.update(window.gauges)
        return sorted(names)


class Sampler:
    """Snapshots a hub's registry into fixed windows; DES- or wall-driven.

    One sampler watches one :class:`TelemetryHub` (plus optional live
    probes).  Arm it on a DES environment with :meth:`arm` -- it
    schedules itself as a periodic simulation event and retires when the
    event queue drains -- or drive it manually with :meth:`sample` /
    :meth:`maybe_tick` (the wall-clock fallback the functional plane
    uses, where there is no virtual clock to schedule against).

    Subscribers (:class:`~repro.telemetry.watch.Watcher`, dashboards)
    register callables via :meth:`subscribe`; each completed
    :class:`Window` is delivered synchronously at sample time.
    """

    def __init__(
        self,
        hub: TelemetryHub,
        window_us: float = 100.0,
        capacity: int = 512,
        probes: Optional[Dict[str, Callable[[], float]]] = None,
    ):
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        self.hub = hub
        self.window_us = float(window_us)
        self.series = TimeSeries(capacity=capacity)
        self.probes: Dict[str, Callable[[], float]] = dict(probes or {})
        self._subscribers: List[Callable[[Window], None]] = []
        self._last_counters: Dict[str, int] = {}
        self._last_buckets: Dict[str, List[int]] = {}
        self._last_sums: Dict[str, Tuple[float, float, float]] = {}
        self._window_start = 0.0
        self._next_index = 0
        self.armed = False

    # ---------------------------------------------------------- wiring
    def add_probe(self, name: str, probe: Callable[[], float]) -> None:
        self.probes[name] = probe

    def add_probes(self, probes: Dict[str, Callable[[], float]]) -> None:
        self.probes.update(probes)

    def subscribe(self, callback: Callable[[Window], None]) -> None:
        self._subscribers.append(callback)

    # -------------------------------------------------------- sampling
    def sample(self, now_us: float) -> Window:
        """Close the current window at ``now_us`` and open the next one."""
        window = Window(
            index=self._next_index,
            start_us=self._window_start,
            end_us=now_us,
        )
        self._next_index += 1
        self._window_start = now_us

        registry = self.hub.registry
        for name, counter in registry.counters.items():
            previous = self._last_counters.get(name, 0)
            if counter.value != previous:
                window.counters[name] = counter.value - previous
            self._last_counters[name] = counter.value
        for name, histogram in registry.histograms.items():
            previous = self._last_buckets.get(name)
            baseline = previous if previous is not None \
                else [0] * len(histogram.buckets)
            if histogram.buckets != baseline:
                window.histograms[name] = self._delta_histogram(
                    name, histogram, previous
                )
            self._last_buckets[name] = list(histogram.buckets)
            self._last_sums[name] = (
                histogram.total, histogram.min, histogram.max
            )
        for name, probe in self.probes.items():
            window.gauges[name] = float(probe())

        self.series.append(window)
        for subscriber in self._subscribers:
            subscriber(window)
        return window

    def _delta_histogram(
        self,
        name: str,
        histogram: Histogram,
        previous: Optional[List[int]],
    ) -> Histogram:
        delta = Histogram(name, histogram.bounds)
        if previous is None:
            previous = [0] * len(histogram.buckets)
        total = 0
        for index, count in enumerate(histogram.buckets):
            step = count - previous[index]
            delta.buckets[index] = step
            total += step
        delta.count = total
        last_total, last_min, last_max = self._last_sums.get(
            name, (0.0, float("inf"), float("-inf"))
        )
        delta.total = histogram.total - last_total
        # Exact min/max are only known cumulatively; per-window we bound
        # them by the cumulative observed range, which keeps merges exact
        # for buckets/count/sum (the quantities percentiles read).
        delta.min = histogram.min
        delta.max = histogram.max
        return delta

    def maybe_tick(self, now_us: float) -> Optional[Window]:
        """Wall-clock fallback: sample iff a full window has elapsed."""
        if now_us - self._window_start < self.window_us:
            return None
        return self.sample(now_us)

    def flush(self, now_us: float) -> Optional[Window]:
        """Close a final partial window if anything happened since."""
        if now_us <= self._window_start and self._next_index > 0:
            return None
        return self.sample(max(now_us, self._window_start))

    # ------------------------------------------------------------- DES
    def arm(self, env: Environment) -> None:
        """Schedule the sampler as a periodic DES event.

        The process retires when nothing else is scheduled (the run is
        over), so arming never prevents ``env.run()`` from draining.
        """
        if self.armed:
            return
        self.armed = True
        self._window_start = env.now
        env.process(self._run(env))

    def _run(self, env: Environment):
        while True:
            yield env.timeout(self.window_us)
            self.sample(env.now)
            if env.peek() == float("inf"):
                # We were the only activity left; every other process is
                # blocked on events nobody will trigger.  Retire.
                return
