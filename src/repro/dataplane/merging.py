"""Pure packet-merge semantics: apply merging operations to versions.

Separated from the simulated merger so both the functional executor and
the DES dataplane share one implementation of §5.3's merge process:

* ``modify(v1.A, vk.A)`` -- overwrite field A of version 1 with the
  value carried by version k;
* ``add(vk.B, after, v1.IP)`` -- splice the header unit B (AH, a VLAN
  tag, or a VXLAN outer stack) from version k into version 1;
* ``remove(v1.C)`` -- delete the header unit C from version 1.

Fields of v1 not referenced by any operation pass through unmodified;
fields of other versions not referenced are discarded -- exactly the
Fig. 6 semantics.  If any collected version is nil, the packet was
dropped by some NF and the merge yields ``None``.

Strip semantics differ per unit: the AH strip is strict (the VPN
decryptor drops non-AH packets *before* its remove, so a missing AH at
merge time is a real inconsistency) while VLAN/VXLAN strips tolerate an
absent unit -- pop/decap NFs pass untagged/non-tunnel traffic through,
and unit presence on the base at merge time matches what the popping
NF's copy saw at stage entry, so a no-op strip reproduces sequential
behaviour exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..net import fields as _f
from ..net.encap import VXLAN_OUTER_LEN, is_vxlan
from ..net.headers import (
    ETH_HEADER_LEN,
    PROTO_AH,
    UdpView,
    VLAN_TAG_LEN,
    AhView,
    Ipv4View,
)
from ..net.packet import Packet
from ..core.graph import MergeOp, MergeOpKind, ORIGINAL_VERSION

__all__ = ["apply_merge_ops", "MergeError"]


class MergeError(RuntimeError):
    """A merge operation could not be applied to the collected versions."""


#: Modifying any of these fields invalidates the IPv4 header checksum.
_IP_FIELDS = {_f.Field.SIP, _f.Field.DIP, _f.Field.TTL, _f.Field.DSCP}


def apply_merge_ops(
    versions: Dict[int, Packet], ops: Iterable[MergeOp], telemetry=None
) -> Optional[Packet]:
    """Merge packet ``versions`` into the final output packet.

    ``versions`` maps version number -> the processed packet copy; it
    must contain version 1.  Returns the merged packet (version 1's
    buffer, modified in place), or ``None`` when any version is nil.

    ``telemetry`` is an optional :class:`repro.telemetry.TelemetryHub`;
    when enabled, applied operations are counted per kind under
    ``merge.ops.*``.
    """
    if ORIGINAL_VERSION not in versions:
        raise MergeError("version 1 missing from merge set")
    if any(pkt.nil for pkt in versions.values()):
        return None

    count_ops = telemetry is not None and telemetry.enabled
    base = versions[ORIGINAL_VERSION]
    checksum_dirty = False
    for op in ops:
        if count_ops:
            telemetry.inc(f"merge.ops.{op.kind.value}")
        if op.kind is MergeOpKind.MODIFY:
            source = _require(versions, op.src_version)
            # A field the writer's copy cannot even parse (e.g. ports on
            # an ICMP packet reaching a NAT that passes non-TCP/UDP
            # through) cannot have been written; skip, mirroring the
            # sequential no-op.
            try:
                value = _f.read_field(source, op.field)
            except ValueError:
                continue
            _f.write_field(base, op.field, value)
            if op.field in _IP_FIELDS:
                checksum_dirty = True
        elif op.kind is MergeOpKind.ADD:
            source = _require(versions, op.src_version)
            _splice_header(base, source, op.field)
        elif op.kind is MergeOpKind.REMOVE:
            _strip_header(base, op.field)
        else:  # pragma: no cover - enum is closed
            raise MergeError(f"unknown merge op kind: {op.kind}")
    if checksum_dirty:
        base.ipv4.update_checksum()
    return base


def _require(versions: Dict[int, Packet], version: Optional[int]) -> Packet:
    try:
        return versions[version]
    except KeyError:
        raise MergeError(f"merge needs version {version}, not collected") from None


def _splice_header(base: Packet, source: Packet, field) -> None:
    """Copy a header unit from ``source`` into ``base``."""
    if field is _f.Field.AH_HEADER:
        _splice_ah(base, source)
    elif field is _f.Field.VLAN_HEADER:
        _splice_vlan(base, source)
    elif field is _f.Field.VXLAN_HEADER:
        _splice_vxlan(base, source)
    else:
        raise MergeError(f"cannot splice header unit {field}")


def _strip_header(base: Packet, field) -> None:
    """Remove a header unit from ``base``."""
    if field is _f.Field.AH_HEADER:
        _strip_ah(base)
    elif field is _f.Field.VLAN_HEADER:
        _strip_vlan(base)
    elif field is _f.Field.VXLAN_HEADER:
        _strip_vxlan(base)
    else:
        raise MergeError(f"cannot strip header unit {field}")


# ----------------------------------------------------------------- AH unit
def _splice_ah(base: Packet, source: Packet) -> None:
    """Copy the AH unit from ``source`` into ``base`` after the IP header.

    When the base already carries an AH (e.g. a second VPN hop refreshed
    the existing header on its copy instead of stacking another), the
    unit is replaced in place rather than inserted.
    """
    if not source.has_ah:
        raise MergeError("source version carries no AH to splice")
    src_ip = source.ipv4
    src_off = source.l3_offset + src_ip.header_len
    ah_bytes = bytes(source.buf[src_off : src_off + AhView.HEADER_LEN])

    ip = base.ipv4
    ip_end = base.l3_offset + ip.header_len
    if base.has_ah:
        base.buf[ip_end : ip_end + AhView.HEADER_LEN] = ah_bytes
        return
    base.buf[ip_end:ip_end] = ah_bytes
    ip = base.ipv4
    ip.protocol = PROTO_AH
    ip.total_length = ip.total_length + AhView.HEADER_LEN
    ip.update_checksum()
    base.wire_len += AhView.HEADER_LEN


def _strip_ah(base: Packet) -> None:
    if not base.has_ah:
        raise MergeError("base carries no AH to remove")
    ip = base.ipv4
    ip_end = base.l3_offset + ip.header_len
    ah = AhView(base.buf, ip_end)
    next_header = ah.next_header
    del base.buf[ip_end : ip_end + AhView.HEADER_LEN]
    ip = base.ipv4
    ip.protocol = next_header
    ip.total_length = ip.total_length - AhView.HEADER_LEN
    ip.update_checksum()
    base.wire_len -= AhView.HEADER_LEN


# --------------------------------------------------------------- VLAN unit
def _splice_vlan(base: Packet, source: Packet) -> None:
    """Copy the 802.1Q tag from ``source`` into ``base`` (replace or insert)."""
    if not source.has_vlan:
        raise MergeError("source version carries no VLAN tag to splice")
    tag = bytes(source.buf[12 : 12 + VLAN_TAG_LEN])
    if base.has_vlan:
        base.buf[12 : 12 + VLAN_TAG_LEN] = tag
        return
    base.buf[12:12] = tag
    base.wire_len += VLAN_TAG_LEN


def _strip_vlan(base: Packet) -> None:
    """Pop the tag; tolerant no-op when the base is untagged (see module doc)."""
    if not base.has_vlan:
        return
    del base.buf[12 : 12 + VLAN_TAG_LEN]
    base.wire_len -= VLAN_TAG_LEN


# -------------------------------------------------------------- VXLAN unit
def _splice_vxlan(base: Packet, source: Packet) -> None:
    """Prepend the outer stack from ``source`` around ``base``.

    The outer IPv4/UDP lengths are *recomputed* from the base's inner
    frame length (the source version may be a truncated header-only
    copy whose lengths don't describe the base's payload).
    """
    if not is_vxlan(source):
        raise MergeError("source version carries no VXLAN outer stack to splice")
    if is_vxlan(base):
        # Refresh the existing outer stack in place (mirrors the AH
        # replace branch: the encap NF rewrote its copy's outer).
        inner_len = len(base.buf) - VXLAN_OUTER_LEN
        base.buf[0:VXLAN_OUTER_LEN] = source.buf[0:VXLAN_OUTER_LEN]
    else:
        inner_len = len(base.buf)
        base.buf[0:0] = source.buf[0:VXLAN_OUTER_LEN]
        base.wire_len += VXLAN_OUTER_LEN
    ip = Ipv4View(base.buf, ETH_HEADER_LEN)
    ip.total_length = VXLAN_OUTER_LEN - ETH_HEADER_LEN + inner_len
    udp = UdpView(base.buf, ETH_HEADER_LEN + Ipv4View.HEADER_LEN)
    udp.length = VXLAN_OUTER_LEN - ETH_HEADER_LEN - Ipv4View.HEADER_LEN + inner_len
    ip.update_checksum()


def _strip_vxlan(base: Packet) -> None:
    """Drop the outer stack; tolerant no-op for non-tunnel traffic."""
    if not is_vxlan(base):
        return
    del base.buf[0:VXLAN_OUTER_LEN]
    base.wire_len -= VXLAN_OUTER_LEN
