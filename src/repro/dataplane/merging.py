"""Pure packet-merge semantics: apply merging operations to versions.

Separated from the simulated merger so both the functional executor and
the DES dataplane share one implementation of §5.3's merge process:

* ``modify(v1.A, vk.A)`` -- overwrite field A of version 1 with the
  value carried by version k;
* ``add(vk.B, after, v1.IP)`` -- splice the header unit B (the AH) from
  version k into version 1;
* ``remove(v1.C)`` -- delete the header unit C from version 1.

Fields of v1 not referenced by any operation pass through unmodified;
fields of other versions not referenced are discarded -- exactly the
Fig. 6 semantics.  If any collected version is nil, the packet was
dropped by some NF and the merge yields ``None``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..net import fields as _f
from ..net.headers import ETH_HEADER_LEN, PROTO_AH, AhView
from ..net.packet import Packet
from ..core.graph import MergeOp, MergeOpKind, ORIGINAL_VERSION

__all__ = ["apply_merge_ops", "MergeError"]


class MergeError(RuntimeError):
    """A merge operation could not be applied to the collected versions."""


#: Modifying any of these fields invalidates the IPv4 header checksum.
_IP_FIELDS = {_f.Field.SIP, _f.Field.DIP, _f.Field.TTL, _f.Field.DSCP}


def apply_merge_ops(
    versions: Dict[int, Packet], ops: Iterable[MergeOp], telemetry=None
) -> Optional[Packet]:
    """Merge packet ``versions`` into the final output packet.

    ``versions`` maps version number -> the processed packet copy; it
    must contain version 1.  Returns the merged packet (version 1's
    buffer, modified in place), or ``None`` when any version is nil.

    ``telemetry`` is an optional :class:`repro.telemetry.TelemetryHub`;
    when enabled, applied operations are counted per kind under
    ``merge.ops.*``.
    """
    if ORIGINAL_VERSION not in versions:
        raise MergeError("version 1 missing from merge set")
    if any(pkt.nil for pkt in versions.values()):
        return None

    count_ops = telemetry is not None and telemetry.enabled
    base = versions[ORIGINAL_VERSION]
    checksum_dirty = False
    for op in ops:
        if count_ops:
            telemetry.inc(f"merge.ops.{op.kind.value}")
        if op.kind is MergeOpKind.MODIFY:
            source = _require(versions, op.src_version)
            _f.write_field(base, op.field, _f.read_field(source, op.field))
            if op.field in _IP_FIELDS:
                checksum_dirty = True
        elif op.kind is MergeOpKind.ADD:
            source = _require(versions, op.src_version)
            _splice_header(base, source, op.field)
        elif op.kind is MergeOpKind.REMOVE:
            _strip_header(base, op.field)
        else:  # pragma: no cover - enum is closed
            raise MergeError(f"unknown merge op kind: {op.kind}")
    if checksum_dirty:
        base.ipv4.update_checksum()
    return base


def _require(versions: Dict[int, Packet], version: Optional[int]) -> Packet:
    try:
        return versions[version]
    except KeyError:
        raise MergeError(f"merge needs version {version}, not collected") from None


def _splice_header(base: Packet, source: Packet, field) -> None:
    """Copy the AH unit from ``source`` into ``base`` after the IP header.

    When the base already carries an AH (e.g. a second VPN hop refreshed
    the existing header on its copy instead of stacking another), the
    unit is replaced in place rather than inserted.
    """
    if field is not _f.Field.AH_HEADER:
        raise MergeError(f"cannot splice header unit {field}")
    if not source.has_ah:
        raise MergeError("source version carries no AH to splice")
    src_ip = source.ipv4
    src_off = ETH_HEADER_LEN + src_ip.header_len
    ah_bytes = bytes(source.buf[src_off : src_off + AhView.HEADER_LEN])

    ip = base.ipv4
    ip_end = ETH_HEADER_LEN + ip.header_len
    if base.has_ah:
        base.buf[ip_end : ip_end + AhView.HEADER_LEN] = ah_bytes
        return
    base.buf[ip_end:ip_end] = ah_bytes
    ip = base.ipv4
    ip.protocol = PROTO_AH
    ip.total_length = ip.total_length + AhView.HEADER_LEN
    ip.update_checksum()
    base.wire_len += AhView.HEADER_LEN


def _strip_header(base: Packet, field) -> None:
    """Remove the AH unit from ``base``."""
    if field is not _f.Field.AH_HEADER:
        raise MergeError(f"cannot strip header unit {field}")
    if not base.has_ah:
        raise MergeError("base carries no AH to remove")
    ip = base.ipv4
    ip_end = ETH_HEADER_LEN + ip.header_len
    ah = AhView(base.buf, ip_end)
    next_header = ah.next_header
    del base.buf[ip_end : ip_end + AhView.HEADER_LEN]
    ip = base.ipv4
    ip.protocol = next_header
    ip.total_length = ip.total_length - AhView.HEADER_LEN
    ip.update_checksum()
    base.wire_len -= AhView.HEADER_LEN
