"""The XOR-merge alternative the paper considers and rejects (§5.3).

"A possible design choice of packet merging is to maintain an extra
copy of the original packet, simply xor the processed and original
packets to find the modified bits."  The paper rejects it because:

1. without action profiles, parallelism identification would become
   ad hoc (unrelated to merging, handled by the orchestrator anyway);
2. "the xor mechanism cannot easily handle header addition/removal or
   dropping actions";
3. "maintaining the original copy of the packet brings unnecessary
   resource overhead".

This module implements the design faithfully so the drawbacks are
demonstrable (see the ablation benchmark and unit tests): it merges by
XOR-ing each processed version against the retained original, which
works for in-place field writes but raises on any structural change,
and it charges a full original copy per packet.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..net.packet import Packet

__all__ = ["XorMerger", "XorMergeError"]


class XorMergeError(RuntimeError):
    """The XOR design cannot merge these versions (structural change)."""


class XorMerger:
    """Merge processed versions by XOR-diffing against the original.

    Usage: retain ``original`` (a full copy made *before* processing),
    then call :meth:`merge` with the processed versions.  Every version
    must have the original's exact length -- an added or removed header
    makes the diff meaningless, which is drawback (2) above.
    """

    def __init__(self):
        self.merged = 0
        self.rejected = 0
        #: bytes spent retaining originals (drawback 3).
        self.original_bytes_retained = 0

    def retain(self, pkt: Packet) -> Packet:
        """Keep a pristine copy of the packet before processing."""
        original = Packet(bytearray(pkt.buf), meta=pkt.meta, wire_len=pkt.wire_len)
        self.original_bytes_retained += len(pkt.buf)
        return original

    def merge(
        self, original: Packet, versions: Dict[int, Packet]
    ) -> Optional[Packet]:
        """Combine all versions' modifications into one output packet.

        Returns ``None`` when any version is nil (drop).  Raises
        :class:`XorMergeError` when a version changed the packet length
        (header add/remove) -- the case the paper calls out.
        """
        if not versions:
            raise XorMergeError("no versions to merge")
        if any(pkt.nil for pkt in versions.values()):
            return None
        base = bytes(original.buf)
        for version, pkt in sorted(versions.items()):
            if len(pkt.buf) != len(base) and not pkt.is_header_copy:
                self.rejected += 1
                raise XorMergeError(
                    f"version {version} changed packet length "
                    f"({len(base)} -> {len(pkt.buf)}): the XOR mechanism "
                    "cannot handle header addition/removal"
                )

        # final = original XOR (xor of all per-version diffs).
        out = bytearray(base)
        for pkt in versions.values():
            span = min(len(pkt.buf), len(base))
            for i in range(span):
                out[i] ^= base[i] ^ pkt.buf[i]
        merged = Packet(out, meta=original.meta, wire_len=original.wire_len)
        merged.ingress_us = original.ingress_us
        self.merged += 1
        return merged

    def memory_overhead_bytes(self, packet_size: int, degree: int) -> int:
        """Per-packet memory vs the MO design.

        The XOR design retains one full original regardless of degree;
        the MO design needs no original at all (v1 is merged in place).
        """
        if packet_size <= 0 or degree < 1:
            raise ValueError("packet size and degree must be positive")
        return packet_size
