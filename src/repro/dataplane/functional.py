"""Functional (untimed) execution of service graphs.

Runs a compiled :class:`~repro.core.graph.ServiceGraph` over real packet
bytes with full NFP semantics -- versions, header-only copies, stage
barriers, nil propagation, merging -- but no clock.  This is the
reference the *result correctness principle* (§4.1) is verified against:
for any policy, ``FunctionalDataplane`` output must be byte-identical to
:class:`SequentialReference` output over the original chain (§6.4's
replay experiment).

The timed DES dataplane (:mod:`repro.dataplane.server`) shares the same
NF objects and merge code; this module is the semantics, that one adds
queueing and service times.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..core.graph import ORIGINAL_VERSION, ServiceGraph
from ..net.packet import HEADER_COPY_BYTES, Packet
from ..nfs.base import NetworkFunction
from .merging import apply_merge_ops

__all__ = ["FunctionalDataplane", "SequentialReference", "instantiate_nfs"]


def instantiate_nfs(graph: ServiceGraph, **kwargs) -> Dict[str, NetworkFunction]:
    """Create one NF object per graph node, keyed by instance name.

    Extra kwargs are forwarded to every constructor that accepts them
    (commonly none are needed; tests pass custom tables).
    """
    from ..nfs.base import create_nf

    instances: Dict[str, NetworkFunction] = {}
    for node in graph.nodes():
        instances[node.name] = create_nf(node.kind, name=node.name, **kwargs)
    return instances


class FunctionalDataplane:
    """Synchronous executor with NFP's exact packet semantics."""

    def __init__(
        self,
        graph: ServiceGraph,
        nf_instances: Optional[Dict[str, NetworkFunction]] = None,
    ):
        self.graph = graph
        self.nfs = nf_instances or instantiate_nfs(graph)
        missing = [n for n in graph.nf_names() if n not in self.nfs]
        if missing:
            raise ValueError(f"no NF instances for graph nodes: {missing}")
        self.processed = 0
        self.emitted = 0
        self.dropped = 0

    def process(self, pkt: Packet) -> Optional[Packet]:
        """Run one packet through the graph; ``None`` means dropped."""
        self.processed += 1
        versions: Dict[int, Packet] = {ORIGINAL_VERSION: pkt}

        for stage_index, stage in enumerate(self.graph.stages):
            # Copies scheduled at this stage's entry (from current v1).
            for copy in self.graph.copies:
                if copy.stage_index != stage_index:
                    continue
                base = versions[ORIGINAL_VERSION]
                if base.nil:
                    versions[copy.version] = base.make_nil()
                elif copy.header_only:
                    versions[copy.version] = base.header_copy(
                        copy.version, HEADER_COPY_BYTES
                    )
                else:
                    versions[copy.version] = base.full_copy(copy.version)

            # All NFs of the stage observe the pre-stage buffers; drops
            # take effect only after the stage (parallel semantics).
            newly_dropped: List[int] = []
            for entry in stage:
                buffer = versions[entry.version]
                if buffer.nil:
                    continue
                ctx = self.nfs[entry.node.name].handle(buffer)
                if ctx.dropped:
                    newly_dropped.append(entry.version)
            for version in newly_dropped:
                versions[version] = versions[version].make_nil()

        merged = apply_merge_ops(versions, self.graph.merge_ops)
        if merged is None:
            self.dropped += 1
        else:
            self.emitted += 1
        return merged

    def process_many(self, packets: Iterable[Packet]) -> List[Optional[Packet]]:
        return [self.process(pkt) for pkt in packets]


class SequentialReference:
    """Plain sequential chain execution -- the ground truth of §4.1."""

    def __init__(self, nfs: Sequence[NetworkFunction]):
        self.nfs = list(nfs)
        self.processed = 0
        self.emitted = 0
        self.dropped = 0

    def process(self, pkt: Packet) -> Optional[Packet]:
        """Run the chain in order; a drop terminates processing."""
        self.processed += 1
        for nf in self.nfs:
            ctx = nf.handle(pkt)
            if ctx.dropped:
                self.dropped += 1
                return None
        self.emitted += 1
        return pkt

    def process_many(self, packets: Iterable[Packet]) -> List[Optional[Packet]]:
        return [self.process(pkt) for pkt in packets]
