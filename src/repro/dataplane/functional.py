"""Functional (untimed) execution of service graphs.

Runs a compiled :class:`~repro.core.graph.ServiceGraph` over real packet
bytes with full NFP semantics -- versions, header-only copies, stage
barriers, nil propagation, merging -- but no clock.  This is the
reference the *result correctness principle* (§4.1) is verified against:
for any policy, ``FunctionalDataplane`` output must be byte-identical to
:class:`SequentialReference` output over the original chain (§6.4's
replay experiment).

The timed DES dataplane (:mod:`repro.dataplane.server`) shares the same
NF objects and merge code; this module is the semantics, that one adds
queueing and service times.

Scaled graphs (§7) execute here too: pass ``scale`` (a uniform int or a
name -> count mapping) and each replicated NF gets per-instance objects
(``name#k``); every packet is routed to its flow's instance through the
same RSS split the DES server uses
(:mod:`repro.dataplane.flowsplit`), so NF state partitions identically
across planes.  :class:`SequentialBank` is the matching sequential
ground truth: N independent sequential chains fed by the same split.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..core.graph import ORIGINAL_VERSION, ServiceGraph
from ..faults import FaultInjector, HealthBoard
from ..net.packet import HEADER_COPY_BYTES, Packet
from ..nfs.base import NetworkFunction
from .flowsplit import assign_instances, flow_key, rss_instance
from .merging import apply_merge_ops

__all__ = [
    "FunctionalDataplane",
    "SequentialReference",
    "SequentialBank",
    "instantiate_nfs",
]


def _normalize_scale(
    graph: ServiceGraph, scale: Union[int, Mapping[str, int], None]
) -> Dict[str, int]:
    names = graph.nf_names()
    if scale is None:
        return {name: 1 for name in names}
    if isinstance(scale, int):
        if scale < 1:
            raise ValueError("uniform scale must be >= 1")
        return {name: scale for name in names}
    counts = {}
    for name in names:
        count = int(scale.get(name, 1))
        if count < 1:
            raise ValueError(f"scale for {name!r} must be >= 1")
        counts[name] = count
    return counts


def instantiate_nfs(
    graph: ServiceGraph,
    scale: Union[int, Mapping[str, int], None] = None,
    **kwargs,
) -> Dict[str, NetworkFunction]:
    """Create NF objects per graph node, keyed by instance label.

    Unscaled nodes key by their plain name; replicated nodes get one
    object per instance under ``name#k`` labels (the same labels the
    DES server and telemetry use).  Extra kwargs are forwarded to every
    constructor.
    """
    from ..nfs.base import create_nf

    counts = _normalize_scale(graph, scale)
    instances: Dict[str, NetworkFunction] = {}
    for node in graph.nodes():
        count = counts[node.name]
        if count == 1:
            instances[node.name] = create_nf(node.kind, name=node.name, **kwargs)
        else:
            for k in range(count):
                label = f"{node.name}#{k}"
                instances[label] = create_nf(node.kind, name=label, **kwargs)
    return instances


class FunctionalDataplane:
    """Synchronous executor with NFP's exact packet semantics."""

    def __init__(
        self,
        graph: ServiceGraph,
        nf_instances: Optional[Dict[str, NetworkFunction]] = None,
        scale: Union[int, Mapping[str, int], None] = None,
        injector: Optional[FaultInjector] = None,
        telemetry=None,
    ):
        self.graph = graph
        #: Optional :class:`~repro.telemetry.hooks.TelemetryHub`; the
        #: untimed plane only counts control-plane facts (RSS pinning),
        #: never per-packet service time -- it has no clock.
        self.telemetry = telemetry
        #: Optional :class:`~repro.telemetry.timeseries.Sampler`; the
        #: functional plane has no virtual clock to schedule it on, so
        #: :meth:`process` drives its wall-clock ``maybe_tick`` fallback.
        self.sampler = None
        self.scale = _normalize_scale(graph, scale)
        self._scaled = {n: c for n, c in self.scale.items() if c > 1}
        self.nfs = nf_instances or instantiate_nfs(graph, scale=self.scale)
        missing = [
            label
            for name in graph.nf_names()
            for label in self._labels(name)
            if label not in self.nfs
        ]
        if missing:
            raise ValueError(f"no NF instances for graph nodes: {missing}")
        self.processed = 0
        self.emitted = 0
        self.dropped = 0
        #: Optional fault injector: instance health is consulted before
        #: each NF application.  Down instances drop the version (nil)
        #: instead of serving it; with replicas left, later flows rehash
        #: onto healthy instances; with none left, the instance restarts
        #: fresh (its per-flow state is lost -- the semantics failover
        #: degrades to, and what fuzzing measures the blast radius of).
        self.injector = injector
        self.health = HealthBoard()
        for name, count in self.scale.items():
            self.health.register(name, count)
        #: reason -> packet count for faulted drops (conservation report).
        self.drop_reasons: Dict[str, int] = {}
        self.restarts = 0

    def _labels(self, name: str) -> List[str]:
        count = self.scale[name]
        if count == 1:
            return [name]
        return [f"{name}#{k}" for k in range(count)]

    def _nf(self, name: str, assignment: Mapping[str, int]) -> NetworkFunction:
        if self.scale[name] == 1:
            return self.nfs[name]
        return self.nfs[f"{name}#{assignment.get(name, 0)}"]

    def _instance_down(self, entry, label: str, index: int) -> bool:
        """Health gate before one NF application (fault runs only).

        Returns True when the instance is dead/hung and the version must
        drop.  When the casualty was the group's last healthy instance
        it is restarted immediately with a fresh NF object (per-flow
        state lost) -- the untimed plane has no parked process, so
        reviving in place is safe here.
        """
        injector = self.injector
        state = injector.on_packet(label, float(self.processed))
        if not state.down:
            return False
        name = entry.node.name
        remaining = self.health.mark_down(name, index)
        if not remaining:
            from ..nfs.base import create_nf

            self.nfs[label] = create_nf(entry.node.kind, name=label)
            self.restarts += 1
            injector.revive(label)
            self.health.mark_up(name, index)
        return True

    def process(self, pkt: Packet) -> Optional[Packet]:
        """Run one packet through the graph; ``None`` means dropped."""
        self.processed += 1
        if self.sampler is not None:
            self.sampler.maybe_tick(time.monotonic() * 1e6)
        assignment = (
            assign_instances(
                flow_key(pkt), self._scaled,
                healthy=self.health.view() if self.injector else None,
                telemetry=self.telemetry)
            if self._scaled else {}
        )
        versions: Dict[int, Packet] = {ORIGINAL_VERSION: pkt}

        for stage_index, stage in enumerate(self.graph.stages):
            # Copies scheduled at this stage's entry (from current v1).
            for copy in self.graph.copies:
                if copy.stage_index != stage_index:
                    continue
                base = versions[ORIGINAL_VERSION]
                if base.nil:
                    versions[copy.version] = base.make_nil()
                elif copy.header_only:
                    versions[copy.version] = base.header_copy(
                        copy.version, HEADER_COPY_BYTES
                    )
                else:
                    versions[copy.version] = base.full_copy(copy.version)

            # All NFs of the stage observe the pre-stage buffers; drops
            # take effect only after the stage (parallel semantics).
            newly_dropped: List[int] = []
            for entry in stage:
                buffer = versions[entry.version]
                if buffer.nil:
                    continue
                name = entry.node.name
                index = (0 if self.scale[name] == 1
                         else assignment.get(name, 0))
                label = name if self.scale[name] == 1 else f"{name}#{index}"
                if (self.injector is not None
                        and self._instance_down(entry, label, index)):
                    self.drop_reasons["instance_down"] = (
                        self.drop_reasons.get("instance_down", 0) + 1)
                    newly_dropped.append(entry.version)
                    continue
                ctx = self.nfs[label].handle(buffer)
                if ctx.dropped:
                    newly_dropped.append(entry.version)
            for version in newly_dropped:
                versions[version] = versions[version].make_nil()

        merged = apply_merge_ops(versions, self.graph.merge_ops)
        if merged is None:
            self.dropped += 1
        else:
            self.emitted += 1
        return merged

    def process_many(self, packets: Iterable[Packet]) -> List[Optional[Packet]]:
        return [self.process(pkt) for pkt in packets]


class SequentialReference:
    """Plain sequential chain execution -- the ground truth of §4.1."""

    def __init__(self, nfs: Sequence[NetworkFunction]):
        self.nfs = list(nfs)
        self.processed = 0
        self.emitted = 0
        self.dropped = 0

    def process(self, pkt: Packet) -> Optional[Packet]:
        """Run the chain in order; a drop terminates processing."""
        self.processed += 1
        for nf in self.nfs:
            ctx = nf.handle(pkt)
            if ctx.dropped:
                self.dropped += 1
                return None
        self.emitted += 1
        return pkt

    def process_many(self, packets: Iterable[Packet]) -> List[Optional[Packet]]:
        return [self.process(pkt) for pkt in packets]


class SequentialBank:
    """N independent sequential chains behind the shared RSS split.

    The sound sequential oracle for a *scaled* parallel deployment: NFs
    with cross-flow state (the NAT's arrival-order port allocator, the
    VPN's global AH sequence counter) partition their state per
    instance once a graph is scaled, so the reference must partition
    identically.  ``chain_factory(bank_index)`` builds one fresh
    sequential chain per bank; packets route by the same
    :func:`~repro.dataplane.flowsplit.flow_key` / ``crc32`` split every
    other plane uses.  With ``instances=1`` this degenerates to a plain
    :class:`SequentialReference`.
    """

    def __init__(
        self,
        chain_factory: Callable[[int], Sequence[NetworkFunction]],
        instances: int,
    ):
        if instances < 1:
            raise ValueError("instances must be >= 1")
        self.banks = [
            SequentialReference(chain_factory(k)) for k in range(instances)
        ]

    def bank_for(self, pkt: Packet) -> int:
        return rss_instance(flow_key(pkt), len(self.banks))

    def process(self, pkt: Packet) -> Optional[Packet]:
        return self.banks[self.bank_for(pkt)].process(pkt)

    def process_many(self, packets: Iterable[Packet]) -> List[Optional[Packet]]:
        return [self.process(pkt) for pkt in packets]

    @property
    def processed(self) -> int:
        return sum(bank.processed for bank in self.banks)

    @property
    def emitted(self) -> int:
        return sum(bank.emitted for bank in self.banks)

    @property
    def dropped(self) -> int:
        return sum(bank.dropped for bank in self.banks)
