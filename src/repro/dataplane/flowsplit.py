"""RSS flow-splitting and the classifier flow cache (§7 scale-out).

When a service graph is scaled out, flows must be pinned to exactly one
instance of every replicated NF so per-flow NF state stays local and
per-flow packet order is preserved -- the same guarantee hardware RSS
gives a multi-queue NIC.  Every execution plane (the timed DES server,
the functional dataplane, and the scaled sequential reference bank used
by differential testing) routes through the *same* hash in this module,
so flow -> instance assignments agree across planes by construction.

Two layers:

* :func:`flow_key` / :func:`rss_instance` -- the split itself.  Only
  unfragmented IPv4 TCP/UDP packets have a meaningful 5-tuple; anything
  else (ICMP, fragments, non-IP) deterministically lands on instance 0,
  which keeps such traffic ordered without pretending it has flow
  affinity.
* :class:`FlowCache` -- an LRU memo of the classifier's per-flow work
  (CT match, graph, instance assignment).  The first packet of a flow
  pays the full CT lookup + tagging cost; subsequent packets hit the
  cache and pay ``classifier_cache_hit_us``.  The cache is invalidated
  wholesale whenever tables are (re)installed, so a recompiled graph can
  never be reached through a stale decision.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..core.graph import ServiceGraph
from ..core.tables import CTEntry
from ..net.headers import PROTO_TCP, PROTO_UDP
from ..net.packet import Packet

__all__ = [
    "rss_hash",
    "rss_instance",
    "flow_key",
    "assign_instances",
    "FlowDecision",
    "FlowCache",
]

#: Shared immutable assignment for graphs with no replicated NFs.
_NO_ASSIGNMENT: Dict[str, int] = {}


def rss_hash(five_tuple: tuple) -> int:
    """The RSS hash over a 5-tuple -- crc32, as commodity NICs use."""
    return zlib.crc32(repr(five_tuple).encode())


def rss_instance(key: Optional[tuple], count: int) -> int:
    """Instance index for a flow key among ``count`` instances.

    ``None`` keys (no meaningful 5-tuple) pin to instance 0 so that
    ICMP/fragment traffic stays ordered on a single instance.
    """
    if count <= 1 or key is None:
        return 0
    return rss_hash(key) % count


def flow_key(pkt: Packet) -> Optional[tuple]:
    """The RSS/flow-cache key for a packet, or ``None`` when it has none.

    Only unfragmented IPv4 TCP/UDP packets key by 5-tuple; ICMP (and
    any other protocol), IP fragments, nil packets and non-IP frames
    return ``None`` -- they bypass the flow cache and pin to instance 0.
    """
    if pkt.nil:
        return None
    try:
        ip = pkt.ipv4
        if ip.is_fragment:
            return None
        if pkt.l4_protocol not in (PROTO_TCP, PROTO_UDP):
            return None
        return pkt.five_tuple()
    except ValueError:
        return None


def assign_instances(
    key: Optional[tuple],
    counts: Mapping[str, int],
    healthy: Optional[Mapping[str, Sequence[int]]] = None,
    telemetry=None,
) -> Dict[str, int]:
    """Per-NF instance assignment for one flow.

    ``counts`` maps NF names to instance counts; only replicated NFs
    (count > 1) get an entry -- everything else implicitly reads 0.

    ``healthy`` (failover) optionally restricts named NFs to a subset
    of live instance indices: flows of an NF listed there rehash over
    its healthy list instead of ``range(count)``.  NFs *not* listed --
    the fully healthy ones -- keep the exact historical ``hash % count``
    mapping, so a casualty in one group never reshuffles another
    group's flows.

    ``telemetry`` (a :class:`~repro.telemetry.hooks.TelemetryHub`)
    makes the known RSS skew ceiling observable: keyless packets (ICMP,
    fragments, non-IP) pin to instance 0 of every scaled NF, and each
    such assignment bumps ``rss.pinned_flows`` so scaled runs report how
    much traffic bypassed the hash instead of skewing silently.
    """
    scaled = {name: c for name, c in counts.items() if c > 1}
    if not scaled:
        return _NO_ASSIGNMENT
    if key is None and telemetry is not None and telemetry.enabled:
        telemetry.inc("rss.pinned_flows")
    assignment: Dict[str, int] = {}
    for name, count in scaled.items():
        live = healthy.get(name) if healthy else None
        if live is not None and 0 < len(live) < count:
            if key is None:
                assignment[name] = live[0]
            else:
                assignment[name] = live[rss_hash(key) % len(live)]
        else:
            assignment[name] = rss_instance(key, count)
    return assignment


@dataclass
class FlowDecision:
    """The memoized classifier verdict for one flow.

    ``runner`` is the batched plane's bound action closure (the compiled
    graph closed over this flow's NF instances); the scalar DES server
    leaves it ``None``.
    """

    ct_entry: CTEntry
    graph: ServiceGraph
    assignment: Dict[str, int]
    runner: Optional[Callable] = None


class FlowCache:
    """LRU cache of :class:`FlowDecision` keyed by 5-tuple.

    Plain-integer counters mirror what the server reports through
    telemetry, so the cache is observable even without a hub attached.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("flow cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, FlowDecision]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
        self.invalidations = 0

    def get(self, key: tuple) -> Optional[FlowDecision]:
        decision = self._entries.get(key)
        if decision is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return decision

    def put(self, key: tuple, decision: FlowDecision) -> bool:
        """Insert a decision; returns True when an LRU entry was evicted."""
        evicted = False
        if key not in self._entries and len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            evicted = True
        self._entries[key] = decision
        self._entries.move_to_end(key)
        return evicted

    def invalidate(self) -> None:
        """Drop every cached decision (tables were (re)installed)."""
        self._entries.clear()
        self.invalidations += 1

    def decisions(self) -> Tuple[FlowDecision, ...]:
        """Cached decisions, LRU first (failover reassignment audit)."""
        return tuple(self._entries.values())

    def keys(self) -> Tuple[tuple, ...]:
        """Cached flow keys, LRU first (for tests/telemetry)."""
        return tuple(self._entries.keys())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlowCache({len(self)}/{self.capacity}, hits={self.hits}, "
                f"misses={self.misses}, evictions={self.evictions})")
