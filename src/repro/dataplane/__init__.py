"""NFP infrastructure (§5): classifier, runtimes, mergers, dataplanes.

Two executors share the same NF objects and merge code:

* :class:`FunctionalDataplane` -- untimed reference semantics, used for
  the §6.4 result-correctness verification;
* :class:`BatchedDataplane` -- the batched/vectorized hot path: same
  semantics as the functional plane (proven by the differential
  ``--batched`` axis), amortised classification and precompiled action
  closures;
* :class:`NFPServer` -- the timed DES dataplane with pinned cores,
  rings, and calibrated service times.
"""

from .batched import DEFAULT_BATCH_SIZE, BatchedDataplane
from .chaining import ChainingManager
from .flowsplit import (
    FlowCache,
    FlowDecision,
    assign_instances,
    flow_key,
    rss_hash,
    rss_instance,
)
from .functional import (
    FunctionalDataplane,
    SequentialBank,
    SequentialReference,
    instantiate_nfs,
)
from .merging import MergeError, apply_merge_ops
from .server import FlightState, NFPServer
from .xor_merger import XorMergeError, XorMerger

__all__ = [
    "BatchedDataplane",
    "DEFAULT_BATCH_SIZE",
    "ChainingManager",
    "FlowCache",
    "FlowDecision",
    "assign_instances",
    "flow_key",
    "rss_hash",
    "rss_instance",
    "FunctionalDataplane",
    "SequentialBank",
    "SequentialReference",
    "instantiate_nfs",
    "apply_merge_ops",
    "MergeError",
    "NFPServer",
    "FlightState",
    "XorMerger",
    "XorMergeError",
]
