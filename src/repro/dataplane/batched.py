"""Batched (vectorized) execution of service graphs.

The hot-path refactor of the reproduction: where
:class:`~repro.dataplane.functional.FunctionalDataplane` walks the graph
object model per packet, this plane processes packet *batches* with

* **batch-wise classification** -- one CT/FT walk per new flow per
  batch: a batch-local memo sits in front of the shared LRU
  :class:`~repro.dataplane.flowsplit.FlowCache`, so repeated flows in a
  burst cost one dict probe, and the full classify (5-tuple parse, CT
  lookup, RSS assignment, closure bind) runs only on a cold flow
  (``ct_walks`` counts those walks);
* **struct-of-arrays metadata** -- the 64-bit MID|PID|version words live
  in a flat :class:`~repro.net.metadata.MetaArray` indexed by batch
  slot; a :class:`~repro.net.packet.PacketMeta` object is materialised
  only for packets that actually leave the plane;
* **precompiled action closures** -- the per-packet inner loop is one
  dict lookup plus one call of the
  :class:`~repro.core.closures.CompiledGraph` closure bound to the
  flow's NF instances at classification time.

Semantics are byte-identical to the functional plane by construction
(the closure reproduces its exact copy/stage/merge order) and verified
continuously by the differential fuzzer's ``--batched`` axis.  PIDs are
allocated per classified packet in arrival order, exactly like the DES
classifier, so emitted metadata words agree with the timed plane too.

Fault injection is out of scope here: the batched plane is the
performance twin of the *healthy* functional semantics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Union

from ..core.graph import ORIGINAL_VERSION, ServiceGraph
from ..core.tables import ClassificationTable, build_tables
from ..net.headers import PROTO_TCP, PROTO_UDP
from ..net.metadata import MetaArray, pack_word
from ..net.packet import Packet, PacketMeta
from .chaining import ChainingManager
from .flowsplit import FlowCache, FlowDecision, assign_instances, flow_key
from .functional import _normalize_scale, instantiate_nfs

__all__ = ["BatchedDataplane", "DEFAULT_BATCH_SIZE"]

#: Default packets per batch (mirrors ``SimParams.batch_size``).
DEFAULT_BATCH_SIZE = 32

_PID_MODULUS = 1 << PacketMeta.PID_BITS
_PID_MASK = _PID_MODULUS - 1


class BatchedDataplane:
    """Batch executor with NFP's exact packet semantics.

    One instance runs one compiled graph, installed through a private
    :class:`ChainingManager` under ``match`` (wildcard by default, so
    every packet classifies -- the same effective behaviour as the
    functional plane, which skips classification entirely).
    """

    def __init__(
        self,
        graph: ServiceGraph,
        scale: Union[int, Mapping[str, int], None] = None,
        mid: int = 1,
        match: object = ClassificationTable.WILDCARD,
        batch_size: int = DEFAULT_BATCH_SIZE,
        flow_cache_size: int = 4096,
        nf_instances: Optional[Dict[str, object]] = None,
        telemetry=None,
    ):
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        self.graph = graph
        self.mid = mid
        self.batch_size = batch_size
        self.telemetry = telemetry
        self.scale = _normalize_scale(graph, scale)
        self._scaled = {n: c for n, c in self.scale.items() if c > 1}
        self.nfs = nf_instances or instantiate_nfs(graph, scale=self.scale)
        self.chaining = ChainingManager()
        self.flow_cache = FlowCache(flow_cache_size)
        self.chaining.on_install(self.flow_cache.invalidate)
        self.chaining.install(build_tables(graph, mid, match))
        from ..core.closures import CopyCounters

        self.counters = CopyCounters()
        #: SoA metadata words for the batch in flight, by batch slot.
        self.meta = MetaArray()
        #: MID and version are constant for the plane's lifetime, so the
        #: per-packet word is one shift+or over this template (validated
        #: once here instead of per packet).
        self._word_template = pack_word(mid, 0, ORIGINAL_VERSION)
        self._next_pid = 0
        #: Shared runner for keyless traffic (ICMP, fragments, non-IP):
        #: such packets pin to instance 0 everywhere, so one bound
        #: closure serves them all.
        self._keyless: Optional[FlowDecision] = None
        self.processed = 0
        self.emitted = 0
        self.dropped = 0
        self.no_match = 0
        #: Full classify walks (CT lookup + RSS + closure bind); the
        #: amortization claim is ``ct_walks`` ≈ distinct flows, not
        #: packets.
        self.ct_walks = 0

    # -------------------------------------------------------- classification
    def _fast_key(self, pkt: Packet):
        """Flow key without header views, for the common frame shape.

        Untagged Ethernet + IPv4 (IHL 5, not fragmented) + TCP/UDP:
        thirteen raw bytes (protocol, src, dst, ports) identify the flow
        one-to-one with the parsed 5-tuple -- same bytes, same flow.
        Anything else falls back to :func:`flow_key` (a parsed tuple or
        ``None``; tuple and bytes keys cannot collide in one dict).
        """
        buf = pkt.buf
        if (
            len(buf) >= 38
            and buf[12] == 0x08 and buf[13] == 0x00
            and buf[14] == 0x45
            and buf[21] == 0 and buf[20] & 0x3F == 0
            and buf[23] in (PROTO_TCP, PROTO_UDP)
        ):
            return bytes(buf[23:24]) + bytes(buf[26:38])
        return flow_key(pkt)

    def _classify_flow(self, pkt: Packet, key) -> Optional[FlowDecision]:
        """The cold-flow path: one full CT/FT walk plus closure bind."""
        self.ct_walks += 1
        try:
            five = pkt.five_tuple()
        except ValueError:
            five = None
        entry = self.chaining.classify(five)
        if entry is None:
            return None
        rss_key = five if isinstance(key, bytes) else key
        assignment = assign_instances(rss_key, self._scaled)
        compiled = self.chaining.compiled_for(entry.mid)
        runner = compiled.bind(self.nfs, self.scale, assignment, self.counters)
        return FlowDecision(entry, self.chaining.graph_for(entry.mid),
                            assignment, runner)

    def _decide(self, pkt: Packet, key) -> Optional[FlowDecision]:
        """Flow decision via the LRU cache (keyless traffic bypasses)."""
        if key is None:
            self.flow_cache.bypasses += 1
            if self._keyless is None:
                self._keyless = self._classify_flow(pkt, None)
            return self._keyless
        decision = self.flow_cache.get(key)
        if decision is None:
            decision = self._classify_flow(pkt, key)
            if decision is not None:
                self.flow_cache.put(key, decision)
        return decision

    # ------------------------------------------------------------ execution
    def process_batch(self, packets: List[Packet]) -> List[Optional[Packet]]:
        """Run one batch; the result list aligns with the input batch.

        ``None`` marks a packet that was dropped (or failed to classify).
        Packets execute in batch order, so per-flow and per-NF-instance
        arrival order equals injection order -- the same order every
        scalar plane observes.
        """
        words = self.meta
        words.clear()
        append_word = words.words.append
        memo: Dict[object, Optional[FlowDecision]] = {}
        decisions: List[Optional[FlowDecision]] = []
        add_decision = decisions.append
        telemetry = self.telemetry
        count_pins = (
            self._scaled and telemetry is not None and telemetry.enabled
        )
        fast_key = self._fast_key
        decide = self._decide
        template = self._word_template
        next_pid = self._next_pid
        no_match = 0
        for pkt in packets:
            key = fast_key(pkt)
            if key is None and count_pins:
                telemetry.inc("rss.pinned_flows")
            try:
                decision = memo[key]
            except KeyError:
                decision = decide(pkt, key)
                memo[key] = decision
            if decision is None:
                no_match += 1
                append_word(0)
            else:
                next_pid = (next_pid + 1) % _PID_MODULUS
                append_word(template | (next_pid << 4))
            add_decision(decision)
        self.processed += len(packets)
        self.no_match += no_match
        self._next_pid = next_pid

        word_arr = words.words
        outputs: List[Optional[Packet]] = []
        emit = outputs.append
        mid = self.mid
        emitted = dropped = 0
        for index, pkt in enumerate(packets):
            decision = decisions[index]
            if decision is None:
                emit(None)
                continue
            merged = decision.runner(pkt)
            if merged is None:
                dropped += 1
                emit(None)
            else:
                # Materialise the PacketMeta straight from the SoA word;
                # version is always 1 here (the classifier's stamp) and
                # the runner already merged every copy back down.
                merged.meta = PacketMeta(
                    mid, (word_arr[index] >> 4) & _PID_MASK, 1)
                emitted += 1
                emit(merged)
        self.emitted += emitted
        self.dropped += dropped
        return outputs

    def process_many(
        self, packets: Iterable[Packet], batch_size: Optional[int] = None
    ) -> List[Optional[Packet]]:
        """Chunk a stream into batches and process each in turn."""
        size = batch_size or self.batch_size
        stream = list(packets)
        outputs: List[Optional[Packet]] = []
        for start in range(0, len(stream), size):
            outputs.extend(self.process_batch(stream[start : start + size]))
        return outputs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchedDataplane({self.graph.name!r}, batch={self.batch_size}, "
            f"processed={self.processed}, ct_walks={self.ct_walks})"
        )
