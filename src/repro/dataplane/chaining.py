"""Chaining manager (§5, Fig. 3): holds installed tables for the server.

The orchestrator pushes a :class:`~repro.core.tables.TableSet` per
deployed graph; the chaining manager splits it -- the CT entry goes to
the classifier, each NF runtime receives its FT slice, and the mergers
look up total counts and MOs by MID.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.closures import CompiledGraph
from ..core.graph import ServiceGraph
from ..core.tables import ClassificationTable, CTEntry, FTAction, TableSet

__all__ = ["ChainingManager"]


class ChainingManager:
    """Table distribution point inside one NFP server."""

    def __init__(self):
        self.classification = ClassificationTable()
        self._graphs: Dict[int, ServiceGraph] = {}
        self._forwarding: Dict[int, Dict[str, List[FTAction]]] = {}
        #: Install-time compiled action closures, one per MID: the FT/MO
        #: walk flattened so the batched hot path never touches the graph
        #: object model per packet.
        self._compiled: Dict[int, CompiledGraph] = {}
        #: How many graph compilations ran (tests pin this to the number
        #: of installs, proving compilation stays off the packet path).
        self.closures_compiled = 0
        #: Called after every table (re)install; the classifier's flow
        #: cache registers here so no stale per-flow decision survives a
        #: graph recompile.
        self._install_listeners: List[Callable[[], None]] = []

    def on_install(self, listener: Callable[[], None]) -> None:
        """Register a callback fired after each table (re)install."""
        self._install_listeners.append(listener)

    def install(self, tables: TableSet) -> None:
        """Install a deployed graph's tables (classifier + runtimes)."""
        self.classification.install(tables.ct_entry)
        self._graphs[tables.mid] = tables.graph
        self._forwarding[tables.mid] = tables.forwarding
        self._compiled[tables.mid] = CompiledGraph(tables.graph)
        self.closures_compiled += 1
        for listener in self._install_listeners:
            listener()

    def graph_for(self, mid: int) -> ServiceGraph:
        try:
            return self._graphs[mid]
        except KeyError:
            raise KeyError(f"no graph installed for MID {mid}") from None

    def compiled_for(self, mid: int) -> CompiledGraph:
        try:
            return self._compiled[mid]
        except KeyError:
            raise KeyError(f"no compiled graph for MID {mid}") from None

    def ct_entry_for(self, mid: int) -> CTEntry:
        return self.classification.by_mid(mid)

    def ft_for(self, mid: int, nf_name: str) -> List[FTAction]:
        try:
            return self._forwarding[mid][nf_name]
        except KeyError:
            raise KeyError(
                f"no forwarding rules for NF {nf_name!r} under MID {mid}"
            ) from None

    def classify(self, key: object) -> Optional[CTEntry]:
        """Classifier lookup: exact match key, falling back to wildcard."""
        return self.classification.lookup(key)

    def mids(self) -> List[int]:
        return sorted(self._graphs)
