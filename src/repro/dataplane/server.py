"""The simulated NFP server: classifier, NF runtimes, mergers (§5).

This is the timed counterpart of :mod:`repro.dataplane.functional`: the
same packets, NF objects and merge code, but every step costs calibrated
time on a pinned core inside the DES -- so latency, throughput and loss
emerge from queueing exactly as on the paper's testbed.

Topology (Fig. 3)::

    NIC rx --> [classifier core] --> per-NF rx rings --> [NF cores]
                 |  CT lookup, metadata,                   |  NF logic +
                 |  stage-0 copies                         |  FT actions
                 v                                         v
              flight state (shared memory) <--- version barriers
                                                           |
               [merger cores] <--- merger agent hash ------+
                 |  AT accumulation, MOs
                 v
               NIC tx --> recorded latency / rate

Execution rules:

* every packet reference delivery costs ``ring_hop_us`` on the sending
  core plus ``batch_wait_us`` of pure pipeline latency;
* an NF runtime polls its ring in bursts of ``batch_size``;
* version barriers: refs advance to the next stage once all same-stage
  NFs of that version finished; the completing runtime executes the
  copy/distribute actions (§5.2);
* drops become nil packets that flow through the remaining graph so the
  merger's count completes naturally (§5.3);
* the merger agent hashes the immutable PID to pick a merger instance.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from ..core.graph import ORIGINAL_VERSION, ServiceGraph, StageEntry
from ..core.orchestrator import DeployedGraph
from ..net.packet import HEADER_COPY_BYTES, Packet, PacketMeta
from ..nfs.base import NetworkFunction, create_nf
from ..sim import Core, Environment, Nic, PacketPool, RateMeter, Ring, SimParams
from ..sim.stats import LatencyStats
from ..telemetry.hooks import NULL_HUB, TelemetryHub
from ..telemetry.tracer import SpanKind
from .chaining import ChainingManager
from .flowsplit import FlowCache, FlowDecision, assign_instances, flow_key
from .merging import apply_merge_ops

__all__ = ["NFPServer", "FlightState"]

#: Shared empty assignment for packets of unscaled graphs.
_NO_ASSIGNMENT: Dict[str, int] = {}


class FlightState:
    """Shared per-packet state: versions, drops, barriers, instance pins.

    ``assignment`` is the flow's RSS instance assignment (NF name ->
    instance index), computed once at classification time and read by
    every dispatch site -- so all copies/versions of one packet, and all
    packets of one flow, land on the same instance of each scaled NF.
    """

    __slots__ = ("versions", "dropped", "barriers", "assignment")

    def __init__(self, pkt: Packet, assignment: Optional[Mapping[str, int]] = None):
        self.versions: Dict[int, Packet] = {ORIGINAL_VERSION: pkt}
        self.dropped: Set[int] = set()
        self.barriers: Dict[Tuple[int, int], int] = {}
        self.assignment: Mapping[str, int] = (
            _NO_ASSIGNMENT if assignment is None else assignment
        )


class _NFRuntimeSim:
    """One NF pinned to one core with its receive ring (§5.2)."""

    def __init__(self, server: "NFPServer", nf: NetworkFunction, stage_index: int,
                 entry: StageEntry, core: Core):
        self.server = server
        self.nf = nf
        self.stage_index = stage_index
        self.entry = entry
        self.core = core
        self.rx = Ring(server.env, server.params.ring_capacity, name=f"{nf.name}.rx")
        server.env.process(self._run())

    def _run(self):
        # Batch-synchronous, like a DPDK poll loop: drain a burst,
        # process every packet, then forward the whole burst.  This
        # preserves traffic burstiness through the chain, which is what
        # makes per-stage queueing (and hence the parallelism win)
        # behave like the real system.
        params = self.server.params
        hub = self.server.telemetry
        enabled = hub.enabled  # fixed for the server's lifetime
        while True:
            first = yield self.rx.get()
            batch = [first] + self.rx.get_batch(params.batch_size - 1)
            for pkt in batch:
                if enabled:
                    hub.span(SpanKind.NF_START, self.server.env.now, pkt.meta,
                             name=self.nf.name)
                if pkt.nil:
                    service = params.nf_runtime_us
                else:
                    service = params.nf_runtime_us + params.nf_service(
                        self.nf.KIND, self.nf.extra_cycles
                    )
                yield self.core.execute(service)
                pkt.stamp(f"nf:{self.nf.name}", self.server.env.now)
                if enabled:
                    hub.observe(f"nf.{self.nf.name}.service_us", service)
                    hub.span(SpanKind.NF_END, self.server.env.now, pkt.meta,
                             name=self.nf.name, duration_us=service)
            for pkt in batch:
                extra = self.server.nf_complete(self, pkt)
                if extra > 0:
                    yield self.core.execute(extra)


class _RuntimeGroup:
    """All instances of one (possibly scaled-out) NF.

    §7: "NFP can support NF scaling inside one server by allocating
    remaining CPU cores to new NF instances".  Flows are split across
    instances by a 5-tuple hash so per-flow state stays on one
    instance and packet order within a flow is preserved.
    """

    def __init__(self, name: str):
        self.name = name
        self.instances: List[_NFRuntimeSim] = []

    def add(self, runtime: "_NFRuntimeSim") -> None:
        self.instances.append(runtime)

    @property
    def count(self) -> int:
        return len(self.instances)

    def ring(self, index: int) -> Ring:
        """The rx ring of one instance (index 0 for unscaled groups)."""
        if len(self.instances) == 1:
            return self.instances[0].rx
        return self.instances[index % len(self.instances)].rx

    @property
    def rx_packets(self) -> int:
        return sum(r.nf.rx_packets for r in self.instances)


class _MergerSim:
    """One merger instance: AT accumulation plus MO execution (§5.3)."""

    def __init__(self, server: "NFPServer", index: int, core: Core):
        self.server = server
        self.index = index
        self.core = core
        self.rx = Ring(server.env, server.params.ring_capacity, name=f"merger{index}.rx")
        #: The dynamic Accumulating Table: (mid, pid) -> state.
        self.at: Dict[Tuple[int, int], Dict] = {}
        self.at_high_watermark = 0
        self.merged = 0
        self.discarded = 0
        server.env.process(self._run())

    def _run(self):
        params = self.server.params
        while True:
            first = yield self.rx.get()
            batch = [first] + self.rx.get_batch(params.batch_size - 1)
            for pkt in batch:
                yield self.core.execute(params.merger_per_copy_us)
                done = self._accumulate(pkt)
                if done is not None:
                    entry, graph = done
                    yield self.core.execute(params.merger_base_us)
                    self._finish(entry, graph)

    def _accumulate(self, pkt: Packet):
        meta = pkt.meta
        hub = self.server.telemetry
        key = (meta.mid, meta.pid)
        entry = self.at.get(key)
        if entry is None:
            entry = {"count": 0, "versions": {}, "nil": False,
                     "opened_us": self.server.env.now}
            self.at[key] = entry
            self.at_high_watermark = max(self.at_high_watermark, len(self.at))
            if hub.enabled:
                hub.inc("merger.at_insert")
                hub.span(SpanKind.MERGE_WAIT, self.server.env.now, meta,
                         name=f"merger{self.index}")
        elif hub.enabled:
            hub.inc("merger.at_hit")
        entry["count"] += 1
        entry["versions"][meta.version] = pkt
        entry["nil"] = entry["nil"] or pkt.nil
        graph = self.server.chaining.graph_for(meta.mid)
        if entry["count"] >= graph.total_count:
            del self.at[key]
            return entry, graph
        return None

    def _finish(self, entry: Dict, graph: ServiceGraph) -> None:
        params = self.server.params
        hub = self.server.telemetry
        if entry["nil"]:
            self.discarded += 1
            if hub.enabled:
                hub.inc("merger.discarded")
            dropped = entry["versions"].get(ORIGINAL_VERSION)
            if dropped is None:
                dropped = next(iter(entry["versions"].values()), None)
            self.server.record_drop(dropped)
            return
        merged = apply_merge_ops(entry["versions"], graph.merge_ops,
                                 telemetry=hub)
        merged.stamp("merged", self.server.env.now)
        # Rendezvous latency: AT bookkeeping plus the copy-collection
        # penalty (§6.3.2), charged as pipeline latency, not core time.
        delay = params.merge_latency_us + (
            (graph.num_versions - 1) * params.copy_merge_latency_us
        ) + graph.total_count * params.merge_per_notification_us + len(
            graph.merge_ops
        ) * params.merge_per_mo_us
        if hub.enabled:
            hub.inc("merger.merged")
            # wait_us: AT entry opening -> last notification (rendezvous
            # wait); duration_us: the apply/bookkeeping latency itself.
            # Both ride on the event so stage rollups need no pairing.
            hub.span(SpanKind.MERGE_APPLY, self.server.env.now, merged.meta,
                     name=f"merger{self.index}", duration_us=delay,
                     args={"wait_us": self.server.env.now - entry["opened_us"]})
        self.merged += 1
        self.server.emit(merged, extra_delay=delay)


class NFPServer:
    """A full simulated NFP box processing deployed service graphs."""

    def __init__(
        self,
        env: Environment,
        params: SimParams,
        num_mergers: int = 1,
        nf_factory: Optional[Callable[[str, str], NetworkFunction]] = None,
        telemetry: Optional[TelemetryHub] = None,
        flow_cache_size: int = 0,
    ):
        self.env = env
        self.params = params
        #: Telemetry hub shared by the classifier, runtimes, mergers and
        #: NFs; the disabled NULL_HUB by default (one branch per call site).
        self.telemetry = telemetry if telemetry is not None else NULL_HUB
        self.chaining = ChainingManager()
        #: The classifier's LRU flow cache (``flow_cache_size`` > 0
        #: enables it).  Off by default: the Table 4 calibration anchors
        #: are stated for the uncached classifier path.
        self.flow_cache: Optional[FlowCache] = None
        if flow_cache_size > 0:
            self.flow_cache = FlowCache(flow_cache_size)
            self.chaining.on_install(self.flow_cache.invalidate)
        self.pool = PacketPool(capacity=1 << 16)
        self.nic_tx = Nic(env, params, name="tx")

        self._cores = 0
        self.classifier_core = self._new_core("classifier")
        self.ingress = Ring(env, params.ring_capacity, name="classifier.rx")
        env.process(self._classifier_loop())

        self.num_mergers = num_mergers
        self.mergers: List[_MergerSim] = [
            _MergerSim(self, i, self._new_core(f"merger{i}")) for i in range(num_mergers)
        ]

        self._nf_factory = nf_factory or (lambda kind, name: create_nf(kind, name=name))
        self.runtimes: Dict[str, _RuntimeGroup] = {}
        self.nfs: Dict[str, NetworkFunction] = {}
        #: NF name -> instance count for replicated groups only (the
        #: RSS assignment domain); empty on unscaled servers.
        self._scaled_counts: Dict[str, int] = {}

        self._flight: Dict[Tuple[int, int], FlightState] = {}
        self._next_pid = 0

        #: Optional egress hook: when set, finished packets are handed to
        #: it (after NIC tx) instead of being recorded locally -- used to
        #: chain servers into a multi-server pipeline.
        self.on_emit: Optional[Callable[[Packet], None]] = None

        # Measurement sinks.
        self.latency = LatencyStats()
        self.rate = RateMeter()
        self.lost = 0
        self.nil_dropped = 0
        self.emitted_packets: List[Packet] = []
        self.keep_packets = False
        #: When True, every packet records (label, timestamp) checkpoints
        #: usable by repro.eval.breakdown.
        self.record_timeline = False

    # ------------------------------------------------------------- wiring
    def _new_core(self, name: str) -> Core:
        core = Core(self.env, self._cores, name=name)
        self._cores += 1
        return core

    @property
    def cores_used(self) -> int:
        return self._cores

    def deploy(
        self,
        deployed: DeployedGraph,
        scale: Optional[Dict[str, int]] = None,
    ) -> None:
        """Install a deployed graph: tables plus runtime(s) per NF.

        ``scale`` maps NF names to instance counts (default 1); scaled
        NFs get one pinned core per instance and flows are RSS-split
        across them (§7's in-server scaling).  When the deployment
        itself carries a :class:`~repro.core.scaling.ScaledGraph` (the
        orchestrator's ``deploy(scale=...)`` path), its counts are used
        unless an explicit ``scale`` overrides them.
        """
        if scale is None:
            scale = deployed.scale
        self.chaining.install(deployed.tables)
        graph = deployed.graph
        for stage_index, stage in enumerate(graph.stages):
            for entry in stage:
                name = entry.node.name
                if name in self.runtimes:
                    raise ValueError(f"NF instance {name!r} already running")
                count = scale.get(name, 1)
                if count < 1:
                    raise ValueError(f"scale for {name!r} must be >= 1")
                group = _RuntimeGroup(name)
                for replica in range(count):
                    label = name if count == 1 else f"{name}#{replica}"
                    nf = self._nf_factory(entry.node.kind, label)
                    nf.telemetry = self.telemetry
                    if count == 1:
                        self.nfs[name] = nf
                    else:
                        self.nfs[label] = nf
                    group.add(_NFRuntimeSim(
                        self, nf, stage_index, entry, self._new_core(label)
                    ))
                self.runtimes[name] = group
                if count > 1:
                    self._scaled_counts[name] = count

    # ------------------------------------------------------------ ingress
    def inject(self, pkt: Packet) -> None:
        """Receive a packet on the NIC; reaches the classifier after the
        driver cost."""
        if pkt.ingress_us == 0.0:
            pkt.ingress_us = self.env.now
        try:
            self.pool.alloc(len(pkt.buf))
        except Exception:
            pass  # pool accounting never drops in simulation

        if self.record_timeline and pkt.timeline is None:
            pkt.timeline = []
        pkt.stamp("nic-rx", pkt.ingress_us)

        def rx():
            yield self.env.timeout(self.params.nic_io_us)
            if not self.ingress.try_put(pkt):
                self.lost += 1
                self.telemetry.inc("drops.ingress_full")

        self.env.process(rx())

    def _classifier_loop(self):
        params = self.params
        cache = self.flow_cache
        hub = self.telemetry
        while True:
            first = yield self.ingress.get()
            batch = [first] + self.ingress.get_batch(params.batch_size - 1)
            work = []
            for pkt in batch:
                key = self._flow_key(pkt)
                decision = None
                if cache is not None:
                    if key is None:
                        cache.bypasses += 1
                        if hub.enabled:
                            hub.inc("classifier.cache_bypass")
                    else:
                        decision = cache.get(key)
                if decision is not None:
                    # Hit: the memoized CT match + fan-out decision is
                    # reused; only the hash + metadata stamp cost remains.
                    if hub.enabled:
                        hub.inc("classifier.cache_hit")
                    yield self.core_execute_classifier(
                        params.classifier_cache_hit_us)
                    work.append((pkt, decision))
                    continue
                entry = self.chaining.classify(pkt.five_tuple())
                if entry is None:
                    self.lost += 1
                    continue
                graph = self.chaining.graph_for(entry.mid)
                service = (
                    params.classifier_tag_us
                    if graph.has_parallelism
                    else params.classifier_fwd_us
                )
                yield self.core_execute_classifier(service)
                decision = FlowDecision(
                    entry, graph, self._assignment_for(key))
                if cache is not None and key is not None:
                    if hub.enabled:
                        hub.inc("classifier.cache_miss")
                    if cache.put(key, decision) and hub.enabled:
                        hub.inc("classifier.cache_evict")
                work.append((pkt, decision))
            for pkt, decision in work:
                pkt.stamp("classified", self.env.now)
                extra = self._classify_one(pkt, decision)
                if extra > 0:
                    yield self.core_execute_classifier(extra)

    def core_execute_classifier(self, duration: float):
        return self.classifier_core.execute(duration)

    def _flow_key(self, pkt: Packet) -> Optional[tuple]:
        """The packet's RSS/flow-cache key; None when it has none.

        Skipped entirely (returns None) when no NF group is replicated
        and no flow cache is installed -- the unscaled fast path.
        """
        if self.flow_cache is None and not self._scaled_counts:
            return None
        return flow_key(pkt)

    def _assignment_for(self, key: Optional[tuple]) -> Dict[str, int]:
        """RSS instance assignment across all scaled runtime groups."""
        return assign_instances(key, self._scaled_counts)

    def _classify_one(self, pkt: Packet, decision: FlowDecision) -> float:
        """Tag metadata, run CT actions; returns extra core time spent."""
        ct_entry, graph = decision.ct_entry, decision.graph
        pid = self._next_pid = (self._next_pid + 1) % (1 << 40)
        pkt.meta = PacketMeta(mid=ct_entry.mid, pid=pid, version=ORIGINAL_VERSION)
        state = FlightState(pkt, assignment=decision.assignment)
        self._flight[(ct_entry.mid, pid)] = state

        hub = self.telemetry
        if hub.enabled:
            hub.inc("classifier.packets")
            hub.span(SpanKind.CLASSIFY, self.env.now, pkt.meta,
                     name="classifier", args={"ingress_us": pkt.ingress_us})

        extra = 0.0
        stage0 = graph.stages[0]
        # Stage-0 copies.
        for copy in graph.copies:
            if copy.stage_index == 0:
                new_pkt, cost = self._make_copy(pkt, copy)
                state.versions[copy.version] = new_pkt
                extra += cost
        # Distribute each version to its stage-0 NFs.
        for version in sorted(stage0.versions()):
            for entry in stage0.entries_on(version):
                pkt_v = state.versions[version]
                self._post(self._ring_for(entry.node.name, state), pkt_v)
                extra += self.params.ring_hop_us
        return extra

    def _ring_for(self, name: str, state: FlightState) -> Ring:
        """The rx ring this packet's flow is pinned to for NF ``name``."""
        group = self.runtimes[name]
        if group.count == 1:
            return group.instances[0].rx
        return group.ring(state.assignment.get(name, 0))

    # ----------------------------------------------------- copy machinery
    def _make_copy(self, base: Packet, copy_spec) -> Tuple[Packet, float]:
        if base.nil:
            return base.make_nil(), 0.0
        if copy_spec.header_only:
            new_pkt = base.header_copy(copy_spec.version, HEADER_COPY_BYTES)
        else:
            new_pkt = base.full_copy(copy_spec.version)
        try:
            self.pool.alloc(len(new_pkt.buf), is_copy=True)
        except Exception:
            pass
        cost = self.params.copy_cost_us(len(new_pkt.buf))
        hub = self.telemetry
        if hub.enabled:
            # OP#2 header-only vs OP#1 full copies (§4.2).
            kind = "header" if copy_spec.header_only else "full"
            hub.inc(f"copy.{kind}")
            hub.span(SpanKind.COPY, self.env.now, new_pkt.meta, name=kind,
                     duration_us=cost, args={"bytes": len(new_pkt.buf)})
        return new_pkt, cost

    # ------------------------------------------------------ completion hook
    def nf_complete(self, runtime: _NFRuntimeSim, pkt: Packet) -> float:
        """Bookkeeping after an NF finishes one packet.

        Runs the NF's functional logic result through the barrier state
        machine and executes FT actions.  Returns extra core time the
        runtime must charge (ring hops + copies it performed).
        """
        meta = pkt.meta
        state = self._flight.get((meta.mid, meta.pid))
        if state is None:
            return 0.0
        graph = self.chaining.graph_for(meta.mid)
        stage_index = runtime.stage_index
        version = runtime.entry.version

        if not pkt.nil:
            ctx = runtime.nf.handle(pkt)
            if ctx.dropped:
                state.dropped.add(version)

        extra = 0.0
        last_stage = graph.last_stage_of_version(version)
        if stage_index == last_stage:
            # Final stage for this version: notify the merger (or output
            # directly for a strictly sequential graph).
            out_pkt = self._version_packet(state, version)
            if graph.needs_merger:
                self._notify_merger(out_pkt)
                extra += self.params.ring_hop_us
            else:
                self._flight.pop((meta.mid, meta.pid), None)
                if out_pkt.nil:
                    self.record_drop(out_pkt)
                else:
                    self.emit(out_pkt)
            return extra

        # Mid-graph: version barrier.
        key = (stage_index, version)
        remaining = state.barriers.get(key)
        if remaining is None:
            remaining = len(graph.stages[stage_index].entries_on(version))
        remaining -= 1
        state.barriers[key] = remaining
        if remaining > 0:
            return 0.0

        # Barrier complete: this runtime forwards to the next stage.
        next_stage = graph.stages[stage_index + 1]
        fwd_pkt = self._version_packet(state, version)
        if version == ORIGINAL_VERSION:
            for copy in graph.copies:
                if copy.stage_index == stage_index + 1:
                    new_pkt, cost = self._make_copy(fwd_pkt, copy)
                    state.versions[copy.version] = new_pkt
                    extra += cost
                    for entry in next_stage.entries_on(copy.version):
                        self._post(
                            self._ring_for(entry.node.name, state), new_pkt
                        )
                        extra += self.params.ring_hop_us
        for entry in next_stage.entries_on(version):
            self._post(self._ring_for(entry.node.name, state), fwd_pkt)
            extra += self.params.ring_hop_us
        return extra

    def _version_packet(self, state: FlightState, version: int) -> Packet:
        pkt = state.versions[version]
        if version in state.dropped and not pkt.nil:
            pkt = pkt.make_nil()
            state.versions[version] = pkt
        return pkt

    def _notify_merger(self, pkt: Packet) -> None:
        merger = self.mergers[pkt.meta.pid % self.num_mergers]
        self._post(merger.rx, pkt, delay=self.params.merger_hop_latency_us)

    # ------------------------------------------------------------- egress
    def _post(self, ring: Ring, pkt: Packet, delay: Optional[float] = None) -> None:
        """Deliver a reference after the pipeline's batch latency."""
        wait = self.params.batch_wait_us if delay is None else delay
        hub = self.telemetry
        if hub.enabled:
            hub.inc("ring.hops")
            hub.span(SpanKind.ENQUEUE, self.env.now, pkt.meta, name=ring.name)

        def delayed():
            yield self.env.timeout(wait)
            if not ring.try_put(pkt):
                self.lost += 1
                hub.inc("drops.ring_full")

        self.env.process(delayed())

    def emit(self, pkt: Packet, extra_delay: float = 0.0) -> None:
        """Send a finished packet out of the NIC and record metrics."""
        if pkt.meta is not None:
            self._flight.pop((pkt.meta.mid, pkt.meta.pid), None)

        def tx():
            if extra_delay > 0:
                yield self.env.timeout(extra_delay)
            yield self.env.timeout(self.params.nic_io_us)
            yield self.nic_tx.transmit(pkt.wire_len)
            pkt.stamp("nic-tx", self.env.now)
            hub = self.telemetry
            if hub.enabled:
                hub.inc("tx.packets")
                hub.span(SpanKind.OUTPUT, self.env.now, pkt.meta, name="nic-tx")
            if self.on_emit is not None:
                self.on_emit(pkt)
                return
            latency_us = self.env.now - pkt.ingress_us
            if hub.enabled:
                hub.observe("latency_us", latency_us)
            self.latency.record(latency_us)
            self.rate.record_delivery(self.env.now)
            if self.keep_packets:
                self.emitted_packets.append(pkt)

        self.env.process(tx())

    def record_drop(self, pkt: Optional[Packet]) -> None:
        self.nil_dropped += 1
        hub = self.telemetry
        if hub.enabled:
            hub.inc("drops.nil")
            if pkt is not None:
                hub.span(SpanKind.DROP, self.env.now, pkt.meta, name="nil")
        if pkt is not None and pkt.meta is not None:
            self._flight.pop((pkt.meta.mid, pkt.meta.pid), None)

    # ---------------------------------------------------------- telemetry
    def collect_telemetry(self) -> None:
        """Sample end-of-run state into gauges (rings, cores, engine, AT).

        Counters and spans stream in live; occupancy watermarks and
        utilisation only make sense once the run is over, so callers
        (harness, CLI) invoke this after the environment drains.
        """
        hub = self.telemetry
        if not hub.enabled:
            return
        hub.gauge("engine.events_processed", float(self.env.events_processed))
        hub.gauge("engine.queue_hwm", float(self.env.queue_high_watermark))
        rings = [self.ingress] + [m.rx for m in self.mergers]
        cores = [self.classifier_core] + [m.core for m in self.mergers]
        for group in self.runtimes.values():
            for runtime in group.instances:
                rings.append(runtime.rx)
                cores.append(runtime.core)
        for ring in rings:
            hub.gauge(f"ring.{ring.name}.hwm", float(ring.high_watermark))
            hub.gauge(f"ring.{ring.name}.depth", float(len(ring)))
        for core in cores:
            hub.gauge(f"core.{core.name}.utilisation", core.utilisation())
        for merger in self.mergers:
            hub.gauge(f"merger{merger.index}.at_hwm",
                      float(merger.at_high_watermark))
            hub.gauge(f"merger{merger.index}.at_depth", float(len(merger.at)))
        if self.flow_cache is not None:
            hub.gauge("classifier.flow_cache.size", float(len(self.flow_cache)))
            hub.gauge("classifier.flow_cache.capacity",
                      float(self.flow_cache.capacity))
            hub.gauge("classifier.flow_cache.invalidations",
                      float(self.flow_cache.invalidations))
