"""The simulated NFP server: classifier, NF runtimes, mergers (§5).

This is the timed counterpart of :mod:`repro.dataplane.functional`: the
same packets, NF objects and merge code, but every step costs calibrated
time on a pinned core inside the DES -- so latency, throughput and loss
emerge from queueing exactly as on the paper's testbed.

Topology (Fig. 3)::

    NIC rx --> [classifier core] --> per-NF rx rings --> [NF cores]
                 |  CT lookup, metadata,                   |  NF logic +
                 |  stage-0 copies                         |  FT actions
                 v                                         v
              flight state (shared memory) <--- version barriers
                                                           |
               [merger cores] <--- merger agent hash ------+
                 |  AT accumulation, MOs
                 v
               NIC tx --> recorded latency / rate

Execution rules:

* every packet reference delivery costs ``ring_hop_us`` on the sending
  core plus ``batch_wait_us`` of pure pipeline latency;
* an NF runtime polls its ring in bursts of ``batch_size``;
* version barriers: refs advance to the next stage once all same-stage
  NFs of that version finished; the completing runtime executes the
  copy/distribute actions (§5.2);
* drops become nil packets that flow through the remaining graph so the
  merger's count completes naturally (§5.3);
* the merger agent hashes the immutable PID to pick a merger instance.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from ..core.graph import ORIGINAL_VERSION, ServiceGraph, StageEntry
from ..core.orchestrator import DeployedGraph
from ..core.tables import build_tables
from ..faults import FaultInjector, FaultKind, HealthBoard, HealthState, base_name
from ..faults.recovery import linearize
from ..net.packet import HEADER_COPY_BYTES, Packet, PacketMeta
from ..nfs.base import NetworkFunction, create_nf
from ..sim import Core, Environment, Nic, PacketPool, RateMeter, Ring, SimParams
from ..sim.engine import Event, Interrupt
from ..sim.stats import LatencyStats
from ..telemetry.hooks import NULL_HUB, TelemetryHub
from ..telemetry.tracer import SpanKind
from .chaining import ChainingManager
from .flowsplit import FlowCache, FlowDecision, assign_instances, flow_key
from .merging import apply_merge_ops

__all__ = ["NFPServer", "FlightState"]

#: Shared empty assignment for packets of unscaled graphs.
_NO_ASSIGNMENT: Dict[str, int] = {}


class FlightState:
    """Shared per-packet state: versions, drops, barriers, instance pins.

    ``assignment`` is the flow's RSS instance assignment (NF name ->
    instance index), computed once at classification time and read by
    every dispatch site -- so all copies/versions of one packet, and all
    packets of one flow, land on the same instance of each scaled NF.
    """

    __slots__ = ("versions", "dropped", "barriers", "assignment", "opened_us")

    def __init__(self, pkt: Packet, assignment: Optional[Mapping[str, int]] = None,
                 opened_us: float = 0.0):
        self.versions: Dict[int, Packet] = {ORIGINAL_VERSION: pkt}
        self.dropped: Set[int] = set()
        self.barriers: Dict[Tuple[int, int], int] = {}
        self.assignment: Mapping[str, int] = (
            _NO_ASSIGNMENT if assignment is None else assignment
        )
        #: Classification time; ages the entry for the flight sweeper.
        self.opened_us = opened_us


class _NFRuntimeSim:
    """One NF pinned to one core with its receive ring (§5.2)."""

    def __init__(self, server: "NFPServer", nf: NetworkFunction, stage_index: int,
                 entry: StageEntry, core: Core,
                 group: Optional["_RuntimeGroup"] = None):
        self.server = server
        self.nf = nf
        self.stage_index = stage_index
        self.entry = entry
        self.core = core
        self.group = group
        self.rx = Ring(server.env, server.params.ring_capacity, name=f"{nf.name}.rx")
        #: Back-reference for delivery-time health checks and overflow
        #: accounting (see ``NFPServer._post`` / ``Ring.on_drop``).
        self.rx.owner = self
        #: True once a live scale-down retired this instance.
        self.retired = False
        #: The poll-loop process; kept so a scale-down can interrupt it.
        self.proc = server.env.process(self._run())

    def _run(self):
        try:
            yield from self._poll_loop()
        except Interrupt:
            # Live scale-down: the membership barrier already drained
            # all traffic, so the ring is empty; retire quietly.
            self.retired = True

    def _poll_loop(self):
        # Batch-synchronous, like a DPDK poll loop: drain a burst,
        # process every packet, then forward the whole burst.  This
        # preserves traffic burstiness through the chain, which is what
        # makes per-stage queueing (and hence the parallelism win)
        # behave like the real system.
        server = self.server
        params = server.params
        hub = server.telemetry
        enabled = hub.enabled  # fixed for the server's lifetime
        injector = server.injector
        while True:
            first = yield self.rx.get()
            batch = [first] + self.rx.get_batch(params.batch_size - 1)
            for index, pkt in enumerate(batch):
                slow = 1.0
                if injector is not None:
                    health = injector.on_packet(self.nf.name, server.env.now)
                    if health is HealthState.DEAD:
                        # Crash: the whole burst dies with the instance
                        # -- earlier packets in it were serviced but
                        # their results are only committed after the
                        # burst (batch-synchronous loop), so a crash
                        # loses them too.  Abort everything, drain the
                        # ring, die.
                        for stranded in batch:
                            server.fault_abort(self, stranded)
                        self._drain_dead()
                        return
                    if health is HealthState.HUNG:
                        # Wedge forever holding the rest of the burst;
                        # the flight sweeper reclaims those packets and
                        # failover redirects the flows.
                        yield server.env.event()
                    if health is HealthState.SLOW:
                        slow = injector.slow_factor(self.nf.name)
                if enabled:
                    hub.span(SpanKind.NF_START, server.env.now, pkt.meta,
                             name=self.nf.name)
                if pkt.nil:
                    service = params.nf_runtime_us
                else:
                    service = params.nf_runtime_us + params.nf_service(
                        self.nf.KIND, self.nf.extra_cycles
                    )
                service *= slow
                yield self.core.execute(service)
                pkt.stamp(f"nf:{self.nf.name}", server.env.now)
                if enabled:
                    hub.observe(f"nf.{self.nf.name}.service_us", service)
                    hub.span(SpanKind.NF_END, server.env.now, pkt.meta,
                             name=self.nf.name, duration_us=service)
            for pkt in batch:
                extra = self.server.nf_complete(self, pkt)
                if extra > 0:
                    yield self.core.execute(extra)

    def _drain_dead(self) -> None:
        """Abort everything buffered in a crashed instance's ring."""
        while True:
            stranded = self.rx.get_batch(self.server.params.batch_size)
            if not stranded:
                return
            for pkt in stranded:
                self.server.fault_abort(self, pkt)


class _RuntimeGroup:
    """All instances of one (possibly scaled-out) NF.

    §7: "NFP can support NF scaling inside one server by allocating
    remaining CPU cores to new NF instances".  Flows are split across
    instances by a 5-tuple hash so per-flow state stays on one
    instance and packet order within a flow is preserved.
    """

    def __init__(self, name: str):
        self.name = name
        self.instances: List[_NFRuntimeSim] = []
        #: MID -> (stage index, stage entry) for every graph this group
        #: serves.  One deployment per NF normally; graceful degradation
        #: adds the NF's placement in the degraded sequential graph.
        self.placements: Dict[int, Tuple[int, StageEntry]] = {}
        #: Replacement runtimes spawned after crashes (label suffix).
        self.restarts = 0
        #: Label-generation counter for autoscale re-adds: a retired
        #: index re-grown later must not reuse its old label.
        self.generations = 0

    def add(self, runtime: "_NFRuntimeSim") -> None:
        runtime.group = self
        self.instances.append(runtime)

    def index_of(self, label: str) -> Optional[int]:
        for i, runtime in enumerate(self.instances):
            if runtime.nf.name == label:
                return i
        return None

    @property
    def count(self) -> int:
        return len(self.instances)

    def ring(self, index: int) -> Ring:
        """The rx ring of one instance (index 0 for unscaled groups)."""
        if len(self.instances) == 1:
            return self.instances[0].rx
        return self.instances[index % len(self.instances)].rx

    @property
    def rx_packets(self) -> int:
        return sum(r.nf.rx_packets for r in self.instances)


class _MergerSim:
    """One merger instance: AT accumulation plus MO execution (§5.3)."""

    def __init__(self, server: "NFPServer", index: int, core: Core):
        self.server = server
        self.index = index
        self.core = core
        self.rx = Ring(server.env, server.params.ring_capacity, name=f"merger{index}.rx")
        #: The dynamic Accumulating Table: (mid, pid) -> state.
        self.at: Dict[Tuple[int, int], Dict] = {}
        self.at_high_watermark = 0
        self.merged = 0
        self.discarded = 0
        #: Entries reclaimed by the AT timeout sweeper.
        self.timed_out = 0
        self._sweeping = False
        server.env.process(self._run())

    def _run(self):
        params = self.server.params
        while True:
            first = yield self.rx.get()
            batch = [first] + self.rx.get_batch(params.batch_size - 1)
            for pkt in batch:
                yield self.core.execute(params.merger_per_copy_us)
                done = self._accumulate(pkt)
                if done is not None:
                    entry, graph = done
                    yield self.core.execute(params.merger_base_us)
                    self._finish(entry, graph)

    def _accumulate(self, pkt: Packet):
        meta = pkt.meta
        hub = self.server.telemetry
        key = (meta.mid, meta.pid)
        entry = self.at.get(key)
        if entry is None:
            if key not in self.server._flight:
                # The packet was already accounted (AT timeout, ring
                # overflow, flight sweep); a late notification must not
                # reopen an entry that can never complete.
                if hub.enabled:
                    hub.inc("merger.stale_notification")
                return None
            entry = {"count": 0, "versions": {}, "nil": False,
                     "opened_us": self.server.env.now}
            self.at[key] = entry
            self.at_high_watermark = max(self.at_high_watermark, len(self.at))
            self._maybe_sweep()
            if hub.enabled:
                hub.inc("merger.at_insert")
                hub.span(SpanKind.MERGE_WAIT, self.server.env.now, meta,
                         name=f"merger{self.index}")
        elif hub.enabled:
            hub.inc("merger.at_hit")
        entry["count"] += 1
        entry["versions"][meta.version] = pkt
        entry["nil"] = entry["nil"] or pkt.nil
        graph = self.server.chaining.graph_for(meta.mid)
        if entry["count"] >= graph.total_count:
            del self.at[key]
            return entry, graph
        return None

    def _finish(self, entry: Dict, graph: ServiceGraph) -> None:
        params = self.server.params
        hub = self.server.telemetry
        if entry["nil"]:
            self.discarded += 1
            if hub.enabled:
                hub.inc("merger.discarded")
            self.server.record_drop(_drop_witness(entry))
            return
        merged = apply_merge_ops(entry["versions"], graph.merge_ops,
                                 telemetry=hub)
        merged.stamp("merged", self.server.env.now)
        # Rendezvous latency: AT bookkeeping plus the copy-collection
        # penalty (§6.3.2), charged as pipeline latency, not core time.
        delay = params.merge_latency_us + (
            (graph.num_versions - 1) * params.copy_merge_latency_us
        ) + graph.total_count * params.merge_per_notification_us + len(
            graph.merge_ops
        ) * params.merge_per_mo_us
        if hub.enabled:
            hub.inc("merger.merged")
            # wait_us: AT entry opening -> last notification (rendezvous
            # wait); duration_us: the apply/bookkeeping latency itself.
            # Both ride on the event so stage rollups need no pairing.
            hub.span(SpanKind.MERGE_APPLY, self.server.env.now, merged.meta,
                     name=f"merger{self.index}", duration_us=delay,
                     args={"wait_us": self.server.env.now - entry["opened_us"]})
        self.merged += 1
        self.server.emit(merged, extra_delay=delay)

    # -------------------------------------------------- AT entry timeouts
    def _maybe_sweep(self) -> None:
        """Arm the lazy timeout sweeper (idle whenever the AT is empty)."""
        if self._sweeping or self.server.params.at_timeout_us <= 0:
            return
        self._sweeping = True
        self.server.env.process(self._sweep())

    def _sweep(self):
        server = self.server
        timeout = server.params.at_timeout_us
        interval = max(timeout / 4.0, 1.0)
        while self.at:
            yield server.env.timeout(interval)
            now = server.env.now
            expired = [key for key, entry in self.at.items()
                       if now - entry["opened_us"] >= timeout]
            for key in expired:
                self._expire(key, self.at.pop(key))
        self._sweeping = False

    def _expire(self, key: Tuple[int, int], entry: Dict) -> None:
        """Reclaim a stranded entry: merge what arrived, or account it.

        Missing branches are treated as nil notifications that will
        never come.  When version 1 and every merge source did arrive
        (and nothing collected is nil), the merge of the partial set is
        emitted -- the packet survives the fault.  Otherwise the packet
        is accounted as an ``at_timeout`` drop; either way the entry,
        and the packet's flight state, are reclaimed instead of leaking.
        """
        server = self.server
        hub = server.telemetry
        self.timed_out += 1
        hub.inc("merger.at_timeout")
        versions = entry["versions"]
        graph: Optional[ServiceGraph]
        try:
            graph = server.chaining.graph_for(key[0])
        except KeyError:
            graph = None
        usable = (
            graph is not None
            and not entry["nil"]
            and ORIGINAL_VERSION in versions
            and all(op.src_version is None or op.src_version in versions
                    for op in graph.merge_ops)
        )
        if usable:
            merged = apply_merge_ops(versions, graph.merge_ops, telemetry=hub)
            if merged is not None:
                hub.inc("merger.at_timeout_emit")
                merged.stamp("merged-degraded", server.env.now)
                # The degraded merge is still a merge: record it so
                # rollups and critical-path attribution see the (huge)
                # rendezvous wait the timeout exposed.
                hub.span(SpanKind.MERGE_APPLY, server.env.now, merged.meta,
                         name=f"merger{self.index}",
                         duration_us=server.params.merge_latency_us,
                         args={"wait_us":
                               server.env.now - entry["opened_us"],
                               "degraded": True})
                self.merged += 1
                server.emit(merged, extra_delay=server.params.merge_latency_us)
                return
        server.account_drop(_drop_witness(entry), "at_timeout")


def _drop_witness(entry: Dict) -> Optional[Packet]:
    """The packet recorded for a discarded AT entry.

    Version 1 when collected, else deterministically the lowest
    collected version number -- never dict insertion order, which
    varies with NF completion timing.
    """
    versions = entry["versions"]
    witness = versions.get(ORIGINAL_VERSION)
    if witness is None and versions:
        witness = versions[min(versions)]
    return witness


class NFPServer:
    """A full simulated NFP box processing deployed service graphs."""

    def __init__(
        self,
        env: Environment,
        params: SimParams,
        num_mergers: int = 1,
        nf_factory: Optional[Callable[[str, str], NetworkFunction]] = None,
        telemetry: Optional[TelemetryHub] = None,
        flow_cache_size: int = 0,
        injector: Optional[FaultInjector] = None,
    ):
        self.env = env
        self.params = params
        #: Optional fault injector; when attached, instance health is
        #: consulted on every served/delivered packet, transitions drive
        #: failover/degradation, and the flight sweeper guarantees every
        #: injected packet is eventually emitted or reason-accounted.
        self.injector = injector
        if injector is not None:
            injector.on_transition(self._on_health_transition)
        #: Telemetry hub shared by the classifier, runtimes, mergers and
        #: NFs; the disabled NULL_HUB by default (one branch per call site).
        self.telemetry = telemetry if telemetry is not None else NULL_HUB
        self.chaining = ChainingManager()
        #: The classifier's LRU flow cache (``flow_cache_size`` > 0
        #: enables it).  Off by default: the Table 4 calibration anchors
        #: are stated for the uncached classifier path.
        self.flow_cache: Optional[FlowCache] = None
        if flow_cache_size > 0:
            self.flow_cache = FlowCache(flow_cache_size)
            self.chaining.on_install(self.flow_cache.invalidate)
        self.pool = PacketPool(capacity=1 << 16)
        self.nic_tx = Nic(env, params, name="tx")

        self._cores = 0
        self.classifier_core = self._new_core("classifier")
        self.ingress = Ring(env, params.ring_capacity, name="classifier.rx")
        self.ingress.on_drop = self._ingress_overflow
        env.process(self._classifier_loop())

        self.num_mergers = num_mergers
        self.mergers: List[_MergerSim] = [
            _MergerSim(self, i, self._new_core(f"merger{i}")) for i in range(num_mergers)
        ]

        self._nf_factory = nf_factory or (lambda kind, name: create_nf(kind, name=name))
        self.runtimes: Dict[str, _RuntimeGroup] = {}
        self.nfs: Dict[str, NetworkFunction] = {}
        #: NF name -> instance count for replicated groups only (the
        #: RSS assignment domain); empty on unscaled servers.
        self._scaled_counts: Dict[str, int] = {}

        self._flight: Dict[Tuple[int, int], FlightState] = {}
        self._next_pid = 0

        #: Optional egress hook: when set, finished packets are handed to
        #: it (after NIC tx) instead of being recorded locally -- used to
        #: chain servers into a multi-server pipeline.
        self.on_emit: Optional[Callable[[Packet], None]] = None

        # Measurement sinks.
        self.latency = LatencyStats()
        self.rate = RateMeter()
        self.lost = 0
        self.nil_dropped = 0
        self.emitted_packets: List[Packet] = []
        self.keep_packets = False
        #: When True, every packet records (label, timestamp) checkpoints
        #: usable by repro.eval.breakdown.
        self.record_timeline = False

        # Conservation ledger: every injected packet must end up in
        # ``emitted`` or in exactly one reason bucket of ``drops``.
        self.injected = 0
        self.emitted = 0
        self.drops: Dict[str, int] = {}

        # Failover state.
        self.health = HealthBoard()
        #: Cached-flow reassignments performed by failover so far.
        self.reassigned_flows = 0
        #: original MID -> degraded sequential MID.
        self.degraded_mids: Dict[int, int] = {}
        self._flight_sweeping = False

        # Live membership (autoscaling) state.
        #: Classifier hold gate: a pending event while a membership
        #: change drains the pipeline; None when traffic flows freely.
        self._hold: Optional[Event] = None
        #: Flow keys seen by the classifier, kept only when a membership
        #: controller enabled it (state handover needs *every* live
        #: flow, not just the cached ones).
        self.flow_directory: Optional[Set[tuple]] = None
        #: Completed membership changes, in order (dicts; see _rescale).
        self.scale_events: List[Dict] = []
        #: Flows whose instance pin changed across all rescales.
        self.moved_flows = 0
        #: Moved flows that actually carried NF state across.
        self.handover_flows = 0

        for merger in self.mergers:
            merger.rx.on_drop = self._merger_overflow

    # ------------------------------------------------------------- wiring
    def _new_core(self, name: str) -> Core:
        core = Core(self.env, self._cores, name=name)
        self._cores += 1
        return core

    @property
    def cores_used(self) -> int:
        return self._cores

    def deploy(
        self,
        deployed: DeployedGraph,
        scale: Optional[Dict[str, int]] = None,
    ) -> None:
        """Install a deployed graph: tables plus runtime(s) per NF.

        ``scale`` maps NF names to instance counts (default 1); scaled
        NFs get one pinned core per instance and flows are RSS-split
        across them (§7's in-server scaling).  When the deployment
        itself carries a :class:`~repro.core.scaling.ScaledGraph` (the
        orchestrator's ``deploy(scale=...)`` path), its counts are used
        unless an explicit ``scale`` overrides them.
        """
        if scale is None:
            scale = deployed.scale
        self.chaining.install(deployed.tables)
        graph = deployed.graph
        for stage_index, stage in enumerate(graph.stages):
            for entry in stage:
                name = entry.node.name
                if name in self.runtimes:
                    raise ValueError(f"NF instance {name!r} already running")
                count = scale.get(name, 1)
                if count < 1:
                    raise ValueError(f"scale for {name!r} must be >= 1")
                group = _RuntimeGroup(name)
                group.placements[deployed.mid] = (stage_index, entry)
                for replica in range(count):
                    label = name if count == 1 else f"{name}#{replica}"
                    group.add(self._spawn_runtime(label, entry, stage_index))
                self.runtimes[name] = group
                self.health.register(name, count)
                if count > 1:
                    self._scaled_counts[name] = count

    def _spawn_runtime(
        self, label: str, entry: StageEntry, stage_index: int
    ) -> _NFRuntimeSim:
        """One NF instance on a fresh core, overflow hook attached."""
        nf = self._nf_factory(entry.node.kind, label)
        nf.telemetry = self.telemetry
        self.nfs[label] = nf
        runtime = _NFRuntimeSim(self, nf, stage_index, entry, self._new_core(label))
        runtime.rx.on_drop = lambda pkt, rt=runtime: self._nf_ring_overflow(rt, pkt)
        return runtime

    # ------------------------------------------------------------ ingress
    def inject(self, pkt: Packet) -> None:
        """Receive a packet on the NIC; reaches the classifier after the
        driver cost."""
        if pkt.ingress_us == 0.0:
            pkt.ingress_us = self.env.now
        self.injected += 1
        try:
            self.pool.alloc(len(pkt.buf))
        except Exception:
            pass  # pool accounting never drops in simulation

        if self.record_timeline and pkt.timeline is None:
            pkt.timeline = []
        pkt.stamp("nic-rx", pkt.ingress_us)

        def rx():
            yield self.env.timeout(self.params.nic_io_us)
            self.ingress.try_put(pkt)  # overflow -> _ingress_overflow

        self.env.process(rx())

    def _ingress_overflow(self, pkt: Packet) -> None:
        self.lost += 1
        self.telemetry.inc("drops.ingress_full")
        self.telemetry.inc("ring.overflow_drop")
        self._count_drop("ingress_full")

    def _classifier_loop(self):
        params = self.params
        cache = self.flow_cache
        hub = self.telemetry
        while True:
            first = yield self.ingress.get()
            if self._hold is not None:
                # Membership change in progress: park (holding this
                # packet unclassified) until the drain barrier lifts, so
                # no packet observes half-moved NF state.  Later
                # arrivals buffer in the ingress ring; its overflow path
                # stays attributed (ingress_full).
                yield self._hold
            batch = [first] + self.ingress.get_batch(params.batch_size - 1)
            work = []
            for pkt in batch:
                key = self._flow_key(pkt)
                if key is not None and self.flow_directory is not None:
                    self.flow_directory.add(key)
                decision = None
                if cache is not None:
                    if key is None:
                        cache.bypasses += 1
                        if hub.enabled:
                            hub.inc("classifier.cache_bypass")
                    else:
                        decision = cache.get(key)
                if decision is not None:
                    # Hit: the memoized CT match + fan-out decision is
                    # reused; only the hash + metadata stamp cost remains.
                    if hub.enabled:
                        hub.inc("classifier.cache_hit")
                    yield self.core_execute_classifier(
                        params.classifier_cache_hit_us)
                    work.append((pkt, decision))
                    continue
                entry = self.chaining.classify(pkt.five_tuple())
                if entry is None:
                    self.lost += 1
                    self._count_drop("no_match")
                    hub.inc("drops.no_match")
                    continue
                graph = self.chaining.graph_for(entry.mid)
                service = (
                    params.classifier_tag_us
                    if graph.has_parallelism
                    else params.classifier_fwd_us
                )
                yield self.core_execute_classifier(service)
                decision = FlowDecision(
                    entry, graph, self._assignment_for(key))
                if cache is not None and key is not None:
                    if hub.enabled:
                        hub.inc("classifier.cache_miss")
                    if cache.put(key, decision) and hub.enabled:
                        hub.inc("classifier.cache_evict")
                work.append((pkt, decision))
            fanout = {} if params.burst_transfers else None
            for pkt, decision in work:
                pkt.stamp("classified", self.env.now)
                extra = self._classify_one(pkt, decision, fanout)
                if extra > 0:
                    yield self.core_execute_classifier(extra)
            if fanout:
                # Slot-based transfers: one delayed event per target
                # ring moves the whole burst (same per-packet residency
                # and drop policy as packet-at-a-time _post).
                for ring, pkts in fanout.items():
                    self._post_burst(ring, pkts)

    def core_execute_classifier(self, duration: float):
        return self.classifier_core.execute(duration)

    def _flow_key(self, pkt: Packet) -> Optional[tuple]:
        """The packet's RSS/flow-cache key; None when it has none.

        Skipped entirely (returns None) when no NF group is replicated,
        no flow cache is installed and no flow directory is tracking --
        the unscaled fast path.
        """
        if (self.flow_cache is None and not self._scaled_counts
                and self.flow_directory is None):
            return None
        return flow_key(pkt)

    def _assignment_for(self, key: Optional[tuple]) -> Dict[str, int]:
        """RSS instance assignment across all scaled runtime groups.

        Failover-aware: groups with casualties rehash over their healthy
        instances; fully healthy groups keep the historical mapping.
        """
        return assign_instances(key, self._scaled_counts,
                                healthy=self.health.view(),
                                telemetry=self.telemetry)

    def _classify_one(
        self, pkt: Packet, decision: FlowDecision, fanout: Optional[dict] = None
    ) -> float:
        """Tag metadata, run CT actions; returns extra core time spent.

        ``fanout`` (burst-transfer mode) collects ring -> packet lists
        for the caller to move with one :meth:`_post_burst` per ring
        instead of posting each reference individually.
        """
        ct_entry, graph = decision.ct_entry, decision.graph
        pid = self._next_pid = (self._next_pid + 1) % (1 << 40)
        pkt.meta = PacketMeta(mid=ct_entry.mid, pid=pid, version=ORIGINAL_VERSION)
        state = FlightState(pkt, assignment=decision.assignment,
                            opened_us=self.env.now)
        self._flight[(ct_entry.mid, pid)] = state
        self._maybe_sweep_flight()

        hub = self.telemetry
        if hub.enabled:
            hub.inc("classifier.packets")
            hub.span(SpanKind.CLASSIFY, self.env.now, pkt.meta,
                     name="classifier", args={"ingress_us": pkt.ingress_us})

        extra = 0.0
        stage0 = graph.stages[0]
        # Stage-0 copies.
        for copy in graph.copies:
            if copy.stage_index == 0:
                new_pkt, cost = self._make_copy(pkt, copy)
                state.versions[copy.version] = new_pkt
                extra += cost
        # Distribute each version to its stage-0 NFs.
        for version in sorted(stage0.versions()):
            for entry in stage0.entries_on(version):
                pkt_v = state.versions[version]
                ring = self._ring_for(entry.node.name, state)
                if fanout is None:
                    self._post(ring, pkt_v)
                else:
                    fanout.setdefault(ring, []).append(pkt_v)
                extra += self.params.ring_hop_us
        return extra

    def _ring_for(self, name: str, state: FlightState) -> Ring:
        """The rx ring this packet's flow is pinned to for NF ``name``."""
        group = self.runtimes[name]
        if group.count == 1:
            return group.instances[0].rx
        return group.ring(state.assignment.get(name, 0))

    # ----------------------------------------------------- copy machinery
    def _make_copy(self, base: Packet, copy_spec) -> Tuple[Packet, float]:
        if base.nil:
            return base.make_nil(), 0.0
        if copy_spec.header_only:
            new_pkt = base.header_copy(copy_spec.version, HEADER_COPY_BYTES)
        else:
            new_pkt = base.full_copy(copy_spec.version)
        try:
            self.pool.alloc(len(new_pkt.buf), is_copy=True)
        except Exception:
            pass
        cost = self.params.copy_cost_us(len(new_pkt.buf))
        hub = self.telemetry
        if hub.enabled:
            # OP#2 header-only vs OP#1 full copies (§4.2).
            kind = "header" if copy_spec.header_only else "full"
            hub.inc(f"copy.{kind}")
            hub.span(SpanKind.COPY, self.env.now, new_pkt.meta, name=kind,
                     duration_us=cost, args={"bytes": len(new_pkt.buf)})
        return new_pkt, cost

    # ------------------------------------------------------ completion hook
    def nf_complete(self, runtime: _NFRuntimeSim, pkt: Packet,
                    faulted: bool = False) -> float:
        """Bookkeeping after an NF finishes one packet.

        Runs the NF's functional logic result through the barrier state
        machine and executes FT actions.  Returns extra core time the
        runtime must charge (ring hops + copies it performed).

        ``faulted`` marks a packet the NF never actually served (crash
        abort, ring overflow): its version is recorded as dropped and
        only the barrier/forwarding machinery runs, so the resulting nil
        reaches the merger and the AT entry completes instead of
        stranding.
        """
        meta = pkt.meta
        state = self._flight.get((meta.mid, meta.pid))
        if state is None:
            return 0.0
        graph = self.chaining.graph_for(meta.mid)
        placement = None
        if runtime.group is not None:
            placement = runtime.group.placements.get(meta.mid)
        if placement is None:
            stage_index, entry = runtime.stage_index, runtime.entry
        else:
            stage_index, entry = placement
        version = entry.version

        if faulted:
            state.dropped.add(version)
        elif not pkt.nil:
            ctx = runtime.nf.handle(pkt)
            if ctx.dropped:
                state.dropped.add(version)

        extra = 0.0
        last_stage = graph.last_stage_of_version(version)
        if stage_index == last_stage:
            # Final stage for this version: notify the merger (or output
            # directly for a strictly sequential graph).
            out_pkt = self._version_packet(state, version)
            if graph.needs_merger:
                self._notify_merger(out_pkt)
                extra += self.params.ring_hop_us
            elif out_pkt.nil:
                self.record_drop(out_pkt)
            else:
                self.emit(out_pkt)
            return extra

        # Mid-graph: version barrier.
        key = (stage_index, version)
        remaining = state.barriers.get(key)
        if remaining is None:
            remaining = len(graph.stages[stage_index].entries_on(version))
        remaining -= 1
        state.barriers[key] = remaining
        if remaining > 0:
            return 0.0

        # Barrier complete: this runtime forwards to the next stage.
        next_stage = graph.stages[stage_index + 1]
        fwd_pkt = self._version_packet(state, version)
        if version == ORIGINAL_VERSION:
            for copy in graph.copies:
                if copy.stage_index == stage_index + 1:
                    new_pkt, cost = self._make_copy(fwd_pkt, copy)
                    state.versions[copy.version] = new_pkt
                    extra += cost
                    for entry in next_stage.entries_on(copy.version):
                        self._post(
                            self._ring_for(entry.node.name, state), new_pkt
                        )
                        extra += self.params.ring_hop_us
        for entry in next_stage.entries_on(version):
            self._post(self._ring_for(entry.node.name, state), fwd_pkt)
            extra += self.params.ring_hop_us
        return extra

    def _version_packet(self, state: FlightState, version: int) -> Packet:
        pkt = state.versions[version]
        if version in state.dropped and not pkt.nil:
            pkt = pkt.make_nil()
            state.versions[version] = pkt
        return pkt

    def _notify_merger(self, pkt: Packet) -> None:
        merger = self.mergers[pkt.meta.pid % self.num_mergers]
        self._post(merger.rx, pkt, delay=self.params.merger_hop_latency_us)

    # ------------------------------------------------------------- egress
    def _post(self, ring: Ring, pkt: Packet, delay: Optional[float] = None) -> None:
        """Deliver a reference after the pipeline's batch latency.

        A full target ring is retried ``ring_retry_limit`` times with
        ``ring_retry_backoff_us`` between attempts (0 retries by
        default: fail-fast ``rte_ring`` semantics); the final failure
        lands in the ring's ``on_drop`` hook, which accounts the loss
        and completes the merger's AT entry.  When a fault injector is
        attached, deliveries to a dead or hung instance are diverted to
        :meth:`fault_abort` instead of piling up in a ring nobody
        drains.
        """
        wait = self.params.batch_wait_us if delay is None else delay
        hub = self.telemetry
        if hub.enabled:
            hub.inc("ring.hops")
            hub.span(SpanKind.ENQUEUE, self.env.now, pkt.meta, name=ring.name)

        def delayed():
            yield self.env.timeout(wait)
            owner = getattr(ring, "owner", None)
            if (owner is not None and self.injector is not None
                    and self.injector.is_down(owner.nf.name)):
                self.fault_abort(owner, pkt)
                return
            retries = self.params.ring_retry_limit
            while ring.is_full and retries > 0:
                retries -= 1
                if hub.enabled:
                    hub.inc("ring.retry")
                yield self.env.timeout(self.params.ring_retry_backoff_us)
            ring.try_put(pkt)  # overflow -> the ring's on_drop hook

        self.env.process(delayed())

    def _post_burst(self, ring: Ring, pkts: List[Packet],
                    delay: Optional[float] = None) -> None:
        """Deliver a whole burst of references with one delayed event.

        The slot-based counterpart of :meth:`_post`: same batch-latency
        residency, same fault diversion and retry/drop policy, but the
        simulator schedules a single transfer event per target ring per
        burst instead of one per packet.
        """
        wait = self.params.batch_wait_us if delay is None else delay
        hub = self.telemetry
        if hub.enabled:
            hub.inc("ring.hops", len(pkts))
            for pkt in pkts:
                hub.span(SpanKind.ENQUEUE, self.env.now, pkt.meta,
                         name=ring.name)

        def delayed():
            yield self.env.timeout(wait)
            owner = getattr(ring, "owner", None)
            if (owner is not None and self.injector is not None
                    and self.injector.is_down(owner.nf.name)):
                for pkt in pkts:
                    self.fault_abort(owner, pkt)
                return
            retries = self.params.ring_retry_limit
            while ring.is_full and retries > 0:
                retries -= 1
                if hub.enabled:
                    hub.inc("ring.retry")
                yield self.env.timeout(self.params.ring_retry_backoff_us)
            ring.try_put_burst(pkts)  # rejects -> the ring's on_drop hook

        self.env.process(delayed())

    # ----------------------------------------------- overflow & fault paths
    def _nf_ring_overflow(self, runtime: _NFRuntimeSim, pkt: Packet) -> None:
        """An NF rx ring rejected a delivery: account it, don't strand it.

        The packet's version is recorded as dropped and pushed through
        the barrier machinery as if the NF had completed it -- the
        resulting nil flows downstream and the merger's AT entry
        completes with a nil version instead of waiting forever for a
        notification that can never arrive.
        """
        self.lost += 1
        hub = self.telemetry
        if hub.enabled:
            hub.inc("drops.ring_full")
            hub.inc("ring.overflow_drop")
        self.fault_abort(runtime, pkt)

    def _merger_overflow(self, pkt: Packet) -> None:
        """A merger rx ring rejected a notification.

        The AT entry (if any) is now short one notification; the AT
        timeout sweeper reclaims it.  If no entry exists yet, the flight
        sweeper catches the packet (fault runs) or the loss stays a
        plain ``lost`` count (the paper's overload semantics).
        """
        self.lost += 1
        hub = self.telemetry
        if hub.enabled:
            hub.inc("drops.ring_full")
            hub.inc("ring.overflow_drop")

    def fault_abort(self, runtime: _NFRuntimeSim, pkt: Packet) -> None:
        """Abort a packet an instance will never serve (crash/overflow).

        Reuses :meth:`nf_complete` with ``faulted=True``: the version is
        nil'ed and barrier/forwarding bookkeeping runs, so downstream
        stages and the merger account the packet naturally.  Stale
        references (flight already reclaimed) are ignored.
        """
        meta = pkt.meta
        if meta is None or (meta.mid, meta.pid) not in self._flight:
            return
        self.telemetry.inc("faults.aborted_packets")
        self.nf_complete(runtime, pkt, faulted=True)

    def emit(self, pkt: Packet, extra_delay: float = 0.0) -> None:
        """Send a finished packet out of the NIC and record metrics."""
        if pkt.meta is not None:
            popped = self._flight.pop((pkt.meta.mid, pkt.meta.pid), None)
            if popped is None and self.injector is not None:
                # Already accounted by a timeout/failover path; a second
                # emission would double-count the packet.
                self.telemetry.inc("tx.stale")
                return
        self.emitted += 1

        def tx():
            if extra_delay > 0:
                yield self.env.timeout(extra_delay)
            yield self.env.timeout(self.params.nic_io_us)
            yield self.nic_tx.transmit(pkt.wire_len)
            pkt.stamp("nic-tx", self.env.now)
            hub = self.telemetry
            if hub.enabled:
                hub.inc("tx.packets")
                hub.span(SpanKind.OUTPUT, self.env.now, pkt.meta, name="nic-tx")
            if self.on_emit is not None:
                self.on_emit(pkt)
                return
            latency_us = self.env.now - pkt.ingress_us
            if hub.enabled:
                hub.observe("latency_us", latency_us)
            self.latency.record(latency_us)
            self.rate.record_delivery(self.env.now)
            if self.keep_packets:
                self.emitted_packets.append(pkt)

        self.env.process(tx())

    def record_drop(self, pkt: Optional[Packet]) -> None:
        """An NF dropped the packet (nil reached the end of its graph)."""
        if self.account_drop(pkt, "nil"):
            self.nil_dropped += 1

    def _count_drop(self, reason: str) -> None:
        self.drops[reason] = self.drops.get(reason, 0) + 1

    def account_drop(self, pkt: Optional[Packet], reason: str) -> bool:
        """Reason-tag a dropped packet exactly once.

        Pops the packet's flight state; when the state is already gone
        (the packet was emitted or accounted by another path) nothing is
        counted -- this is what makes the conservation ledger immune to
        races between timeouts, failover and late notifications.
        Packets without metadata (never classified) count directly.
        """
        hub = self.telemetry
        if pkt is not None and pkt.meta is not None:
            if self._flight.pop((pkt.meta.mid, pkt.meta.pid), None) is None:
                if hub.enabled:
                    hub.inc("drops.stale")
                return False
        self._count_drop(reason)
        if hub.enabled:
            hub.inc(f"drops.{reason}")
            if pkt is not None:
                hub.span(SpanKind.DROP, self.env.now, pkt.meta, name=reason)
        return True

    def conservation_report(self) -> Dict[str, object]:
        """The packet ledger: injected == emitted + sum(drops) when clean.

        ``unaccounted`` > 0 after a drained run means packets were
        silently lost -- the invariant fault-mode fuzzing gates on.
        """
        accounted = self.emitted + sum(self.drops.values())
        return {
            "injected": self.injected,
            "emitted": self.emitted,
            "drops": dict(self.drops),
            "unaccounted": self.injected - accounted,
            "at_depth": sum(len(m.at) for m in self.mergers),
            "flight_depth": len(self._flight),
        }

    # ------------------------------------------------- failover & recovery
    def _on_health_transition(self, label: str, spec, state: HealthState) -> None:
        """Injector callback: apply failover / degradation / pressure."""
        if spec is not None and spec.kind is FaultKind.RING_PRESSURE:
            name = base_name(label)
            group = self.runtimes.get(name)
            if group is not None:
                index = group.index_of(label)
                if index is not None:
                    group.instances[index].rx.capacity = spec.ring_capacity
            return
        if not state.down:
            return
        name = base_name(label)
        group = self.runtimes.get(name)
        if group is None:
            return
        index = group.index_of(label)
        if index is None:
            return
        hub = self.telemetry
        hub.inc("failover.instance_down")
        remaining = self.health.mark_down(name, index)
        if remaining:
            # Failover: future classifications rehash this NF's flows
            # over the healthy instances; memoized decisions pinned to
            # the casualty are invalidated (and counted) now.
            if self.flow_cache is not None:
                reassigned = sum(
                    1 for decision in self.flow_cache.decisions()
                    if decision.assignment.get(name) == index
                )
                if reassigned:
                    self.reassigned_flows += reassigned
                    hub.inc("failover.reassigned_flows", reassigned)
                self.flow_cache.invalidate()
            return
        # Zero healthy instances left: degrade every parallel graph the
        # NF participates in to its sequential linearization, and
        # restart the NF (fresh state) to serve the degraded chain.
        for mid in list(self.chaining.mids()):
            graph = self.chaining.graph_for(mid)
            if (name in graph.nf_names() and graph.has_parallelism
                    and mid not in self.degraded_mids):
                self.degraded_mids[mid] = self.degrade(mid)
        self.restart_instance(name, index)

    def degrade(self, mid: int) -> int:
        """Fall back to the sequential linearization of graph ``mid``.

        Installs the degraded chain under a fresh MID with the original
        CT match, so new traffic re-classifies onto it (the flow cache
        is invalidated by the install).  In-flight packets of the old
        MID drain through the AT/flight timeouts; the old graph stays
        resolvable for them.
        """
        graph = self.chaining.graph_for(mid)
        seq = linearize(graph)
        new_mid = max(self.chaining.mids()) + 1
        old_entry = self.chaining.ct_entry_for(mid)
        self.chaining.install(build_tables(seq, new_mid, match=old_entry.match))
        for stage_index, stage in enumerate(seq.stages):
            for entry in stage:
                group = self.runtimes.get(entry.node.name)
                if group is not None:
                    group.placements[new_mid] = (stage_index, entry)
        hub = self.telemetry
        if hub.enabled:
            hub.inc("failover.degraded_graphs")
        return new_mid

    def restart_instance(self, name: str, index: int) -> _NFRuntimeSim:
        """Replace a dead/hung instance with a fresh runtime (new state).

        The replacement gets a new label (``label~rN``), ring and core;
        packets stranded in the casualty's old ring are reclaimed by the
        flight sweeper.
        """
        group = self.runtimes[name]
        old = group.instances[index]
        group.restarts += 1
        # Never reuse a dead instance's label: the crashed runtime may
        # still observe its own health by name, and a revived same-name
        # entry would hand it a HEALTHY verdict mid-crash.
        label = f"{old.nf.name.split('~')[0]}~r{group.restarts}"
        stage_index, entry = group.placements[min(group.placements)]
        runtime = self._spawn_runtime(label, entry, stage_index)
        runtime.stage_index = stage_index
        runtime.entry = entry
        group.instances[index] = runtime
        runtime.group = group
        self.health.mark_up(name, index)
        self.telemetry.inc("failover.restarts")
        return runtime

    # --------------------------------------------- live membership (autoscale)
    @property
    def active_cores(self) -> int:
        """Cores doing work right now: classifier + mergers + live NF
        instances.  Unlike ``cores_used`` (monotonic allocation
        counter) this drops when a scale-down retires instances -- the
        quantity core-second accounting integrates."""
        return 1 + len(self.mergers) + sum(
            len(group.instances) for group in self.runtimes.values()
        )

    def enable_flow_directory(self) -> None:
        """Track every live flow key the classifier sees.

        Membership change must hand per-flow NF state over for *every*
        moved flow; the flow cache only remembers the hot subset, so a
        controller turns this on before traffic starts.
        """
        if self.flow_directory is None:
            self.flow_directory = set()

    def request_rescale(self, name: str, count: int,
                        max_barrier_us: float = 10000.0):
        """Begin a live instance-count change; returns the DES process.

        The §7+Khalid&Akella protocol runs inside the simulation:

        1. hold the classifier (arrivals buffer in the ingress ring,
           overflow stays attributed);
        2. drain barrier: wait until no packet is in flight, so nothing
           can observe half-moved state;
        3. grow (spawn runtimes, seed shared state such as the VPN AH
           sequence floor) or mark the surplus instances for retirement;
        4. re-split: update the RSS domain and the health board, then
           move per-flow NF state (NAT bindings) for every flow whose
           owner changed, and invalidate stale flow-cache pins;
        5. retire surplus runtimes (interrupting their poll loops) and
           release the hold.

        Flows that moved may observe reordering across the barrier;
        unmoved flows keep per-flow order (same instance before/after).
        """
        return self.env.process(self._rescale(name, count, max_barrier_us))

    def _rescale(self, name: str, new_count: int, max_barrier_us: float):
        if name not in self.runtimes:
            raise ValueError(f"no runtime group {name!r}")
        if new_count < 1:
            raise ValueError("instance count must be >= 1")
        hub = self.telemetry
        # Serialize concurrent membership changes.
        while self._hold is not None:
            yield self.env.timeout(1.0)
        group = self.runtimes[name]
        old_count = group.count
        event: Dict = {
            "ts_us": self.env.now, "name": name,
            "from": old_count, "to": new_count,
            "moved_flows": 0, "handover_flows": 0, "cache_reassigned": 0,
            "barrier_us": 0.0, "aborted": False,
        }
        if new_count == old_count:
            self.scale_events.append(event)
            return event

        # 1+2. Hold the classifier and drain the pipeline.
        self._hold = self.env.event()
        barrier_start = self.env.now
        step = max(self.params.batch_wait_us, 1.0)
        while self._flight and self.env.now - barrier_start < max_barrier_us:
            yield self.env.timeout(step)
        event["barrier_us"] = self.env.now - barrier_start
        if self._flight:
            # Stuck in-flight packets (hung instance): abort the change
            # rather than retire instances still holding work.
            event["aborted"] = True
            hub.inc("autoscale.barrier_timeout")
            self.scale_events.append(event)
            self._release_hold()
            return event

        # 3. Grow the instance set (scale-down retires after handover).
        old_counts = dict(self._scaled_counts)
        old_view = self.health.view()
        retired: List[_NFRuntimeSim] = []
        if new_count > old_count:
            stage_index, entry = group.placements[min(group.placements)]
            shared = [
                inst.nf.export_shared_state() for inst in group.instances
            ]
            for k in range(old_count, new_count):
                label = f"{name}#{k}"
                if label in self.nfs:
                    group.generations += 1
                    label = f"{name}#{k}~g{group.generations}"
                runtime = self._spawn_runtime(label, entry, stage_index)
                group.add(runtime)
                # Cross-flow state floor: a fresh instance must not
                # restart sequences/counters its peers already used.
                for snap in shared:
                    if snap is not None:
                        runtime.nf.import_shared_state(snap)
            hub.inc("autoscale.scale_up")
        else:
            retired = group.instances[new_count:]
            hub.inc("autoscale.scale_down")

        # 4a. Update the RSS split domain and health registration.
        if new_count > 1:
            self._scaled_counts[name] = new_count
        else:
            self._scaled_counts.pop(name, None)
        self.health.resize(name, new_count)
        new_view = self.health.view()

        # 4b. Per-flow state handover for every flow whose owner moved.
        keys = set()
        if self.flow_directory is not None:
            keys.update(self.flow_directory)
        if self.flow_cache is not None:
            keys.update(self.flow_cache.keys())
        moved = handed = 0
        for key in sorted(keys):
            old_idx = assign_instances(
                key, old_counts, healthy=old_view).get(name, 0)
            new_idx = assign_instances(
                key, self._scaled_counts, healthy=new_view).get(name, 0)
            if old_idx == new_idx:
                continue
            moved += 1
            state = group.instances[old_idx].nf.export_flow_state(key)
            if state is not None:
                group.instances[new_idx].nf.import_flow_state(key, state)
                handed += 1
        event["moved_flows"] = moved
        event["handover_flows"] = handed
        self.moved_flows += moved
        self.handover_flows += handed
        if hub.enabled and moved:
            hub.inc("autoscale.moved_flows", moved)
            hub.inc("autoscale.handover_flows", handed)

        # 4c. Memoized classifier decisions may pin to the old split:
        # count the stale ones, then invalidate wholesale (mirror of
        # the failover path).
        if self.flow_cache is not None:
            reassigned = 0
            for key, decision in zip(self.flow_cache.keys(),
                                     self.flow_cache.decisions()):
                if decision.assignment.get(name, 0) != assign_instances(
                        key, self._scaled_counts,
                        healthy=new_view).get(name, 0):
                    reassigned += 1
            event["cache_reassigned"] = reassigned
            if reassigned:
                self.reassigned_flows += reassigned
                hub.inc("autoscale.reassigned_cache_flows", reassigned)
            self.flow_cache.invalidate()

        # 5. Retire surplus runtimes: the barrier drained all traffic,
        # so their rings are empty; interrupt the poll loops, purge any
        # parked getter, free the instances.
        if retired:
            del group.instances[new_count:]
            for runtime in retired:
                runtime.retired = True
                if runtime.proc.is_alive:
                    runtime.proc.interrupt("scale-down")
                runtime.rx._getters.clear()

        self.scale_events.append(event)
        hub.inc("autoscale.rescale")
        self._release_hold()
        return event

    def _release_hold(self) -> None:
        hold, self._hold = self._hold, None
        if hold is not None and not hold.triggered:
            hold.succeed()

    # ----------------------------------------------------- flight sweeping
    def _maybe_sweep_flight(self) -> None:
        """Arm the lazy flight sweeper (fault runs only).

        The last-resort conservation backstop: reclaims per-packet state
        older than twice the AT timeout -- packets wedged in a hung
        instance's batch, stranded in a dead ring, or lost to a merger
        ring overflow before any AT entry opened.  AT entries age out
        first (1x), so anything still in flight at 2x has no other owner.
        """
        if (self._flight_sweeping or self.injector is None
                or self.params.at_timeout_us <= 0):
            return
        self._flight_sweeping = True
        self.env.process(self._sweep_flight())

    def _sweep_flight(self):
        timeout = 2.0 * self.params.at_timeout_us
        interval = max(self.params.at_timeout_us / 2.0, 1.0)
        hub = self.telemetry
        while self._flight:
            yield self.env.timeout(interval)
            now = self.env.now
            expired = [key for key, state in self._flight.items()
                       if now - state.opened_us >= timeout]
            for key in expired:
                if self._flight.pop(key, None) is None:
                    continue
                self._count_drop("flight_timeout")
                if hub.enabled:
                    hub.inc("drops.flight_timeout")
        self._flight_sweeping = False

    # ---------------------------------------------------------- telemetry
    def collect_telemetry(self) -> None:
        """Sample end-of-run state into gauges (rings, cores, engine, AT).

        Counters and spans stream in live; occupancy watermarks and
        utilisation only make sense once the run is over, so callers
        (harness, CLI) invoke this after the environment drains.
        """
        hub = self.telemetry
        if not hub.enabled:
            return
        hub.gauge("engine.events_processed", float(self.env.events_processed))
        hub.gauge("engine.queue_hwm", float(self.env.queue_high_watermark))
        rings = [self.ingress] + [m.rx for m in self.mergers]
        cores = [self.classifier_core] + [m.core for m in self.mergers]
        for group in self.runtimes.values():
            for runtime in group.instances:
                rings.append(runtime.rx)
                cores.append(runtime.core)
        for ring in rings:
            hub.gauge(f"ring.{ring.name}.hwm", float(ring.high_watermark))
            hub.gauge(f"ring.{ring.name}.depth", float(len(ring)))
        for core in cores:
            hub.gauge(f"core.{core.name}.utilisation", core.utilisation())
        for merger in self.mergers:
            hub.gauge(f"merger{merger.index}.at_hwm",
                      float(merger.at_high_watermark))
            hub.gauge(f"merger{merger.index}.at_depth", float(len(merger.at)))
        if self.flow_cache is not None:
            hub.gauge("classifier.flow_cache.size", float(len(self.flow_cache)))
            hub.gauge("classifier.flow_cache.capacity",
                      float(self.flow_cache.capacity))
            hub.gauge("classifier.flow_cache.invalidations",
                      float(self.flow_cache.invalidations))

    # ------------------------------------------------- streaming telemetry
    def probes(self) -> Dict[str, Callable[[], float]]:
        """Live gauge probes for a windowed sampler.

        Everything :meth:`collect_telemetry` can only report at
        end-of-run is exposed here as callables a
        :class:`~repro.telemetry.timeseries.Sampler` reads *during* the
        run: instantaneous ring depth and occupancy, accumulating-table
        depth, in-flight packets, and per-core utilisation *within the
        current window* (a stateful delta over ``Core.busy_time``, not
        the run-cumulative ratio).
        """
        probes: Dict[str, Callable[[], float]] = {}
        rings = [self.ingress] + [m.rx for m in self.mergers]
        cores = [self.classifier_core] + [m.core for m in self.mergers]
        for group in self.runtimes.values():
            for runtime in group.instances:
                rings.append(runtime.rx)
                cores.append(runtime.core)
        for ring in rings:
            probes[f"ring.{ring.name}.depth"] = (
                lambda r=ring: float(len(r))
            )
            probes[f"ring.{ring.name}.occupancy"] = (
                lambda r=ring: len(r) / r.capacity
            )
        for core in cores:
            probes[f"core.{core.name}.window_util"] = (
                self._window_utilisation_probe(core)
            )
        for merger in self.mergers:
            probes[f"merger{merger.index}.at_depth"] = (
                lambda m=merger: float(len(m.at))
            )
        # Aggregates, so watch rules need no per-component names:
        # worst ring occupancy and total AT depth across the server.
        # Computed over the *live* membership on every sample, so rings
        # added (or retired) by autoscaling are seen immediately.
        probes["ring.occupancy"] = (
            lambda: max(len(r) / r.capacity for r in self._live_rings())
        )
        probes["at.depth"] = (
            lambda ms=tuple(self.mergers): float(sum(len(m.at) for m in ms))
        )
        probes["flight.depth"] = lambda: float(len(self._flight))
        probes["cores.active"] = lambda: float(self.active_cores)
        return probes

    def _live_rings(self) -> List[Ring]:
        """Ingress + merger + every live NF instance ring, right now."""
        rings = [self.ingress] + [m.rx for m in self.mergers]
        for group in self.runtimes.values():
            for runtime in group.instances:
                rings.append(runtime.rx)
        return rings

    def _window_utilisation_probe(self, core: Core) -> Callable[[], float]:
        """Busy fraction of the interval since the probe last fired."""
        state = {"busy": core.busy_time, "now": self.env.now}

        def probe() -> float:
            now = self.env.now
            elapsed = now - state["now"]
            busy = core.busy_time - state["busy"]
            state["busy"] = core.busy_time
            state["now"] = now
            if elapsed <= 0.0:
                return 0.0
            return min(1.0, busy / elapsed)

        return probe

    def arm_sampler(self, sampler) -> None:
        """Attach a :class:`~repro.telemetry.timeseries.Sampler`.

        Registers every live probe and schedules the sampler as a
        periodic DES event.  Call after :meth:`deploy` (the probes
        enumerate the deployed rings/cores) and before the run starts.
        """
        sampler.add_probes(self.probes())
        sampler.arm(self.env)
