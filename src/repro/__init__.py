"""NFP: Enabling Network Function Parallelism in NFV -- full reproduction.

A from-scratch Python implementation of the SIGCOMM 2017 NFP framework
(Sun, Bi, Zheng, Yu, Hu) and every substrate its evaluation depends on:

* :mod:`repro.core` -- the paper's contribution: the policy language,
  NF action/dependency analysis (Tables 2-3, Algorithm 1), and the
  compiler that turns policies into parallel service graphs with
  classification/forwarding/merging tables.
* :mod:`repro.net` -- byte-level packet substrate (Ethernet/IPv4/TCP/
  UDP/IPsec-AH, checksums, LPM, AES-128).
* :mod:`repro.nfs` -- the six prototype NFs of §6.1 plus the rest of
  Table 2.
* :mod:`repro.dataplane` -- the NFP infrastructure of §5: classifier,
  distributed NF runtimes, load-balanced mergers; both an untimed
  functional executor and a timed discrete-event server.
* :mod:`repro.sim` -- the DES substrate standing in for DPDK and the
  paper's physical testbed, with calibrated timing constants.
* :mod:`repro.baselines` -- OpenNetVM (pipelining) and BESS (RTC).
* :mod:`repro.traffic` -- packet/flow generation, data-center size mix.
* :mod:`repro.eval` -- one experiment per table/figure of §6-§7.
* :mod:`repro.modular` -- the Fig. 15 OpenBox+NFP extension.

Quickstart::

    from repro import Orchestrator, Policy

    orch = Orchestrator()
    policy = Policy.from_chain(["vpn", "monitor", "firewall", "loadbalancer"])
    graph = orch.compile(policy).graph
    print(graph.describe())   # vpn -> (monitor | firewall) -> loadbalancer
"""

from .core import (
    Action,
    ActionProfile,
    ActionTable,
    CompilationResult,
    NFPCompiler,
    NFSpec,
    Orchestrator,
    Parallelism,
    Policy,
    ServiceGraph,
    Verb,
    check_policy,
    compile_policy,
    default_action_table,
    identify_parallelism,
    inspect_nf,
    parse_policy,
)
from .net import Field, Packet, PacketMeta, build_packet

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Orchestrator",
    "Policy",
    "NFSpec",
    "parse_policy",
    "check_policy",
    "compile_policy",
    "NFPCompiler",
    "CompilationResult",
    "ServiceGraph",
    "Action",
    "ActionProfile",
    "ActionTable",
    "Verb",
    "Parallelism",
    "identify_parallelism",
    "default_action_table",
    "inspect_nf",
    "Packet",
    "PacketMeta",
    "build_packet",
    "Field",
]
