"""Baseline systems the paper compares against (§6, §7).

* :class:`OpenNetVMServer` -- pipelining model with a centralized
  virtual switch (the paper's main comparison system).
* :class:`BessServer` -- run-to-completion chains (Table 4).
"""

from .opennetvm import OpenNetVMServer
from .bess import BessServer

__all__ = ["OpenNetVMServer", "BessServer"]
