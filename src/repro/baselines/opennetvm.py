"""OpenNetVM baseline: sequential chains through a centralized switch.

Models the comparison system of §6 (OpenNetVM, the container port of
NetVM): NFs on pinned cores exchange packets through a *centralized*
manager/switch core.  The manager receives from the NIC (its per-packet
service bounds throughput at 9.38 Mpps, Table 4) and every inter-NF hop
traverses it again (a cheap enqueue op, but one that queues behind the
manager's backlog -- the paper's "packet queuing in this centralized
switch would compromise the performance").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..net.packet import Packet
from ..nfs.base import NetworkFunction, create_nf
from ..sim import Core, Environment, Nic, Ring, SimParams
from ..sim.stats import LatencyStats, RateMeter

__all__ = ["OpenNetVMServer"]


class _OnvmNF:
    """An NF on its own core; returns packets to the manager afterwards."""

    def __init__(self, server: "OpenNetVMServer", nf: NetworkFunction, index: int):
        self.server = server
        self.nf = nf
        self.index = index
        self.core = Core(server.env, name=f"onvm-nf{index}")
        self.rx = Ring(server.env, server.params.ring_capacity, name=f"{nf.name}.rx")
        server.env.process(self._run())

    def _run(self):
        params = self.server.params
        while True:
            first = yield self.rx.get()
            batch = [first] + self.rx.get_batch(params.batch_size - 1)
            for pkt in batch:
                service = params.nf_runtime_us + params.nf_service(
                    self.nf.KIND, self.nf.extra_cycles
                )
                yield self.core.execute(service)
            for pkt in batch:
                ctx = self.nf.handle(pkt)
                if ctx.dropped:
                    self.server.nil_dropped += 1
                    continue
                self.server.to_manager(pkt, self.index + 1)


class OpenNetVMServer:
    """A sequential service chain under the OpenNetVM architecture."""

    def __init__(
        self,
        env: Environment,
        params: SimParams,
        chain: Sequence[str],
        nf_instances: Optional[List[NetworkFunction]] = None,
        extra_cycles: int = 0,
    ):
        if not chain:
            raise ValueError("chain must name at least one NF")
        self.env = env
        self.params = params
        self.manager_core = Core(env, name="onvm-manager")
        self.manager_ring = Ring(env, params.ring_capacity, name="manager.rx")
        self.nic_tx = Nic(env, params, name="tx")

        if nf_instances is None:
            nfs = [create_nf(kind, name=f"{kind}{i}") for i, kind in enumerate(chain)]
        else:
            nfs = list(nf_instances)
        if len(nfs) != len(chain):
            raise ValueError("nf_instances must match the chain length")
        for nf in nfs:
            nf.extra_cycles = max(nf.extra_cycles, extra_cycles)
        self.nfs = [_OnvmNF(self, nf, i) for i, nf in enumerate(nfs)]

        self.latency = LatencyStats()
        self.rate = RateMeter()
        self.lost = 0
        self.nil_dropped = 0
        self.emitted_packets: List[Packet] = []
        self.keep_packets = False
        env.process(self._manager_loop())

    @property
    def cores_used(self) -> int:
        """NF cores + the manager (the paper's n+1; +1 NIC-side core in
        Table 4's accounting comes from the generator)."""
        return len(self.nfs) + 1

    # ------------------------------------------------------------ dataplane
    def inject(self, pkt: Packet) -> None:
        if pkt.ingress_us == 0.0:
            pkt.ingress_us = self.env.now

        def rx():
            yield self.env.timeout(self.params.nic_io_us)
            if not self.manager_ring.try_put((pkt, 0, True)):
                self.lost += 1

        self.env.process(rx())

    def to_manager(self, pkt: Packet, next_index: int) -> None:
        def back():
            yield self.env.timeout(self.params.batch_wait_us)
            if not self.manager_ring.try_put((pkt, next_index, False)):
                self.lost += 1

        self.env.process(back())

    def _manager_loop(self):
        params = self.params
        while True:
            first = yield self.manager_ring.get()
            batch = [first] + self.manager_ring.get_batch(params.batch_size - 1)
            for pkt, next_index, fresh in batch:
                cost = params.onvm_manager_us if fresh else params.onvm_hop_op_us
                yield self.manager_core.execute(cost)
            for pkt, next_index, fresh in batch:
                if next_index >= len(self.nfs):
                    self._emit(pkt)
                    continue
                self._deliver(self.nfs[next_index].rx, pkt)

    def _deliver(self, ring: Ring, pkt: Packet) -> None:
        def hop():
            yield self.env.timeout(self.params.onvm_switch_hop_us)
            if not ring.try_put(pkt):
                self.lost += 1

        self.env.process(hop())

    def _emit(self, pkt: Packet) -> None:
        def tx():
            yield self.env.timeout(self.params.nic_io_us)
            yield self.nic_tx.transmit(pkt.wire_len)
            self.latency.record(self.env.now - pkt.ingress_us)
            self.rate.record_delivery(self.env.now)
            if self.keep_packets:
                self.emitted_packets.append(pkt)

        self.env.process(tx())
