"""BESS baseline: run-to-completion service chains (§7, Table 4).

"The RTC model consolidates an entire service chain as a native process
on a CPU core" -- no rings between NFs, no per-hop cost.  Given k cores,
BESS "duplicate[s] k entire chains to place on the k cores, and
perform[s] hashing in the NIC to split traffic across cores" (RSS).
Throughput scales with cores until the NIC line rate caps it; latency is
the NIC round trip plus one consolidated service time.
"""

from __future__ import annotations

import zlib
from typing import List, Sequence

from ..net.packet import Packet
from ..nfs.base import NetworkFunction, create_nf
from ..sim import Core, Environment, Nic, Ring, SimParams
from ..sim.stats import LatencyStats, RateMeter

__all__ = ["BessServer"]


class _RtcCore:
    """One core running a full duplicated chain run-to-completion."""

    def __init__(self, server: "BessServer", index: int, nfs: List[NetworkFunction]):
        self.server = server
        self.index = index
        self.nfs = nfs
        self.core = Core(server.env, name=f"rtc{index}")
        self.rx = Ring(server.env, server.params.ring_capacity, name=f"rtc{index}.rx")
        server.env.process(self._run())

    def _run(self):
        params = self.server.params
        while True:
            first = yield self.rx.get()
            batch = [first] + self.rx.get_batch(params.batch_size - 1)
            for pkt in batch:
                service = params.rtc_base_us + sum(
                    params.rtc_per_nf_us + nf.extra_cycles / 3000.0 for nf in self.nfs
                )
                yield self.core.execute(service)
                dropped = False
                for nf in self.nfs:
                    if nf.handle(pkt).dropped:
                        dropped = True
                        break
                if dropped:
                    self.server.nil_dropped += 1
                else:
                    self.server.emit(pkt)


class BessServer:
    """RTC chains duplicated over ``num_cores`` with NIC RSS hashing."""

    def __init__(
        self,
        env: Environment,
        params: SimParams,
        chain: Sequence[str],
        num_cores: int = 1,
        extra_cycles: int = 0,
    ):
        if not chain:
            raise ValueError("chain must name at least one NF")
        if num_cores <= 0:
            raise ValueError("need at least one core")
        self.env = env
        self.params = params
        self.nic_tx = Nic(env, params, name="tx")
        self.cores: List[_RtcCore] = []
        for index in range(num_cores):
            nfs = [
                create_nf(kind, name=f"rtc{index}-{kind}{i}")
                for i, kind in enumerate(chain)
            ]
            for nf in nfs:
                nf.extra_cycles = max(nf.extra_cycles, extra_cycles)
            self.cores.append(_RtcCore(self, index, nfs))

        self.latency = LatencyStats()
        self.rate = RateMeter()
        self.lost = 0
        self.nil_dropped = 0
        self.emitted_packets: List[Packet] = []
        self.keep_packets = False

    @property
    def cores_used(self) -> int:
        return len(self.cores)

    def inject(self, pkt: Packet) -> None:
        if pkt.ingress_us == 0.0:
            pkt.ingress_us = self.env.now
        # NIC RSS: hash the 5-tuple to a core.
        target = self.cores[
            zlib.crc32(repr(pkt.five_tuple()).encode()) % len(self.cores)
        ]

        def rx():
            yield self.env.timeout(self.params.nic_io_us)
            if not target.rx.try_put(pkt):
                self.lost += 1

        self.env.process(rx())

    def emit(self, pkt: Packet) -> None:
        def tx():
            yield self.env.timeout(self.params.nic_io_us)
            yield self.nic_tx.transmit(pkt.wire_len)
            self.latency.record(self.env.now - pkt.ingress_us)
            self.rate.record_delivery(self.env.now)
            if self.keep_packets:
                self.emitted_packets.append(pkt)

        self.env.process(tx())
