"""Time-varying load shapes: the "millions of users" workload axis.

A :class:`LoadShape` maps simulation time to an instantaneous offered
rate in Mpps.  :class:`~repro.traffic.generator.TrafficSource` consults
the shape once per burst, so the injected traffic traces the curve
instead of a constant: diurnal sinusoids (the day/night swing an ISP
sees), flash crowds (a sudden ramp to a plateau and back -- the event
that motivates autoscaling over static peak provisioning), and DDoS-like
burst trains (short savage spikes over a quiet floor).

Shapes are pure functions of time -- deterministic, seedless -- so every
run that shares a shape and a source seed replays the exact same packet
schedule.
"""

from __future__ import annotations

import math
from typing import List, Tuple

__all__ = [
    "LoadShape",
    "ConstantShape",
    "DiurnalShape",
    "FlashCrowdShape",
    "BurstTrainShape",
]


class LoadShape:
    """Base class: instantaneous offered rate as a function of time."""

    def rate_mpps(self, t_us: float) -> float:
        raise NotImplementedError

    def peak_mpps(self, horizon_us: float, step_us: float = 50.0) -> float:
        """The highest rate the shape reaches within ``horizon_us``.

        Static peak provisioning sizes for exactly this number; the
        autoscale bench uses it to build the strawman it must beat.
        """
        steps = max(1, int(horizon_us / step_us))
        return max(
            self.rate_mpps(i * step_us) for i in range(steps + 1)
        )

    def profile(self, horizon_us: float, step_us: float) -> List[Tuple[float, float]]:
        """Sampled (t_us, rate) curve, handy for plotting and tests."""
        out = []
        t = 0.0
        while t <= horizon_us:
            out.append((t, self.rate_mpps(t)))
            t += step_us
        return out


class ConstantShape(LoadShape):
    """A flat rate -- the degenerate shape, for uniform plumbing."""

    def __init__(self, rate_mpps: float):
        if rate_mpps <= 0:
            raise ValueError("rate must be positive")
        self._rate = rate_mpps

    def rate_mpps(self, t_us: float) -> float:
        return self._rate

    def __repr__(self) -> str:
        return f"ConstantShape({self._rate:.3f} Mpps)"


class DiurnalShape(LoadShape):
    """A day/night sinusoid between ``base_mpps`` and ``peak_mpps``.

    ``phase`` in [0, 1) shifts where in the cycle t=0 lands (0 = trough).
    """

    def __init__(
        self,
        base_mpps: float,
        peak_mpps: float,
        period_us: float,
        phase: float = 0.0,
    ):
        if base_mpps <= 0 or peak_mpps < base_mpps:
            raise ValueError("need 0 < base <= peak")
        if period_us <= 0:
            raise ValueError("period must be positive")
        self.base = base_mpps
        self.peak = peak_mpps
        self.period = period_us
        self.phase = phase % 1.0

    def rate_mpps(self, t_us: float) -> float:
        # Cosine from trough: rate(0) == base when phase == 0.
        cycle = (t_us / self.period + self.phase) * 2.0 * math.pi
        mid = (self.base + self.peak) / 2.0
        swing = (self.peak - self.base) / 2.0
        return mid - swing * math.cos(cycle)

    def __repr__(self) -> str:
        return (f"DiurnalShape({self.base:.3f}..{self.peak:.3f} Mpps, "
                f"period={self.period:.0f}us)")


class FlashCrowdShape(LoadShape):
    """Quiet floor, then a ramp to a plateau, then an exponential decay.

    The canonical autoscaling stimulus: ``base_mpps`` until ``start_us``,
    a linear ramp over ``ramp_us`` up to ``peak_mpps``, held for
    ``hold_us``, then exponential decay back toward the floor with time
    constant ``decay_us``.
    """

    def __init__(
        self,
        base_mpps: float,
        peak_mpps: float,
        start_us: float,
        ramp_us: float,
        hold_us: float,
        decay_us: float,
    ):
        if base_mpps <= 0 or peak_mpps < base_mpps:
            raise ValueError("need 0 < base <= peak")
        if min(start_us, ramp_us, hold_us, decay_us) < 0:
            raise ValueError("times must be non-negative")
        self.base = base_mpps
        self.peak = peak_mpps
        self.start = start_us
        self.ramp = ramp_us
        self.hold = hold_us
        self.decay = decay_us

    def rate_mpps(self, t_us: float) -> float:
        if t_us < self.start:
            return self.base
        t = t_us - self.start
        if t < self.ramp:
            frac = t / self.ramp if self.ramp > 0 else 1.0
            return self.base + (self.peak - self.base) * frac
        t -= self.ramp
        if t < self.hold:
            return self.peak
        t -= self.hold
        if self.decay <= 0:
            return self.base
        return self.base + (self.peak - self.base) * math.exp(-t / self.decay)

    def __repr__(self) -> str:
        return (f"FlashCrowdShape({self.base:.3f}->{self.peak:.3f} Mpps "
                f"@{self.start:.0f}us)")


class BurstTrainShape(LoadShape):
    """DDoS-like periodic spikes: ``burst_mpps`` for ``burst_len_us`` at
    the top of every ``period_us``, ``base_mpps`` otherwise."""

    def __init__(
        self,
        base_mpps: float,
        burst_mpps: float,
        period_us: float,
        burst_len_us: float,
    ):
        if base_mpps <= 0 or burst_mpps < base_mpps:
            raise ValueError("need 0 < base <= burst")
        if period_us <= 0 or not 0 <= burst_len_us <= period_us:
            raise ValueError("need 0 <= burst_len <= period")
        self.base = base_mpps
        self.burst = burst_mpps
        self.period = period_us
        self.burst_len = burst_len_us

    def rate_mpps(self, t_us: float) -> float:
        offset = t_us % self.period
        return self.burst if offset < self.burst_len else self.base

    def __repr__(self) -> str:
        return (f"BurstTrainShape({self.base:.3f}|{self.burst:.3f} Mpps, "
                f"period={self.period:.0f}us)")
