"""Traffic generation: packet sizes, flows, and open-loop sources.

Stands in for the paper's DPDK packet generator ("runs on a separate
server and is directly connected to the test server", §6).  Three
pieces:

* :class:`PacketSizeDistribution` -- including the data-center mix of
  Benson et al. (IMC'10) that the paper uses ("the average packet size
  in data centers is around 724 bytes", §4.2 / §6.4);
* :class:`FlowGenerator` -- deterministic, seeded packet factories over
  a set of synthetic flows;
* :class:`TrafficSource` -- a DES process injecting packets into a
  server at a configured rate, with deterministic or Poisson arrivals.
"""

from __future__ import annotations

import bisect
import random
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from .shapes import LoadShape

from ..net.packet import Packet, build_packet
from ..sim.engine import Environment

__all__ = [
    "PacketSizeDistribution",
    "FIXED_64B",
    "DATACENTER_MIX",
    "FlowGenerator",
    "TrafficSource",
]

#: Minimum frame we generate: headers only (Eth+IP+TCP = 54) padded to 64.
MIN_FRAME = 64


class PacketSizeDistribution:
    """A discrete distribution over frame sizes."""

    def __init__(self, points: Sequence[Tuple[int, float]], name: str = "custom"):
        if not points:
            raise ValueError("empty size distribution")
        total = sum(w for _, w in points)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        for size, weight in points:
            if size < MIN_FRAME or size > 1500:
                raise ValueError(f"frame size out of range: {size}")
            if weight < 0:
                raise ValueError("negative weight")
        self.name = name
        self.points = [(size, weight / total) for size, weight in points]

    def mean(self) -> float:
        return sum(size * weight for size, weight in self.points)

    def sample(self, rng: random.Random) -> int:
        roll = rng.random()
        acc = 0.0
        for size, weight in self.points:
            acc += weight
            if roll <= acc:
                return size
        return self.points[-1][0]

    def __repr__(self) -> str:
        return f"PacketSizeDistribution({self.name}, mean={self.mean():.0f}B)"


#: Fixed minimum-size packets -- the paper's latency measurements.
FIXED_64B = PacketSizeDistribution([(64, 1.0)], name="64B")

#: The bimodal data-center mix of Benson et al., tuned so the mean frame
#: is ~724 B as the paper derives from [4].
DATACENTER_MIX = PacketSizeDistribution(
    [(64, 0.40), (200, 0.05), (576, 0.10), (1024, 0.05), (1450, 0.40)],
    name="datacenter",
)


class FlowGenerator:
    """Deterministic packet factory over ``num_flows`` synthetic flows.

    Flows are TCP with distinct (src ip, src port) pairs in 10/8; each
    call to :meth:`next_packet` picks a flow and samples a size.  The
    source address takes the low 24 bits of the flow index (one unique
    host per flow up to 16.7M) and the source port absorbs any higher
    bits, so 5-tuples never collide however many flows are asked for --
    the old 16-bit derivation silently merged distinct "users" past
    65,536 flows.

    ``popularity`` selects how packets distribute over flows:
    ``"uniform"`` round-robins (every flow equally hot), ``"zipf"``
    draws flows from a Zipf(``zipf_s``) law -- a few elephant flows
    carry most packets while a heavy tail of mice appears rarely, the
    shape real traffic mixes take.
    """

    def __init__(
        self,
        num_flows: int = 64,
        sizes: PacketSizeDistribution = FIXED_64B,
        seed: int = 42,
        payload_fn: Optional[Callable[[int], bytes]] = None,
        popularity: str = "uniform",
        zipf_s: float = 1.2,
    ):
        if num_flows <= 0:
            raise ValueError("need at least one flow")
        if popularity not in ("uniform", "zipf"):
            raise ValueError(f"unknown popularity {popularity!r}")
        if num_flows - 1 > 0xFFFFFF * (65535 - 10000):
            raise ValueError("num_flows exceeds the 5-tuple space")
        self.sizes = sizes
        self.popularity = popularity
        self._rng = random.Random(seed)
        self._payload_fn = payload_fn
        self._sequence = 0
        self._flows: List[Tuple[str, str, int, int]] = []
        for i in range(num_flows):
            host = i & 0xFFFFFF
            self._flows.append(
                (
                    f"10.{(host >> 16) & 255}.{(host >> 8) & 255}.{host & 255}",
                    f"10.200.{(i * 7) % 256}.{(i % 250) + 1}",
                    10000 + (i >> 24),
                    80 if i % 3 else 443,
                )
            )
        self._cum_weights: Optional[List[float]] = None
        if popularity == "zipf":
            acc = 0.0
            cum = []
            for rank in range(1, num_flows + 1):
                acc += 1.0 / (rank ** zipf_s)
                cum.append(acc)
            self._cum_weights = cum

    def _pick_flow(self) -> Tuple[str, str, int, int]:
        if self._cum_weights is None:
            return self._flows[self._sequence % len(self._flows)]
        roll = self._rng.random() * self._cum_weights[-1]
        index = bisect.bisect_left(self._cum_weights, roll)
        return self._flows[min(index, len(self._flows) - 1)]

    def next_packet(self) -> Packet:
        flow = self._pick_flow()
        self._sequence += 1
        size = self.sizes.sample(self._rng)
        payload = self._payload_fn(self._sequence) if self._payload_fn else b""
        return build_packet(
            src_ip=flow[0],
            dst_ip=flow[1],
            src_port=flow[2],
            dst_port=flow[3],
            size=size,
            payload=payload,
            # The IPv4 identification field is 16 bits; long runs wrap
            # naturally (dataplane matching never keys on the ident --
            # only repro.check cases do, and those build their own).
            identification=self._sequence & 0xFFFF,
        )

    def packets(self, count: int) -> List[Packet]:
        return [self.next_packet() for _ in range(count)]


class TrafficSource:
    """Open-loop packet source driving a simulated server.

    ``rate_mpps`` sets the mean arrival rate; ``poisson`` selects
    exponential inter-arrival times (needed for queueing-dominated
    latency measurements) versus a deterministic gap.

    ``shape`` (a :class:`~repro.traffic.shapes.LoadShape`) makes the
    offered rate time-varying: each inter-burst gap is derived from the
    shape's instantaneous rate at the current simulation time, so the
    source traces diurnal curves, flash crowds, or burst trains instead
    of a flat rate.  ``rate_mpps`` remains the nominal rate the shape
    modulates around (and the fallback when no shape is given).
    """

    def __init__(
        self,
        env: Environment,
        inject: Callable[[Packet], None],
        rate_mpps: float,
        count: int,
        flows: Optional[FlowGenerator] = None,
        poisson: bool = True,
        burst: int = 32,
        seed: int = 1,
        shape: Optional["LoadShape"] = None,
    ):
        if rate_mpps <= 0:
            raise ValueError("rate must be positive")
        if count <= 0:
            raise ValueError("count must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.env = env
        self.inject = inject
        self.gap_us = 1.0 / rate_mpps
        self.count = count
        self.flows = flows or FlowGenerator()
        self.poisson = poisson
        #: DPDK pktgen transmits in bursts; packets inside a burst arrive
        #: back to back and the inter-burst gap restores the mean rate.
        self.burst = burst
        self.shape = shape
        self.offered = 0
        self._rng = random.Random(seed)
        self.done = env.process(self._run())

    def _gap_for_burst(self, burst: int) -> float:
        if self.shape is not None:
            rate = max(self.shape.rate_mpps(self.env.now), 1e-6)
            return burst / rate
        return self.gap_us * burst

    def _run(self):
        remaining = self.count
        while remaining > 0:
            burst = min(self.burst, remaining)
            for _ in range(burst):
                pkt = self.flows.next_packet()
                pkt.ingress_us = self.env.now
                self.offered += 1
                self.inject(pkt)
            remaining -= burst
            mean_gap = self._gap_for_burst(burst)
            gap = (
                self._rng.expovariate(1.0 / mean_gap)
                if self.poisson
                else mean_gap
            )
            yield self.env.timeout(gap)
