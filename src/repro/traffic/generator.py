"""Traffic generation: packet sizes, flows, and open-loop sources.

Stands in for the paper's DPDK packet generator ("runs on a separate
server and is directly connected to the test server", §6).  Three
pieces:

* :class:`PacketSizeDistribution` -- including the data-center mix of
  Benson et al. (IMC'10) that the paper uses ("the average packet size
  in data centers is around 724 bytes", §4.2 / §6.4);
* :class:`FlowGenerator` -- deterministic, seeded packet factories over
  a set of synthetic flows;
* :class:`TrafficSource` -- a DES process injecting packets into a
  server at a configured rate, with deterministic or Poisson arrivals.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from ..net.packet import Packet, build_packet
from ..sim.engine import Environment

__all__ = [
    "PacketSizeDistribution",
    "FIXED_64B",
    "DATACENTER_MIX",
    "FlowGenerator",
    "TrafficSource",
]

#: Minimum frame we generate: headers only (Eth+IP+TCP = 54) padded to 64.
MIN_FRAME = 64


class PacketSizeDistribution:
    """A discrete distribution over frame sizes."""

    def __init__(self, points: Sequence[Tuple[int, float]], name: str = "custom"):
        if not points:
            raise ValueError("empty size distribution")
        total = sum(w for _, w in points)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        for size, weight in points:
            if size < MIN_FRAME or size > 1500:
                raise ValueError(f"frame size out of range: {size}")
            if weight < 0:
                raise ValueError("negative weight")
        self.name = name
        self.points = [(size, weight / total) for size, weight in points]

    def mean(self) -> float:
        return sum(size * weight for size, weight in self.points)

    def sample(self, rng: random.Random) -> int:
        roll = rng.random()
        acc = 0.0
        for size, weight in self.points:
            acc += weight
            if roll <= acc:
                return size
        return self.points[-1][0]

    def __repr__(self) -> str:
        return f"PacketSizeDistribution({self.name}, mean={self.mean():.0f}B)"


#: Fixed minimum-size packets -- the paper's latency measurements.
FIXED_64B = PacketSizeDistribution([(64, 1.0)], name="64B")

#: The bimodal data-center mix of Benson et al., tuned so the mean frame
#: is ~724 B as the paper derives from [4].
DATACENTER_MIX = PacketSizeDistribution(
    [(64, 0.40), (200, 0.05), (576, 0.10), (1024, 0.05), (1450, 0.40)],
    name="datacenter",
)


class FlowGenerator:
    """Deterministic packet factory over ``num_flows`` synthetic flows.

    Flows are TCP with distinct (src ip, src port) pairs in 10/8; each
    call to :meth:`next_packet` round-robins flows and samples a size.
    """

    def __init__(
        self,
        num_flows: int = 64,
        sizes: PacketSizeDistribution = FIXED_64B,
        seed: int = 42,
        payload_fn: Optional[Callable[[int], bytes]] = None,
    ):
        if num_flows <= 0:
            raise ValueError("need at least one flow")
        self.sizes = sizes
        self._rng = random.Random(seed)
        self._payload_fn = payload_fn
        self._sequence = 0
        self._flows: List[Tuple[str, str, int, int]] = []
        for i in range(num_flows):
            self._flows.append(
                (
                    f"10.{(i >> 8) & 255}.{i & 255}.{(i % 250) + 1}",
                    f"10.200.{(i * 7) % 256}.{(i % 250) + 1}",
                    10000 + (i % 50000),
                    80 if i % 3 else 443,
                )
            )

    def next_packet(self) -> Packet:
        flow = self._flows[self._sequence % len(self._flows)]
        self._sequence += 1
        size = self.sizes.sample(self._rng)
        payload = self._payload_fn(self._sequence) if self._payload_fn else b""
        return build_packet(
            src_ip=flow[0],
            dst_ip=flow[1],
            src_port=flow[2],
            dst_port=flow[3],
            size=size,
            payload=payload,
            identification=self._sequence,
        )

    def packets(self, count: int) -> List[Packet]:
        return [self.next_packet() for _ in range(count)]


class TrafficSource:
    """Open-loop packet source driving a simulated server.

    ``rate_mpps`` sets the mean arrival rate; ``poisson`` selects
    exponential inter-arrival times (needed for queueing-dominated
    latency measurements) versus a deterministic gap.
    """

    def __init__(
        self,
        env: Environment,
        inject: Callable[[Packet], None],
        rate_mpps: float,
        count: int,
        flows: Optional[FlowGenerator] = None,
        poisson: bool = True,
        burst: int = 32,
        seed: int = 1,
    ):
        if rate_mpps <= 0:
            raise ValueError("rate must be positive")
        if count <= 0:
            raise ValueError("count must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.env = env
        self.inject = inject
        self.gap_us = 1.0 / rate_mpps
        self.count = count
        self.flows = flows or FlowGenerator()
        self.poisson = poisson
        #: DPDK pktgen transmits in bursts; packets inside a burst arrive
        #: back to back and the inter-burst gap restores the mean rate.
        self.burst = burst
        self.offered = 0
        self._rng = random.Random(seed)
        self.done = env.process(self._run())

    def _run(self):
        remaining = self.count
        while remaining > 0:
            burst = min(self.burst, remaining)
            for _ in range(burst):
                pkt = self.flows.next_packet()
                pkt.ingress_us = self.env.now
                self.offered += 1
                self.inject(pkt)
            remaining -= burst
            mean_gap = self.gap_us * burst
            gap = (
                self._rng.expovariate(1.0 / mean_gap)
                if self.poisson
                else mean_gap
            )
            yield self.env.timeout(gap)
