"""Traffic generation substrate (the paper's DPDK pktgen stand-in)."""

from .generator import (
    DATACENTER_MIX,
    FIXED_64B,
    FlowGenerator,
    PacketSizeDistribution,
    TrafficSource,
)
from .shapes import (
    BurstTrainShape,
    ConstantShape,
    DiurnalShape,
    FlashCrowdShape,
    LoadShape,
)

__all__ = [
    "PacketSizeDistribution",
    "FIXED_64B",
    "DATACENTER_MIX",
    "FlowGenerator",
    "TrafficSource",
    "LoadShape",
    "ConstantShape",
    "DiurnalShape",
    "FlashCrowdShape",
    "BurstTrainShape",
]
