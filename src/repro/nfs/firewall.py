"""Firewall NF (§6.1): ACL packet filter "similar to the Click IPFilter
element.  It passes or drops packets according to the Access Control
List (ACL) containing 100 rules."

Rules match prefix ranges over src/dst IP and port ranges over src/dst
port, first match wins, default action permit.  The instance also
carries the ``extra_cycles`` busy-loop knob used by Fig. 9 ("we modify
the Firewall NF so that it busily loops for a given number of cycles
after modifying the packet").
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..net.headers import ip_to_int
from ..net.packet import Packet
from .base import NetworkFunction, ProcessingContext, register_nf_class

__all__ = ["AclRule", "Firewall", "build_acl"]

DEFAULT_ACL_SIZE = 100


class AclRule:
    """One ACL entry: (src/dst prefix, port ranges) -> permit/deny."""

    __slots__ = ("src_net", "src_mask", "dst_net", "dst_mask",
                 "sport_range", "dport_range", "permit")

    def __init__(
        self,
        src_prefix: Tuple[str, int] = ("0.0.0.0", 0),
        dst_prefix: Tuple[str, int] = ("0.0.0.0", 0),
        sport_range: Tuple[int, int] = (0, 65535),
        dport_range: Tuple[int, int] = (0, 65535),
        permit: bool = True,
    ):
        src_ip, src_len = src_prefix
        dst_ip, dst_len = dst_prefix
        if not (0 <= src_len <= 32 and 0 <= dst_len <= 32):
            raise ValueError("prefix length out of range")
        self.src_mask = (0xFFFFFFFF << (32 - src_len)) & 0xFFFFFFFF if src_len else 0
        self.dst_mask = (0xFFFFFFFF << (32 - dst_len)) & 0xFFFFFFFF if dst_len else 0
        self.src_net = ip_to_int(src_ip) & self.src_mask
        self.dst_net = ip_to_int(dst_ip) & self.dst_mask
        if sport_range[0] > sport_range[1] or dport_range[0] > dport_range[1]:
            raise ValueError("invalid port range")
        self.sport_range = sport_range
        self.dport_range = dport_range
        self.permit = permit

    def matches(self, sip: int, dip: int, sport: int, dport: int) -> bool:
        return (
            (sip & self.src_mask) == self.src_net
            and (dip & self.dst_mask) == self.dst_net
            and self.sport_range[0] <= sport <= self.sport_range[1]
            and self.dport_range[0] <= dport <= self.dport_range[1]
        )


def build_acl(rules: int = DEFAULT_ACL_SIZE, seed: int = 11) -> List[AclRule]:
    """A deterministic ACL of ``rules`` deny rules over the 192.168/16
    test range, so ordinary benchmark traffic (10/8) always passes."""
    rng = random.Random(seed)
    acl: List[AclRule] = []
    for _ in range(rules):
        octet3 = rng.randrange(256)
        low = rng.randrange(0, 60000)
        acl.append(
            AclRule(
                src_prefix=(f"192.168.{octet3}.0", 24),
                dport_range=(low, low + rng.randrange(1, 5000)),
                permit=False,
            )
        )
    return acl


@register_nf_class
class Firewall(NetworkFunction):
    """First-match ACL firewall; default permit."""

    KIND = "firewall"

    def __init__(
        self,
        name: Optional[str] = None,
        acl: Optional[List[AclRule]] = None,
        extra_cycles: int = 0,
    ):
        super().__init__(name)
        self.acl = acl if acl is not None else build_acl()
        self.extra_cycles = extra_cycles
        self.permitted = 0
        self.denied = 0

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        sip, dip, _, sport, dport = self._keys(pkt)
        for rule in self.acl:
            if rule.matches(sip, dip, sport, dport):
                if rule.permit:
                    break
                self.denied += 1
                ctx.drop("acl deny")
                return
        self.permitted += 1

    @staticmethod
    def _keys(pkt: Packet) -> Tuple[int, int, int, int, int]:
        ip = pkt.ipv4
        src, dst, proto, sport, dport = pkt.five_tuple()
        return ip.src_ip_int, ip.dst_ip_int, proto, sport, dport
