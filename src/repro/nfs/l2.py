"""L2 NFs from Lemur's module set: MAC swap and 802.1Q VLAN push/pop.

These widen the catalog with NFs whose footprints are disjoint from the
L3/L4 crowd (MACs, the VLAN tag), so compiled graphs mixing them get
more NO_COPY parallelism -- the point of the Lemur expansion named in
ROADMAP.  Their declared profiles are *born audited*: the profile-audit
oracle ran against them from the first commit.
"""

from __future__ import annotations

from typing import Optional

from ..net.encap import insert_vlan, remove_vlan
from ..net.packet import Packet
from .base import NetworkFunction, ProcessingContext, register_nf_class

__all__ = ["MacSwap", "VlanPush", "VlanPop"]


@register_nf_class
class MacSwap(NetworkFunction):
    """Swap source and destination MACs (the classic reflector step).

    Profile: R/W on SMAC and DMAC.  Applying it twice restores the
    original frame, which the tests use as an idempotence check.
    """

    KIND = "macswap"

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self.swapped = 0

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        eth = pkt.eth
        src = eth.src_mac
        dst = eth.dst_mac
        eth.src_mac = dst
        eth.dst_mac = src
        self.swapped += 1


@register_nf_class
class VlanPush(NetworkFunction):
    """Push an 802.1Q tag (rewriting the TCI if one is already present).

    Profile: Add VLAN_HEADER.
    """

    KIND = "vlan-push"

    def __init__(self, name: Optional[str] = None, vlan_id: int = 100, pcp: int = 0):
        super().__init__(name)
        if not 0 <= vlan_id <= 0xFFF:
            raise ValueError("VLAN ID is 12 bits")
        self.vlan_id = vlan_id
        self.pcp = pcp
        self.pushed = 0

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        insert_vlan(pkt, self.vlan_id, self.pcp)
        self.pushed += 1


@register_nf_class
class VlanPop(NetworkFunction):
    """Pop the 802.1Q tag; untagged frames pass through untouched.

    Profile: Remove VLAN_HEADER.
    """

    KIND = "vlan-pop"

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self.popped = 0

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        if pkt.has_vlan:
            remove_vlan(pkt)
            self.popped += 1
