"""NF programming model: how network functions plug into NFP.

NFP "provides NFs with interfaces to access and modify packets, and an
NF runtime to drop or deliver packets after processing" (§5.4).  Here an
NF subclasses :class:`NetworkFunction` and implements ``process(pkt,
ctx)``, mutating the packet in place through the :mod:`repro.net` views
and signalling drops through the :class:`ProcessingContext`.  The NF
never forwards packets itself -- delivery is the runtime's job, keeping
parallelism transparent to NF authors.

A registry maps NF *kind* names (matching the action-table rows) to
implementations, so policies, profiles and code line up by name.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

from ..net.packet import Packet
from ..telemetry.hooks import NULL_HUB

__all__ = [
    "ProcessingContext",
    "NetworkFunction",
    "register_nf_class",
    "create_nf",
    "nf_class",
    "registered_kinds",
]


class ProcessingContext:
    """Per-packet side channel between an NF and its runtime.

    The only cross-cutting signal the paper's runtime needs is the drop
    intention (which becomes a nil packet toward the merger, §5.3).
    """

    __slots__ = ("dropped", "drop_reason")

    def __init__(self):
        self.dropped = False
        self.drop_reason: Optional[str] = None

    def drop(self, reason: str = "") -> None:
        """Convey a drop intention to the NF runtime."""
        self.dropped = True
        self.drop_reason = reason or None


class NetworkFunction:
    """Base class for all NFs.

    Subclasses set ``KIND`` (the action-table row name) and implement
    :meth:`process`.  Instances carry state (counters, tables, flow
    maps); the base class tracks the universal statistics.
    """

    #: Action-table kind; subclasses must override.
    KIND = ""

    def __init__(self, name: Optional[str] = None):
        if not self.KIND:
            raise TypeError(f"{type(self).__name__} does not define KIND")
        self.name = name or self.KIND
        self.rx_packets = 0
        self.dropped_packets = 0
        self.errors = 0
        #: Extra per-packet busy-loop cycles (the Fig. 9 complexity knob).
        self.extra_cycles = 0
        #: Telemetry hub; the disabled NULL_HUB unless a server wires one in.
        self.telemetry = NULL_HUB

    # ------------------------------------------------------------ NF logic
    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        """Handle one packet; mutate it in place or ``ctx.drop()`` it."""
        raise NotImplementedError

    def handle(self, pkt: Packet) -> ProcessingContext:
        """Run :meth:`process` with bookkeeping; returns the context.

        A crashing NF is contained: the exception is recorded and the
        packet is dropped (a middlebox fault must not take down the
        dataplane), mirroring how the paper's per-container isolation
        limits the blast radius of a buggy NF.
        """
        ctx = ProcessingContext()
        self.rx_packets += 1
        had_error = False
        rec = pkt.recorder
        if rec is not None:
            rec.enter(self.name, self.KIND)
        try:
            self.process(pkt, ctx)
        except Exception as exc:  # noqa: BLE001 - fault isolation boundary
            self.errors += 1
            had_error = True
            ctx.drop(f"nf-error: {exc}")
        finally:
            if rec is not None:
                if ctx.dropped:
                    rec.record("drop", None, pkt.uid)
                rec.exit()
        if ctx.dropped:
            self.dropped_packets += 1
        else:
            pkt.trace.append(self.name)
        hub = self.telemetry
        if hub.enabled:
            hub.inc(f"nf.{self.name}.rx")
            if ctx.dropped:
                hub.inc(f"nf.{self.name}.dropped")
            if had_error:
                hub.inc(f"nf.{self.name}.errors")
        return ctx

    # ------------------------------------------------------ state handover
    # Live membership change (autoscaling, §7 + Khalid & Akella) moves
    # flows between instances of a replicated NF.  A stateful NF must
    # hand its per-flow and cross-flow state over with them, or the new
    # owner processes packets against a blank table.  Defaults model a
    # stateless NF: nothing to move.

    def export_flow_state(self, flow_key: tuple) -> Optional[Any]:
        """Extract (and remove) this NF's state for one flow.

        ``flow_key`` is the classifier 5-tuple ``(src_ip, dst_ip, proto,
        sport, dport)``.  Returns an opaque blob for
        :meth:`import_flow_state` on the flow's new owner, or ``None``
        when there is nothing to move.  The export must *remove* the
        state locally -- after the handover exactly one instance owns it.
        """
        return None

    def import_flow_state(self, flow_key: tuple, state: Any) -> None:
        """Install state exported by a peer instance for ``flow_key``."""

    def export_shared_state(self) -> Optional[Any]:
        """Snapshot cross-flow state a *new* instance must not start
        blank with (e.g. the VPN AH sequence, which must never regress
        or repeat).  Non-destructive; ``None`` when stateless."""
        return None

    def import_shared_state(self, state: Any) -> None:
        """Merge a peer's shared-state snapshot into this instance."""

    def reset_stats(self) -> None:
        self.rx_packets = 0
        self.dropped_packets = 0
        self.errors = 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


_REGISTRY: Dict[str, Type[NetworkFunction]] = {}


def register_nf_class(cls: Type[NetworkFunction]) -> Type[NetworkFunction]:
    """Class decorator: register an NF implementation under its KIND."""
    if not issubclass(cls, NetworkFunction):
        raise TypeError("only NetworkFunction subclasses can be registered")
    if not cls.KIND:
        raise ValueError(f"{cls.__name__} must define KIND")
    kind = cls.KIND.lower()
    if kind in _REGISTRY and _REGISTRY[kind] is not cls:
        raise ValueError(f"NF kind {kind!r} already registered")
    _REGISTRY[kind] = cls
    return cls


def nf_class(kind: str) -> Type[NetworkFunction]:
    """Look up the implementation class for an NF kind."""
    try:
        return _REGISTRY[kind.lower()]
    except KeyError:
        raise KeyError(
            f"no NF implementation registered for kind {kind!r}; "
            f"known kinds: {sorted(_REGISTRY)}"
        ) from None


def create_nf(kind: str, name: Optional[str] = None, **kwargs: Any) -> NetworkFunction:
    """Instantiate an NF by kind name."""
    return nf_class(kind)(name=name, **kwargs)


def registered_kinds() -> list:
    return sorted(_REGISTRY)
