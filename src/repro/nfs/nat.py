"""NAT NF (Table 2): source NAT with dynamic port allocation.

Rewrites (SIP, SPORT) of outbound flows to the NAT's external address
and an allocated external port, keeping a bidirectional binding table
like iptables MASQUERADE.  Profile: R/W on the whole 4-tuple (Table 2's
NAT row).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..net.headers import PROTO_TCP, PROTO_UDP
from ..net.packet import Packet
from .base import NetworkFunction, ProcessingContext, register_nf_class

__all__ = ["Nat", "NatBinding"]


class NatBinding:
    """One NAT translation: internal (ip, port) <-> external port."""

    __slots__ = ("internal_ip", "internal_port", "external_port", "packets")

    def __init__(self, internal_ip: str, internal_port: int, external_port: int):
        self.internal_ip = internal_ip
        self.internal_port = internal_port
        self.external_port = external_port
        self.packets = 0

    def __repr__(self) -> str:
        return (
            f"NatBinding({self.internal_ip}:{self.internal_port} -> "
            f":{self.external_port})"
        )


@register_nf_class
class Nat(NetworkFunction):
    """Port-translating source NAT."""

    KIND = "nat"

    def __init__(
        self,
        name: Optional[str] = None,
        external_ip: str = "203.0.113.1",
        port_base: int = 20000,
        port_count: int = 40000,
    ):
        super().__init__(name)
        self.external_ip = external_ip
        self._port_base = port_base
        self._port_count = port_count
        self._next_port = port_base
        self._by_internal: Dict[Tuple[str, int], NatBinding] = {}
        self._by_external: Dict[int, NatBinding] = {}
        #: Moved-in bindings whose external port collided and was remapped.
        self.handover_remaps = 0

    def _allocate(self, internal_ip: str, internal_port: int) -> NatBinding:
        if len(self._by_external) >= self._port_count:
            raise RuntimeError("NAT port pool exhausted")
        while self._next_port in self._by_external:
            self._next_port = (
                self._port_base + (self._next_port + 1 - self._port_base) % self._port_count
            )
        binding = NatBinding(internal_ip, internal_port, self._next_port)
        self._by_internal[(internal_ip, internal_port)] = binding
        self._by_external[self._next_port] = binding
        return binding

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        # Portless traffic (ICMP, fragments past the first) carries no
        # L4 tuple to translate; it passes through untouched.  Dropping
        # here would be an *undeclared* drop -- Table 2's NAT row has no
        # Drop action, and the profile-audit oracle flags the mismatch.
        if pkt.l4_protocol not in (PROTO_TCP, PROTO_UDP):
            return
        ip = pkt.ipv4
        l4 = pkt.tcp if pkt.l4_protocol == PROTO_TCP else pkt.udp
        key = (ip.src_ip, l4.src_port)
        binding = self._by_internal.get(key)
        if binding is None:
            binding = self._allocate(*key)
        binding.packets += 1
        ip.src_ip = self.external_ip
        l4.src_port = binding.external_port
        ip.update_checksum()

    # ------------------------------------------------------ state handover
    def export_flow_state(self, flow_key: tuple) -> Optional[dict]:
        """Detach the binding for one flow so it can move instances.

        The flow key is ``(src_ip, dst_ip, proto, sport, dport)``; NAT
        state is keyed by the internal (src ip, src port) pair.
        """
        binding = self._by_internal.pop((flow_key[0], flow_key[3]), None)
        if binding is None:
            return None
        self._by_external.pop(binding.external_port, None)
        return {
            "internal_ip": binding.internal_ip,
            "internal_port": binding.internal_port,
            "external_port": binding.external_port,
            "packets": binding.packets,
        }

    def import_flow_state(self, flow_key: tuple, state: dict) -> None:
        """Adopt a moved binding, keeping its external port if free.

        The external port spaces of two NAT instances are independent,
        so the moved flow's port may already be taken here; in that case
        a fresh port is allocated (the translation changes, counted in
        ``handover_remaps``) rather than silently sharing a port.
        """
        key = (state["internal_ip"], state["internal_port"])
        port = state["external_port"]
        if port in self._by_external or key in self._by_internal:
            binding = self._allocate(*key) if key not in self._by_internal \
                else self._by_internal[key]
            self.handover_remaps += 1
        else:
            binding = NatBinding(*key, port)
            self._by_internal[key] = binding
            self._by_external[port] = binding
        binding.packets += state["packets"]

    # ------------------------------------------------------ operator API
    def binding_count(self) -> int:
        return len(self._by_internal)

    def lookup_external(self, external_port: int) -> Optional[NatBinding]:
        return self._by_external.get(external_port)
