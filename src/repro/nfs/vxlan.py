"""VXLAN tunnel endpoints (Lemur's encap/decap modules).

The encapsulator wraps every frame in a 50-byte outer
Ethernet/IPv4/UDP/VXLAN stack toward a configured remote VTEP; the
decapsulator strips the outer stack from frames addressed to UDP port
4789.  Structurally these are Add/Remove of ``Field.VXLAN_HEADER``,
exactly parallel to how the VPN pair adds/removes the AH.
"""

from __future__ import annotations

from typing import Optional

from ..net.encap import VXLAN_PORT, is_vxlan, vxlan_decap, vxlan_encap
from ..net.headers import PROTO_UDP
from ..net.packet import Packet
from .base import NetworkFunction, ProcessingContext, register_nf_class

__all__ = ["VxlanEncap", "VxlanDecap"]


@register_nf_class
class VxlanEncap(NetworkFunction):
    """Encapsulate toward a remote VTEP.  Profile: Add VXLAN_HEADER."""

    KIND = "vxlan-encap"

    def __init__(
        self,
        name: Optional[str] = None,
        vni: int = 1000,
        local_ip: str = "203.0.113.1",
        remote_ip: str = "203.0.113.2",
    ):
        super().__init__(name)
        if not 0 <= vni < (1 << 24):
            raise ValueError("VNI is 24 bits")
        self.vni = vni
        self.local_ip = local_ip
        self.remote_ip = remote_ip
        self.encapped = 0

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        vxlan_encap(pkt, self.vni, self.local_ip, self.remote_ip)
        self.encapped += 1


@register_nf_class
class VxlanDecap(NetworkFunction):
    """Strip the VXLAN outer stack from port-4789 UDP frames.

    Profile: Read DPORT (the tunnel classification), Remove
    VXLAN_HEADER.  Non-tunnel traffic passes through untouched.
    """

    KIND = "vxlan-decap"

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self.decapped = 0

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        try:
            proto = pkt.l4_protocol
        except ValueError:
            return  # not IPv4: pass through
        if proto != PROTO_UDP or pkt.udp.dst_port != VXLAN_PORT:
            return
        if is_vxlan(pkt):
            vxlan_decap(pkt)
            self.decapped += 1
