"""VPN NF (§6.1): IPsec AH with AES payload encryption.

"It implements the tunnel mode of IPsec Authentication Header (AH)
protocol.  It encrypts a packet based on the AES algorithm and wraps it
with an AH header."  The encryptor transforms the L4 payload in place
with AES-128-CTR (length preserving) and splices in a 24-byte AH whose
ICV covers the addresses and everything behind the AH.  The peer
:class:`VpnDecryptor` reverses both steps, so examples can run a full
encrypt -> network -> decrypt path.

The CTR nonce must be recoverable by the decryptor from the packet
alone; we derive it from the AH sequence number, which the AH carries.
"""

from __future__ import annotations

from typing import Optional

from ..net.ah import insert_ah, remove_ah, verify_ah
from ..net.crypto import aes_ctr_transform
from ..net.packet import Packet
from .base import NetworkFunction, ProcessingContext, register_nf_class

__all__ = ["VpnEncryptor", "VpnDecryptor", "DEFAULT_VPN_KEY"]

DEFAULT_VPN_KEY = bytes(range(16))
DEFAULT_SPI = 0x1001


@register_nf_class
class VpnEncryptor(NetworkFunction):
    """Encrypt payload (AES-CTR) and add an Authentication Header."""

    KIND = "vpn"

    def __init__(
        self,
        name: Optional[str] = None,
        key: bytes = DEFAULT_VPN_KEY,
        spi: int = DEFAULT_SPI,
    ):
        super().__init__(name)
        if len(key) != 16:
            raise ValueError("VPN key must be 16 bytes (AES-128)")
        self.key = key
        self.spi = spi
        self.seq = 0

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        self.seq += 1
        if pkt.has_ah:
            # Already encapsulated (e.g. a second VPN hop in a synthetic
            # chain): re-encrypt the payload under a fresh keystream and
            # refresh the existing AH instead of stacking headers.
            payload = pkt.payload
            if payload:
                pkt.set_payload(aes_ctr_transform(self.key, self.seq, payload))
            ah = pkt.ah
            ah.seq = self.seq
            return
        payload = pkt.payload
        if payload:
            pkt.set_payload(aes_ctr_transform(self.key, self.seq, payload))
        insert_ah(pkt, spi=self.spi, seq=self.seq, icv_key=self.key)

    # ------------------------------------------------------ state handover
    def export_shared_state(self) -> dict:
        """Snapshot the AH sequence (cross-flow state, non-destructive)."""
        return {"seq": self.seq}

    def import_shared_state(self, state: dict) -> None:
        """Adopt a peer's sequence floor: AH sequences must never
        regress or repeat, so a new instance starts at the max of what
        any exporting peer has already used."""
        self.seq = max(self.seq, int(state["seq"]))


class VpnDecryptor(NetworkFunction):
    """Strip the AH and decrypt the payload (the far peer of the tunnel)."""

    KIND = "vpn-decrypt"

    def __init__(
        self,
        name: Optional[str] = None,
        key: bytes = DEFAULT_VPN_KEY,
        verify: bool = True,
    ):
        super().__init__(name)
        self.key = key
        self.verify = verify
        self.auth_failures = 0

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        if not pkt.has_ah:
            ctx.drop("no AH")
            return
        if self.verify and not verify_ah(pkt, self.key):
            self.auth_failures += 1
            ctx.drop("AH integrity failure")
            return
        seq = pkt.ah.seq
        remove_ah(pkt, self.key, verify=False)
        payload = pkt.payload
        if payload:
            pkt.set_payload(aes_ctr_transform(self.key, seq, payload))


register_nf_class(VpnDecryptor)
