"""Monitor NF (§6.1): NetFlow-style per-flow counters.

"It maintains per-flow counters, which can be obtained by the operator.
The counter table uses the hash value of the 5-tuple as the key."
Read-only -- the canonical parallelizable NF of Fig. 1.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..net.packet import Packet
from .base import NetworkFunction, ProcessingContext, register_nf_class

__all__ = ["Monitor", "FlowStats"]


class FlowStats:
    """Counters for one flow."""

    __slots__ = ("packets", "bytes")

    def __init__(self):
        self.packets = 0
        self.bytes = 0

    def __repr__(self) -> str:
        return f"FlowStats(packets={self.packets}, bytes={self.bytes})"


@register_nf_class
class Monitor(NetworkFunction):
    """Per-flow packet/byte accounting keyed by the 5-tuple."""

    KIND = "monitor"

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self._flows: Dict[int, FlowStats] = {}
        self._keys: Dict[int, Tuple] = {}

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        key = pkt.five_tuple()
        bucket = hash(key)
        stats = self._flows.get(bucket)
        if stats is None:
            stats = FlowStats()
            self._flows[bucket] = stats
            self._keys[bucket] = key
        stats.packets += 1
        stats.bytes += pkt.wire_len

    # ------------------------------------------------------ operator API
    def flow_count(self) -> int:
        return len(self._flows)

    def stats_for(self, five_tuple: Tuple) -> Optional[FlowStats]:
        return self._flows.get(hash(five_tuple))

    def totals(self) -> Tuple[int, int]:
        """(total packets, total bytes) across all flows."""
        packets = sum(s.packets for s in self._flows.values())
        byte_count = sum(s.bytes for s in self._flows.values())
        return packets, byte_count

    def top_flows(self, n: int = 10):
        """The ``n`` busiest flows as (five_tuple, stats) pairs."""
        ranked = sorted(
            self._flows.items(), key=lambda kv: kv[1].packets, reverse=True
        )
        return [(self._keys[bucket], stats) for bucket, stats in ranked[:n]]
