"""Stateful (connection-tracking) firewall.

A deeper substrate NF beyond Table 2's stateless iptables row: tracks
TCP connections through a SYN → SYN/ACK → ESTABLISHED state machine and
enforces the classic stateful policy:

* outbound (client-side) SYNs from the protected prefix open a pending
  connection;
* inbound packets are accepted only when they belong to a tracked
  connection (or complete its handshake);
* RST/FIN tear the entry down;
* anything that matches no connection and opens none is dropped.

Its action profile (reads the 5-tuple, may drop) matches the stateless
firewall's row, so the orchestrator treats it identically -- which is
exactly the paper's point: parallelism analysis needs only the action
profile, not the NF's internal complexity.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from ..net.headers import PROTO_TCP, TcpView, ip_to_int
from ..net.packet import Packet
from .base import NetworkFunction, ProcessingContext, register_nf_class

__all__ = ["ConnTrackFirewall", "ConnState"]


class ConnState(enum.Enum):
    SYN_SENT = "syn-sent"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"


def _flow_key(pkt: Packet) -> Tuple:
    """Direction-independent connection key."""
    src, dst, proto, sport, dport = pkt.five_tuple()
    a, b = (src, sport), (dst, dport)
    return (proto,) + (a + b if a <= b else b + a)


@register_nf_class
class ConnTrackFirewall(NetworkFunction):
    """Stateful TCP firewall protecting an inside prefix."""

    KIND = "conntrack-firewall"

    def __init__(
        self,
        name: Optional[str] = None,
        inside_prefix: Tuple[str, int] = ("10.0.0.0", 8),
        max_connections: int = 65536,
    ):
        super().__init__(name)
        address, length = inside_prefix
        if not 0 <= length <= 32:
            raise ValueError("prefix length out of range")
        self._mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF if length else 0
        self._net = ip_to_int(address) & self._mask
        self.max_connections = max_connections
        self._connections: Dict[Tuple, ConnState] = {}
        self.established = 0
        self.rejected = 0

    # ------------------------------------------------------------ helpers
    def _is_inside(self, address: str) -> bool:
        return ip_to_int(address) & self._mask == self._net

    def connection_count(self) -> int:
        return len(self._connections)

    def state_of(self, pkt: Packet) -> Optional[ConnState]:
        return self._connections.get(_flow_key(pkt))

    # ------------------------------------------------------------- NF body
    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        if pkt.l4_protocol != PROTO_TCP:
            # Non-TCP: allow outbound, drop unsolicited inbound.
            if not self._is_inside(pkt.ipv4.src_ip):
                self.rejected += 1
                ctx.drop("non-TCP from outside")
            return

        tcp = pkt.tcp
        flags = tcp.flags
        key = _flow_key(pkt)
        state = self._connections.get(key)
        outbound = self._is_inside(pkt.ipv4.src_ip)

        if flags & TcpView.FLAG_RST:
            self._connections.pop(key, None)
            return

        if flags & TcpView.FLAG_SYN and not flags & TcpView.FLAG_ACK:
            if state is None:
                if not outbound:
                    self.rejected += 1
                    ctx.drop("inbound SYN")
                    return
                if len(self._connections) >= self.max_connections:
                    self.rejected += 1
                    ctx.drop("connection table full")
                    return
                self._connections[key] = ConnState.SYN_SENT
            return

        if flags & TcpView.FLAG_SYN and flags & TcpView.FLAG_ACK:
            if state is ConnState.SYN_SENT:
                self._connections[key] = ConnState.SYN_RECEIVED
                return
            self.rejected += 1
            ctx.drop("SYN/ACK without SYN")
            return

        if state is None:
            self.rejected += 1
            ctx.drop("no tracked connection")
            return

        if state is ConnState.SYN_RECEIVED and flags & TcpView.FLAG_ACK:
            self._connections[key] = ConnState.ESTABLISHED
            self.established += 1

        if flags & TcpView.FLAG_FIN:
            self._connections.pop(key, None)
