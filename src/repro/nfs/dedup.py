"""Payload dedup marker (the detection half of Lemur's dedup/rededup).

A real redundancy-elimination middlebox replaces repeated payloads with
shims; to keep the dataplane's length-preserving model we implement the
*marking* step: hash each payload, remember digests, and tag repeats in
the DSCP field so a downstream stage could elide them.  Profile: Read
Payload, Write DSCP.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Set

from ..net.packet import Packet
from .base import NetworkFunction, ProcessingContext, register_nf_class

__all__ = ["DedupMarker"]


@register_nf_class
class DedupMarker(NetworkFunction):
    """Mark packets whose payload was already seen.  R Payload, W DSCP."""

    KIND = "dedup"

    #: DSCP codepoint stamped on duplicate payloads.
    MARK_DSCP = 9

    def __init__(
        self, name: Optional[str] = None, max_digests: int = 65536
    ):
        super().__init__(name)
        if max_digests <= 0:
            raise ValueError("max_digests must be positive")
        self.max_digests = max_digests
        self.duplicates = 0
        self._seen: Set[bytes] = set()

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        payload = pkt.payload
        if not payload:
            return
        digest = hashlib.blake2s(payload, digest_size=8).digest()
        if digest in self._seen:
            self.duplicates += 1
            ip = pkt.ipv4
            ip.dscp = self.MARK_DSCP
            ip.update_checksum()
        elif len(self._seen) < self.max_digests:
            self._seen.add(digest)
