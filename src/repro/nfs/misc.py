"""The remaining Table 2 NFs: caching, gateway, proxy, compression, shaper.

These complete the action-table population so the §4.3 pair statistics
run over real implementations, and give examples more NFs to chain.
Where the real middlebox would change packet length (compression,
proxy rewriting), we apply length-preserving transforms so the merge
machinery's fixed-field model holds; DESIGN.md records the
simplification.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from ..net.packet import Packet
from .base import NetworkFunction, ProcessingContext, register_nf_class

__all__ = ["Caching", "Gateway", "Proxy", "Compression", "TrafficShaper"]


@register_nf_class
class Caching(NetworkFunction):
    """nginx-style cache front end: classify requests as hits or misses.

    Read-only (Table 2: R on DIP, DPORT, Payload): hashes the request
    key (destination + payload prefix) against a simulated cache
    population.
    """

    KIND = "caching"

    def __init__(
        self, name: Optional[str] = None, hit_ratio: float = 0.8, seed: int = 31
    ):
        super().__init__(name)
        if not 0.0 <= hit_ratio <= 1.0:
            raise ValueError("hit ratio must be in [0, 1]")
        self.hit_ratio = hit_ratio
        self._seed = seed
        self.hits = 0
        self.misses = 0

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        # Portless protocols (e.g. ICMP) carry no dport; reaching for
        # pkt.tcp unconditionally would raise and turn this read-only
        # NF into an undeclared dropper, which breaks the parallelism
        # analysis built on its Table 2 profile.  Key on port 0 instead.
        ip = pkt.ipv4
        proto = pkt.l4_protocol
        if proto == 6:
            dport = pkt.tcp.dst_port
        elif proto == 17:
            dport = pkt.udp.dst_port
        else:
            dport = 0
        key = (ip.dst_ip, dport)
        digest = hashlib.blake2s(
            repr((key, pkt.payload[:16], self._seed)).encode(), digest_size=4
        ).digest()
        bucket = int.from_bytes(digest, "big") / 0xFFFFFFFF
        if bucket < self.hit_ratio:
            self.hits += 1
        else:
            self.misses += 1

    def observed_hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@register_nf_class
class Gateway(NetworkFunction):
    """Cisco MGX-style gateway: per-peer accounting on src/dst addresses.

    Read-only (Table 2: R on SIP, DIP).
    """

    KIND = "gateway"

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self.per_pair: Dict[Tuple[str, str], int] = {}

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        ip = pkt.ipv4
        pair = (ip.src_ip, ip.dst_ip)
        self.per_pair[pair] = self.per_pair.get(pair, 0) + 1

    def pair_count(self) -> int:
        return len(self.per_pair)


@register_nf_class
class Proxy(NetworkFunction):
    """Squid-style forward proxy: redirect to an origin, rewrite request.

    Table 2 gives R/W on DIP and Payload: the proxy steers the flow to a
    configured origin server and stamps a via-tag into the payload head
    (length-preserving stand-in for header rewriting).
    """

    KIND = "proxy"

    VIA_TAG = b"via-nfp-proxy:"

    def __init__(self, name: Optional[str] = None, origin: str = "198.51.100.10"):
        super().__init__(name)
        self.origin = origin
        self.redirected = 0

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        ip = pkt.ipv4
        ip.dst_ip = self.origin
        ip.update_checksum()
        payload = pkt.payload
        if len(payload) >= len(self.VIA_TAG):
            stamped = self.VIA_TAG + payload[len(self.VIA_TAG):]
            pkt.set_payload(stamped)
        self.redirected += 1


@register_nf_class
class Compression(NetworkFunction):
    """Cisco IOS-style payload codec (Table 2: R/W Payload).

    Real LZ compression changes packet length; to keep the dataplane's
    fixed-length field model we apply an involutive byte transform (a
    keyed XOR whitening pass): calling the NF twice restores the
    payload, so a codec pair round-trips like compress/decompress.
    """

    KIND = "compression"

    def __init__(self, name: Optional[str] = None, key: int = 0x5A):
        super().__init__(name)
        if not 0 <= key <= 0xFF:
            raise ValueError("key must be one byte")
        self.key = key
        self.processed_bytes = 0

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        payload = pkt.payload
        if payload:
            pkt.set_payload(bytes(b ^ self.key for b in payload))
            self.processed_bytes += len(payload)


@register_nf_class
class TrafficShaper(NetworkFunction):
    """linux-tc-style token bucket: polices a rate, never edits packets.

    Tokens refill with (virtual) time supplied by the caller via
    :meth:`advance_time`; out-of-profile packets are counted (and
    optionally dropped when ``police`` is set).
    """

    KIND = "shaper"

    def __init__(
        self,
        name: Optional[str] = None,
        rate_bytes_per_us: float = 1250.0,  # 10 Gbit/s
        burst_bytes: int = 15000,
        police: bool = False,
    ):
        super().__init__(name)
        if rate_bytes_per_us <= 0 or burst_bytes <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate_bytes_per_us
        self.burst = burst_bytes
        self.police = police
        self.tokens = float(burst_bytes)
        self.out_of_profile = 0
        self._last_time = 0.0

    def advance_time(self, now_us: float) -> None:
        if now_us < self._last_time:
            return
        self.tokens = min(self.burst, self.tokens + (now_us - self._last_time) * self.rate)
        self._last_time = now_us

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        if self.tokens >= pkt.wire_len:
            self.tokens -= pkt.wire_len
            return
        self.out_of_profile += 1
        if self.police:
            ctx.drop("token bucket exceeded")
