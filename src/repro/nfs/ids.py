"""IDS / NIDS / IPS NFs: signature matching over packet payloads.

The paper's IDS is "a simple NF similar to the core signature matching
component of the Snort intrusion detection system with 100 signature
inspection rules" (§6.1).  Matching uses the Aho-Corasick automaton.

Three flavours share the engine:

* :class:`Ids` -- the §6.1 prototype NF: alert only.
* :class:`Nids` -- the Table 2 row (NIDS cluster): identical actions.
* :class:`Ips` -- intrusion *prevention*: drops on match.  This is the
  NF of the §3 example ``Priority(IPS > Firewall)``.
"""

from __future__ import annotations

import random
import string
from typing import Dict, List, Optional, Union

from ..net.packet import Packet
from .aho_corasick import AhoCorasick
from .base import NetworkFunction, ProcessingContext, register_nf_class

__all__ = ["Ids", "Nids", "Ips", "Signature", "build_signatures"]

DEFAULT_SIGNATURE_COUNT = 100


class Signature:
    """A Snort-style rule: content pattern plus optional 5-tuple guards.

    The content pattern drives the Aho-Corasick fast path (as in Snort's
    fast-pattern matcher); protocol/port constraints are checked only on
    content hits.
    """

    __slots__ = ("content", "msg", "protocol", "dport", "sport", "sid")

    _next_sid = [1]

    def __init__(
        self,
        content: bytes,
        msg: str = "",
        protocol: Optional[int] = None,
        dport: Optional[int] = None,
        sport: Optional[int] = None,
        sid: Optional[int] = None,
    ):
        if not content:
            raise ValueError("signature needs a non-empty content pattern")
        self.content = bytes(content)
        self.msg = msg or f"sig:{content[:16]!r}"
        self.protocol = protocol
        self.dport = dport
        self.sport = sport
        if sid is None:
            sid = Signature._next_sid[0]
            Signature._next_sid[0] += 1
        self.sid = sid

    def constraints_match(self, pkt: Packet) -> bool:
        try:
            _, _, proto, sport, dport = pkt.five_tuple()
        except ValueError:
            return False
        if self.protocol is not None and proto != self.protocol:
            return False
        if self.dport is not None and dport != self.dport:
            return False
        if self.sport is not None and sport != self.sport:
            return False
        return True

    def __repr__(self) -> str:
        return f"Signature(sid={self.sid}, {self.msg})"


def build_signatures(count: int = DEFAULT_SIGNATURE_COUNT, seed: int = 23) -> List[bytes]:
    """Deterministic signature corpus: ``count`` printable byte strings.

    Signatures are 6-12 bytes, long enough that random payload bytes do
    not alert spuriously.
    """
    rng = random.Random(seed)
    alphabet = string.ascii_lowercase + string.digits
    signatures = set()
    while len(signatures) < count:
        length = rng.randrange(6, 13)
        signatures.add("".join(rng.choice(alphabet) for _ in range(length)).encode())
    return sorted(signatures)


@register_nf_class
class Ids(NetworkFunction):
    """Alert-only signature matcher (Snort-like detection engine)."""

    KIND = "ids"

    def __init__(
        self,
        name: Optional[str] = None,
        signatures: Optional[List[Union[bytes, "Signature"]]] = None,
    ):
        super().__init__(name)
        raw = signatures if signatures is not None else build_signatures()
        self.rules: List[Signature] = [
            sig if isinstance(sig, Signature) else Signature(sig)
            for sig in raw
        ]
        self.engine = AhoCorasick([rule.content for rule in self.rules])
        self.alerts = 0
        self.scanned_bytes = 0
        #: per-rule alert counters, keyed by sid.
        self.alerts_by_sid: Dict[int, int] = {}

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        payload = pkt.payload
        self.scanned_bytes += len(payload)
        matches = 0
        for rule_index, _ in self.engine.finditer(payload):
            rule = self.rules[rule_index]
            if not rule.constraints_match(pkt):
                continue
            matches += 1
            self.alerts_by_sid[rule.sid] = self.alerts_by_sid.get(rule.sid, 0) + 1
        if matches:
            self.alerts += matches
            self.on_match(pkt, ctx, matches)

    def on_match(self, pkt: Packet, ctx: ProcessingContext, matches: int) -> None:
        """Hook for subclasses; detection-only IDS just alerts."""


@register_nf_class
class Nids(Ids):
    """The Table 2 NIDS row -- same actions as the IDS prototype."""

    KIND = "nids"


@register_nf_class
class Ips(Ids):
    """Intrusion prevention: drop packets that match a signature."""

    KIND = "ips"

    def __init__(self, name=None, signatures=None):
        super().__init__(name, signatures)
        self.blocked = 0

    def on_match(self, pkt: Packet, ctx: ProcessingContext, matches: int) -> None:
        self.blocked += 1
        ctx.drop("ips signature match")
