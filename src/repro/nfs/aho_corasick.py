"""Aho-Corasick multi-pattern matcher, the IDS/NIDS signature engine.

The paper's IDS is "a simple NF similar to the core signature matching
component of the Snort intrusion detection system with 100 signature
inspection rules" (§6.1).  Snort's fast pattern matcher is Aho-Corasick;
we build the classic automaton: trie + BFS failure links, streaming
byte-at-a-time matching over packet payloads.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Tuple

__all__ = ["AhoCorasick"]


class _State:
    __slots__ = ("next", "fail", "outputs")

    def __init__(self):
        self.next: Dict[int, "_State"] = {}
        self.fail: "_State" = None  # type: ignore[assignment]
        self.outputs: List[int] = []  # pattern indices ending here


class AhoCorasick:
    """Immutable multi-pattern byte matcher.

    >>> ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
    >>> sorted(pat for pat, _ in ac.findall(b"ushers"))
    [b'he', b'hers', b'she']
    """

    def __init__(self, patterns: Iterable[bytes]):
        self.patterns: List[bytes] = [bytes(p) for p in patterns]
        if any(not p for p in self.patterns):
            raise ValueError("empty pattern not allowed")
        self._root = _State()
        self._build_trie()
        self._build_failure_links()

    def _build_trie(self) -> None:
        for index, pattern in enumerate(self.patterns):
            node = self._root
            for byte in pattern:
                node = node.next.setdefault(byte, _State())
            node.outputs.append(index)

    def _build_failure_links(self) -> None:
        self._root.fail = self._root
        queue: deque = deque()
        for child in self._root.next.values():
            child.fail = self._root
            queue.append(child)
        while queue:
            node = queue.popleft()
            for byte, child in node.next.items():
                queue.append(child)
                fail = node.fail
                while fail is not self._root and byte not in fail.next:
                    fail = fail.fail
                child.fail = fail.next.get(byte, self._root)
                if child.fail is child:
                    child.fail = self._root
                child.outputs += child.fail.outputs

    def finditer(self, data: bytes) -> Iterator[Tuple[int, int]]:
        """Yield (pattern_index, end_offset) for every match in ``data``."""
        node = self._root
        for offset, byte in enumerate(data):
            while node is not self._root and byte not in node.next:
                node = node.fail
            node = node.next.get(byte, self._root)
            for pattern_index in node.outputs:
                yield pattern_index, offset + 1

    def findall(self, data: bytes) -> List[Tuple[bytes, int]]:
        """All matches as (pattern, end_offset) pairs."""
        return [(self.patterns[i], end) for i, end in self.finditer(data)]

    def match_count(self, data: bytes) -> int:
        """Number of matches (an IDS alert counter)."""
        return sum(1 for _ in self.finditer(data))

    def __len__(self) -> int:
        return len(self.patterns)
