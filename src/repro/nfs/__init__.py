"""Network function implementations (§6.1 prototypes + Table 2 extras).

Each NF registers under its *kind* name, matching its action-table row:
forwarder, loadbalancer, firewall, ids/nids/ips, vpn/vpn-decrypt,
monitor, nat, caching, gateway, proxy, compression, shaper.
"""

from .base import (
    NetworkFunction,
    ProcessingContext,
    create_nf,
    nf_class,
    register_nf_class,
    registered_kinds,
)
from .aho_corasick import AhoCorasick
from .forwarder import L3Forwarder, build_routing_table
from .firewall import AclRule, Firewall, build_acl
from .monitor import FlowStats, Monitor
from .loadbalancer import LoadBalancer
from .vpn import DEFAULT_VPN_KEY, VpnDecryptor, VpnEncryptor
from .ids import Ids, Ips, Nids, Signature, build_signatures
from .nat import Nat, NatBinding
from .misc import Caching, Compression, Gateway, Proxy, TrafficShaper
from .conntrack import ConnState, ConnTrackFirewall
from .l2 import MacSwap, VlanPop, VlanPush
from .vxlan import VxlanDecap, VxlanEncap
from .dedup import DedupMarker

__all__ = [
    "NetworkFunction",
    "ProcessingContext",
    "register_nf_class",
    "create_nf",
    "nf_class",
    "registered_kinds",
    "AhoCorasick",
    "L3Forwarder",
    "build_routing_table",
    "Firewall",
    "AclRule",
    "build_acl",
    "Monitor",
    "FlowStats",
    "LoadBalancer",
    "VpnEncryptor",
    "VpnDecryptor",
    "DEFAULT_VPN_KEY",
    "Ids",
    "Nids",
    "Ips",
    "Signature",
    "build_signatures",
    "Nat",
    "NatBinding",
    "Caching",
    "Gateway",
    "Proxy",
    "Compression",
    "TrafficShaper",
    "ConnTrackFirewall",
    "ConnState",
    "MacSwap",
    "VlanPush",
    "VlanPop",
    "VxlanEncap",
    "VxlanDecap",
    "DedupMarker",
]
