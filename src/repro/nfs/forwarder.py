"""L3 Forwarder NF (§6.1): longest-prefix-match next-hop lookup.

"A simple forwarder that obtains the matching entry from a longest
prefix matching table with 1000 entries to find out the next hop."
Like a real router hop it also decrements TTL and fixes the IPv4
checksum, which is why its action profile is Read(DIP) + Write(TTL).
"""

from __future__ import annotations

import random
from typing import Optional

from ..net.headers import int_to_ip
from ..net.lpm import LpmTable
from ..net.packet import Packet
from .base import NetworkFunction, ProcessingContext, register_nf_class

__all__ = ["L3Forwarder", "build_routing_table"]

DEFAULT_ROUTE_COUNT = 1000


def build_routing_table(
    entries: int = DEFAULT_ROUTE_COUNT, seed: int = 7
) -> LpmTable:
    """A deterministic LPM table with ``entries`` random prefixes.

    Always includes a default route so every packet resolves.
    """
    rng = random.Random(seed)
    table = LpmTable()
    table.insert("0.0.0.0", 0, "next-hop-default")
    while len(table) < entries:
        prefix_len = rng.choice((8, 12, 16, 20, 24, 28))
        address = rng.getrandbits(32) & (0xFFFFFFFF << (32 - prefix_len))
        table.insert(int_to_ip(address), prefix_len, f"next-hop-{len(table)}")
    return table


@register_nf_class
class L3Forwarder(NetworkFunction):
    """LPM-based IPv4 forwarder."""

    KIND = "forwarder"

    def __init__(self, name: Optional[str] = None, routes: Optional[LpmTable] = None):
        super().__init__(name)
        self.routes = routes if routes is not None else build_routing_table()
        self.lookups = 0
        self.no_route = 0
        self.last_next_hop: Optional[str] = None

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        ip = pkt.ipv4
        self.lookups += 1
        next_hop = self.routes.lookup(ip.dst_ip)
        if next_hop is None:
            self.no_route += 1
            ctx.drop("no route")
            return
        self.last_next_hop = next_hop
        if ip.ttl <= 1:
            ctx.drop("ttl exceeded")
            return
        ip.ttl = ip.ttl - 1
        ip.update_checksum()
