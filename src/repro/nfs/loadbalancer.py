"""Load Balancer NF (§6.1): ECMP over backend servers.

"We implement the commonly used ECMP mechanism in data centers that
hashed the 5-tuple of the packet to balance the load."  Acting as a
full-proxy VIP (the F5/A10 style of Table 2), it rewrites the
destination IP to the chosen backend and the source IP to its virtual
IP -- hence the Write(SIP)/Write(DIP) profile.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional

from ..net.packet import Packet
from .base import NetworkFunction, ProcessingContext, register_nf_class

__all__ = ["LoadBalancer"]

DEFAULT_BACKENDS = tuple(f"172.16.0.{i}" for i in range(1, 9))


@register_nf_class
class LoadBalancer(NetworkFunction):
    """ECMP 5-tuple-hash load balancer with a virtual IP."""

    KIND = "loadbalancer"

    def __init__(
        self,
        name: Optional[str] = None,
        backends: Optional[List[str]] = None,
        vip: str = "10.255.0.1",
    ):
        super().__init__(name)
        self.backends = (
            list(DEFAULT_BACKENDS) if backends is None else list(backends)
        )
        if not self.backends:
            raise ValueError("load balancer needs at least one backend")
        self.vip = vip
        self.per_backend: Dict[str, int] = {b: 0 for b in self.backends}

    @staticmethod
    def _ecmp_hash(five_tuple) -> int:
        """Deterministic 5-tuple hash (CRC32, like hardware ECMP)."""
        return zlib.crc32(repr(five_tuple).encode())

    def pick_backend(self, pkt: Packet) -> str:
        return self.backends[self._ecmp_hash(pkt.five_tuple()) % len(self.backends)]

    def process(self, pkt: Packet, ctx: ProcessingContext) -> None:
        backend = self.pick_backend(pkt)
        self.per_backend[backend] += 1
        ip = pkt.ipv4
        ip.dst_ip = backend
        ip.src_ip = self.vip
        ip.update_checksum()

    def imbalance(self) -> float:
        """max/mean backend load ratio (1.0 = perfectly balanced)."""
        counts = list(self.per_backend.values())
        total = sum(counts)
        if total == 0:
            return 1.0
        mean = total / len(counts)
        return max(counts) / mean if mean else 1.0
