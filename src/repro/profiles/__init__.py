"""Inferred NF action profiles (the trace-based analysis tool of §5.4).

The paper lets operators register new NFs with a profile "generated ...
manually or with the analysis tool provided by NFP".  The static half of
that tool is :mod:`repro.core.inspector`; this package is the *dynamic*
half, after the "Automatic Parallelization of Software Network
Functions" approach: run NFs over real traffic with an
:class:`~repro.net.recorder.AccessRecorder` attached, aggregate the
observed events into an inferred :class:`InferredProfile` per NF kind
(:mod:`repro.profiles.infer`), and diff inferred against declared
profiles (:mod:`repro.profiles.audit`) -- an *undeclared* access is a
latent parallelism bug (the compiler parallelizes based on the
declaration), an *unused* declaration is a harmless over-approximation.

:mod:`repro.profiles.harness` drives the audit over adversarial fuzz
traffic; :mod:`repro.check` wires the auditor in as a fourth
differential oracle.
"""

from .infer import InferredProfile, Observation, infer_profiles
from .audit import (
    HARD,
    INFO,
    Finding,
    ProfileAuditor,
    hard_findings,
)
from .harness import AuditReport, audit_catalog

__all__ = [
    "InferredProfile",
    "Observation",
    "infer_profiles",
    "Finding",
    "ProfileAuditor",
    "hard_findings",
    "HARD",
    "INFO",
    "AuditReport",
    "audit_catalog",
]
