"""Diff inferred profiles against declared action-table rows.

Severity model (from the ISSUE/ROADMAP framing):

* **hard** -- the NF was observed doing something its declaration does
  not cover (undeclared read/write/add/remove/drop).  The compiler's
  parallelism decisions are built on the declaration, so this is a
  latent race: two NFs declared independent may in fact touch the same
  bytes.
* **info** -- a declared action was never observed.  Over-approximation
  is sound (it only makes the compiler more conservative) but worth
  surfacing: it costs parallelism.

Findings serialize to plain JSON dicts so the fuzzer's shrinker and the
corpus replay path can carry them alongside case files.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Union

from ..core.action_table import ActionTable
from ..core.actions import Action, ActionProfile, Verb
from .infer import InferredProfile, Observation

__all__ = ["HARD", "INFO", "Finding", "ProfileAuditor", "hard_findings"]

HARD = "hard"
INFO = "info"


class Finding:
    """One inferred-vs-declared discrepancy for an NF kind."""

    __slots__ = (
        "severity",
        "kind",
        "verb",
        "field",
        "message",
        "nf_name",
        "packet_uid",
        "count",
    )

    def __init__(
        self,
        severity: str,
        kind: str,
        verb: str,
        field: Optional[str],
        message: str,
        nf_name: Optional[str] = None,
        packet_uid: Optional[int] = None,
        count: int = 0,
    ):
        self.severity = severity
        self.kind = kind
        self.verb = verb
        self.field = field
        self.message = message
        self.nf_name = nf_name
        self.packet_uid = packet_uid
        self.count = count

    @property
    def hard(self) -> bool:
        return self.severity == HARD

    def to_dict(self) -> dict:
        return {
            "severity": self.severity,
            "kind": self.kind,
            "verb": self.verb,
            "field": self.field,
            "message": self.message,
            "nf_name": self.nf_name,
            "packet_uid": self.packet_uid,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            severity=data["severity"],
            kind=data["kind"],
            verb=data["verb"],
            field=data.get("field"),
            message=data["message"],
            nf_name=data.get("nf_name"),
            packet_uid=data.get("packet_uid"),
            count=data.get("count", 0),
        )

    def __repr__(self) -> str:
        return f"<Finding {self.severity} {self.kind}: {self.message}>"


def _declared_covers(declared: ActionProfile, action: Action) -> bool:
    """Whether a declared profile covers one observed action.

    Reads/writes respect field overlap (a declared WHOLE_PACKET read
    covers any observed read); structural add/remove and drop must be
    declared verbatim.
    """
    if action.verb is Verb.DROP:
        return declared.may_drop
    if action.verb is Verb.READ:
        return any(f.overlaps(action.field) for f in declared.reads)
    if action.verb is Verb.WRITE:
        return any(f.overlaps(action.field) for f in declared.writes)
    if action.verb is Verb.ADD:
        return action.field in declared.adds
    if action.verb is Verb.REMOVE:
        return action.field in declared.removes
    return False  # pragma: no cover - enum is closed


class ProfileAuditor:
    """Cross-checks inferred footprints against an :class:`ActionTable`."""

    def __init__(self, table: ActionTable):
        self.table = table

    def audit_one(self, inferred: InferredProfile) -> List[Finding]:
        findings: List[Finding] = []
        kind = inferred.kind
        if kind not in self.table:
            findings.append(
                Finding(
                    HARD,
                    kind,
                    verb="*",
                    field=None,
                    message=f"NF kind {kind!r} has no declared action profile",
                )
            )
            return findings
        declared = self.table.fetch(kind)

        for action, obs in sorted(
            inferred.observations.items(), key=lambda kv: str(kv[0])
        ):
            if _declared_covers(declared, action):
                continue
            findings.append(self._undeclared(kind, action, obs))

        observed = inferred.actions
        for action in sorted(declared.actions, key=str):
            if action in observed:
                continue
            if any(_covers_declared(o, action) for o in observed):
                continue
            field = str(action.field) if action.field else None
            findings.append(
                Finding(
                    INFO,
                    kind,
                    verb=action.verb.value,
                    field=field,
                    message=(
                        f"declared {action.verb.value}"
                        f"{'(' + field + ')' if field else ''} never observed "
                        f"over {inferred.packets_seen} packets "
                        "(sound over-approximation; costs parallelism)"
                    ),
                )
            )
        return findings

    def audit(
        self,
        inferred: Union[Mapping[str, InferredProfile], Iterable[InferredProfile]],
    ) -> List[Finding]:
        """Audit many inferred profiles; hard findings sort first."""
        if isinstance(inferred, Mapping):
            profiles = list(inferred.values())
        else:
            profiles = list(inferred)
        findings: List[Finding] = []
        for profile in sorted(profiles, key=lambda p: p.kind):
            findings.extend(self.audit_one(profile))
        findings.sort(key=lambda f: (f.severity != HARD, f.kind, f.verb))
        return findings

    @staticmethod
    def _undeclared(kind: str, action: Action, obs: Observation) -> Finding:
        field = str(action.field) if action.field else None
        descr = f"{action.verb.value}{'(' + field + ')' if field else ''}"
        return Finding(
            HARD,
            kind,
            verb=action.verb.value,
            field=field,
            message=(
                f"undeclared {descr}: observed {obs.count}x, first by "
                f"{obs.first_nf!r} on packet #{obs.first_packet_uid}; the "
                "declared profile under-approximates the real footprint "
                "(latent parallelism race)"
            ),
            nf_name=obs.first_nf,
            packet_uid=obs.first_packet_uid,
            count=obs.count,
        )


def _covers_declared(observed: Action, declared: Action) -> bool:
    """Whether an observed action makes a declared one 'used'.

    An observed concrete-field access marks a declared WHOLE_PACKET
    declaration of the same verb as exercised.
    """
    if observed.verb is not declared.verb:
        return False
    if observed.field is None or declared.field is None:
        return observed.field is declared.field
    return observed.field.overlaps(declared.field)


def hard_findings(findings: Iterable[Finding]) -> List[Finding]:
    return [f for f in findings if f.hard]


def findings_to_json(findings: Iterable[Finding]) -> List[Dict]:
    return [f.to_dict() for f in findings]
