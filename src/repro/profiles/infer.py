"""Aggregate recorded access events into inferred action profiles."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..core.actions import Action, ActionProfile, Verb
from ..net.recorder import AccessEvent

__all__ = ["Observation", "InferredProfile", "infer_profiles", "VERB_MAP"]

#: Recorder verb string -> profile verb.  Copy events carry attribution
#: for the copy machinery, not packet-content actions, so they are not
#: part of the footprint.
VERB_MAP = {
    "read": Verb.READ,
    "write": Verb.WRITE,
    "add": Verb.ADD,
    "remove": Verb.REMOVE,
    "drop": Verb.DROP,
}


class Observation:
    """Evidence for one inferred action: how often and first witness."""

    __slots__ = ("action", "count", "first_nf", "first_packet_uid")

    def __init__(self, action: Action, nf_name: str, packet_uid: int):
        self.action = action
        self.count = 1
        self.first_nf = nf_name
        self.first_packet_uid = packet_uid

    def to_dict(self) -> dict:
        return {
            "verb": self.action.verb.value,
            "field": str(self.action.field) if self.action.field else None,
            "count": self.count,
            "first_nf": self.first_nf,
            "first_packet_uid": self.first_packet_uid,
        }

    def __repr__(self) -> str:
        return (
            f"<Observation {self.action} x{self.count} "
            f"first={self.first_nf}/pkt#{self.first_packet_uid}>"
        )


class InferredProfile:
    """The execution-observed footprint of one NF kind."""

    def __init__(self, kind: str):
        self.kind = kind.lower()
        self.observations: Dict[Action, Observation] = {}
        #: Packets this kind was observed processing (unique uids seen).
        self.packets_seen = 0
        self._uids = set()

    def record(self, event: AccessEvent) -> None:
        self._uids.add(event.packet_uid)
        verb = VERB_MAP.get(event.verb)
        if verb is None:  # copy-full / copy-header: attribution only
            return
        action = Action(verb, event.field)
        obs = self.observations.get(action)
        if obs is None:
            self.observations[action] = Observation(
                action, event.nf_name, event.packet_uid
            )
        else:
            obs.count += 1

    @property
    def actions(self) -> frozenset:
        return frozenset(self.observations)

    def to_action_profile(self, name: Optional[str] = None) -> ActionProfile:
        """The inferred footprint as a registrable ActionProfile."""
        return ActionProfile(name or self.kind, self.actions)

    def finish(self) -> "InferredProfile":
        self.packets_seen = len(self._uids)
        return self

    def __repr__(self) -> str:
        acts = ", ".join(sorted(str(a) for a in self.observations))
        return f"<InferredProfile {self.kind}: {acts or 'no accesses'}>"


def infer_profiles(events: Iterable[AccessEvent]) -> Dict[str, InferredProfile]:
    """Events -> inferred profile per NF *kind* (declarations are per kind)."""
    profiles: Dict[str, InferredProfile] = {}
    for event in events:
        kind = event.nf_kind.lower()
        profile = profiles.get(kind)
        if profile is None:
            profile = profiles[kind] = InferredProfile(kind)
        profile.record(event)
    for profile in profiles.values():
        profile.finish()
    return profiles
