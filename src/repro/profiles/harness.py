"""Drive the profile audit over adversarial fuzz traffic.

This is the standalone (non-differential) way to run the oracle: build
NF chains, push :class:`CaseGenerator` traffic through them with an
:class:`AccessRecorder` attached, infer the per-kind footprints and
audit them against the declared table.  The CLI's ``profile-audit``
command and the CI smoke job are thin wrappers around
:func:`audit_catalog`.

Two chain modes:

* **catalog** (default, ``kinds=None``): each case's own generated NF
  chain runs as drawn -- over many cases every pool kind is exercised,
  including interactions (a vpn upstream gives vpn-decrypt real AH
  traffic to strip, vlan-push gives vlan-pop tagged frames, ...).
* **explicit** (``kinds=[...]``): the requested kinds run as a chain in
  the given order over every case's traffic, e.g.
  ``["vxlan-encap", "vxlan-decap"]`` to audit a tunnel pair.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.action_table import ActionTable, default_action_table
from ..net.recorder import AccessRecorder
from ..nfs.base import create_nf
from .audit import Finding, ProfileAuditor, hard_findings
from .infer import InferredProfile, infer_profiles

__all__ = ["AuditReport", "audit_catalog"]


class AuditReport:
    """Outcome of one audit run: inferred profiles + findings."""

    def __init__(
        self,
        inferred: Dict[str, InferredProfile],
        findings: List[Finding],
        cases: int,
        packets: int,
        table: ActionTable,
    ):
        self.inferred = inferred
        self.findings = findings
        self.cases = cases
        self.packets = packets
        self.table = table

    @property
    def hard(self) -> List[Finding]:
        return hard_findings(self.findings)

    @property
    def ok(self) -> bool:
        return not self.hard

    def to_dict(self) -> dict:
        return {
            "cases": self.cases,
            "packets": self.packets,
            "kinds_audited": sorted(self.inferred),
            "hard_findings": len(self.hard),
            "findings": [f.to_dict() for f in self.findings],
        }

    def rows(self) -> List[dict]:
        """Per-kind inferred-vs-declared rows for tabular rendering."""
        rows = []
        for kind in sorted(self.inferred):
            profile = self.inferred[kind]
            declared = (
                self.table.fetch(kind) if kind in self.table else None
            )
            hard = [f for f in self.hard if f.kind == kind]
            info = [f for f in self.findings if f.kind == kind and not f.hard]
            rows.append(
                {
                    "kind": kind,
                    "packets": profile.packets_seen,
                    "inferred": _fmt_actions(sorted(profile.actions, key=str)),
                    "declared": (
                        _fmt_actions(sorted(declared.actions, key=str))
                        if declared is not None
                        else "(unregistered)"
                    ),
                    "hard": len(hard),
                    "info": len(info),
                }
            )
        return rows


def _fmt_actions(actions) -> str:
    return " ".join(str(a) for a in actions) or "-"


def audit_catalog(
    kinds: Optional[Sequence[str]] = None,
    cases: int = 200,
    seed: int = 0,
    packets_per_case: int = 8,
    max_nfs: int = 5,
    table: Optional[ActionTable] = None,
    pool: Optional[Sequence[str]] = None,
) -> AuditReport:
    """Run NFs over generated adversarial traffic and audit footprints.

    Findings are judged against the *untweaked* declared ``table`` (the
    generator's sound tweaks only widen declarations and are irrelevant
    here).  Fresh NF instances are created per case so stateful NFs
    (NAT bindings, dedup digests) start cold each time.
    """
    from ..check.generator import CaseGenerator  # late: check imports profiles

    table = table if table is not None else default_action_table()
    generator = CaseGenerator(
        seed=seed,
        max_nfs=max_nfs,
        packets_per_case=packets_per_case,
        pool=list(pool) if pool is not None else _default_pool(),
    )
    recorder = AccessRecorder()
    packet_count = 0
    for index in range(cases):
        case = generator.generate(index)
        if kinds:
            chain = [(f"{kind}#audit", kind) for kind in kinds]
        else:
            chain = case.instances
        nfs = [create_nf(kind, name=name) for name, kind in chain]
        for pkt in case.build_packets():
            packet_count += 1
            pkt.recorder = recorder
            for nf in nfs:
                if nf.handle(pkt).dropped:
                    break
    inferred = infer_profiles(recorder.events)
    findings = ProfileAuditor(table).audit(inferred)
    return AuditReport(
        inferred=inferred,
        findings=findings,
        cases=cases,
        packets=packet_count,
        table=table,
    )


def _default_pool() -> List[str]:
    from ..check.generator import NF_POOL

    return list(NF_POOL)
