"""Disjoint backup placement: 1+1 protection for placed chains.

For every active :class:`~repro.placement.plan.ChainPlacement` the
planner reserves a standby placement whose server set is *disjoint*
from the active path (server-disjoint implies link-disjoint, so no
single server or link failure can take out both).  Backup capacity is
committed to the ledger like active capacity -- protection that only
exists until the first correlated burst is not protection -- so a plan
with backups honestly shows double the core bill.

The backup feeds the PR-5 failover machinery at runtime: the
:class:`~repro.placement.runtime.PlacedDataplane` registers every
active server on a :class:`~repro.faults.recovery.HealthBoard`, and a
crash (via :mod:`repro.faults`) reroutes traffic onto the pre-planned
standby without replanning.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..sim.params import DEFAULT_PARAMS, SimParams
from .plan import (
    ChainPlacement,
    PlacementPlan,
    ResourceLedger,
    enumerate_cuts,
    evaluate_candidate,
)
from .topology import Topology

__all__ = ["plan_backups", "backup_paths"]


def _backup_for(
    placement: ChainPlacement,
    topology: Topology,
    params: SimParams,
    plan: PlacementPlan,
) -> tuple:
    """(backup placement or None, reason).  Ledger-committed on success."""
    request = placement.request
    avoid = set(placement.path)
    max_slices = min(topology.num_servers, len(request.graph.stages))
    best = None
    last_reason = "no server-disjoint path exists"
    for cuts in enumerate_cuts(len(request.graph.stages), max_slices):
        for path in topology.paths(len(cuts) + 1):
            if avoid.intersection(path):
                continue
            candidate, reason = evaluate_candidate(
                request, cuts, path, topology, params, plan.ledger
            )
            if candidate is None:
                last_reason = reason or last_reason
                continue
            if best is None or candidate.delay_us < best.delay_us - 1e-9:
                best = candidate
    if best is None:
        return None, last_reason
    plan.ledger.commit(best)
    return best, ""


def plan_backups(
    plan: PlacementPlan,
    params: SimParams = DEFAULT_PARAMS,
) -> Dict[str, str]:
    """Attach a disjoint backup to every placement in ``plan``.

    Mutates the plan in place (``placement.backup`` plus ledger
    reservations) and returns chain name -> reason for every chain that
    could *not* be protected.  Unprotected chains stay active-only; the
    caller decides whether that is acceptable.
    """
    if plan.ledger is None:
        plan.ledger = ResourceLedger(plan.topology)
    unprotected: Dict[str, str] = {}
    for placement in plan.placements:
        backup, reason = _backup_for(
            placement, plan.topology, params, plan
        )
        if backup is None:
            unprotected[placement.request.name] = reason
        else:
            placement.backup = backup
    return unprotected


def backup_paths(placements: Sequence[ChainPlacement]) -> Dict[str, tuple]:
    """chain name -> backup path, for quick assertions and displays."""
    return {
        p.request.name: (p.backup.path if p.backup else None)
        for p in placements
    }
