"""Chain placement requests: a compiled graph plus its SLO and constraints.

A :class:`ChainRequest` is what an operator hands the placement layer
per service chain: the compiled :class:`~repro.core.graph.ServiceGraph`
(the solvers cut it at stage boundaries), an :class:`Slo` (max
end-to-end delay, [min, max] offered rate), and two constraint kinds
from the VNF placement literature (Allybokus et al.):

* **anti-affinity** -- two NFs must not share a server (fault domains,
  licensing, noisy neighbours);
* **partial order** -- one NF must complete on a *strictly earlier*
  server than another (e.g. scrubbing before the paid-per-core IDS box),
  which forces a slice cut between them.

Both constraint kinds resolve to properties of the cut vector, so the
solvers check them without running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from ..core.graph import ServiceGraph

__all__ = ["Slo", "ChainRequest", "RequestError"]


class RequestError(ValueError):
    """Raised for malformed chain requests."""


@dataclass(frozen=True)
class Slo:
    """Per-chain service-level objective.

    ``max_delay_us`` bounds the predicted zero-load end-to-end latency
    of the placement (slice costs + link costs); the DES validates the
    measured p99 against the same bound.  ``min_mpps``/``max_mpps``
    bracket the offered rate: the placement must sustain ``max_mpps``
    losslessly (servers *and* links), and ``min_mpps`` is the floor the
    operator actually pays for.
    """

    max_delay_us: float
    min_mpps: float = 0.0
    max_mpps: float = 1.0

    def __post_init__(self):
        if self.max_delay_us <= 0:
            raise RequestError("max_delay_us must be positive")
        if self.min_mpps < 0 or self.max_mpps <= 0:
            raise RequestError("rates must be non-negative (max > 0)")
        if self.min_mpps > self.max_mpps:
            raise RequestError(
                f"min rate {self.min_mpps} exceeds max rate {self.max_mpps}"
            )

    def describe(self) -> str:
        return (f"delay<={self.max_delay_us:g}us, "
                f"rate=[{self.min_mpps:g},{self.max_mpps:g}]Mpps")


@dataclass
class ChainRequest:
    """One chain the solvers must place."""

    name: str
    graph: ServiceGraph
    slo: Slo
    #: NF-name pairs that must land on different servers.
    anti_affinity: Sequence[Tuple[str, str]] = field(default_factory=tuple)
    #: NF-name pairs ``(a, b)``: ``a``'s server must come strictly
    #: before ``b``'s on the chain's path.
    partial_order: Sequence[Tuple[str, str]] = field(default_factory=tuple)
    #: Average frame size used for link sizing and latency scoring.
    packet_size: int = 64

    def __post_init__(self):
        known = set(self.graph.nf_names())
        for pair in list(self.anti_affinity) + list(self.partial_order):
            for nf in pair:
                if nf not in known:
                    raise RequestError(
                        f"constraint names unknown NF {nf!r} "
                        f"(chain {self.name!r} has {sorted(known)})"
                    )

    # ------------------------------------------------------- cut algebra
    def stage_of(self, nf_name: str) -> int:
        index, _ = self.graph.stage_of(nf_name)
        return index

    def constraints_satisfiable(self) -> Tuple[bool, str]:
        """Whether any cut vector at all can satisfy the constraints.

        Stages never span servers, so two NFs in the same stage can
        never be separated; a partial order pointing backwards against
        the compiled stage order is equally hopeless.
        """
        for a, b in self.anti_affinity:
            if self.stage_of(a) == self.stage_of(b):
                return False, (
                    f"anti-affinity {a}|{b}: same stage, stages never "
                    f"span servers"
                )
        for a, b in self.partial_order:
            if self.stage_of(a) >= self.stage_of(b):
                return False, (
                    f"partial order {a}<{b}: {a} does not precede {b} "
                    f"in the compiled graph"
                )
        return True, ""

    def cuts_ok(self, cuts: Sequence[int]) -> bool:
        """Whether a cut vector separates every constrained pair.

        ``cuts`` lists the stage indices that start a new server (the
        :func:`repro.core.partition.partition_at` convention).  A pair
        is separated exactly when some cut falls in
        ``(stage(a), stage(b)]``.
        """
        cut_set = set(cuts)

        def separated(a: str, b: str) -> bool:
            lo, hi = sorted((self.stage_of(a), self.stage_of(b)))
            return any(lo < cut <= hi for cut in cut_set)

        for a, b in self.anti_affinity:
            if not separated(a, b):
                return False
        for a, b in self.partial_order:
            if not separated(a, b):
                return False
        return True

    #: Required NF cores if the whole chain sat on one server.
    @property
    def nf_cores(self) -> int:
        return len(self.graph.nf_names())

    def describe(self) -> str:
        bits = [f"{self.name}: {self.graph.describe()} [{self.slo.describe()}]"]
        if self.anti_affinity:
            bits.append("anti-affinity " + ",".join(
                f"{a}|{b}" for a, b in self.anti_affinity))
        if self.partial_order:
            bits.append("order " + ",".join(
                f"{a}<{b}" for a, b in self.partial_order))
        return "; ".join(bits)
