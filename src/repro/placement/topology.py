"""Server/link topology model for NF placement.

A :class:`Topology` is a set of :class:`Server` nodes (core + memory
capacity) joined by undirected :class:`Link` edges (bandwidth +
propagation delay).  The placement solvers walk it two ways:

* :meth:`Topology.paths` enumerates simple paths -- the candidate
  server sequences a sliced chain can occupy (slice *i* runs on the
  path's *i*-th server, consecutive slices must be adjacent so the NSH
  frame has a wire to cross);
* :meth:`Topology.disjoint_path` finds a server-disjoint alternative to
  an active path, which is what the backup planner reserves.

Builders cover the shapes the tests and CLI need (``line``, ``star``,
``full_mesh``) plus :meth:`Topology.from_spec` for compact CLI strings
like ``mesh:4x8`` (4 servers, 8 cores each) or ``line:3x6@25`` (25 Gbps
links).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Server", "Link", "Topology", "TopologyError"]

#: Default per-server memory when a builder does not specify one (MB).
DEFAULT_MEMORY_MB = 4096.0


class TopologyError(ValueError):
    """Raised for malformed topologies or unknown members."""


@dataclass(frozen=True)
class Server:
    """One placement target: a box with core and memory capacity."""

    name: str
    cores: int
    memory_mb: float = DEFAULT_MEMORY_MB

    def __post_init__(self):
        if self.cores < 1:
            raise TopologyError(f"server {self.name!r} needs at least 1 core")
        if self.memory_mb <= 0:
            raise TopologyError(f"server {self.name!r} needs positive memory")


@dataclass(frozen=True)
class Link:
    """An undirected link between two servers."""

    a: str
    b: str
    gbps: float = 10.0
    propagation_us: float = 0.0

    def __post_init__(self):
        if self.a == self.b:
            raise TopologyError(f"link {self.a!r} to itself")
        if self.gbps <= 0:
            raise TopologyError(f"link {self.a}-{self.b} needs positive Gbps")
        if self.propagation_us < 0:
            raise TopologyError("propagation delay cannot be negative")

    @property
    def key(self) -> FrozenSet[str]:
        return frozenset((self.a, self.b))

    def other(self, name: str) -> str:
        if name == self.a:
            return self.b
        if name == self.b:
            return self.a
        raise TopologyError(f"{name!r} is not an endpoint of {self.a}-{self.b}")

    def capacity_mpps(self, packet_size: int) -> float:
        """Line rate of this link for a given frame size (+20 B overhead)."""
        from ..sim.params import nic_line_rate_mpps

        return nic_line_rate_mpps(packet_size, nic_gbps=self.gbps)


@dataclass
class Topology:
    """Servers + links, with path enumeration for the solvers."""

    servers: Dict[str, Server] = field(default_factory=dict)
    _links: Dict[FrozenSet[str], Link] = field(default_factory=dict)

    # ------------------------------------------------------- construction
    def add_server(self, server: Server) -> "Topology":
        if server.name in self.servers:
            raise TopologyError(f"duplicate server {server.name!r}")
        self.servers[server.name] = server
        return self

    def add_link(self, link: Link) -> "Topology":
        for end in (link.a, link.b):
            if end not in self.servers:
                raise TopologyError(f"link endpoint {end!r} is not a server")
        if link.key in self._links:
            raise TopologyError(f"duplicate link {link.a}-{link.b}")
        self._links[link.key] = link
        return self

    # ------------------------------------------------------------ queries
    def server(self, name: str) -> Server:
        try:
            return self.servers[name]
        except KeyError:
            raise TopologyError(f"unknown server {name!r}") from None

    def link(self, a: str, b: str) -> Link:
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise TopologyError(f"no link between {a!r} and {b!r}") from None

    @property
    def links(self) -> List[Link]:
        return list(self._links.values())

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    def neighbors(self, name: str) -> List[str]:
        self.server(name)
        return sorted(
            link.other(name) for link in self._links.values()
            if name in link.key
        )

    def path_links(self, path: Sequence[str]) -> List[Link]:
        """The links crossed by a server walk; validates adjacency."""
        return [self.link(a, b) for a, b in zip(path, path[1:])]

    # ----------------------------------------------------------- walking
    def paths(self, length: int,
              start: Optional[str] = None) -> Iterator[Tuple[str, ...]]:
        """All simple server paths of exactly ``length`` servers.

        A path of length 1 is any single server.  ``start`` pins the
        first server (the chain's ingress point) when given.
        """
        if length < 1:
            raise TopologyError("paths need at least one server")
        starts = [start] if start is not None else sorted(self.servers)

        def walk(path: Tuple[str, ...]) -> Iterator[Tuple[str, ...]]:
            if len(path) == length:
                yield path
                return
            for nxt in self.neighbors(path[-1]):
                if nxt not in path:
                    yield from walk(path + (nxt,))

        for first in starts:
            self.server(first)
            yield from walk((first,))

    def disjoint_path(
        self, length: int, avoid: Sequence[str]
    ) -> Optional[Tuple[str, ...]]:
        """A simple path of ``length`` servers avoiding ``avoid`` entirely.

        Server-disjointness implies link-disjointness from the avoided
        path, so a backup found here shares no fate with the active
        placement.  Returns ``None`` when the topology cannot offer one.
        """
        banned = set(avoid)
        for path in self.paths(length):
            if not banned.intersection(path):
                return path
        return None

    # ----------------------------------------------------------- builders
    @classmethod
    def line(cls, count: int, cores: int, gbps: float = 10.0,
             propagation_us: float = 0.0,
             memory_mb: float = DEFAULT_MEMORY_MB) -> "Topology":
        topo = cls()
        for index in range(count):
            topo.add_server(Server(f"s{index}", cores, memory_mb))
        for index in range(count - 1):
            topo.add_link(Link(f"s{index}", f"s{index + 1}", gbps,
                               propagation_us))
        return topo

    @classmethod
    def star(cls, count: int, cores: int, gbps: float = 10.0,
             propagation_us: float = 0.0,
             memory_mb: float = DEFAULT_MEMORY_MB) -> "Topology":
        """``s0`` is the hub; every other server hangs off it."""
        if count < 2:
            raise TopologyError("a star needs at least 2 servers")
        topo = cls()
        for index in range(count):
            topo.add_server(Server(f"s{index}", cores, memory_mb))
        for index in range(1, count):
            topo.add_link(Link("s0", f"s{index}", gbps, propagation_us))
        return topo

    @classmethod
    def full_mesh(cls, count: int, cores: int, gbps: float = 10.0,
                  propagation_us: float = 0.0,
                  memory_mb: float = DEFAULT_MEMORY_MB) -> "Topology":
        topo = cls()
        for index in range(count):
            topo.add_server(Server(f"s{index}", cores, memory_mb))
        for i in range(count):
            for j in range(i + 1, count):
                topo.add_link(Link(f"s{i}", f"s{j}", gbps, propagation_us))
        return topo

    @classmethod
    def from_spec(cls, spec: str) -> "Topology":
        """Parse ``kind:NxC[@G]``: kind, server count, cores, link Gbps.

        Examples: ``mesh:4x8`` (4-server full mesh, 8 cores each, 10G),
        ``line:3x6@25``, ``star:5x8@40``.
        """
        builders = {"line": cls.line, "star": cls.star,
                    "mesh": cls.full_mesh, "full_mesh": cls.full_mesh}
        try:
            kind, shape = spec.strip().split(":", 1)
            gbps = 10.0
            if "@" in shape:
                shape, rate = shape.split("@", 1)
                gbps = float(rate)
            count_text, cores_text = shape.lower().split("x", 1)
            count, cores = int(count_text), int(cores_text)
        except ValueError:
            raise TopologyError(
                f"bad topology spec {spec!r} (want kind:NxC[@G], "
                f"e.g. mesh:4x8 or line:3x6@25)"
            ) from None
        builder = builders.get(kind.strip().lower())
        if builder is None:
            raise TopologyError(
                f"unknown topology kind {kind!r} (choose from "
                f"{sorted(builders)})"
            )
        return builder(count, cores, gbps)

    def describe(self) -> str:
        parts = [
            f"{name}({server.cores}c)"
            for name, server in sorted(self.servers.items())
        ]
        return f"{len(self.servers)} servers: {', '.join(parts)}; " \
               f"{len(self._links)} links"
