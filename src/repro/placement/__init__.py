"""repro.placement — topology-aware NF placement with SLO constraints.

The subsystem answers "which servers should each chain's slices run
on?" for a cluster that is no longer the homogeneous line of boxes §7
assumed.  A :class:`~repro.placement.topology.Topology` models servers
(cores, memory) and links (bandwidth, propagation delay); a
:class:`~repro.placement.request.ChainRequest` carries a compiled
service graph plus its SLOs (end-to-end delay bound, offered-rate
window) and placement constraints (anti-affinity, partial order).

Two solvers share one candidate evaluator -- the calibrated latency
model (:func:`repro.multiserver.latency.link_cost_us`) and capacity
model (:func:`repro.eval.model.placed_capacity`) -- so their answers
are comparable by construction:

* :func:`brute_force_place` -- exhaustive search over (cut vector,
  server path) pairs, exact on small clusters (<= 4 servers);
* :func:`heuristic_place` -- greedy seeding in resource-pressure order
  plus local search; scales past the brute-force horizon and is tested
  to stay within a declared optimality band of it.

:func:`plan_backups` attaches a server-disjoint standby placement to
every placed chain (1+1 protection), and
:class:`~repro.placement.runtime.PlacedDataplane` executes the pair
with PR-5 fault injection: crash any active server and traffic fails
over onto the pre-planned backup with packet conservation intact.
"""

from .backup import backup_paths, plan_backups
from .brute import BruteForceError, brute_force_place, chain_candidates
from .heuristic import heuristic_place, round_robin_place
from .plan import (
    MEMORY_PER_NF_MB,
    ChainPlacement,
    PlacementPlan,
    ResourceLedger,
    enumerate_cuts,
    evaluate_candidate,
)
from .request import ChainRequest, RequestError, Slo
from .runtime import PlacedDataplane, build_dataplane, build_timed
from .topology import Link, Server, Topology, TopologyError

__all__ = [
    "Topology", "Server", "Link", "TopologyError",
    "ChainRequest", "Slo", "RequestError",
    "PlacementPlan", "ChainPlacement", "ResourceLedger",
    "MEMORY_PER_NF_MB", "enumerate_cuts", "evaluate_candidate",
    "brute_force_place", "BruteForceError", "chain_candidates",
    "heuristic_place", "round_robin_place",
    "plan_backups", "backup_paths",
    "PlacedDataplane", "build_dataplane", "build_timed",
]
