"""Placement plans: candidate scoring, feasibility, and the deployable artifact.

The solvers produce and consume the same vocabulary:

* a **candidate** for one chain is ``(cuts, path)``: where to slice the
  compiled graph (:func:`repro.core.partition.partition_at`) and which
  server walk the slices occupy;
* :func:`evaluate_candidate` turns a candidate into a scored
  :class:`ChainPlacement` or a rejection reason, charging the calibrated
  latency model (per-link costs included) and checking the SLO, server
  core/memory capacity, link bandwidth, and the request's constraints
  against a mutable :class:`ResourceLedger`;
* a :class:`PlacementPlan` collects the accepted placements (plus their
  disjoint backups), the residual utilisation, and the chains that could
  not be placed -- *reported*, never silently violated.

The objective minimised throughout is the sum of predicted end-to-end
delays (us) across placed chains; ties naturally favour fewer hops
because every link costs real microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.partition import ServerSlice, partition_at
from ..multiserver.latency import estimate_placed_latency
from ..sim.params import SimParams
from .request import ChainRequest
from .topology import Link, Topology, TopologyError

__all__ = [
    "MEMORY_PER_NF_MB",
    "ResourceLedger",
    "ChainPlacement",
    "PlacementPlan",
    "enumerate_cuts",
    "evaluate_candidate",
]

#: Memory footprint charged per NF instance (buffer pool + state; MB).
MEMORY_PER_NF_MB = 256.0


class ResourceLedger:
    """Residual server cores/memory and link bandwidth during a solve."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self.cores_used: Dict[str, int] = {n: 0 for n in topology.servers}
        self.memory_used: Dict[str, float] = {n: 0.0 for n in topology.servers}
        self.link_mpps: Dict[FrozenSet[str], float] = {
            link.key: 0.0 for link in topology.links
        }

    def copy(self) -> "ResourceLedger":
        clone = ResourceLedger(self.topology)
        clone.cores_used = dict(self.cores_used)
        clone.memory_used = dict(self.memory_used)
        clone.link_mpps = dict(self.link_mpps)
        return clone

    # ------------------------------------------------------------ checks
    def fits(self, placement: "ChainPlacement") -> Tuple[bool, str]:
        for server_name, cores, memory in placement.server_demands():
            server = self.topology.server(server_name)
            if self.cores_used[server_name] + cores > server.cores:
                return False, (
                    f"server {server_name}: needs {cores} cores, "
                    f"{server.cores - self.cores_used[server_name]} free"
                )
            if self.memory_used[server_name] + memory > server.memory_mb:
                return False, (
                    f"server {server_name}: needs {memory:.0f} MB, "
                    f"{server.memory_mb - self.memory_used[server_name]:.0f}"
                    f" MB free"
                )
        for link, mpps in placement.link_demands():
            cap = link.capacity_mpps(placement.request.packet_size)
            if self.link_mpps[link.key] + mpps > cap:
                return False, (
                    f"link {link.a}-{link.b}: needs {mpps:.2f} Mpps, "
                    f"{cap - self.link_mpps[link.key]:.2f} free"
                )
        return True, ""

    def commit(self, placement: "ChainPlacement") -> None:
        for server_name, cores, memory in placement.server_demands():
            self.cores_used[server_name] += cores
            self.memory_used[server_name] += memory
        for link, mpps in placement.link_demands():
            self.link_mpps[link.key] += mpps

    def release(self, placement: "ChainPlacement") -> None:
        for server_name, cores, memory in placement.server_demands():
            self.cores_used[server_name] -= cores
            self.memory_used[server_name] -= memory
        for link, mpps in placement.link_demands():
            self.link_mpps[link.key] -= mpps

    # --------------------------------------------------------- reporting
    def server_utilisation(self) -> Dict[str, float]:
        return {
            name: self.cores_used[name] / server.cores
            for name, server in self.topology.servers.items()
        }

    def link_utilisation(self, packet_size: int = 64) -> Dict[str, float]:
        report = {}
        for link in self.topology.links:
            cap = link.capacity_mpps(packet_size)
            report[f"{link.a}-{link.b}"] = self.link_mpps[link.key] / cap
        return report


@dataclass
class ChainPlacement:
    """One chain mapped onto servers: the solvers' scored unit."""

    request: ChainRequest
    cuts: Tuple[int, ...]
    path: Tuple[str, ...]
    slices: List[ServerSlice]
    links: List[Link]
    #: Predicted zero-load end-to-end delay of this placement.
    delay_us: float
    #: Max lossless rate the placed slices sustain (min over servers).
    capacity_mpps: float
    #: What limits the capacity, e.g. ``server1:ids``.
    bottleneck: str = ""
    #: Filled by the backup planner: a server-disjoint standby.
    backup: Optional["ChainPlacement"] = None

    @property
    def num_servers(self) -> int:
        return len(self.path)

    def server_demands(self) -> List[Tuple[str, int, float]]:
        """(server, cores, memory MB) per hop; includes the +2 overhead."""
        return [
            (server_name, server_slice.total_cores,
             server_slice.nf_cores * MEMORY_PER_NF_MB)
            for server_name, server_slice in zip(self.path, self.slices)
        ]

    def link_demands(self) -> List[Tuple[Link, float]]:
        """Each crossed link carries the chain's worst-case rate once."""
        return [(link, self.request.slo.max_mpps) for link in self.links]

    def describe(self) -> str:
        route = " -> ".join(self.path)
        backup = (
            " (backup " + " -> ".join(self.backup.path) + ")"
            if self.backup else ""
        )
        return (
            f"{self.request.name}: {route}{backup}  "
            f"delay={self.delay_us:.1f}us cap={self.capacity_mpps:.2f}Mpps"
        )


@dataclass
class PlacementPlan:
    """Everything ``Orchestrator.place`` hands back."""

    topology: Topology
    placements: List[ChainPlacement] = field(default_factory=list)
    #: chain name -> reason it could not be placed.
    infeasible: Dict[str, str] = field(default_factory=dict)
    ledger: Optional[ResourceLedger] = None
    solver: str = ""
    #: chain name -> reason no disjoint backup could be reserved.
    unprotected: Dict[str, str] = field(default_factory=dict)

    @property
    def feasible(self) -> bool:
        return not self.infeasible

    @property
    def objective_us(self) -> float:
        """Total predicted delay across placed chains (lower is better)."""
        return sum(p.delay_us for p in self.placements)

    def placement_for(self, chain_name: str) -> ChainPlacement:
        for placement in self.placements:
            if placement.request.name == chain_name:
                return placement
        raise KeyError(f"no placement for chain {chain_name!r}")

    def describe(self) -> str:
        lines = [f"plan[{self.solver}] objective={self.objective_us:.1f}us"]
        lines.extend("  " + p.describe() for p in self.placements)
        for name, reason in self.infeasible.items():
            lines.append(f"  {name}: INFEASIBLE ({reason})")
        for name, reason in self.unprotected.items():
            lines.append(f"  {name}: UNPROTECTED ({reason})")
        return "\n".join(lines)


def enumerate_cuts(num_stages: int, max_slices: int) -> List[Tuple[int, ...]]:
    """Every cut vector producing at most ``max_slices`` slices.

    Ordered fewest-cuts-first so greedy consumers try cheap (link-free)
    slicings before fragmented ones.
    """
    from itertools import combinations

    vectors: List[Tuple[int, ...]] = []
    for count in range(0, min(max_slices - 1, num_stages - 1) + 1):
        vectors.extend(combinations(range(1, num_stages), count))
    return vectors


def evaluate_candidate(
    request: ChainRequest,
    cuts: Sequence[int],
    path: Sequence[str],
    topology: Topology,
    params: SimParams,
    ledger: ResourceLedger,
) -> Tuple[Optional[ChainPlacement], str]:
    """Score one candidate; returns (placement, "") or (None, reason).

    Checks, in order: shape (one server per slice, adjacent hops),
    constraint separation, per-server core fit under the ledger's
    residuals, link bandwidth at the SLO's max rate, rate SLO against
    the placed capacity, and the delay SLO against the calibrated
    per-link latency model.
    """
    from ..eval.model import placed_capacity  # local: avoids a cycle

    slices = partition_at(request.graph, cuts)
    if len(slices) != len(path):
        return None, (
            f"{len(slices)} slices need {len(slices)} servers, "
            f"path has {len(path)}"
        )
    if len(set(path)) != len(path):
        return None, "path revisits a server"
    if not request.cuts_ok(cuts):
        return None, "cut vector violates anti-affinity/partial-order"
    try:
        links = topology.path_links(path)
    except TopologyError as exc:
        return None, str(exc)

    report = placed_capacity(
        request.graph, slices, params, packet_size=request.packet_size
    )
    latency = estimate_placed_latency(
        request.graph, slices, links, params,
        packet_size=request.packet_size,
    )
    placement = ChainPlacement(
        request=request,
        cuts=tuple(sorted(cuts)),
        path=tuple(path),
        slices=slices,
        links=links,
        delay_us=latency.total_us,
        capacity_mpps=report.mpps,
        bottleneck=report.bottleneck,
    )

    fits, reason = ledger.fits(placement)
    if not fits:
        return None, reason
    if report.mpps < request.slo.max_mpps:
        return None, (
            f"capacity {report.mpps:.2f} Mpps < SLO max "
            f"{request.slo.max_mpps:.2f} (bottleneck {report.bottleneck})"
        )
    if latency.total_us > request.slo.max_delay_us:
        return None, (
            f"predicted delay {latency.total_us:.1f}us exceeds SLO "
            f"{request.slo.max_delay_us:.1f}us"
        )
    return placement, ""
