"""Execute a placement plan, with server-crash failover onto the backup.

:func:`build_dataplane` / :func:`build_timed` turn one
:class:`~repro.placement.plan.ChainPlacement` into the corresponding
executable plane (functional :class:`~repro.multiserver.MultiServerDataplane`
or DES :class:`~repro.multiserver.TimedMultiServer`) with the placement's
own slices, server names and link characteristics.

:class:`PlacedDataplane` is the fault-tolerant wrapper the acceptance
tests drive: the active placement and its pre-planned server-disjoint
backup each run as a functional multi-server plane; every *server* is
registered on a PR-5 :class:`~repro.faults.recovery.HealthBoard` and
fed through a :class:`~repro.faults.FaultInjector` whose labels are
server names (``"crash:s1:pkt=5"`` kills server ``s1`` on its 5th
packet).  When a server on the active path dies, the packet that
witnessed the crash is accounted -- not lost -- and every subsequent
packet rides the backup path.  A conservation ledger proves it:
``injected == emitted + sum(drops by reason)``, always.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from ..faults.injector import FaultInjector
from ..faults.model import FaultPlan, FaultSpec
from ..faults.recovery import HealthBoard
from ..multiserver.dataplane import MultiServerDataplane
from ..multiserver.timed import TimedMultiServer
from ..net.packet import Packet
from ..sim import Environment
from ..sim.params import DEFAULT_PARAMS, SimParams
from ..telemetry.hooks import NULL_HUB, TelemetryHub
from .plan import ChainPlacement

__all__ = ["build_dataplane", "build_timed", "PlacedDataplane"]


def build_dataplane(
    placement: ChainPlacement,
    topology=None,
    telemetry: Optional[TelemetryHub] = None,
    path_id: int = 1,
) -> MultiServerDataplane:
    """The functional multi-server plane for one placed chain."""
    server_cores = None
    if topology is not None:
        server_cores = [topology.server(n).cores for n in placement.path]
    return MultiServerDataplane(
        placement.request.graph,
        path_id=path_id,
        telemetry=telemetry,
        slices=placement.slices,
        server_names=list(placement.path),
        server_cores=server_cores,
        link_specs=placement.links,
        offered_mpps=placement.request.slo.max_mpps,
    )


def build_timed(
    placement: ChainPlacement,
    env: Environment,
    params: SimParams = DEFAULT_PARAMS,
    num_mergers: int = 1,
    path_id: int = 1,
    telemetry: Optional[TelemetryHub] = None,
) -> TimedMultiServer:
    """The DES multi-server pipeline for one placed chain.

    Links serialise at each hop's own bandwidth and pay its propagation
    delay, so the measured end-to-end percentiles validate the plan's
    predicted delay against the chain's SLO.
    """
    return TimedMultiServer(
        env, params, placement.request.graph,
        num_mergers=num_mergers, path_id=path_id,
        slices=placement.slices, link_specs=placement.links,
        telemetry=telemetry,
    )


class PlacedDataplane:
    """Active + pre-planned backup execution of one placed chain."""

    def __init__(
        self,
        placement: ChainPlacement,
        topology=None,
        faults: Union[FaultPlan, Sequence[FaultSpec], str, None] = None,
        telemetry: Optional[TelemetryHub] = None,
    ):
        if placement.backup is None:
            raise ValueError(
                f"chain {placement.request.name!r} has no backup placement; "
                f"run plan_backups first"
            )
        self.placement = placement
        self.telemetry = telemetry if telemetry is not None else NULL_HUB
        self.active = build_dataplane(
            placement, topology=topology, telemetry=telemetry, path_id=1
        )
        self.backup = build_dataplane(
            placement.backup, topology=topology, telemetry=telemetry,
            path_id=2,
        )
        if isinstance(faults, str):
            faults = FaultPlan.parse(faults)
        self.injector = FaultInjector(faults, telemetry=self.telemetry)
        self.board = HealthBoard()
        for name in set(placement.path) | set(placement.backup.path):
            self.board.register(name, 1)
        self.injector.on_transition(self._on_transition)
        #: Conservation ledger: injected == emitted + sum(drops.values()).
        self.injected = 0
        self.emitted = 0
        self.drops: Dict[str, int] = {}
        self.failovers = 0

    # ------------------------------------------------------------ health
    def _on_transition(self, label: str, spec, state) -> None:
        if state.down and self.board.up(label):
            was_active = self.on_active_path
            self.board.mark_down(label, 0)
            if self.telemetry.enabled:
                self.telemetry.inc("placement.server_down")
            if label in self.placement.path and was_active:
                # The pre-planned disjoint standby takes over; by
                # construction it shares no server with the dead path.
                self.failovers += 1
                if self.telemetry.enabled:
                    self.telemetry.inc("placement.failover")

    @property
    def on_active_path(self) -> bool:
        """Whether the active placement is still fully healthy."""
        return all(self.board.up(name) for name in self.placement.path)

    @property
    def current_path(self) -> tuple:
        return (
            self.placement.path if self.on_active_path
            else self.placement.backup.path
        )

    def _account_drop(self, reason: str) -> None:
        self.drops[reason] = self.drops.get(reason, 0) + 1
        if self.telemetry.enabled:
            self.telemetry.inc(f"placement.drop.{reason}")

    # ---------------------------------------------------------- dataplane
    def process(self, pkt: Packet) -> Optional[Packet]:
        """One packet through whichever placement is currently healthy."""
        self.injected += 1
        use_backup = not self.on_active_path
        plane = self.backup if use_backup else self.active
        path = self.placement.backup.path if use_backup else self.placement.path

        if use_backup and not all(self.board.up(n) for n in path):
            # Both the active and the standby placement have casualties:
            # nothing left to run on, but the ledger still balances.
            self._account_drop("no_placement")
            return None

        # Health is sampled per server hop *before* the slice runs, so a
        # crash triggered by this packet strands it at that server (an
        # accounted casualty), and the next packet takes the backup.
        for name in path:
            state = self.injector.on_packet(name, float(self.injected))
            if state.down:
                self._account_drop("server_crash")
                return None

        out = plane.process(pkt)
        if out is None:
            self._account_drop("nf_drop")
            return None
        self.emitted += 1
        return out

    # ------------------------------------------------------- conservation
    def conservation_report(self) -> Dict[str, int]:
        """injected == emitted + drops; ``violation`` is the imbalance."""
        dropped = sum(self.drops.values())
        return {
            "injected": self.injected,
            "emitted": self.emitted,
            "dropped": dropped,
            "violation": self.injected - self.emitted - dropped,
            **{f"drop.{k}": v for k, v in sorted(self.drops.items())},
        }
