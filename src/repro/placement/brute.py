"""Exhaustive placement: the optimality baseline for small topologies.

Enumerates, for every chain, every (cut vector, server path) candidate,
then backtracks over the chains jointly so shared-capacity interactions
are searched exactly -- chain A may take a worse personal spot so chain
B fits at all.  Exponential by construction, which is fine at the scale
it is meant for (Mehraghdam et al. solve the same formulation as a
MIQCP at similar sizes); :func:`brute_force_place` refuses topologies
beyond ``max_servers`` (default 4) so nobody leans on it in anger.

The heuristic solver is gated against this baseline in
``tests/integration/test_placement_agreement.py``: feasible whenever
brute force is feasible, objective within a declared band.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim.params import DEFAULT_PARAMS, SimParams
from .plan import (
    ChainPlacement,
    PlacementPlan,
    ResourceLedger,
    enumerate_cuts,
    evaluate_candidate,
)
from .request import ChainRequest
from .topology import Topology

__all__ = ["brute_force_place", "chain_candidates", "BruteForceError"]


class BruteForceError(ValueError):
    """Raised when the exhaustive solver is pointed at a big topology."""


def chain_candidates(
    request: ChainRequest,
    topology: Topology,
    params: SimParams,
    ledger: ResourceLedger,
) -> List[ChainPlacement]:
    """Every feasible (cuts, path) placement for one chain, best first.

    Feasibility is judged against the ledger's *current* residuals;
    callers doing joint search re-check via ``ledger.fits`` at commit
    time.
    """
    max_slices = min(topology.num_servers, len(request.graph.stages))
    candidates: List[ChainPlacement] = []
    for cuts in enumerate_cuts(len(request.graph.stages), max_slices):
        for path in topology.paths(len(cuts) + 1):
            placement, _ = evaluate_candidate(
                request, cuts, path, topology, params, ledger
            )
            if placement is not None:
                candidates.append(placement)
    candidates.sort(key=lambda p: (p.delay_us, p.num_servers, p.path))
    return candidates


def _diagnose(
    request: ChainRequest,
    topology: Topology,
    params: SimParams,
    ledger: ResourceLedger,
) -> str:
    """The most informative rejection reason for an unplaceable chain."""
    ok, reason = request.constraints_satisfiable()
    if not ok:
        return reason
    max_slices = min(topology.num_servers, len(request.graph.stages))
    # Candidates enumerate fewest-cuts/shortest-path first, so the first
    # rejection belongs to the most natural placement -- report that one.
    for cuts in enumerate_cuts(len(request.graph.stages), max_slices):
        for path in topology.paths(len(cuts) + 1):
            _, why = evaluate_candidate(
                request, cuts, path, topology, params, ledger
            )
            if why:
                return why
    return "no candidate placements at all"


def brute_force_place(
    topology: Topology,
    requests: Sequence[ChainRequest],
    params: SimParams = DEFAULT_PARAMS,
    max_servers: int = 4,
) -> PlacementPlan:
    """Jointly optimal placement of ``requests`` by exhaustive search.

    Minimises the total predicted delay over *placed* chains while
    maximising the number of chains placed (a chain is only reported
    infeasible when no joint assignment fits it).  Raises
    :class:`BruteForceError` past ``max_servers`` servers.
    """
    if topology.num_servers > max_servers:
        raise BruteForceError(
            f"brute force is capped at {max_servers} servers "
            f"(got {topology.num_servers}); use the heuristic solver"
        )

    base = ResourceLedger(topology)
    per_chain: Dict[str, List[ChainPlacement]] = {
        request.name: chain_candidates(request, topology, params, base)
        for request in requests
    }

    best: Dict[str, object] = {"count": -1, "objective": float("inf"),
                               "chosen": None, "ledger": None}

    def search(index: int, ledger: ResourceLedger,
               chosen: List[Optional[ChainPlacement]]) -> None:
        if index == len(requests):
            count = sum(1 for c in chosen if c is not None)
            objective = sum(c.delay_us for c in chosen if c is not None)
            if (count > best["count"]
                    or (count == best["count"]
                        and objective < best["objective"] - 1e-9)):
                best["count"] = count
                best["objective"] = objective
                best["chosen"] = list(chosen)
                best["ledger"] = ledger.copy()
            return
        request = requests[index]
        for candidate in per_chain[request.name]:
            fits, _ = ledger.fits(candidate)
            if not fits:
                continue
            ledger.commit(candidate)
            chosen.append(candidate)
            search(index + 1, ledger, chosen)
            chosen.pop()
            ledger.release(candidate)
        # Branch where this chain stays unplaced (maybe others fit).
        chosen.append(None)
        search(index + 1, ledger, chosen)
        chosen.pop()

    search(0, base, [])

    chosen: List[Optional[ChainPlacement]] = best["chosen"] or []
    ledger: ResourceLedger = best["ledger"] or ResourceLedger(topology)
    plan = PlacementPlan(topology=topology, ledger=ledger, solver="brute")
    for request, candidate in zip(requests, chosen):
        if candidate is not None:
            plan.placements.append(candidate)
        else:
            plan.infeasible[request.name] = _diagnose(
                request, topology, params, ledger
            )
    return plan
