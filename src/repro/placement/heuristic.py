"""Scalable placement: greedy construction plus local search.

The heuristic avoids the brute-force joint enumeration (exponential in
chains x paths) with the classic two-phase shape the VNF placement
literature converges on (Lemur's greedy/min-bounce pass, the MSG
heuristic of parallel-SFC placement):

1. **Greedy construction** -- chains ordered by descending resource
   pressure (NF cores x max rate) each take their best-scoring feasible
   candidate under the current ledger.  Candidates are generated
   cheapest-first (fewest cuts, i.e. fewest link crossings) and the
   scan stops early once a feasible candidate is found for the minimal
   cut count and a handful beyond it -- links cost real microseconds,
   so fragmenting further only ever helps when capacity forces it.
2. **Local search** -- repeatedly try to improve one chain at a time:
   release its placement, re-run its candidate scan against the
   relaxed ledger, and keep the best result (which may be the original).
   Stops at a fixed point or after ``max_rounds``.

Also provides :func:`round_robin_place`, the naive baseline the bench
scenario compares both real solvers against: greedy stage slicing
(ignoring scores) dealt onto servers in index order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..sim.params import DEFAULT_PARAMS, SimParams
from .plan import (
    ChainPlacement,
    PlacementPlan,
    ResourceLedger,
    enumerate_cuts,
    evaluate_candidate,
)
from .request import ChainRequest
from .topology import Topology, TopologyError

__all__ = ["heuristic_place", "round_robin_place"]

#: After the first feasible cut count, explore this many extra cut
#: counts before giving up on finding something better.
_EXTRA_CUT_LEVELS = 1


def _best_candidate(
    request: ChainRequest,
    topology: Topology,
    params: SimParams,
    ledger: ResourceLedger,
) -> Tuple[Optional[ChainPlacement], str]:
    """The best-scoring feasible candidate under the current ledger."""
    max_slices = min(topology.num_servers, len(request.graph.stages))
    best: Optional[ChainPlacement] = None
    # Candidates come fewest-cuts/shortest-path first, so the first
    # rejection explains the most natural placement -- keep that one.
    first_reason = ""
    feasible_level: Optional[int] = None
    for cuts in enumerate_cuts(len(request.graph.stages), max_slices):
        level = len(cuts)
        if feasible_level is not None and level > feasible_level + _EXTRA_CUT_LEVELS:
            break
        for path in topology.paths(level + 1):
            placement, reason = evaluate_candidate(
                request, cuts, path, topology, params, ledger
            )
            if placement is None:
                first_reason = first_reason or reason
                continue
            if feasible_level is None:
                feasible_level = level
            if best is None or placement.delay_us < best.delay_us - 1e-9:
                best = placement
    if best is None:
        ok, why = request.constraints_satisfiable()
        if not ok:
            return None, why
        return None, first_reason or "no candidate placements at all"
    return best, ""


def _pressure(request: ChainRequest) -> float:
    return request.nf_cores * max(request.slo.max_mpps, 1e-6)


def heuristic_place(
    topology: Topology,
    requests: Sequence[ChainRequest],
    params: SimParams = DEFAULT_PARAMS,
    max_rounds: int = 3,
) -> PlacementPlan:
    """Greedy + local-search placement that scales past brute force."""
    ledger = ResourceLedger(topology)
    plan = PlacementPlan(topology=topology, ledger=ledger, solver="heuristic")
    order = sorted(requests, key=_pressure, reverse=True)

    placed: List[ChainPlacement] = []
    for request in order:
        candidate, reason = _best_candidate(request, topology, params, ledger)
        if candidate is None:
            plan.infeasible[request.name] = reason
            continue
        ledger.commit(candidate)
        placed.append(candidate)

    # Local search: re-seat one chain at a time against the relaxed
    # ledger; also retry chains the greedy pass could not fit.
    for _ in range(max_rounds):
        improved = False
        for index, current in enumerate(placed):
            ledger.release(current)
            candidate, _ = _best_candidate(
                current.request, topology, params, ledger
            )
            if candidate is not None and candidate.delay_us < current.delay_us - 1e-9:
                placed[index] = candidate
                ledger.commit(candidate)
                improved = True
            else:
                ledger.commit(current)
        for request in [r for r in order if r.name in plan.infeasible]:
            candidate, reason = _best_candidate(
                request, topology, params, ledger
            )
            if candidate is not None:
                ledger.commit(candidate)
                placed.append(candidate)
                del plan.infeasible[request.name]
                improved = True
            else:
                plan.infeasible[request.name] = reason
        if not improved:
            break

    by_name = {request.name: index for index, request in enumerate(requests)}
    placed.sort(key=lambda p: by_name[p.request.name])
    plan.placements = placed
    return plan


def round_robin_place(
    topology: Topology,
    requests: Sequence[ChainRequest],
    params: SimParams = DEFAULT_PARAMS,
) -> PlacementPlan:
    """The naive baseline: greedy slicing, servers dealt in index order.

    Slices each chain with the legacy first-fit
    (:func:`repro.core.partition.partition_graph` semantics against the
    *smallest* server's budget) and deals slices onto servers round
    robin, chain after chain, ignoring scores, SLOs and constraints --
    exactly what an orchestrator without a placement layer would do.
    Placements that happen to violate capacity or the SLO are still
    reported (with their true predicted delay), so the bench comparison
    shows what the naive plan actually costs; candidates that are not
    even wirable (non-adjacent servers) land in ``infeasible``.
    """
    names = sorted(topology.servers)
    ledger = ResourceLedger(topology)
    plan = PlacementPlan(topology=topology, ledger=ledger,
                         solver="round-robin")
    budget = min(s.cores for s in topology.servers.values()) - 2
    if budget < 1:
        for request in requests:
            plan.infeasible[request.name] = "no server has spare NF cores"
        return plan

    cursor = 0
    for request in requests:
        cuts: List[int] = []
        used = 0
        for index, stage in enumerate(request.graph.stages):
            need = len(stage)
            if index == 0:
                used = need
                continue
            if used + need > budget:
                cuts.append(index)
                used = need
            else:
                used += need
        path = tuple(
            names[(cursor + offset) % len(names)]
            for offset in range(len(cuts) + 1)
        )
        cursor += len(cuts) + 1
        try:
            links = topology.path_links(path)
        except TopologyError:
            plan.infeasible[request.name] = (
                f"round-robin walk {' -> '.join(path)} is not a path in "
                f"the topology"
            )
            continue
        from ..core.partition import partition_at
        from ..eval.model import placed_capacity
        from ..multiserver.latency import estimate_placed_latency

        slices = partition_at(request.graph, cuts)
        if len(set(path)) != len(path):
            plan.infeasible[request.name] = "round-robin walk revisits a server"
            continue
        report = placed_capacity(request.graph, slices, params,
                                 packet_size=request.packet_size)
        latency = estimate_placed_latency(
            request.graph, slices, links, params,
            packet_size=request.packet_size,
        )
        placement = ChainPlacement(
            request=request, cuts=tuple(cuts), path=path, slices=slices,
            links=links, delay_us=latency.total_us,
            capacity_mpps=report.mpps, bottleneck=report.bottleneck,
        )
        ledger.commit(placement)
        plan.placements.append(placement)
    return plan
