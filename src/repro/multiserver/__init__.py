"""Cross-server NF parallelism (§7 scalability sketch, implemented).

A compiled service graph is partitioned at stage boundaries over
several simulated servers (`repro.core.partition`); copy versions are
merged before leaving each server so every inter-server link carries
exactly one packet copy, tagged with an NSH-style shim that ferries the
NFP metadata.
"""

from .nsh import NSH_LEN, NshTag, decapsulate, encapsulate, has_nsh
from .dataplane import MultiServerDataplane, ServerStage, slice_merge_ops
from .latency import (
    CrossServerLatency,
    estimate_cross_server_latency,
    estimate_placed_latency,
    link_cost_us,
)
from .timed import TimedMultiServer, slice_subgraph

__all__ = [
    "NshTag",
    "encapsulate",
    "decapsulate",
    "has_nsh",
    "NSH_LEN",
    "MultiServerDataplane",
    "ServerStage",
    "slice_merge_ops",
    "estimate_cross_server_latency",
    "estimate_placed_latency",
    "CrossServerLatency",
    "link_cost_us",
    "TimedMultiServer",
    "slice_subgraph",
]
