"""Latency model for cross-server graphs.

Splitting a graph over servers trades cores for inter-server hops; this
module quantifies the trade under the calibrated timing model.  Each
link costs a NIC transmit + wire serialisation (frame + 16 B NSH shim)
+ NIC receive, plus the usual pipeline batch residency at the next
server's ingress.
"""

from __future__ import annotations

from typing import List

from ..core.graph import ORIGINAL_VERSION, ServiceGraph
from ..core.partition import ServerSlice, partition_graph
from ..sim.params import SimParams
from .nsh import NSH_LEN

__all__ = ["link_cost_us", "estimate_cross_server_latency", "CrossServerLatency"]


def link_cost_us(params: SimParams, packet_size: int) -> float:
    """One inter-server hop's latency penalty vs a single box.

    The intermediate server pays an *extra* NIC egress (the single box
    pays only one, at the very end), the frame crosses the link (tx
    driver + wire serialisation of frame + shim), and the next server
    pays a NIC ingress plus a fresh classification.  Validated against
    the timed multi-server DES in
    ``tests/integration/test_timed_multiserver.py``.
    """
    wire_bits = (packet_size + NSH_LEN + 20) * 8
    wire_us = wire_bits / (params.nic_gbps * 1000.0)
    return 3 * params.nic_io_us + wire_us + params.classifier_tag_us


class CrossServerLatency:
    """Breakdown of a partitioned graph's zero-load latency."""

    def __init__(
        self,
        single_server_us: float,
        slice_costs_us: List[float],
        link_cost_each_us: float,
    ):
        self.single_server_us = single_server_us
        self.slice_costs_us = slice_costs_us
        self.link_cost_each_us = link_cost_each_us

    @property
    def num_servers(self) -> int:
        return len(self.slice_costs_us)

    @property
    def num_links(self) -> int:
        return max(0, self.num_servers - 1)

    @property
    def total_us(self) -> float:
        return sum(self.slice_costs_us) + self.num_links * self.link_cost_each_us

    @property
    def penalty_us(self) -> float:
        """Extra latency versus running the whole graph on one box."""
        return self.total_us - self.single_server_us

    def __repr__(self) -> str:
        return (
            f"CrossServerLatency({self.num_servers} servers, "
            f"{self.total_us:.1f}us total, +{self.penalty_us:.1f}us vs single)"
        )


def _slice_path_cost(
    graph: ServiceGraph, server_slice: ServerSlice, params: SimParams
) -> float:
    """Critical-path cost of one slice: per-stage hop + slowest NF."""
    cost = 0.0
    for stage in server_slice.stages:
        cost += params.batch_wait_us
        cost += max(
            params.nf_runtime_us + params.nf_service(entry.node.kind)
            for entry in stage
        )
        # A stage with copy versions pays the slice-local merge.
        copies_here = {
            e.version for e in stage if e.version != ORIGINAL_VERSION
        }
        if copies_here:
            cost += params.merge_latency_us
            cost += len(copies_here) * params.copy_merge_latency_us
    return cost


def estimate_cross_server_latency(
    graph: ServiceGraph,
    params: SimParams,
    cores_per_server: int,
    packet_size: int = 64,
) -> CrossServerLatency:
    """Zero-load latency of the partitioned graph vs the single-box run."""
    from ..eval.model import nfp_latency_floor

    slices = partition_graph(graph, cores_per_server)
    single = nfp_latency_floor(graph, params, packet_size=packet_size)
    slice_costs = [_slice_path_cost(graph, s, params) for s in slices]
    # Spread the fixed single-box overheads (NIC in/out, classifier,
    # final merge) over the partitioned total so the comparison isolates
    # the link penalty.
    fixed = single - sum(
        _slice_path_cost(graph, s, params) for s in slices
    )
    if slices:
        slice_costs[0] += max(0.0, fixed)
    return CrossServerLatency(
        single_server_us=single,
        slice_costs_us=slice_costs,
        link_cost_each_us=link_cost_us(params, packet_size),
    )
