"""Latency model for cross-server graphs.

Splitting a graph over servers trades cores for inter-server hops; this
module quantifies the trade under the calibrated timing model.  Each
link costs a NIC transmit + wire serialisation (frame + 16 B NSH shim)
+ NIC receive, plus the usual pipeline batch residency at the next
server's ingress.  Links may be heterogeneous: every hop carries its
own bandwidth and propagation delay, so a placement over a real
topology prices each hop it actually crosses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.graph import ORIGINAL_VERSION, ServiceGraph
from ..core.partition import ServerSlice, partition_graph
from ..sim.params import SimParams
from .nsh import NSH_LEN

__all__ = [
    "link_cost_us",
    "estimate_cross_server_latency",
    "estimate_placed_latency",
    "CrossServerLatency",
]


def link_cost_us(
    params: SimParams,
    packet_size: int,
    gbps: Optional[float] = None,
    propagation_us: float = 0.0,
) -> float:
    """One inter-server hop's latency penalty vs a single box.

    The intermediate server pays an *extra* NIC egress (the single box
    pays only one, at the very end), the frame crosses the link (tx
    driver + wire serialisation of frame + shim at the link's own rate,
    plus its propagation delay), and the next server pays a NIC ingress
    plus a fresh classification.  ``gbps`` defaults to the NIC rate of
    ``params`` (the homogeneous cluster of the paper's §7 sketch).
    Validated against the timed multi-server DES in
    ``tests/integration/test_timed_multiserver.py``.
    """
    rate_gbps = params.nic_gbps if gbps is None else gbps
    if rate_gbps <= 0:
        raise ValueError("link bandwidth must be positive")
    wire_bits = (packet_size + NSH_LEN + 20) * 8
    wire_us = wire_bits / (rate_gbps * 1000.0)
    return 3 * params.nic_io_us + wire_us + params.classifier_tag_us + propagation_us


class CrossServerLatency:
    """Breakdown of a partitioned graph's zero-load latency.

    ``link_costs_us`` holds one entry per hop, so heterogeneous
    topologies price each link individually; the old homogeneous
    behaviour is the uniform special case (construct with
    ``link_cost_each_us``).
    """

    def __init__(
        self,
        single_server_us: float,
        slice_costs_us: List[float],
        link_costs_us: Optional[Sequence[float]] = None,
        link_cost_each_us: Optional[float] = None,
    ):
        self.single_server_us = single_server_us
        self.slice_costs_us = slice_costs_us
        if link_costs_us is None:
            if link_cost_each_us is None:
                raise ValueError("need link_costs_us or link_cost_each_us")
            link_costs_us = [link_cost_each_us] * max(0, len(slice_costs_us) - 1)
        self.link_costs_us = list(link_costs_us)
        if len(self.link_costs_us) != max(0, len(slice_costs_us) - 1):
            raise ValueError(
                f"{len(slice_costs_us)} slices need "
                f"{max(0, len(slice_costs_us) - 1)} link costs, "
                f"got {len(self.link_costs_us)}"
            )

    @property
    def link_cost_each_us(self) -> float:
        """The uniform per-hop cost; raises when links are heterogeneous."""
        if not self.link_costs_us:
            return 0.0
        first = self.link_costs_us[0]
        if any(abs(cost - first) > 1e-9 for cost in self.link_costs_us[1:]):
            raise ValueError(
                "links are heterogeneous; read link_costs_us instead"
            )
        return first

    @property
    def num_servers(self) -> int:
        return len(self.slice_costs_us)

    @property
    def num_links(self) -> int:
        return max(0, self.num_servers - 1)

    @property
    def total_us(self) -> float:
        return sum(self.slice_costs_us) + sum(self.link_costs_us)

    @property
    def penalty_us(self) -> float:
        """Extra latency versus running the whole graph on one box."""
        return self.total_us - self.single_server_us

    def __repr__(self) -> str:
        return (
            f"CrossServerLatency({self.num_servers} servers, "
            f"{self.total_us:.1f}us total, +{self.penalty_us:.1f}us vs single)"
        )


def _slice_path_cost(
    graph: ServiceGraph, server_slice: ServerSlice, params: SimParams
) -> float:
    """Critical-path cost of one slice: per-stage hop + slowest NF."""
    cost = 0.0
    for stage in server_slice.stages:
        cost += params.batch_wait_us
        cost += max(
            params.nf_runtime_us + params.nf_service(entry.node.kind)
            for entry in stage
        )
        # A stage with copy versions pays the slice-local merge.
        copies_here = {
            e.version for e in stage if e.version != ORIGINAL_VERSION
        }
        if copies_here:
            cost += params.merge_latency_us
            cost += len(copies_here) * params.copy_merge_latency_us
    return cost


def _assemble(
    graph: ServiceGraph,
    slices: Sequence[ServerSlice],
    params: SimParams,
    packet_size: int,
    link_costs_us: Sequence[float],
) -> CrossServerLatency:
    from ..eval.model import nfp_latency_floor

    single = nfp_latency_floor(graph, params, packet_size=packet_size)
    slice_costs = [_slice_path_cost(graph, s, params) for s in slices]
    # Spread the fixed single-box overheads (NIC in/out, classifier,
    # final merge) over the partitioned total so the comparison isolates
    # the link penalty.
    fixed = single - sum(slice_costs)
    if slice_costs:
        slice_costs[0] += max(0.0, fixed)
    return CrossServerLatency(
        single_server_us=single,
        slice_costs_us=slice_costs,
        link_costs_us=list(link_costs_us),
    )


def estimate_cross_server_latency(
    graph: ServiceGraph,
    params: SimParams,
    cores_per_server: int,
    packet_size: int = 64,
) -> CrossServerLatency:
    """Zero-load latency of the partitioned graph vs the single-box run."""
    slices = partition_graph(graph, cores_per_server)
    each = link_cost_us(params, packet_size)
    return _assemble(
        graph, slices, params, packet_size,
        [each] * max(0, len(slices) - 1),
    )


def estimate_placed_latency(
    graph: ServiceGraph,
    slices: Sequence[ServerSlice],
    links: Sequence,
    params: SimParams,
    packet_size: int = 64,
) -> CrossServerLatency:
    """Zero-load latency of an explicit placement over concrete links.

    ``links`` holds one entry per hop between consecutive slices; each
    entry exposes ``gbps`` and ``propagation_us`` (a
    :class:`repro.placement.topology.Link` does).
    """
    if len(links) != max(0, len(slices) - 1):
        raise ValueError(
            f"{len(slices)} slices need {max(0, len(slices) - 1)} links, "
            f"got {len(links)}"
        )
    costs = [
        link_cost_us(params, packet_size, gbps=link.gbps,
                     propagation_us=link.propagation_us)
        for link in links
    ]
    return _assemble(graph, slices, params, packet_size, costs)
