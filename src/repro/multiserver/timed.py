"""Timed cross-server execution: chained DES servers over links.

Each slice of a partitioned graph runs as a full simulated NFP server
(classifier, runtimes, mergers, pinned cores); servers are chained by
simulated links that NSH-tag each frame, serialise it at the link rate,
and hand it to the next server's NIC.  Because a slice is itself a
valid service graph (copy versions live and die inside one stage), the
slice servers compose without any special-casing -- each merges its
local copies into version 1 before the frame leaves the box.

End-to-end latency is measured at the last server (packets keep their
original ingress timestamp across links), so the measured penalty vs a
single box is the real queueing + serialisation cost of the links.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.graph import ServiceGraph
from ..core.partition import ServerSlice, partition_graph
from ..core.graph import CopySpec
from ..dataplane.server import NFPServer
from ..net.packet import Packet
from ..sim import Environment, SimParams
from .dataplane import slice_merge_ops
from .nsh import NshTag, decapsulate, encapsulate

__all__ = ["slice_subgraph", "TimedMultiServer"]


def slice_subgraph(graph: ServiceGraph, server_slice: ServerSlice) -> ServiceGraph:
    """A slice re-expressed as a standalone service graph.

    Stage indices of copy specs are rebased to the slice; merge ops are
    restricted to the slice's copy versions (v1 carries everything else
    onward).
    """
    offset = graph.stages.index(server_slice.stages[0])
    copies = [
        CopySpec(c.stage_index - offset, c.version, c.header_only)
        for c in graph.copies
        if 0 <= c.stage_index - offset < len(server_slice.stages)
    ]
    return ServiceGraph(
        server_slice.stages,
        copies=copies,
        merge_ops=slice_merge_ops(graph, server_slice),
        name=f"{graph.name}[server{server_slice.server_index}]",
    )


class _Link:
    """A point-to-point link between two slice servers.

    ``gbps``/``propagation_us`` override the NIC-rate default so a
    placement over a heterogeneous topology serialises each hop at that
    hop's real bandwidth and pays its propagation delay.
    """

    def __init__(self, env: Environment, params: SimParams,
                 downstream: NFPServer, index: int, path_id: int,
                 gbps: float = 0.0, propagation_us: float = 0.0):
        self.env = env
        self.params = params
        self.downstream = downstream
        self.index = index
        self.path_id = path_id
        self.gbps = gbps if gbps > 0 else params.nic_gbps
        self.propagation_us = propagation_us
        self.frames = 0
        self.bytes = 0

    def send(self, pkt: Packet) -> None:
        tag = NshTag(self.path_id, self.index + 1, pkt.meta)
        encapsulate(pkt, tag)
        self.frames += 1
        self.bytes += pkt.wire_len
        wire_us = (pkt.wire_len + 20) * 8 / (self.gbps * 1000.0)

        def cross():
            yield self.env.timeout(
                self.params.nic_io_us + wire_us + self.propagation_us
            )
            decapsulate(pkt)
            self.downstream.inject(pkt)

        self.env.process(cross())


class TimedMultiServer:
    """A partitioned graph on chained simulated servers."""

    def __init__(
        self,
        env: Environment,
        params: SimParams,
        graph: ServiceGraph,
        cores_per_server: Optional[int] = None,
        num_mergers: int = 1,
        path_id: int = 1,
        slices: Optional[List[ServerSlice]] = None,
        link_specs: Optional[List] = None,
        telemetry=None,
    ):
        from ..eval.harness import deployed_from_graph

        self.env = env
        self.params = params
        self.graph = graph
        if slices is not None:
            self.slices = list(slices)
        elif cores_per_server is not None:
            self.slices = partition_graph(graph, cores_per_server)
        else:
            raise ValueError("need cores_per_server or an explicit slices list")
        if link_specs is not None and len(link_specs) != max(0, len(self.slices) - 1):
            raise ValueError("one link spec per inter-server hop required")
        self.servers: List[NFPServer] = []
        self.links: List[_Link] = []

        for server_slice in self.slices:
            sub = slice_subgraph(graph, server_slice)
            server = NFPServer(env, params, num_mergers=num_mergers,
                               telemetry=telemetry)
            server.deploy(deployed_from_graph(sub, mid=path_id))
            self.servers.append(server)

        # Chain: server i's egress feeds server i+1 through a link.
        for index in range(len(self.servers) - 1):
            spec = link_specs[index] if link_specs is not None else None
            link = _Link(
                env, params, self.servers[index + 1], index, path_id,
                gbps=getattr(spec, "gbps", 0.0) if spec is not None else 0.0,
                propagation_us=(
                    getattr(spec, "propagation_us", 0.0)
                    if spec is not None else 0.0
                ),
            )
            self.links.append(link)
            self.servers[index].on_emit = link.send

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    @property
    def head(self) -> NFPServer:
        return self.servers[0]

    @property
    def tail(self) -> NFPServer:
        """Latency/throughput are recorded at the last server."""
        return self.servers[-1]

    def inject(self, pkt: Packet) -> None:
        self.head.inject(pkt)

    # ------------------------------------------------------- aggregates
    @property
    def delivered(self) -> int:
        return self.tail.rate.delivered

    @property
    def lost(self) -> int:
        return sum(s.lost for s in self.servers)

    @property
    def nil_dropped(self) -> int:
        return sum(s.nil_dropped for s in self.servers)

    @property
    def cores_used(self) -> int:
        return sum(s.cores_used for s in self.servers)
