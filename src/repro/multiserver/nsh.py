"""Network Service Header carriage of NFP metadata between servers.

For cross-server graphs the paper says "packet delivery between servers
could refer to Flowtags [16] or Network Service Header (NSH) [51]"
(§7).  We implement an NSH-style shim that rides between the Ethernet
and IPv4 headers on inter-server links, carrying:

* service path id / index (which slice of which graph comes next), and
* the NFP 64-bit metadata word (MID | PID | version), so the next
  server's dataplane can resume the flight without re-classifying;
* a nil flag, so a drop decided on one server suppresses work on the
  next.

Layout (16 bytes)::

    0        2        3        4            8                16
    +--------+--------+--------+------------+----------------+
    | magic  | flags  | index  | path id    | metadata word  |
    +--------+--------+--------+------------+----------------+

The shim changes the Ethernet ethertype to a private value while
present, so ordinary IPv4 parsing fails fast if a tagged packet leaks
into an NF.
"""

from __future__ import annotations

import struct

from ..net.headers import ETH_HEADER_LEN, ETHERTYPE_IPV4
from ..net.packet import Packet, PacketMeta

__all__ = ["NshTag", "encapsulate", "decapsulate", "has_nsh", "NSH_LEN"]

NSH_LEN = 16
_MAGIC = 0x9F17
#: Private ethertype marking an NSH-tagged frame.
ETHERTYPE_NSH = 0x894F
_FLAG_NIL = 0x01

_STRUCT = struct.Struct("!HBBIQ")
assert _STRUCT.size == NSH_LEN


class NshTag:
    """Decoded NSH shim contents."""

    __slots__ = ("path_id", "index", "meta", "nil")

    def __init__(self, path_id: int, index: int, meta: PacketMeta, nil: bool = False):
        if not 0 <= path_id <= 0xFFFFFFFF:
            raise ValueError("path id out of range")
        if not 0 <= index <= 0xFF:
            raise ValueError("service index out of range")
        self.path_id = path_id
        self.index = index
        self.meta = meta
        self.nil = nil

    def __repr__(self) -> str:
        return (
            f"NshTag(path={self.path_id}, index={self.index}, "
            f"meta={self.meta}, nil={self.nil})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NshTag)
            and (self.path_id, self.index, self.nil) ==
                (other.path_id, other.index, other.nil)
            and self.meta == other.meta
        )


def has_nsh(pkt: Packet) -> bool:
    """Whether the frame carries the NSH shim."""
    return len(pkt.buf) >= ETH_HEADER_LEN and pkt.eth.ethertype == ETHERTYPE_NSH


def encapsulate(pkt: Packet, tag: NshTag) -> None:
    """Insert the shim after the Ethernet header (in place)."""
    if has_nsh(pkt):
        raise ValueError("packet already NSH-tagged")
    flags = _FLAG_NIL if tag.nil else 0
    shim = _STRUCT.pack(_MAGIC, flags, tag.index, tag.path_id, tag.meta.pack())
    pkt.buf[ETH_HEADER_LEN:ETH_HEADER_LEN] = shim
    pkt.eth.ethertype = ETHERTYPE_NSH
    pkt.wire_len += NSH_LEN


def decapsulate(pkt: Packet) -> NshTag:
    """Strip the shim and return its contents; restores plain IPv4."""
    if not has_nsh(pkt):
        raise ValueError("packet carries no NSH shim")
    raw = bytes(pkt.buf[ETH_HEADER_LEN : ETH_HEADER_LEN + NSH_LEN])
    magic, flags, index, path_id, word = _STRUCT.unpack(raw)
    if magic != _MAGIC:
        raise ValueError("corrupt NSH shim")
    del pkt.buf[ETH_HEADER_LEN : ETH_HEADER_LEN + NSH_LEN]
    pkt.eth.ethertype = ETHERTYPE_IPV4
    pkt.wire_len -= NSH_LEN
    meta = PacketMeta.unpack(word)
    pkt.meta = meta
    return NshTag(path_id, index, meta, nil=bool(flags & _FLAG_NIL))
