"""Cross-server NF parallelism (§7 "NFP Scalability").

Executes a service graph partitioned over several servers under the
paper's bandwidth constraint: "each server sends only one copy of a
packet to the next server".  Each :class:`ServerStage` runs its slice
of stages with full NFP semantics (versions, copies, barriers, nil
propagation) and performs a *slice-local merge* at its egress -- copy
versions never leave the server; only the (merged) original crosses a
link, tagged with an NSH shim carrying the flight metadata.

The pipeline:

1. the ingress server classifies (assigns MID/PID) and runs slice 0;
2. at egress, the slice's copy-version writes are merged into v1, the
   NSH shim is pushed, and the frame crosses the link;
3. the next server pops the shim, recovers the metadata, runs its
   slice, and so on;
4. the last server emits the final packet (no shim on the way out).

A drop anywhere tags the shim nil, so downstream servers skip all
processing for that packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.graph import MergeOp, ORIGINAL_VERSION, ServiceGraph
from ..core.partition import ServerSlice, partition_graph
from ..dataplane.merging import apply_merge_ops
from ..net.headers import ETH_HEADER_LEN
from ..net.packet import HEADER_COPY_BYTES, Packet, PacketMeta
from ..nfs.base import NetworkFunction
from ..telemetry.hooks import NULL_HUB, TelemetryHub
from ..telemetry.tracer import SpanKind
from .nsh import NshTag, decapsulate, encapsulate

__all__ = ["ServerStage", "MultiServerDataplane", "slice_merge_ops"]


def slice_merge_ops(graph: ServiceGraph, server_slice: ServerSlice) -> List[MergeOp]:
    """The merge operations whose source versions live in this slice.

    Copy versions are stage-local, so each graph MO belongs to exactly
    one slice -- the one holding the stage where its source version
    runs.
    """
    local_versions = {
        entry.version
        for stage in server_slice.stages
        for entry in stage
        if entry.version != ORIGINAL_VERSION
    }
    return [op for op in graph.merge_ops if op.src_version in local_versions]


class ServerStage:
    """One server running a slice of a partitioned graph."""

    def __init__(
        self,
        graph: ServiceGraph,
        server_slice: ServerSlice,
        nf_instances: Optional[Dict[str, NetworkFunction]] = None,
    ):
        self.graph = graph
        self.slice = server_slice
        self.merge_ops = slice_merge_ops(graph, server_slice)
        names = server_slice.nf_names()
        if nf_instances is None:
            from ..nfs.base import create_nf

            nf_instances = {}
            for stage in server_slice.stages:
                for entry in stage:
                    nf_instances[entry.node.name] = create_nf(
                        entry.node.kind, name=entry.node.name
                    )
        missing = [n for n in names if n not in nf_instances]
        if missing:
            raise ValueError(f"missing NF instances: {missing}")
        self.nfs = nf_instances
        self.processed = 0
        self.dropped = 0

    def process(self, pkt: Packet) -> Optional[Packet]:
        """Run the slice; returns the merged v1 or ``None`` on drop."""
        self.processed += 1
        versions: Dict[int, Packet] = {ORIGINAL_VERSION: pkt}
        global_offset = self.graph.stages.index(self.slice.stages[0])

        for local_index, stage in enumerate(self.slice.stages):
            stage_index = global_offset + local_index
            for copy in self.graph.copies:
                if copy.stage_index != stage_index:
                    continue
                base = versions[ORIGINAL_VERSION]
                if base.nil:
                    versions[copy.version] = base.make_nil()
                elif copy.header_only:
                    versions[copy.version] = base.header_copy(
                        copy.version, HEADER_COPY_BYTES
                    )
                else:
                    versions[copy.version] = base.full_copy(copy.version)

            newly_dropped = []
            for entry in stage:
                buffer = versions[entry.version]
                if buffer.nil:
                    continue
                ctx = self.nfs[entry.node.name].handle(buffer)
                if ctx.dropped:
                    newly_dropped.append(entry.version)
            for version in newly_dropped:
                versions[version] = versions[version].make_nil()

        merged = apply_merge_ops(versions, self.merge_ops)
        if merged is None:
            self.dropped += 1
        return merged


@dataclass
class LinkStats:
    """Per-link accounting proving the one-copy constraint."""

    frames: int = 0
    bytes: int = 0
    nil_frames: int = 0


class MultiServerDataplane:
    """A service graph spread over several servers, linked by NSH.

    Two construction modes:

    * ``cores_per_server`` -- the legacy greedy first-fit split over
      identical boxes (:func:`repro.core.partition.partition_graph`);
    * ``slices`` -- an explicit placement (e.g. from
      ``Orchestrator.place``), optionally with ``server_names``,
      per-server ``server_cores`` and per-hop ``link_specs`` (objects
      exposing ``gbps``/``propagation_us``) so the utilisation gauges
      reflect the real topology.

    With telemetry attached, the dataplane emits per-server
    core-utilisation gauges (``multiserver.server.<name>.core_util``)
    at deploy time and per-link occupancy gauges
    (``multiserver.link<i>.busy_us`` wire time; plus
    ``multiserver.link<i>.occupancy`` as a fraction of the link's rate
    when ``offered_mpps`` is known) as frames cross.
    """

    def __init__(
        self,
        graph: ServiceGraph,
        cores_per_server: Optional[int] = None,
        path_id: int = 1,
        telemetry: Optional[TelemetryHub] = None,
        slices: Optional[List[ServerSlice]] = None,
        server_names: Optional[List[str]] = None,
        server_cores: Optional[List[int]] = None,
        link_specs: Optional[List] = None,
        offered_mpps: Optional[float] = None,
    ):
        self.graph = graph
        self.path_id = path_id
        self.telemetry = telemetry if telemetry is not None else NULL_HUB
        if slices is not None:
            self.slices = list(slices)
        elif cores_per_server is not None:
            self.slices = partition_graph(graph, cores_per_server)
            if server_cores is None:
                server_cores = [cores_per_server] * len(self.slices)
        else:
            raise ValueError("need cores_per_server or an explicit slices list")
        self.servers = [ServerStage(graph, s) for s in self.slices]
        if server_names is not None and len(server_names) != len(self.servers):
            raise ValueError("one server name per slice required")
        self.server_names = (
            list(server_names) if server_names is not None
            else [f"server{i}" for i in range(len(self.servers))]
        )
        if link_specs is not None and len(link_specs) != max(0, len(self.servers) - 1):
            raise ValueError("one link spec per inter-server hop required")
        self.link_specs = list(link_specs) if link_specs is not None else None
        self.offered_mpps = offered_mpps
        for server in self.servers:
            for nf in server.nfs.values():
                nf.telemetry = self.telemetry
        self.links: List[LinkStats] = [LinkStats() for _ in self.servers[:-1]]
        self._next_pid = 0
        self.emitted = 0
        self.dropped = 0
        if self.telemetry.enabled and server_cores is not None:
            for index, (name, server_slice) in enumerate(
                zip(self.server_names, self.slices)
            ):
                capacity = server_cores[index]
                if capacity > 0:
                    self.telemetry.gauge(
                        f"multiserver.server.{name}.core_util",
                        server_slice.total_cores / capacity,
                    )

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    def nf(self, name: str) -> NetworkFunction:
        for server in self.servers:
            if name in server.nfs:
                return server.nfs[name]
        raise KeyError(name)

    def process(self, pkt: Packet) -> Optional[Packet]:
        """Run one packet across all servers; ``None`` means dropped."""
        # Ingress classification: assign flight metadata.
        self._next_pid = (self._next_pid + 1) % (1 << 40)
        pkt.meta = PacketMeta(mid=self.path_id, pid=self._next_pid,
                              version=ORIGINAL_VERSION)

        current: Optional[Packet] = pkt
        nil = False
        for index, server in enumerate(self.servers):
            if not nil:
                current = server.process(current)
                if current is None:
                    nil = True
            if index < len(self.links):
                # Cross the link: exactly one frame per packet, tagged.
                if current is not None and not nil:
                    carrier = current
                else:
                    # A dropped packet still crosses as a minimal nil
                    # notification so downstream accounting completes.
                    carrier = Packet(
                        bytearray(ETH_HEADER_LEN), meta=pkt.meta,
                        wire_len=ETH_HEADER_LEN,
                    )
                    carrier.eth.ethertype = 0x0800
                tag = NshTag(self.path_id, index + 1, pkt.meta, nil=nil)
                encapsulate(carrier, tag)
                link = self.links[index]
                link.frames += 1
                link.bytes += carrier.wire_len
                if nil:
                    link.nil_frames += 1
                hub = self.telemetry
                if hub.enabled:
                    # Cross-server hop: exactly one (possibly nil) frame.
                    hub.inc("multiserver.hops")
                    hub.inc(f"multiserver.link{index}.frames")
                    hub.inc(f"multiserver.link{index}.bytes", carrier.wire_len)
                    if nil:
                        hub.inc(f"multiserver.link{index}.nil_frames")
                    if self.link_specs is not None:
                        spec = self.link_specs[index]
                        hub.gauge(
                            f"multiserver.link{index}.busy_us",
                            link.bytes * 8 / (spec.gbps * 1000.0),
                        )
                        if self.offered_mpps:
                            mean_bits = link.bytes * 8 / link.frames
                            hub.gauge(
                                f"multiserver.link{index}.occupancy",
                                self.offered_mpps * mean_bits
                                / (spec.gbps * 1000.0),
                            )
                    # The functional pipeline has no clock; hop ordinal
                    # stands in for time so spans still order causally.
                    hub.span(SpanKind.ENQUEUE, float(index), pkt.meta,
                             name=f"link{index}", args={"nil": nil})
                # ... wire ...
                received_tag = decapsulate(carrier)
                assert received_tag.index == index + 1
                nil = nil or received_tag.nil
                if not nil:
                    current = carrier
        if nil or current is None:
            self.dropped += 1
            return None
        self.emitted += 1
        return current
