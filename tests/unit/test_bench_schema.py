"""Unit tests for the bench result model: serializer, validation, paths."""

import json

import pytest

from repro.bench import (
    BenchReport,
    SCHEMA,
    ScenarioResult,
    measurement_to_dict,
    next_bench_path,
    validate_bench,
)
from repro.eval.harness import MeasurementResult
from repro.telemetry import SpanEvent, SpanKind, stage_rollup


def _measurement(**overrides) -> MeasurementResult:
    fields = dict(
        system="NFP", label="fw->fw", latency_mean_us=40.0,
        latency_p50_us=38.0, latency_p99_us=55.0, throughput_mpps=5.26,
        bottleneck="merger", offered_mpps=3.68, delivered=800, lost=0,
        nil_dropped=0, resource_overhead=0.0, cores_used=4,
    )
    fields.update(overrides)
    return MeasurementResult(**fields)


def _rollup():
    return stage_rollup([
        SpanEvent(kind=SpanKind.NF_END, ts_us=4.0, mid=1, pid=1, version=1,
                  duration_us=4.0),
        SpanEvent(kind=SpanKind.CLASSIFY, ts_us=3.0, mid=1, pid=1, version=1,
                  args={"ingress_us": 1.0}),
    ])


def _scenario(name="seq_chain_2", **measurement_overrides) -> ScenarioResult:
    return ScenarioResult.from_parts(
        name=name,
        measurement=measurement_to_dict(_measurement(**measurement_overrides)),
        rollup=_rollup(),
        params={"packets": 800, "seed": 1},
        wall_time_s=0.25,
        peak_rss_kb=30000,
        extra_metrics={"copies_full": 0, "copies_header": 0},
    )


def _report(*scenarios) -> BenchReport:
    return BenchReport(
        meta={"mode": "quick", "packets": 800, "seed": 1},
        scenarios=list(scenarios) or [_scenario()],
    )


def test_measurement_to_dict_carries_every_figure_quantity():
    record = measurement_to_dict(_measurement())
    for key in ("latency_mean_us", "latency_p50_us", "latency_p99_us",
                "throughput_mpps", "resource_overhead", "cores_used",
                "delivered", "lost", "bottleneck", "lossless"):
        assert key in record
    assert record["lossless"] is True
    assert json.loads(json.dumps(record)) == record


def test_report_round_trips_through_json(tmp_path):
    path = tmp_path / "BENCH_0.json"
    report = _report()
    report.save(str(path))
    loaded = BenchReport.load(str(path))
    assert loaded.schema == SCHEMA
    assert loaded.names() == report.names()
    scenario = loaded.scenario("seq_chain_2")
    assert scenario.metrics["latency_p50_us"] == pytest.approx(38.0)
    assert scenario.stage_us["ft"] == pytest.approx(4.0)
    assert scenario.stage_shares["ft"] == pytest.approx(4.0 / 6.0)
    assert scenario.wall_time_s == pytest.approx(0.25)


def test_validate_flags_schema_and_structure_problems():
    document = _report().to_dict()
    assert validate_bench(document) == []

    wrong_schema = dict(document, schema="repro.bench/999")
    assert any("schema" in problem for problem in validate_bench(wrong_schema))

    no_scenarios = dict(document, scenarios=[])
    assert any("scenarios" in p for p in validate_bench(no_scenarios))

    missing_metric = _report().to_dict()
    del missing_metric["scenarios"][0]["metrics"]["latency_p99_us"]
    assert any("latency_p99_us" in p for p in validate_bench(missing_metric))

    duplicate = _report(_scenario(), _scenario()).to_dict()
    assert any("duplicate" in p for p in validate_bench(duplicate))


def test_validate_requires_non_empty_stage_attribution():
    document = _report().to_dict()
    document["scenarios"][0]["self"]["stage_us"] = {
        name: 0.0 for name in ("classify", "ft")
    }
    assert any("attributes no time" in p for p in validate_bench(document))
    document["scenarios"][0]["self"]["stage_us"] = {"bogus_stage": 1.0}
    assert any("unknown stages" in p for p in validate_bench(document))


def test_save_refuses_invalid_report(tmp_path):
    report = _report()
    report.scenarios[0].metrics.pop("lost")
    with pytest.raises(ValueError, match="lost"):
        report.save(str(tmp_path / "BENCH_0.json"))


def test_next_bench_path_numbering(tmp_path):
    assert next_bench_path(str(tmp_path)).endswith("BENCH_0.json")
    (tmp_path / "BENCH_0.json").write_text("{}")
    (tmp_path / "BENCH_3.json").write_text("{}")
    (tmp_path / "BENCH_junk.json").write_text("{}")  # ignored
    assert next_bench_path(str(tmp_path)).endswith("BENCH_4.json")
