"""Unit tests for repro.telemetry metrics: histogram math, registry merge."""

import random
import statistics

import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_BOUNDS_US,
    Histogram,
    MetricsRegistry,
    NULL_HUB,
    TelemetryHub,
    exponential_bounds,
)


# ---------------------------------------------------------------- histogram
def test_exponential_bounds_shape():
    bounds = exponential_bounds(1.0, 2.0, 5)
    assert bounds == (1.0, 2.0, 4.0, 8.0, 16.0)
    with pytest.raises(ValueError):
        exponential_bounds(0.0, 2.0, 5)
    with pytest.raises(ValueError):
        exponential_bounds(1.0, 1.0, 5)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=())
    with pytest.raises(ValueError):
        Histogram("h", bounds=(5.0, 1.0))


def test_histogram_exact_quantities():
    hist = Histogram("svc", bounds=(1.0, 10.0, 100.0))
    for value in (0.5, 5.0, 50.0, 500.0):
        hist.record(value)
    assert hist.count == 4
    assert hist.total == pytest.approx(555.5)
    assert hist.mean == pytest.approx(555.5 / 4)
    assert hist.min == 0.5
    assert hist.max == 500.0
    # One value per bucket including the overflow bucket.
    assert hist.buckets == [1, 1, 1, 1]


def test_histogram_empty_raises():
    hist = Histogram("svc")
    with pytest.raises(ValueError):
        hist.mean
    with pytest.raises(ValueError):
        hist.percentile(50)
    hist.record(1.0)
    with pytest.raises(ValueError):
        hist.percentile(150)


def test_histogram_percentiles_vs_statistics_quantiles():
    """Bucket-interpolated percentiles track the exact sample quantiles
    to within one bucket's width."""
    rng = random.Random(42)
    samples = [rng.uniform(1.0, 5000.0) for _ in range(4000)]
    hist = Histogram("lat", bounds=DEFAULT_LATENCY_BOUNDS_US)
    for value in samples:
        hist.record(value)

    quantiles = statistics.quantiles(samples, n=100, method="inclusive")
    for pct in (25, 50, 75, 90, 99):
        exact = quantiles[pct - 1]
        estimate = hist.percentile(pct)
        # The winning bucket's bounds bracket the true quantile.
        bucket = next(
            i for i, b in enumerate(hist.bounds) if exact <= b
        )
        lower = hist.bounds[bucket - 1] if bucket else 0.0
        upper = hist.bounds[bucket]
        assert lower <= estimate <= upper * 1.0001
        # And interpolation keeps the estimate close in relative terms.
        assert estimate == pytest.approx(exact, rel=0.5)
    # Extremes clamp to observed values.
    assert hist.percentile(0) == pytest.approx(min(samples))
    assert hist.percentile(100) == pytest.approx(max(samples))


def test_histogram_merge_equals_union():
    rng = random.Random(7)
    first, second = Histogram("a"), Histogram("a")
    values_a = [rng.expovariate(0.01) for _ in range(500)]
    values_b = [rng.expovariate(0.002) for _ in range(500)]
    for value in values_a:
        first.record(value)
    for value in values_b:
        second.record(value)
    union = Histogram("a")
    for value in values_a + values_b:
        union.record(value)

    first.merge_from(second)
    assert first.count == union.count
    assert first.buckets == union.buckets
    assert first.total == pytest.approx(union.total)
    assert first.min == union.min and first.max == union.max
    assert first.percentile(99) == pytest.approx(union.percentile(99))


def test_histogram_merge_rejects_mismatched_bounds():
    with pytest.raises(ValueError):
        Histogram("a", bounds=(1.0, 2.0)).merge_from(
            Histogram("a", bounds=(1.0, 3.0))
        )


# ----------------------------------------------------------------- registry
def test_registry_get_or_create_identity():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")
    assert registry.counter_value("missing") == 0
    assert registry.counter_value("missing", default=7) == 7


def test_registry_merge_semantics():
    """Counters add, gauges keep the peak, histograms union."""
    left, right = MetricsRegistry(), MetricsRegistry()
    left.counter("pkts").inc(10)
    right.counter("pkts").inc(5)
    right.counter("only_right").inc(2)
    left.gauge("hwm").set(3.0)
    right.gauge("hwm").set(9.0)
    left.histogram("lat").record(10.0)
    right.histogram("lat").record(1000.0)

    left.merge(right)
    assert left.counter_value("pkts") == 15
    assert left.counter_value("only_right") == 2
    assert left.gauges["hwm"].value == 9.0
    assert left.histograms["lat"].count == 2
    assert left.histograms["lat"].max == 1000.0


def test_counter_rejects_negative():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("c").inc(-1)


def test_registry_snapshot_is_plain_data():
    import json

    registry = MetricsRegistry()
    registry.counter("a").inc(3)
    registry.gauge("b").set(1.5)
    registry.histogram("c", bounds=(1.0, 2.0)).record(1.5)
    snap = registry.snapshot()
    assert snap["counters"] == {"a": 3}
    assert snap["gauges"] == {"b": 1.5}
    assert snap["histograms"]["c"]["count"] == 1
    json.dumps(snap)  # JSON-serialisable end to end


# ---------------------------------------------------------------------- hub
def test_disabled_hub_records_nothing():
    hub = TelemetryHub(enabled=False)
    hub.inc("x")
    hub.gauge("g", 1.0)
    hub.observe("h", 5.0)
    hub.span(None, 0.0, None)
    assert not hub.registry.counters
    assert not hub.registry.gauges
    assert not hub.registry.histograms
    assert not hub.tracing
    assert not NULL_HUB.enabled


def test_enabled_hub_routes_to_registry():
    hub = TelemetryHub()
    hub.inc("x", 4)
    hub.gauge("g", 2.0)
    hub.observe("h", 5.0)
    assert hub.registry.counter_value("x") == 4
    assert hub.registry.gauges["g"].value == 2.0
    assert hub.registry.histograms["h"].count == 1
    assert not hub.tracing  # no tracer attached
