"""Unit tests for profile serialization and policy conflict resolution."""

import pytest

from repro.core import (
    Orchestrator,
    Policy,
    check_policy,
    default_action_table,
)
from repro.core.profiles_io import (
    load_action_table,
    profile_from_dict,
    profile_to_dict,
    save_action_table,
)
from repro.core.resolution import resolve_policy
from repro.net import Field


# ----------------------------------------------------------- profiles I/O
def test_profile_dict_roundtrip_all_table2_rows():
    table = default_action_table()
    for profile in table:
        restored = profile_from_dict(profile_to_dict(profile))
        assert restored == profile
        assert restored.deployment_share == profile.deployment_share


def test_profile_dict_shape():
    data = profile_to_dict(default_action_table().fetch("vpn"))
    assert data["name"] == "vpn"
    assert data["adds"] == ["ah"]
    assert data["writes"] == ["payload"]
    assert data["drop"] is False


def test_profile_from_dict_validation():
    with pytest.raises(ValueError):
        profile_from_dict({"reads": ["sip"]})  # no name
    with pytest.raises(ValueError):
        profile_from_dict({"name": "x", "reads": ["not-a-field"]})


def test_action_table_file_roundtrip(tmp_path):
    table = default_action_table()
    path = tmp_path / "table2.json"
    save_action_table(table, path)
    restored = load_action_table(path)
    assert restored.names() == table.names()
    for name in table.names():
        assert restored.fetch(name) == table.fetch(name)


def test_loaded_table_compiles_policies(tmp_path):
    path = tmp_path / "t.json"
    save_action_table(default_action_table(), path)
    orch = Orchestrator(action_table=load_action_table(path))
    graph = orch.compile(Policy.from_chain(["ids", "monitor", "loadbalancer"])).graph
    assert graph.describe() == "(ids | monitor | loadbalancer[v2])"


# ------------------------------------------------------------- resolution
def test_resolve_clean_policy_is_noop():
    policy = Policy.from_chain(["firewall", "monitor"])
    report = resolve_policy(policy)
    assert report.clean
    assert report.policy.rules == policy.rules


def test_resolve_order_cycle_drops_latest_rule():
    policy = Policy().order("a", "b").order("b", "c").order("c", "a")
    report = resolve_policy(policy)
    assert not report.clean
    assert check_policy(report.policy).ok
    # The two earlier rules survive.
    remaining = [(r.before, r.after) for r in report.policy.order_rules()]
    assert ("a", "b") in remaining and ("b", "c") in remaining
    assert ("c", "a") not in remaining


def test_resolve_position_clash_keeps_first_pin():
    policy = Policy().position("x", "first").position("y", "first")
    report = resolve_policy(policy)
    assert check_policy(report.policy).ok
    pins = list(report.policy.position_rules())
    assert len(pins) == 1 and pins[0].nf == "x"


def test_resolve_order_position_contradiction_position_wins():
    policy = Policy().position("vpn", "first").order("firewall", "vpn")
    report = resolve_policy(policy)
    assert check_policy(report.policy).ok
    assert list(report.policy.position_rules())
    assert not any(r.after == "vpn" for r in report.policy.order_rules())


def test_resolve_priority_contradiction():
    policy = Policy().priority("a", "b").priority("b", "a")
    report = resolve_policy(policy)
    assert check_policy(report.policy).ok
    priorities = list(report.policy.priority_rules())
    assert len(priorities) == 1
    assert (priorities[0].high, priorities[0].low) == ("a", "b")


def test_resolved_policy_compiles():
    policy = Policy(name="messy")
    for rule in (
        ("vpn", "monitor"), ("monitor", "firewall"),
        ("firewall", "loadbalancer"), ("loadbalancer", "vpn"),  # cycle!
    ):
        policy.order(*rule)
    report = resolve_policy(policy)
    graph = Orchestrator().compile(report.policy).graph
    assert len(graph.nf_names()) == 4
    assert len(report.dropped) == 1
